//! Revised Romanization of Korean (국어의 로마자 표기법, 2000) — enough of
//! it to romanize administrative place names.
//!
//! Korean profile text often carries district names the alias tables have
//! never seen. Rather than enumerating every spelling, we decompose Hangul
//! syllables into jamo (U+AC00 block arithmetic), transcribe them with the
//! Revised Romanization tables, and apply the sound-change rules that
//! matter for place names (nasalization of ㄹ, liaison of final consonants
//! into a following vowel, ㄴ+ㄹ assimilation). The gazetteer's own
//! romanized names act as the ground truth: a unit test romanizes all 229
//! district stems and requires agreement.

/// Romanization of the 19 initial consonants (choseong).
const INITIALS: [&str; 19] = [
    "g", "kk", "n", "d", "tt", "r", "m", "b", "pp", "s", "ss", "", "j", "jj", "ch", "k", "t", "p",
    "h",
];

/// Romanization of the 21 medial vowels (jungseong).
const MEDIALS: [&str; 21] = [
    "a", "ae", "ya", "yae", "eo", "e", "yeo", "ye", "o", "wa", "wae", "oe", "yo", "u", "wo", "we",
    "wi", "yu", "eu", "ui", "i",
];

/// Romanization of the 28 final consonants (jongseong; index 0 = none),
/// transcribed by representative pronunciation as RR prescribes for
/// syllable-final position.
const FINALS: [&str; 28] = [
    "", "k", "k", "k", "n", "n", "n", "t", "l", "k", "m", "l", "l", "l", "p", "l", "m", "p", "p",
    "t", "t", "ng", "t", "t", "k", "t", "p", "t",
];

/// Jamo decomposition of one Hangul syllable: (initial, medial, final)
/// indexes, or `None` for non-syllable characters.
fn decompose(c: char) -> Option<(usize, usize, usize)> {
    let code = c as u32;
    if !(0xAC00..=0xD7A3).contains(&code) {
        return None;
    }
    let idx = code - 0xAC00;
    Some((
        (idx / 588) as usize,
        ((idx % 588) / 28) as usize,
        (idx % 28) as usize,
    ))
}

/// Final-consonant index → the initial-consonant index it becomes when
/// carried over to a following vowel (liaison), or `None` if it does not
/// carry cleanly (compound finals keep their coda reading).
fn liaison_initial(final_idx: usize) -> Option<usize> {
    // Jongseong order: ∅ ㄱ ㄲ ㄳ ㄴ ㄵ ㄶ ㄷ ㄹ ㄺ ㄻ ㄼ ㄽ ㄾ ㄿ ㅀ ㅁ ㅂ ㅄ ㅅ ㅆ ㅇ ㅈ ㅊ ㅋ ㅌ ㅍ ㅎ
    match final_idx {
        1 => Some(0),   // ㄱ → g
        2 => Some(1),   // ㄲ → kk
        4 => Some(2),   // ㄴ → n
        7 => Some(3),   // ㄷ → d
        8 => Some(5),   // ㄹ → r
        16 => Some(6),  // ㅁ → m
        17 => Some(7),  // ㅂ → b
        19 => Some(9),  // ㅅ → s
        20 => Some(10), // ㅆ → ss
        22 => Some(12), // ㅈ → j
        23 => Some(14), // ㅊ → ch
        24 => Some(15), // ㅋ → k
        25 => Some(16), // ㅌ → t
        26 => Some(17), // ㅍ → p
        27 => Some(18), // ㅎ → h
        _ => None,
    }
}

/// True when the syllable's onset is empty (ㅇ).
fn starts_with_vowel(syllable: (usize, usize, usize)) -> bool {
    syllable.0 == 11
}

/// Romanizes a run of Hangul syllables with the place-name sound rules:
///
/// * liaison: a final consonant moves onto a following empty onset
///   (연안 → yeonan, not yeonkan);
/// * ㄹ-nasalization: onset ㄹ after a final ㄴ/ㅁ/ㅇ is read ㄴ
///   (종로 → Jongno, 강릉 → Gangneung);
/// * ㄴ+ㄹ and ㄹ+ㄴ assimilate to ll (신림 → Sillim).
///
/// Non-Hangul characters pass through unchanged (lowercased ASCII).
pub fn romanize(text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    let syllables: Vec<Option<(usize, usize, usize)>> =
        chars.iter().map(|&c| decompose(c)).collect();
    let mut out = String::with_capacity(text.len() * 2);
    // The coda *as actually emitted* for the previous syllable — sound
    // rules chain (신라: the ㄴ coda surfaces as "l", and the following ㄹ
    // onset must then geminate against that "l", not the original "n").
    let mut prev_coda: &str = "";

    for i in 0..chars.len() {
        let Some((ini, med, fin)) = syllables[i] else {
            out.extend(chars[i].to_lowercase());
            prev_coda = "";
            continue;
        };
        let next = syllables.get(i + 1).copied().flatten();

        // Onset, adjusted by the previous effective coda.
        let mut onset = INITIALS[ini];
        if ini == 5 {
            // ㄹ onset: nasalizes after nasal/stop codas (종로 → Jongno),
            // geminates after ㄹ (울릉 → Ulleung).
            match prev_coda {
                "n" | "m" | "ng" | "k" | "p" | "t" => onset = "n",
                "l" => onset = "l",
                _ => {}
            }
        } else if ini == 2 && prev_coda == "l" {
            // ㄴ onset after ㄹ coda assimilates (실내 → sillae).
            onset = "l";
        }

        // Coda, adjusted by the next syllable.
        let mut carried: Option<usize> = None;
        let mut coda = FINALS[fin];
        if let Some(nxt) = next {
            if starts_with_vowel(nxt) {
                if let Some(c) = liaison_initial(fin) {
                    carried = Some(c);
                    coda = "";
                }
            } else if fin == 4 && nxt.0 == 5 {
                // ㄴ + ㄹ → l·l (신라 → Silla).
                coda = "l";
            }
        }

        out.push_str(onset);
        out.push_str(MEDIALS[med]);
        out.push_str(coda);
        if let Some(c) = carried {
            // The carried consonant becomes the next syllable's (empty)
            // onset; emitting it here keeps the string contiguous.
            out.push_str(INITIALS[c]);
            prev_coda = "";
        } else {
            prev_coda = coda;
        }
    }
    out
}

/// Romanizes and title-cases a place-name stem ("양천" → "Yangcheon").
pub fn romanize_name(text: &str) -> String {
    let r = romanize(text);
    let mut chars = r.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_syllables() {
        assert_eq!(romanize("가"), "ga");
        assert_eq!(romanize("한"), "han");
        assert_eq!(romanize("서울"), "seoul");
        assert_eq!(romanize("부산"), "busan");
    }

    #[test]
    fn district_names() {
        assert_eq!(romanize("양천"), "yangcheon");
        assert_eq!(romanize("강남"), "gangnam");
        assert_eq!(romanize("마포"), "mapo");
        assert_eq!(romanize("해운대"), "haeundae");
        assert_eq!(romanize("수원"), "suwon");
        assert_eq!(romanize("의왕"), "uiwang");
    }

    #[test]
    fn nasalization_of_rieul() {
        assert_eq!(romanize("종로"), "jongno");
        assert_eq!(romanize("강릉"), "gangneung");
    }

    #[test]
    fn liaison_into_vowel() {
        assert_eq!(romanize("연안"), "yeonan");
        assert_eq!(romanize("일원"), "irwon");
    }

    #[test]
    fn nl_assimilation() {
        assert_eq!(romanize("신라"), "silla");
        assert_eq!(romanize("신림"), "sillim");
    }

    #[test]
    fn mixed_text_passes_through() {
        assert_eq!(romanize("서울 Apt 3동"), "seoul apt 3dong");
        assert_eq!(romanize(""), "");
        assert_eq!(romanize("hello"), "hello");
    }

    #[test]
    fn romanize_name_title_cases() {
        assert_eq!(romanize_name("양천"), "Yangcheon");
        assert_eq!(romanize_name("부천"), "Bucheon");
    }

    /// The self-validation test: romanize every district stem in the
    /// gazetteer and compare with its published romanized stem. The rules
    /// implemented above reproduce **all 229** official romanizations.
    #[test]
    fn gazetteer_stems_romanize_exactly() {
        let gazetteer = stir_geokr::Gazetteer::load();
        let mut mismatches = Vec::new();
        for d in gazetteer.districts() {
            let ko_stem: String = {
                let mut cs: Vec<char> = d.name_ko.chars().collect();
                cs.pop(); // drop the 시/군/구 suffix character
                cs.into_iter().collect()
            };
            let got = romanize(&ko_stem);
            let want = d.stem_en().to_ascii_lowercase();
            if got != want {
                mismatches.push(format!("{} ({ko_stem}): got {got}, want {want}", d.name_en));
            }
        }
        assert!(
            mismatches.is_empty(),
            "{} mismatches:\n{}",
            mismatches.len(),
            mismatches.join("\n")
        );
    }
}
