//! Damerau–Levenshtein (optimal string alignment) edit distance with an
//! early-exit bound, used for typo-tolerant district-name matching.

/// Optimal-string-alignment distance between `a` and `b`, or `None` if it
/// exceeds `max`. Operates on Unicode scalar values.
pub fn bounded_damerau_levenshtein(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > max {
        return None;
    }
    if n == 0 {
        return (m <= max).then_some(m);
    }
    if m == 0 {
        return (n <= max).then_some(n);
    }

    // Three rolling rows for the transposition term.
    let mut prev2: Vec<usize> = vec![usize::MAX; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur: Vec<usize> = vec![0; m + 1];

    for i in 1..=n {
        cur[0] = i;
        let mut row_min = cur[0];
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(prev2[j - 2] + 1);
            }
            cur[j] = d;
            row_min = row_min.min(d);
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    (d <= max).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_are_zero() {
        assert_eq!(bounded_damerau_levenshtein("seoul", "seoul", 2), Some(0));
        assert_eq!(bounded_damerau_levenshtein("", "", 0), Some(0));
    }

    #[test]
    fn substitutions_insertions_deletions() {
        assert_eq!(bounded_damerau_levenshtein("seoul", "seoal", 2), Some(1));
        assert_eq!(bounded_damerau_levenshtein("seoul", "seouul", 2), Some(1));
        assert_eq!(bounded_damerau_levenshtein("seoul", "seol", 2), Some(1));
    }

    #[test]
    fn transposition_counts_once() {
        assert_eq!(
            bounded_damerau_levenshtein("gangnam", "gagnnam", 2),
            Some(1)
        );
        assert_eq!(bounded_damerau_levenshtein("ab", "ba", 1), Some(1));
    }

    #[test]
    fn exceeding_bound_returns_none() {
        assert_eq!(bounded_damerau_levenshtein("seoul", "busan", 2), None);
        assert_eq!(bounded_damerau_levenshtein("a", "abcdef", 2), None);
    }

    #[test]
    fn paper_romanization_variants_are_close() {
        // "yangchun" (paper's spelling) vs "yangcheon" (canonical): insert
        // 'e' + substitute 'u'→'o'. Distance 2 — which is why the matcher
        // keeps this variant in its alias table rather than relying on the
        // distance-1 fuzzy pass.
        assert_eq!(
            bounded_damerau_levenshtein("yangchun", "yangcheon", 2),
            Some(2)
        );
        assert_eq!(
            bounded_damerau_levenshtein("kangnam", "gangnam", 2),
            Some(1)
        );
    }

    #[test]
    fn unicode_safe() {
        assert_eq!(bounded_damerau_levenshtein("양천구", "양천구", 1), Some(0));
        assert_eq!(bounded_damerau_levenshtein("양천구", "양전구", 1), Some(1));
    }
}
