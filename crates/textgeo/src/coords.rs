//! Parsing GPS coordinates embedded in free text.
//!
//! Some users put exact coordinates in their profile ("some provided the
//! exact addresses or the GPS coordinates", §III-A), and 2011-era clients
//! appended "ÜT: lat,lon" markers to tweets. We accept any two decimal
//! numbers in plausible latitude/longitude ranges separated by a comma
//! and/or whitespace.

use stir_geoindex::Point;

/// Extracts the first plausible `lat, lon` pair from the text, if any.
///
/// Accepted shapes (after [`crate::normalize::normalize`] or raw):
/// `"37.51, 126.94"`, `"ut 37.48,126.89"`, `"(35.1 , 129.0)"`,
/// `"-33.86, 151.20"`. The pair must parse as finite numbers with
/// `|lat| ≤ 90` and `|lon| ≤ 180`, and at least one of the two must carry a
/// fractional part — bare integer pairs like "24 7" are almost never
/// coordinates in profile text.
pub fn parse_coordinates(text: &str) -> Option<Point> {
    let numbers = extract_numbers(text);
    for w in numbers.windows(2) {
        let ((lat, lat_frac), (lon, lon_frac)) = (w[0], w[1]);
        if lat.abs() <= 90.0 && lon.abs() <= 180.0 && (lat_frac || lon_frac) {
            return Some(Point::new(lat, lon));
        }
    }
    None
}

/// Pulls out every decimal number in order, flagging whether it had a
/// fractional part.
fn extract_numbers(text: &str) -> Vec<(f64, bool)> {
    let mut out = Vec::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let starts_number = c.is_ascii_digit()
            || (c == '-' && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit()));
        if !starts_number {
            i += 1;
            continue;
        }
        let start = i;
        if c == '-' {
            i += 1;
        }
        let mut saw_dot = false;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || (bytes[i] == '.' && !saw_dot)) {
            if bytes[i] == '.' {
                // Only a dot followed by a digit belongs to the number.
                if !bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                    break;
                }
                saw_dot = true;
            }
            i += 1;
        }
        let s: String = bytes[start..i].iter().collect();
        if let Ok(v) = s.parse::<f64>() {
            if v.is_finite() {
                out.push((v, saw_dot));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_pair() {
        let p = parse_coordinates("37.51, 126.94").unwrap();
        assert!((p.lat - 37.51).abs() < 1e-9);
        assert!((p.lon - 126.94).abs() < 1e-9);
    }

    #[test]
    fn ut_prefix_and_noise() {
        let p = parse_coordinates("iphone: ut: 37.480,126.890 !!").unwrap();
        assert!((p.lat - 37.48).abs() < 1e-9);
    }

    #[test]
    fn negative_coordinates() {
        let p = parse_coordinates("-33.86, 151.20").unwrap();
        assert!(p.lat < 0.0 && p.lon > 0.0);
    }

    #[test]
    fn rejects_out_of_range_pairs() {
        assert!(parse_coordinates("126.94, 37.51").is_none()); // lon first, lat out of range as lat
        assert!(parse_coordinates("999.0, 10.0").is_none());
    }

    #[test]
    fn accepts_lonlat_like_second_window() {
        // Three numbers: (200, 37.5) invalid, (37.5, 126.9) valid.
        let p = parse_coordinates("200 37.5 126.9").unwrap();
        assert!((p.lat - 37.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_integer_only_pairs_and_prose() {
        assert!(parse_coordinates("24 7 coffee shop").is_none());
        assert!(parse_coordinates("seoul, korea").is_none());
        assert!(parse_coordinates("").is_none());
        assert!(parse_coordinates("since 2009").is_none());
    }

    #[test]
    fn trailing_dot_is_not_fraction() {
        assert!(parse_coordinates("37. 126.").is_none());
        assert!(parse_coordinates("37.0 126.").is_some());
    }
}
