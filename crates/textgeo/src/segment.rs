//! Splitting a normalized profile string into location segments.
//!
//! Two different separator roles appear in real profiles:
//!
//! * **Alternatives** — "Gold Coast Australia / 서울…" lists two distinct
//!   locations (the paper's Fig. 3 ambiguous example). Split on `/`,
//!   `" and "`, `" or "`, `&`.
//! * **Hierarchy** — "Bucheon, Gyeonggi-do, Korea" refines one location.
//!   Commas and whitespace stay inside one segment.

/// One candidate location (already normalized text).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// The segment's text with commas removed and whitespace re-collapsed.
    pub text: String,
}

/// Splits normalized text into alternative-location segments.
pub fn split_alternatives(normalized: &str) -> Vec<Segment> {
    let mut parts: Vec<String> = vec![String::new()];
    let toks: Vec<&str> = normalized.split(' ').filter(|t| !t.is_empty()).collect();
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        let is_sep = t == "/" || t == "&" || t == "and" || t == "or";
        if is_sep && !parts.last().unwrap().is_empty() && i + 1 < toks.len() {
            parts.push(String::new());
        } else if t.contains('/') {
            // Unspaced alternatives: "seoul/busan", possibly with several
            // separators and leading/trailing slashes.
            for (j, piece) in t.split('/').enumerate() {
                if j > 0 && !parts.last().unwrap().is_empty() {
                    parts.push(String::new());
                }
                if !piece.is_empty() {
                    push_token(parts.last_mut().unwrap(), piece);
                }
            }
        } else if !is_sep {
            push_token(parts.last_mut().unwrap(), t);
        }
        i += 1;
    }
    parts
        .into_iter()
        .map(|p| Segment {
            text: strip_commas(&p),
        })
        .filter(|s| !s.text.is_empty())
        .collect()
}

fn push_token(buf: &mut String, tok: &str) {
    if !buf.is_empty() {
        buf.push(' ');
    }
    buf.push_str(tok);
}

fn strip_commas(s: &str) -> String {
    s.split([',', ' '])
        .filter(|t| !t.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(input: &str) -> Vec<String> {
        split_alternatives(input)
            .into_iter()
            .map(|s| s.text)
            .collect()
    }

    #[test]
    fn single_location_is_one_segment() {
        assert_eq!(texts("seoul yangcheon-gu"), vec!["seoul yangcheon-gu"]);
    }

    #[test]
    fn commas_are_hierarchy_not_alternatives() {
        assert_eq!(
            texts("bucheon , gyeonggi-do , korea"),
            vec!["bucheon gyeonggi-do korea"]
        );
    }

    #[test]
    fn slash_splits_alternatives() {
        assert_eq!(
            texts("gold coast australia / 서울 양천구"),
            vec!["gold coast australia", "서울 양천구"]
        );
    }

    #[test]
    fn unspaced_slash_splits() {
        assert_eq!(texts("seoul/busan"), vec!["seoul", "busan"]);
    }

    #[test]
    fn and_or_split() {
        assert_eq!(texts("seoul and busan"), vec!["seoul", "busan"]);
        assert_eq!(texts("seoul or tokyo"), vec!["seoul", "tokyo"]);
        assert_eq!(texts("seoul & busan"), vec!["seoul", "busan"]);
    }

    #[test]
    fn leading_trailing_separators_ignored() {
        assert_eq!(texts("/ seoul /"), vec!["seoul"]);
        assert!(texts("/").is_empty());
        assert!(texts("").is_empty());
    }

    #[test]
    fn and_inside_name_start_not_split() {
        // "and" as the first token can't be an alternative separator.
        assert_eq!(texts("and seoul"), vec!["seoul"]);
    }
}
