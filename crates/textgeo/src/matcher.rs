//! Resolving a single location segment against the gazetteer.
//!
//! Tries, in order of trust: exact romanized/Korean names (with aliases),
//! stem forms without the si/gun/gu suffix, suffix re-joining
//! ("yangcheon gu" → "yangcheon-gu"), and finally typo-tolerant fuzzy
//! matching. Also recognizes the coarser levels the paper calls
//! *insufficient*: province-only, country-only and planet-only text.

use std::collections::HashMap;

use stir_geokr::{DistrictId, ForwardGeocoder, ForwardResult, Gazetteer, Province};

use crate::edit::bounded_damerau_levenshtein;
use crate::hangul::romanize;
use crate::normalize::{join_suffix, tokens};

/// What a segment resolved to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchOutcome {
    /// A unique second-level district — the paper's "well defined" grain.
    District(DistrictId),
    /// A valid district name shared by several districts, with no province
    /// to disambiguate ("Jung-gu"), or several distinct districts in one
    /// segment.
    AmbiguousDistrict(Vec<DistrictId>),
    /// Only a first-level division ("Seoul" — the paper's *insufficient*
    /// example).
    ProvinceOnly(Province),
    /// Only a country reference ("Korea").
    Country,
    /// Only a planet-scale reference ("Earth").
    Planet,
    /// Nothing geographic recognized.
    NoMatch,
}

const COUNTRY_WORDS: &[&str] = &["korea", "대한민국", "한국", "southkorea"];
const PLANET_WORDS: &[&str] = &["earth", "world", "지구", "everywhere", "universe", "우주"];

/// Segment resolver over a gazetteer. Build once, reuse for every profile.
pub struct DistrictMatcher<'g> {
    forward: ForwardGeocoder<'g>,
    /// romanized stem (no suffix) → district ids
    stems: HashMap<String, Vec<DistrictId>>,
    /// Korean stem (no suffix char) → district ids
    ko_stems: HashMap<String, Vec<DistrictId>>,
    /// every romanized full name, for fuzzy matching
    fuzzy_pool: Vec<(String, DistrictId)>,
}

impl<'g> DistrictMatcher<'g> {
    /// Builds the matcher's lookup tables from the gazetteer.
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        let forward = ForwardGeocoder::new(gazetteer);
        let mut stems: HashMap<String, Vec<DistrictId>> = HashMap::new();
        let mut ko_stems: HashMap<String, Vec<DistrictId>> = HashMap::new();
        let mut fuzzy_pool = Vec::with_capacity(gazetteer.len());
        for d in gazetteer.districts() {
            stems
                .entry(d.stem_en().to_ascii_lowercase())
                .or_default()
                .push(d.id);
            let ko = d.name_ko;
            if let Some(stripped) = ko.strip_suffix(d.kind.suffix_ko()) {
                if !stripped.is_empty() {
                    ko_stems.entry(stripped.to_string()).or_default().push(d.id);
                }
            }
            fuzzy_pool.push((d.name_en.to_ascii_lowercase(), d.id));
        }
        DistrictMatcher {
            forward,
            stems,
            ko_stems,
            fuzzy_pool,
        }
    }

    /// The wrapped forward geocoder.
    pub fn forward(&self) -> &ForwardGeocoder<'g> {
        &self.forward
    }

    /// Finds the province mentioned anywhere in the token list, if any.
    fn find_province(&self, toks: &[&str]) -> Option<Province> {
        for (i, t) in toks.iter().enumerate() {
            if let Some(p) = self.forward.resolve_province(t) {
                return Some(p);
            }
            // "south korea" never names a province, but "gyeonggi do" does.
            if let Some(next) = toks.get(i + 1) {
                if let Some(joined) = join_suffix(t, next) {
                    if let Some(p) = self.forward.resolve_province(&joined) {
                        return Some(p);
                    }
                }
            }
            // Korean province stem with suffix variations: "서울시" → "서울".
            if t.chars().count() >= 2 && !t.is_ascii() {
                let without_last: String = {
                    let mut cs: Vec<char> = t.chars().collect();
                    cs.pop();
                    cs.into_iter().collect()
                };
                if let Some(p) = self.forward.resolve_province(&without_last) {
                    return Some(p);
                }
            }
        }
        None
    }

    fn district_candidates(&self, toks: &[&str], scope: Option<Province>) -> Vec<DistrictId> {
        let mut found: Vec<DistrictId> = Vec::new();
        let push_result = |r: ForwardResult, found: &mut Vec<DistrictId>| match r {
            ForwardResult::Unique(id) => {
                if !found.contains(&id) {
                    found.push(id);
                }
            }
            ForwardResult::Ambiguous(ids) => {
                for id in ids {
                    if !found.contains(&id) {
                        found.push(id);
                    }
                }
            }
            ForwardResult::NotFound => {}
        };

        let mut i = 0;
        while i < toks.len() {
            let t = toks[i];
            // Skip tokens that are province or country/planet words.
            if self.forward.resolve_province(t).is_some()
                || COUNTRY_WORDS.contains(&t)
                || PLANET_WORDS.contains(&t)
                || t == "south"
            {
                i += 1;
                continue;
            }
            // Exact / alias / Korean full names.
            let direct = self.forward.resolve_district(t, scope);
            if direct != ForwardResult::NotFound {
                push_result(direct, &mut found);
                i += 1;
                continue;
            }
            // Suffix re-joining: "yangcheon gu".
            if let Some(next) = toks.get(i + 1) {
                if let Some(joined) = join_suffix(t, next) {
                    let r = self.forward.resolve_district(&joined, scope);
                    if r != ForwardResult::NotFound {
                        push_result(r, &mut found);
                        i += 2;
                        continue;
                    }
                }
            }
            // Stem forms.
            if let Some(ids) = self.stems.get(t) {
                let scoped = self.scope_filter(ids, scope);
                if !scoped.is_empty() {
                    for id in scoped {
                        if !found.contains(&id) {
                            found.push(id);
                        }
                    }
                    i += 1;
                    continue;
                }
            }
            if let Some(ids) = self.ko_stems.get(t) {
                let scoped = self.scope_filter(ids, scope);
                for id in scoped {
                    if !found.contains(&id) {
                        found.push(id);
                    }
                }
                i += 1;
                continue;
            }
            // Unrecognized Korean token: romanize it (Revised Romanization,
            // see `hangul`) and retry the romanized paths — this resolves
            // spellings the ko tables never indexed, e.g. a district name
            // written with an attached particle or unusual suffix.
            if !t.is_ascii() {
                let roman = romanize(t);
                let r = self.forward.resolve_district(&roman, scope);
                if r != ForwardResult::NotFound {
                    push_result(r, &mut found);
                    i += 1;
                    continue;
                }
                if let Some(ids) = self.stems.get(roman.as_str()) {
                    let scoped = self.scope_filter(ids, scope);
                    if !scoped.is_empty() {
                        for id in scoped {
                            if !found.contains(&id) {
                                found.push(id);
                            }
                        }
                        i += 1;
                        continue;
                    }
                }
                // Particle-bearing Korean forms: "양천구에서" → strip
                // trailing syllables and retry full names and stems.
                let mut cs: Vec<char> = t.chars().collect();
                while cs.len() > 1 {
                    cs.pop();
                    let stem: String = cs.iter().collect();
                    let r = self.forward.resolve_district(&stem, scope);
                    if r != ForwardResult::NotFound {
                        push_result(r, &mut found);
                        break;
                    }
                    if let Some(ids) = self.ko_stems.get(stem.as_str()) {
                        let scoped = self.scope_filter(ids, scope);
                        if !scoped.is_empty() {
                            for id in scoped {
                                if !found.contains(&id) {
                                    found.push(id);
                                }
                            }
                            break;
                        }
                    }
                }
            }
            // Fuzzy: only for reasonably long ASCII tokens carrying a suffix
            // shape, to keep false positives down.
            if t.len() >= 6 && t.is_ascii() {
                let mut hits: Vec<DistrictId> = Vec::new();
                for (name, id) in &self.fuzzy_pool {
                    if bounded_damerau_levenshtein(t, name, 1).is_some() {
                        hits.push(*id);
                    }
                }
                let scoped = self.scope_filter(&hits, scope);
                for id in scoped {
                    if !found.contains(&id) {
                        found.push(id);
                    }
                }
            }
            i += 1;
        }
        found
    }

    fn scope_filter(&self, ids: &[DistrictId], scope: Option<Province>) -> Vec<DistrictId> {
        match scope {
            None => ids.to_vec(),
            Some(p) => ids
                .iter()
                .copied()
                .filter(|&id| self.forward.gazetteer().district(id).province == p)
                .collect(),
        }
    }

    /// Resolves one normalized segment.
    pub fn match_segment(&self, segment_text: &str) -> MatchOutcome {
        let toks = tokens(segment_text);
        if toks.is_empty() {
            return MatchOutcome::NoMatch;
        }
        let province = self.find_province(&toks);
        let districts = self.district_candidates(&toks, province);
        match districts.len() {
            1 => return MatchOutcome::District(districts[0]),
            n if n > 1 => return MatchOutcome::AmbiguousDistrict(districts),
            _ => {}
        }
        if let Some(p) = province {
            return MatchOutcome::ProvinceOnly(p);
        }
        let mut saw_country = false;
        let mut saw_planet = false;
        for (i, t) in toks.iter().enumerate() {
            if COUNTRY_WORDS.contains(t) || (*t == "korea" && i > 0 && toks[i - 1] == "south") {
                saw_country = true;
            }
            if PLANET_WORDS.contains(t) {
                saw_planet = true;
            }
        }
        if saw_country {
            MatchOutcome::Country
        } else if saw_planet {
            MatchOutcome::Planet
        } else {
            MatchOutcome::NoMatch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (&'static Gazetteer, DistrictMatcher<'static>) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let m = DistrictMatcher::new(g);
        (g, m)
    }

    fn expect_district(m: &DistrictMatcher<'_>, g: &Gazetteer, text: &str, name: &str) {
        match m.match_segment(text) {
            MatchOutcome::District(id) => assert_eq!(g.district(id).name_en, name, "for {text:?}"),
            other => panic!("{text:?} → {other:?}, expected {name}"),
        }
    }

    #[test]
    fn full_form_resolves() {
        let (g, m) = setup();
        expect_district(&m, g, "seoul yangcheon-gu", "Yangcheon-gu");
        expect_district(&m, g, "gyeonggi-do uiwang-si", "Uiwang-si");
    }

    #[test]
    fn district_only_unique_resolves() {
        let (g, m) = setup();
        expect_district(&m, g, "yangcheon-gu", "Yangcheon-gu");
        expect_district(&m, g, "bucheon", "Bucheon-si");
    }

    #[test]
    fn split_suffix_resolves() {
        let (g, m) = setup();
        expect_district(&m, g, "seoul yangcheon gu", "Yangcheon-gu");
    }

    #[test]
    fn korean_forms_resolve() {
        let (g, m) = setup();
        expect_district(&m, g, "서울 양천구", "Yangcheon-gu");
        expect_district(&m, g, "경기도 의왕시", "Uiwang-si");
        // Korean stem without suffix.
        expect_district(&m, g, "서울 양천", "Yangcheon-gu");
    }

    #[test]
    fn province_scopes_shared_names() {
        let (g, m) = setup();
        match m.match_segment("jung-gu") {
            MatchOutcome::AmbiguousDistrict(ids) => assert_eq!(ids.len(), 6),
            other => panic!("unexpected {other:?}"),
        }
        expect_district(&m, g, "busan jung-gu", "Jung-gu");
        match m.match_segment("busan jung-gu") {
            MatchOutcome::District(id) => assert_eq!(g.district(id).province, Province::Busan),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn province_only_and_coarser() {
        let (_, m) = setup();
        assert_eq!(
            m.match_segment("seoul"),
            MatchOutcome::ProvinceOnly(Province::Seoul)
        );
        assert_eq!(m.match_segment("korea"), MatchOutcome::Country);
        assert_eq!(m.match_segment("south korea"), MatchOutcome::Country);
        assert_eq!(m.match_segment("earth"), MatchOutcome::Planet);
        assert_eq!(m.match_segment("대한민국"), MatchOutcome::Country);
    }

    #[test]
    fn seoul_korea_is_still_province_only() {
        let (_, m) = setup();
        assert_eq!(
            m.match_segment("seoul korea"),
            MatchOutcome::ProvinceOnly(Province::Seoul)
        );
    }

    #[test]
    fn fuzzy_matches_typos() {
        let (g, m) = setup();
        expect_district(&m, g, "seoul gangnm-gu", "Gangnam-gu");
        expect_district(&m, g, "seoul yangchun-gu", "Yangcheon-gu"); // paper's own spelling
    }

    #[test]
    fn nonsense_is_no_match() {
        let (_, m) = setup();
        assert_eq!(m.match_segment("darangland"), MatchOutcome::NoMatch);
        assert_eq!(m.match_segment("my home"), MatchOutcome::NoMatch);
        assert_eq!(m.match_segment(""), MatchOutcome::NoMatch);
    }

    #[test]
    fn two_districts_in_one_segment_are_ambiguous() {
        let (_, m) = setup();
        match m.match_segment("gangnam-gu mapo-gu") {
            MatchOutcome::AmbiguousDistrict(ids) => assert_eq!(ids.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hierarchy_with_country_resolves_to_district() {
        let (g, m) = setup();
        expect_district(&m, g, "bucheon gyeonggi-do korea", "Bucheon-si");
    }

    #[test]
    fn bare_province_stem_resolves() {
        let (_, m) = setup();
        assert_eq!(
            m.match_segment("gangwon"),
            MatchOutcome::ProvinceOnly(Province::Gangwon)
        );
        assert_eq!(
            m.match_segment("jeju"),
            MatchOutcome::ProvinceOnly(Province::Jeju)
        );
    }

    #[test]
    fn korean_with_particles_resolves_via_stripping() {
        let (g, m) = setup();
        // "양천구에서" = "in Yangcheon-gu" — the attached particle 에서
        // defeats exact lookup; syllable stripping recovers the name.
        expect_district(&m, g, "서울 양천구에서", "Yangcheon-gu");
    }

    #[test]
    fn romanized_korean_token_resolves() {
        let (g, m) = setup();
        // A Korean spelling the ko tables do not index directly but whose
        // romanization hits the stem index: the full Korean name with the
        // province spelled in a mixed form.
        expect_district(&m, g, "seoul 양천", "Yangcheon-gu");
    }
}
