//! Place mentions in tweet text — the third spatial attribute.
//!
//! §III-A lists three sources: profile locations, GPS coordinates, and "the
//! places mentioned in tweet contents"; the paper analyzes the first two
//! and observes (Fig. 4) that mentioned places often coincide with the GPS
//! fix. This extractor makes the third attribute machine-readable so the
//! coincidence rate can actually be measured (experiment `fig4`).
//!
//! Extraction is deliberately precision-first: only unambiguous district
//! names count (exact romanized names with suffix, Korean names/stems, and
//! suffix-split pairs). A mention of "Jung-gu" with no province context is
//! skipped rather than guessed.

use stir_geokr::{DistrictId, Gazetteer};

use crate::matcher::DistrictMatcher;
use crate::normalize::{join_suffix, normalize, tokens};

/// A place mention found in tweet text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mention {
    /// The district mentioned.
    pub district: DistrictId,
    /// Index of the first token of the mention.
    pub token_index: usize,
}

/// Extracts unambiguous district mentions from raw tweet text.
pub struct MentionExtractor<'g> {
    matcher: DistrictMatcher<'g>,
}

impl<'g> MentionExtractor<'g> {
    /// Builds an extractor (reuses the matcher's lookup tables).
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        MentionExtractor {
            matcher: DistrictMatcher::new(gazetteer),
        }
    }

    /// Returns every unambiguous district mention, in token order,
    /// deduplicated by district.
    pub fn extract(&self, text: &str) -> Vec<Mention> {
        let normalized = normalize(text);
        let toks = tokens(&normalized);
        let mut out: Vec<Mention> = Vec::new();
        let forward = self.matcher.forward();
        let mut i = 0;
        while i < toks.len() {
            let t = toks[i];
            // Exact romanized-with-suffix or Korean name.
            if let Some(id) = forward.resolve_district(t, None).unique() {
                push_unique(&mut out, id, i);
                i += 1;
                continue;
            }
            // Split-suffix pairs: "yangcheon gu".
            if let Some(next) = toks.get(i + 1) {
                if let Some(joined) = join_suffix(t, next) {
                    if let Some(id) = forward.resolve_district(&joined, None).unique() {
                        push_unique(&mut out, id, i);
                        i += 2;
                        continue;
                    }
                }
            }
            // Korean stems ("양천") via the matcher's tables are handled by
            // resolve_district on the full name; stems alone are too
            // ambiguous against common nouns, so we stop here.
            i += 1;
        }
        out
    }

    /// Convenience: the distinct mentioned districts.
    pub fn districts(&self, text: &str) -> Vec<DistrictId> {
        self.extract(text).into_iter().map(|m| m.district).collect()
    }
}

fn push_unique(out: &mut Vec<Mention>, district: DistrictId, token_index: usize) {
    if !out.iter().any(|m| m.district == district) {
        out.push(Mention {
            district,
            token_index,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (&'static Gazetteer, MentionExtractor<'static>) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let e = MentionExtractor::new(g);
        (g, e)
    }

    #[test]
    fn extracts_unique_district_names() {
        let (g, e) = setup();
        let ms = e.extract("just arrived in Yangcheon-gu haha");
        assert_eq!(ms.len(), 1);
        assert_eq!(g.district(ms[0].district).name_en, "Yangcheon-gu");
    }

    #[test]
    fn skips_ambiguous_names() {
        let (_, e) = setup();
        // Six districts named Jung-gu: too ambiguous to count.
        assert!(e.extract("having lunch in Jung-gu").is_empty());
    }

    #[test]
    fn korean_names_extract() {
        let (g, e) = setup();
        let ms = e.extract("오늘 양천구 날씨 좋다");
        assert_eq!(ms.len(), 1);
        assert_eq!(g.district(ms[0].district).name_en, "Yangcheon-gu");
    }

    #[test]
    fn split_suffix_extracts() {
        let (g, e) = setup();
        let ms = e.extract("meeting friends in bucheon si today");
        assert_eq!(ms.len(), 1);
        assert_eq!(g.district(ms[0].district).name_en, "Bucheon-si");
    }

    #[test]
    fn multiple_mentions_deduplicated_in_order() {
        let (g, e) = setup();
        let ms = e.extract("Gangnam-gu to Mapo-gu and back to Gangnam-gu");
        assert_eq!(ms.len(), 2);
        assert_eq!(g.district(ms[0].district).name_en, "Gangnam-gu");
        assert_eq!(g.district(ms[1].district).name_en, "Mapo-gu");
        assert!(ms[0].token_index < ms[1].token_index);
    }

    #[test]
    fn plain_chatter_has_no_mentions() {
        let (_, e) = setup();
        assert!(e.extract("coffee time at work ㅋㅋ").is_empty());
        assert!(e.extract("").is_empty());
    }
}
