//! The overall profile-location verdict — the decision the paper's
//! refinement step makes for every crawled user (§III-B: "we had to remove
//! many users from our data collection because of the vague (e.g. my home)
//! and insufficient (e.g. Earth, Seoul, or Korea) information").

use stir_geoindex::Point;
use stir_geokr::{DistrictId, Gazetteer, Province};

use crate::coords::parse_coordinates;
use crate::matcher::{DistrictMatcher, MatchOutcome};
use crate::normalize::normalize;
use crate::segment::split_alternatives;

/// How far a piece of location text falls short of district grain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InsufficiencyLevel {
    /// Planet-scale text ("Earth").
    Planet,
    /// Country-scale text ("Korea").
    Country,
    /// Province-scale text ("Seoul") — valid, but the grouping method needs
    /// the county level.
    Province(Province),
}

/// The classification of a profile-location string.
#[derive(Clone, Debug, PartialEq)]
pub enum ProfileClass {
    /// Resolvable to exactly one second-level district — kept by the paper.
    WellDefined(DistrictId),
    /// The profile contains literal GPS coordinates; resolve them with the
    /// reverse geocoder.
    Coordinates(Point),
    /// Real geography, wrong grain ("Earth", "Korea", "Seoul") — removed.
    Insufficient(InsufficiencyLevel),
    /// No geography at all ("my home", "darangland :)") — removed.
    Vague,
    /// Several distinct locations or an unresolvable shared name — removed
    /// ("we do not know which the current location of the user is").
    Ambiguous(Vec<DistrictId>),
    /// Plausibly a location, but outside the Korean gazetteer.
    Foreign,
    /// Nothing there.
    Empty,
}

impl ProfileClass {
    /// True when the paper's pipeline keeps the user.
    pub fn is_well_defined(&self) -> bool {
        matches!(
            self,
            ProfileClass::WellDefined(_) | ProfileClass::Coordinates(_)
        )
    }
}

/// Words that signal an intentionally non-geographic profile.
const VAGUE_MARKERS: &[&str] = &[
    "home",
    "house",
    "heart",
    "bed",
    "sofa",
    "couch",
    "dream",
    "dreamland",
    "nowhere",
    "somewhere",
    "anywhere",
    "internet",
    "online",
    "web",
    "twitter",
    "cyberspace",
    "moon",
    "wonderland",
    "neverland",
    "집",
    "어딘가",
    "인터넷",
    "침대",
];

/// Foreign place markers — enough to recognize the Fig. 3 style entries
/// without attempting a world gazetteer.
const FOREIGN_MARKERS: &[&str] = &[
    "australia",
    "gold",
    "coast",
    "usa",
    "america",
    "york",
    "california",
    "tokyo",
    "japan",
    "osaka",
    "china",
    "beijing",
    "shanghai",
    "london",
    "uk",
    "england",
    "paris",
    "france",
    "germany",
    "berlin",
    "canada",
    "toronto",
    "singapore",
    "hongkong",
    "hong",
    "kong",
    "hawaii",
    "texas",
    "sydney",
    "melbourne",
    "vancouver",
    "jakarta",
    "manila",
    "bangkok",
    "taipei",
    "도쿄",
    "뉴욕",
    "미국",
    "일본",
    "중국",
];

/// Classifies raw profile-location strings against a gazetteer.
///
/// ```
/// use stir_geokr::Gazetteer;
/// use stir_textgeo::{ProfileClass, ProfileClassifier};
///
/// let gazetteer = Gazetteer::load();
/// let classifier = ProfileClassifier::new(&gazetteer);
/// assert!(classifier.classify("Seoul Yangcheon-gu").is_well_defined());
/// assert_eq!(classifier.classify("my home"), ProfileClass::Vague);
/// assert!(!classifier.classify("Earth").is_well_defined());
/// ```
pub struct ProfileClassifier<'g> {
    matcher: DistrictMatcher<'g>,
}

impl<'g> ProfileClassifier<'g> {
    /// Builds a classifier (and its matcher tables) over the gazetteer.
    pub fn new(gazetteer: &'g Gazetteer) -> Self {
        ProfileClassifier {
            matcher: DistrictMatcher::new(gazetteer),
        }
    }

    /// Direct access to the segment matcher.
    pub fn matcher(&self) -> &DistrictMatcher<'g> {
        &self.matcher
    }

    /// Classifies one raw profile-location string.
    pub fn classify(&self, raw: &str) -> ProfileClass {
        let normalized = normalize(raw);
        if normalized.is_empty() {
            return ProfileClass::Empty;
        }
        if let Some(p) = parse_coordinates(&normalized) {
            return ProfileClass::Coordinates(p);
        }

        let segments = split_alternatives(&normalized);
        if segments.is_empty() {
            return ProfileClass::Empty;
        }

        let outcomes: Vec<MatchOutcome> = segments
            .iter()
            .map(|s| self.matcher.match_segment(&s.text))
            .collect();

        // Distinct district resolutions across segments.
        let mut districts: Vec<DistrictId> = Vec::new();
        for o in &outcomes {
            match o {
                MatchOutcome::District(id) if !districts.contains(id) => districts.push(*id),
                MatchOutcome::AmbiguousDistrict(ids) => {
                    for id in ids {
                        if !districts.contains(id) {
                            districts.push(*id);
                        }
                    }
                }
                _ => {}
            }
        }

        let foreign_segments = outcomes
            .iter()
            .zip(&segments)
            .filter(|(o, s)| **o == MatchOutcome::NoMatch && is_foreign(&s.text))
            .count();

        match districts.len() {
            1 => {
                // One Korean district plus a foreign alternative is the
                // paper's Fig. 3 two-locations case: ambiguous, removed.
                if foreign_segments > 0 {
                    return ProfileClass::Ambiguous(districts);
                }
                return ProfileClass::WellDefined(districts[0]);
            }
            n if n > 1 => return ProfileClass::Ambiguous(districts),
            _ => {}
        }

        // No district anywhere: take the best coarser outcome.
        let mut best: Option<InsufficiencyLevel> = None;
        for o in &outcomes {
            let level = match o {
                MatchOutcome::ProvinceOnly(p) => Some(InsufficiencyLevel::Province(*p)),
                MatchOutcome::Country => Some(InsufficiencyLevel::Country),
                MatchOutcome::Planet => Some(InsufficiencyLevel::Planet),
                _ => None,
            };
            best = match (best, level) {
                (None, l) => l,
                (Some(b), None) => Some(b),
                (Some(b), Some(l)) => Some(finer(b, l)),
            };
        }
        if let Some(level) = best {
            return ProfileClass::Insufficient(level);
        }
        if foreign_segments > 0 {
            return ProfileClass::Foreign;
        }
        ProfileClass::Vague
    }
}

fn finer(a: InsufficiencyLevel, b: InsufficiencyLevel) -> InsufficiencyLevel {
    fn rank(l: InsufficiencyLevel) -> u8 {
        match l {
            InsufficiencyLevel::Province(_) => 2,
            InsufficiencyLevel::Country => 1,
            InsufficiencyLevel::Planet => 0,
        }
    }
    if rank(a) >= rank(b) {
        a
    } else {
        b
    }
}

fn is_foreign(segment_text: &str) -> bool {
    segment_text
        .split(' ')
        .any(|t| FOREIGN_MARKERS.contains(&t))
}

/// True when the normalized text contains an explicit vagueness marker
/// ("my home", "somewhere on earth"). Exposed for the generator's noise
/// model tests.
pub fn has_vague_marker(normalized: &str) -> bool {
    normalized.split(' ').any(|t| VAGUE_MARKERS.contains(&t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (&'static Gazetteer, ProfileClassifier<'static>) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let c = ProfileClassifier::new(g);
        (g, c)
    }

    #[test]
    fn well_defined_forms() {
        let (g, c) = setup();
        for text in [
            "Seoul Yangcheon-gu",
            "seoul, yangcheon-gu",
            "양천구",
            "서울시 양천구",
            "Yangchun-gu, Seoul", // paper's romanization
        ] {
            match c.classify(text) {
                ProfileClass::WellDefined(id) => {
                    assert_eq!(g.district(id).name_en, "Yangcheon-gu", "for {text:?}")
                }
                other => panic!("{text:?} → {other:?}"),
            }
        }
    }

    #[test]
    fn paper_insufficient_examples() {
        let (_, c) = setup();
        assert_eq!(
            c.classify("Seoul"),
            ProfileClass::Insufficient(InsufficiencyLevel::Province(Province::Seoul))
        );
        assert_eq!(
            c.classify("Korea"),
            ProfileClass::Insufficient(InsufficiencyLevel::Country)
        );
        assert_eq!(
            c.classify("Earth"),
            ProfileClass::Insufficient(InsufficiencyLevel::Planet)
        );
    }

    #[test]
    fn paper_vague_examples() {
        let (_, c) = setup();
        assert_eq!(c.classify("my home"), ProfileClass::Vague);
        assert_eq!(c.classify("darangland :)"), ProfileClass::Vague);
        assert_eq!(c.classify(""), ProfileClass::Empty);
        assert_eq!(c.classify("   "), ProfileClass::Empty);
    }

    #[test]
    fn paper_two_location_example_is_ambiguous() {
        let (_, c) = setup();
        // Fig. 3: "Gold Coast Australia / <Seoul district in Korean>".
        match c.classify("Gold Coast Australia / 서울 양천구") {
            ProfileClass::Ambiguous(ids) => assert_eq!(ids.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_korean_districts_are_ambiguous() {
        let (_, c) = setup();
        match c.classify("Gangnam-gu / Mapo-gu") {
            ProfileClass::Ambiguous(ids) => assert_eq!(ids.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shared_name_without_province_is_ambiguous() {
        let (_, c) = setup();
        match c.classify("Jung-gu") {
            ProfileClass::Ambiguous(ids) => assert_eq!(ids.len(), 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn coordinates_in_profile() {
        let (_, c) = setup();
        match c.classify("37.517, 127.047") {
            ProfileClass::Coordinates(p) => assert!((p.lat - 37.517).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.classify("ut: 37.517,127.047").is_well_defined());
    }

    #[test]
    fn foreign_only_profile() {
        let (_, c) = setup();
        assert_eq!(c.classify("Gold Coast Australia"), ProfileClass::Foreign);
        assert_eq!(c.classify("Tokyo, Japan"), ProfileClass::Foreign);
    }

    #[test]
    fn insufficiency_takes_finest_grain() {
        let (_, c) = setup();
        // "Seoul / Earth" → province beats planet.
        assert_eq!(
            c.classify("Seoul / Earth"),
            ProfileClass::Insufficient(InsufficiencyLevel::Province(Province::Seoul))
        );
    }

    #[test]
    fn vague_marker_lexicon() {
        assert!(has_vague_marker("my home"));
        assert!(has_vague_marker("침대 위"));
        assert!(!has_vague_marker("seoul gangnam-gu"));
    }

    #[test]
    fn is_well_defined_predicate() {
        let (_, c) = setup();
        assert!(c.classify("Bucheon-si").is_well_defined());
        assert!(!c.classify("Korea").is_well_defined());
        assert!(!c.classify("my home").is_well_defined());
    }
}
