//! Text cleanup for profile locations.
//!
//! Profile strings arrive with decorative punctuation, emoticons, mixed
//! scripts and inconsistent casing. Normalization keeps letters (any
//! script), digits, and the few separators later stages rely on (`-`, `,`,
//! `/`, `.` inside numbers), collapses whitespace and lowercases ASCII.

/// Lowercases ASCII, maps fancy separators to plain ones, strips emoticons
/// and decorative punctuation, and collapses whitespace runs.
pub fn normalize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let chars: Vec<char> = raw.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        let mapped: Option<char> = match c {
            // Unify separator variants.
            '|' | '·' | '•' | '‧' | '＼' | '\\' => Some('/'),
            '，' | '、' => Some(','),
            '—' | '–' | '―' | '−' => Some('-'),
            '　' => Some(' '),
            // Keep the structural separators.
            '/' | ',' | '-' => Some(c),
            // Keep a dot only between digits (decimal coordinates).
            '.' => {
                let prev_digit = i > 0 && chars[i - 1].is_ascii_digit();
                let next_digit = chars.get(i + 1).is_some_and(|n| n.is_ascii_digit());
                if prev_digit && next_digit {
                    Some('.')
                } else {
                    Some(' ')
                }
            }
            // Letters of any script and digits pass through.
            _ if c.is_alphanumeric() => Some(c.to_ascii_lowercase()),
            _ if c.is_whitespace() => Some(' '),
            // Emoticons, hearts, stars, brackets, colons … all dropped as
            // whitespace so ":)" never glues tokens together.
            _ => Some(' '),
        };
        if let Some(m) = mapped {
            out.push(m);
        }
    }
    // Collapse whitespace and trim, also around separators.
    let mut collapsed = String::with_capacity(out.len());
    let mut last_space = true;
    for c in out.chars() {
        if c == ' ' {
            if !last_space {
                collapsed.push(' ');
                last_space = true;
            }
        } else {
            collapsed.push(c);
            last_space = false;
        }
    }
    collapsed.trim().to_string()
}

/// Splits normalized text into whitespace tokens.
pub fn tokens(normalized: &str) -> Vec<&str> {
    normalized.split(' ').filter(|t| !t.is_empty()).collect()
}

/// Joins a hyphenless suffix token onto its stem: `["yangcheon", "gu"]` →
/// `"yangcheon-gu"`. Returns `None` when the pair is not a stem+suffix.
pub fn join_suffix(stem: &str, suffix: &str) -> Option<String> {
    match suffix {
        "gu" | "si" | "gun" | "do" => Some(format!("{stem}-{suffix}")),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_trims() {
        assert_eq!(normalize("  Seoul Yangcheon-GU  "), "seoul yangcheon-gu");
    }

    #[test]
    fn strips_emoticons_and_decoration() {
        assert_eq!(normalize("darangland :)"), "darangland");
        assert_eq!(normalize("~*~ Seoul ~*~"), "seoul");
        assert_eq!(normalize("Seoul!!!"), "seoul");
    }

    #[test]
    fn keeps_structural_separators() {
        assert_eq!(
            normalize("Gold Coast Australia / 서울"),
            "gold coast australia / 서울"
        );
        // Commas stay attached to their token; `segment::strip_commas`
        // separates them later.
        assert_eq!(normalize("Bucheon, Korea"), "bucheon, korea");
        assert_eq!(normalize("Yangcheon-gu"), "yangcheon-gu");
    }

    #[test]
    fn keeps_decimal_points_only_in_numbers() {
        assert_eq!(normalize("37.51, 126.94"), "37.51, 126.94");
        assert_eq!(normalize("seoul. korea."), "seoul korea");
    }

    #[test]
    fn maps_separator_variants() {
        assert_eq!(normalize("Seoul|Busan"), "seoul/busan");
        assert_eq!(normalize("서울 · 부산"), "서울 / 부산");
        assert_eq!(normalize("Seoul — Korea"), "seoul - korea");
    }

    #[test]
    fn korean_text_passes_through() {
        assert_eq!(normalize("서울시 양천구"), "서울시 양천구");
    }

    #[test]
    fn tokens_split_on_whitespace() {
        assert_eq!(tokens("seoul yangcheon-gu"), vec!["seoul", "yangcheon-gu"]);
        assert!(tokens("").is_empty());
    }

    #[test]
    fn suffix_joining() {
        assert_eq!(
            join_suffix("yangcheon", "gu").as_deref(),
            Some("yangcheon-gu")
        );
        assert_eq!(
            join_suffix("gyeonggi", "do").as_deref(),
            Some("gyeonggi-do")
        );
        assert_eq!(join_suffix("seoul", "city"), None);
    }
}
