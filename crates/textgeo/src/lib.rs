//! # stir-textgeo — free-text profile-location processing
//!
//! Twitter profile locations are free text, capped at 30 characters, written
//! in any language, and "not normalized or geocoded in any way" (paper
//! §III-A, Fig. 3). This crate turns that text into the paper's refinement
//! decision:
//!
//! * [`normalize`] — whitespace/punctuation/emoticon cleanup.
//! * [`segment`] — multi-location detection (the paper's Fig. 3 example:
//!   "Gold Coast Australia / 서울 행정구역명") and hierarchical splitting.
//! * [`coords`] — GPS coordinates embedded in profile text ("some provided
//!   the exact addresses or the GPS coordinates").
//! * [`edit`] — Damerau–Levenshtein distance for typo-tolerant matching.
//! * [`hangul`] — Revised Romanization of Korean, self-validated against
//!   the gazetteer's 229 published district romanizations.
//! * [`matcher`] — candidate resolution against the `stir-geokr` gazetteer:
//!   exact, alias, stem, Korean-script, romanized and fuzzy.
//! * [`mentions`] — the paper's *third* spatial attribute: district names
//!   mentioned inside tweet text (Fig. 4), extracted precision-first.
//! * [`classify`] — the overall verdict: well defined / vague / insufficient
//!   / ambiguous / foreign / coordinates, matching the paper's filtering
//!   vocabulary ("vague (e.g. my home) and insufficient (e.g. Earth, Seoul,
//!   or Korea) information").

#![warn(missing_docs)]

pub mod classify;
pub mod coords;
pub mod edit;
pub mod hangul;
pub mod matcher;
pub mod mentions;
pub mod normalize;
pub mod segment;

pub use classify::{InsufficiencyLevel, ProfileClass, ProfileClassifier};
pub use matcher::{DistrictMatcher, MatchOutcome};
pub use mentions::{Mention, MentionExtractor};
