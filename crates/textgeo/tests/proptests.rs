//! Property tests: the text machinery must be total (no panics on any
//! input), idempotent where claimed, and range-safe.

use proptest::prelude::*;
use stir_geokr::Gazetteer;
use stir_textgeo::coords::parse_coordinates;
use stir_textgeo::edit::bounded_damerau_levenshtein;
use stir_textgeo::hangul::romanize;
use stir_textgeo::normalize::normalize;
use stir_textgeo::segment::split_alternatives;
use stir_textgeo::ProfileClassifier;

fn gaz() -> &'static Gazetteer {
    use std::sync::OnceLock;
    static GAZ: OnceLock<Gazetteer> = OnceLock::new();
    GAZ.get_or_init(Gazetteer::load)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn normalize_is_idempotent(s in "\\PC{0,60}") {
        let once = normalize(&s);
        let twice = normalize(&once);
        prop_assert_eq!(&once, &twice, "input {:?}", s);
    }

    #[test]
    fn normalize_output_is_clean(s in "\\PC{0,60}") {
        let n = normalize(&s);
        prop_assert!(!n.starts_with(' ') && !n.ends_with(' '));
        prop_assert!(!n.contains("  "), "double space in {:?}", n);
        // ASCII letters are lowercased.
        prop_assert!(n.chars().all(|c| !c.is_ascii_uppercase()));
    }

    #[test]
    fn classifier_is_total(s in "\\PC{0,60}") {
        // Any unicode soup must classify without panicking.
        let _ = ProfileClassifier::new(gaz()).classify(&s);
    }

    #[test]
    fn classifier_total_on_korean_mixed(s in "[가-힣a-z0-9 ,/.-]{0,40}") {
        let _ = ProfileClassifier::new(gaz()).classify(&s);
    }

    #[test]
    fn coordinates_are_in_range(s in "\\PC{0,60}") {
        if let Some(p) = parse_coordinates(&s) {
            prop_assert!((-90.0..=90.0).contains(&p.lat));
            prop_assert!((-180.0..=180.0).contains(&p.lon));
        }
    }

    #[test]
    fn valid_pairs_always_parse(lat in -89.0f64..89.0, lon in -179.0f64..179.0) {
        let text = format!("{lat:.4}, {lon:.4}");
        let p = parse_coordinates(&text).expect("well-formed pair parses");
        prop_assert!((p.lat - lat).abs() < 1e-3);
        prop_assert!((p.lon - lon).abs() < 1e-3);
    }

    #[test]
    fn segments_partition_content(s in "[a-z가-힣 /,]{0,50}") {
        let normalized = normalize(&s);
        let segs = split_alternatives(&normalized);
        // No segment is empty, none contains a separator.
        for seg in &segs {
            prop_assert!(!seg.text.is_empty());
            prop_assert!(!seg.text.contains('/'));
            prop_assert!(!seg.text.contains(','));
        }
    }

    #[test]
    fn edit_distance_is_symmetric_metric(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let ab = bounded_damerau_levenshtein(&a, &b, 20);
        let ba = bounded_damerau_levenshtein(&b, &a, 20);
        prop_assert_eq!(ab, ba);
        let d = ab.unwrap();
        prop_assert_eq!(d == 0, a == b);
        prop_assert!(d <= a.len().max(b.len()));
    }

    #[test]
    fn edit_distance_bound_is_consistent(a in "[a-z]{0,12}", b in "[a-z]{0,12}", max in 0usize..6) {
        let bounded = bounded_damerau_levenshtein(&a, &b, max);
        let full = bounded_damerau_levenshtein(&a, &b, 64).unwrap();
        match bounded {
            Some(d) => prop_assert_eq!(d, full),
            None => prop_assert!(full > max, "full {} <= max {}", full, max),
        }
    }

    #[test]
    fn romanize_is_total_and_ascii_for_hangul(s in "[가-힣]{0,12}") {
        let r = romanize(&s);
        prop_assert!(r.is_ascii(), "non-ascii romanization {:?} for {:?}", r, s);
        if !s.is_empty() {
            prop_assert!(!r.is_empty());
        }
    }

    #[test]
    fn romanize_passthrough_for_ascii(s in "[a-z0-9 ]{0,20}") {
        prop_assert_eq!(romanize(&s), s);
    }
}
