//! Property tests on the generator: determinism, budget bounds, ground
//! truth / observable consistency over arbitrary seeds and sizes.

use proptest::prelude::*;
use stir_geokr::Gazetteer;
use stir_textgeo::ProfileClassifier;
use stir_twitter_sim::datasets::{Dataset, DatasetSpec};
use stir_twitter_sim::UserId;

fn gaz() -> &'static Gazetteer {
    use std::sync::OnceLock;
    static GAZ: OnceLock<Gazetteer> = OnceLock::new();
    GAZ.get_or_init(Gazetteer::load)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generation_deterministic_per_seed(seed in 0u64..1_000, n in 20usize..120) {
        let g = gaz();
        let spec = || DatasetSpec { n_users: n, ..DatasetSpec::korean_paper() };
        let a = Dataset::generate(spec(), g, seed);
        let b = Dataset::generate(spec(), g, seed);
        for (x, y) in a.users.iter().zip(&b.users) {
            prop_assert_eq!(&x.location_text, &y.location_text);
            prop_assert_eq!(x.tweet_budget, y.tweet_budget);
            prop_assert_eq!(x.gps_device, y.gps_device);
        }
        // Tweet streams identical too.
        let ta = a.user_tweets(g, UserId(0));
        let tb = b.user_tweets(g, UserId(0));
        prop_assert_eq!(ta.len(), tb.len());
        for (x, y) in ta.iter().zip(&tb) {
            prop_assert_eq!(x.timestamp, y.timestamp);
            prop_assert_eq!(&x.text, &y.text);
        }
    }

    #[test]
    fn budgets_within_spec_bounds(seed in 0u64..500, n in 20usize..100) {
        let g = gaz();
        let spec = DatasetSpec { n_users: n, ..DatasetSpec::korean_paper() };
        let cap = spec.tweets_cap;
        let d = Dataset::generate(spec, g, seed);
        for u in &d.users {
            prop_assert!(u.tweet_budget >= 1 && u.tweet_budget <= cap);
            prop_assert!((0.0..=1.0).contains(&u.gps_tag_rate));
        }
        prop_assert_eq!(d.len(), n);
    }

    #[test]
    fn well_defined_truth_profiles_classify_to_home(seed in 0u64..200) {
        // For users whose ground-truth style claims well-defined, the
        // classifier must resolve the text to the ground-truth home —
        // unless the name is genuinely ambiguous (shared county names),
        // which the classifier rightly rejects.
        let g = gaz();
        let d = Dataset::generate(DatasetSpec { n_users: 150, ..DatasetSpec::korean_paper() }, g, seed);
        let classifier = ProfileClassifier::new(g);
        for (u, t) in d.users.iter().zip(&d.truth) {
            if !t.style.is_well_defined() {
                continue;
            }
            use stir_textgeo::ProfileClass;
            match classifier.classify(&u.location_text) {
                ProfileClass::WellDefined(id) => prop_assert_eq!(
                    id,
                    t.profile_district,
                    "text {:?} resolved elsewhere",
                    u.location_text
                ),
                ProfileClass::Coordinates(p) => {
                    let resolved = g.resolve_point(p);
                    prop_assert!(resolved.is_some());
                }
                // Shared names ("Jung-gu") legitimately classify ambiguous
                // for district-only styles; typo style can degrade too.
                ProfileClass::Ambiguous(_) | ProfileClass::Insufficient(_) => {}
                other => prop_assert!(
                    false,
                    "style {:?} text {:?} → {:?}",
                    t.style,
                    u.location_text,
                    other
                ),
            }
        }
    }

    #[test]
    fn mobility_spots_cover_all_tweets(seed in 0u64..200) {
        let g = gaz();
        let d = Dataset::generate(DatasetSpec { n_users: 60, ..DatasetSpec::korean_paper() }, g, seed);
        for (u, t) in d.users.iter().zip(&d.truth) {
            let total: f64 = t.mobility.spots().iter().map(|s| s.1).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "weights sum {total}");
            if t.archetype.never_home() {
                prop_assert_eq!(t.mobility.weight_of(t.profile_district), 0.0);
            }
            prop_assert!(u.tweet_budget > 0);
        }
    }
}
