//! Tweet text generation.
//!
//! Produces short, cheap, deterministic text: everyday chatter from a small
//! vocabulary, optional mentions of the user's current district (the paper's
//! Fig. 4 observes tweets naming the place they were sent from), and event
//! terms injected by the event scenario machinery.

use rand::Rng;

const OPENERS: &[&str] = &[
    "just arrived",
    "having lunch",
    "on my way",
    "finally done",
    "so tired",
    "good morning",
    "late night",
    "weekend mood",
    "stuck in traffic",
    "coffee time",
    "studying hard",
    "watching the game",
    "rainy day",
    "sunny today",
    "meeting friends",
];

const TOPICS: &[&str] = &[
    "at work",
    "at school",
    "with friends",
    "at the cafe",
    "at the gym",
    "on the subway",
    "at home base",
    "by the river",
    "at the market",
    "near the station",
    "in the office",
    "at the library",
    "downtown",
    "at the park",
];

const TAILS: &[&str] = &[
    "haha",
    "ㅋㅋ",
    "so good",
    "again",
    "finally",
    "why though",
    "love it",
    "nope",
    "!!",
    "...",
    "good times",
    "recommend",
    "never again",
    "best day",
];

/// Composes one tweet's text. When `district_name` is given (the user is
/// GPS-tagging from a known district), the text sometimes names the place —
/// with probability `mention_prob`.
pub fn compose<R: Rng>(rng: &mut R, district_name: Option<&str>, mention_prob: f64) -> String {
    let opener = OPENERS[rng.gen_range(0..OPENERS.len())];
    let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
    let tail = TAILS[rng.gen_range(0..TAILS.len())];
    match district_name {
        Some(name) if rng.gen_bool(mention_prob) => format!("{opener} in {name} {tail}"),
        _ => format!("{opener} {topic} {tail}"),
    }
}

/// Composes an event-report tweet ("Earthquake!! shaking here …") for the
/// Toretter-style experiments.
pub fn compose_event_report<R: Rng>(rng: &mut R, term: &str, district_name: &str) -> String {
    const SHAPES: &[&str] = &[
        "{term}!! felt it in {place}",
        "whoa {term} right now, {place} is shaking",
        "did anyone feel that {term}? here in {place}",
        "{term} in {place}, everyone ok?",
        "strong {term} just hit {place}",
    ];
    let shape = SHAPES[rng.gen_range(0..SHAPES.len())];
    shape
        .replace("{term}", term)
        .replace("{place}", district_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn compose_is_nonempty_and_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let ta = compose(&mut a, None, 0.0);
        let tb = compose(&mut b, None, 0.0);
        assert_eq!(ta, tb);
        assert!(!ta.is_empty());
    }

    #[test]
    fn mentions_place_when_forced() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = compose(&mut rng, Some("Gangnam-gu"), 1.0);
        assert!(t.contains("Gangnam-gu"), "{t}");
        let t2 = compose(&mut rng, Some("Gangnam-gu"), 0.0);
        assert!(!t2.contains("Gangnam-gu"), "{t2}");
    }

    #[test]
    fn event_report_contains_term_and_place() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let t = compose_event_report(&mut rng, "earthquake", "Jung-gu");
            assert!(t.contains("earthquake"), "{t}");
            assert!(t.contains("Jung-gu"), "{t}");
        }
    }
}
