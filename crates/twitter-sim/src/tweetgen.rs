//! Per-user tweet stream generation.
//!
//! Tweets are a pure function of `(dataset seed, user id)`: the generator
//! re-derives a user's stream on demand instead of materializing 11M tweets.
//! Timestamps follow a diurnal pattern over the collection window; the
//! district of each tweet comes from the user's mobility model; GPS points
//! are sampled inside the district's footprint (with occasional border
//! spill, exactly the noise a real GPS + geocoder pair produces).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stir_geoindex::Point;
use stir_geokr::Gazetteer;

use crate::ids::{TweetId, UserId};
use crate::profiles::{GroundTruth, UserProfile};
use crate::textgen;

/// One tweet, as the paper's pipeline sees it.
#[derive(Clone, Debug)]
pub struct Tweet {
    /// Unique tweet id (see [`TweetId::compose`]).
    pub id: TweetId,
    /// Author.
    pub user: UserId,
    /// Seconds since the start of the collection window.
    pub timestamp: u64,
    /// Tweet text.
    pub text: String,
    /// GPS coordinates, present when the client attached them.
    pub gps: Option<Point>,
}

/// Parameters for tweet stream generation.
#[derive(Clone, Debug)]
pub struct TweetGenConfig {
    /// Collection window length in seconds (paper-era crawls spanned
    /// months; the default is 90 days).
    pub window_secs: u64,
    /// Probability that a GPS-tagged tweet's text also names the district.
    pub mention_prob: f64,
    /// Skip text generation for tweets without GPS (the grouping analysis
    /// never reads it); halves generation cost at paper scale.
    pub skip_plain_text: bool,
}

impl Default for TweetGenConfig {
    fn default() -> Self {
        TweetGenConfig {
            window_secs: 90 * 24 * 3600,
            mention_prob: 0.1,
            skip_plain_text: false,
        }
    }
}

/// Hour-of-day weights (KST): quiet at dawn, peaks at lunch and evening.
const DIURNAL: [f64; 24] = [
    0.4, 0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 0.9, 1.2, 1.1, 1.0, 1.3, 1.6, 1.3, 1.1, 1.1, 1.2, 1.4, 1.7,
    1.9, 2.0, 1.8, 1.3, 0.8,
];

/// Commuter hour weights: pronounced morning/evening commute peaks plus
/// lunch — the §IV "stay outside for work" population tweets on the move.
const DIURNAL_COMMUTER: [f64; 24] = [
    0.3, 0.1, 0.1, 0.1, 0.1, 0.3, 1.2, 2.2, 2.4, 1.2, 0.9, 1.4, 1.8, 1.2, 0.9, 0.9, 1.1, 1.9, 2.5,
    2.3, 1.4, 1.0, 0.7, 0.5,
];

/// The hour profile for an archetype.
fn diurnal_weights(archetype: crate::archetype::Archetype) -> &'static [f64; 24] {
    match archetype {
        crate::archetype::Archetype::Commuter => &DIURNAL_COMMUTER,
        _ => &DIURNAL,
    }
}

/// Samples a timestamp inside the window with an hour profile.
fn sample_timestamp<R: Rng>(rng: &mut R, window_secs: u64, weights: &[f64; 24]) -> u64 {
    let days = (window_secs / 86_400).max(1);
    let day = rng.gen_range(0..days);
    let total: f64 = weights.iter().sum();
    let mut target = rng.gen::<f64>() * total;
    let mut hour = 23;
    for (h, &w) in weights.iter().enumerate() {
        if target < w {
            hour = h;
            break;
        }
        target -= w;
    }
    let sec_in_hour = rng.gen_range(0..3600u64);
    (day * 86_400 + hour as u64 * 3600 + sec_in_hour).min(window_secs - 1)
}

/// Draws from a log-normal via Box–Muller; used for tweet volumes.
pub fn sample_lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// The deterministic per-user RNG for tweet generation.
pub fn user_rng(dataset_seed: u64, user: UserId) -> StdRng {
    StdRng::seed_from_u64(dataset_seed ^ user.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Generates the full tweet stream for one user, sorted by timestamp.
pub fn tweets_for_user(
    cfg: &TweetGenConfig,
    gazetteer: &Gazetteer,
    profile: &UserProfile,
    truth: &GroundTruth,
    dataset_seed: u64,
) -> Vec<Tweet> {
    let mut rng = user_rng(dataset_seed, profile.id);
    let n = profile.tweet_budget as usize;
    let weights = diurnal_weights(truth.archetype);
    let mut tweets = Vec::with_capacity(n);
    for seq in 0..n {
        let timestamp = sample_timestamp(&mut rng, cfg.window_secs, weights);
        let district = truth.mobility.sample_district(&mut rng);
        let gps_tagged = profile.gps_device && rng.gen_bool(profile.gps_tag_rate);
        let (gps, text) = if gps_tagged {
            // Most fixes cluster near the district centre; a small fraction
            // land anywhere in the footprint (border-area noise).
            let point = if rng.gen_bool(0.92) {
                gazetteer.sample_point_in_scaled(district, 0.6, || rng.gen::<f64>())
            } else {
                gazetteer.sample_point_in(district, || rng.gen::<f64>())
            };
            // When the text names a place it is usually the place the user
            // is at (the paper's Fig. 4 observation) — but people also talk
            // *about* elsewhere, which is exactly why text mentions are a
            // weaker spatial attribute than GPS.
            let name = if rng.gen_bool(0.85) {
                gazetteer.district(district).name_en
            } else {
                let other = gazetteer.weighted_district(rng.gen::<f64>());
                gazetteer.district(other).name_en
            };
            let text = textgen::compose(&mut rng, Some(name), cfg.mention_prob);
            (Some(point), text)
        } else {
            let text = if cfg.skip_plain_text {
                String::new()
            } else {
                textgen::compose(&mut rng, None, 0.0)
            };
            (None, text)
        };
        tweets.push(Tweet {
            id: TweetId::compose(profile.id, seq as u32),
            user: profile.id,
            timestamp,
            text,
            gps,
        });
    }
    tweets.sort_by_key(|t| t.timestamp);
    tweets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::Archetype;
    use crate::mobility::MobilityModel;
    use crate::profiles::ProfileStyle;

    fn gaz() -> &'static Gazetteer {
        Box::leak(Box::new(Gazetteer::load()))
    }

    fn fixture(g: &Gazetteer, gps_device: bool, budget: u32) -> (UserProfile, GroundTruth) {
        let home = g.find_by_name_en("Yangcheon-gu")[0];
        let mut rng = StdRng::seed_from_u64(99);
        let mobility = MobilityModel::build(Archetype::HomeBody, home, g, &mut rng);
        let profile = UserProfile {
            id: UserId(7),
            screen_name: "tester_7".into(),
            location_text: "Seoul Yangcheon-gu".into(),
            gps_device,
            gps_tag_rate: 0.5,
            tweet_budget: budget,
        };
        let truth = GroundTruth {
            profile_district: home,
            style: ProfileStyle::FullEn,
            archetype: Archetype::HomeBody,
            mobility,
        };
        (profile, truth)
    }

    #[test]
    fn stream_is_deterministic() {
        let g = gaz();
        let cfg = TweetGenConfig::default();
        let (p, t) = fixture(g, true, 50);
        let a = tweets_for_user(&cfg, g, &p, &t, 42);
        let b = tweets_for_user(&cfg, g, &p, &t, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.timestamp, y.timestamp);
            assert_eq!(x.text, y.text);
            assert_eq!(x.gps.map(|p| (p.lat, p.lon)), y.gps.map(|p| (p.lat, p.lon)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = gaz();
        let cfg = TweetGenConfig::default();
        let (p, t) = fixture(g, true, 50);
        let a = tweets_for_user(&cfg, g, &p, &t, 42);
        let b = tweets_for_user(&cfg, g, &p, &t, 43);
        assert!(a
            .iter()
            .zip(&b)
            .any(|(x, y)| x.timestamp != y.timestamp || x.text != y.text));
    }

    #[test]
    fn timestamps_sorted_within_window() {
        let g = gaz();
        let cfg = TweetGenConfig::default();
        let (p, t) = fixture(g, true, 200);
        let tweets = tweets_for_user(&cfg, g, &p, &t, 1);
        assert_eq!(tweets.len(), 200);
        for w in tweets.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert!(tweets.iter().all(|t| t.timestamp < cfg.window_secs));
    }

    #[test]
    fn gps_rate_tracks_tag_rate() {
        let g = gaz();
        let cfg = TweetGenConfig::default();
        let (p, t) = fixture(g, true, 2000);
        let tweets = tweets_for_user(&cfg, g, &p, &t, 5);
        let gps = tweets.iter().filter(|t| t.gps.is_some()).count();
        let rate = gps as f64 / tweets.len() as f64;
        assert!((rate - 0.5).abs() < 0.05, "gps rate {rate}");
    }

    #[test]
    fn no_device_means_no_gps() {
        let g = gaz();
        let cfg = TweetGenConfig::default();
        let (p, t) = fixture(g, false, 300);
        let tweets = tweets_for_user(&cfg, g, &p, &t, 5);
        assert!(tweets.iter().all(|t| t.gps.is_none()));
    }

    #[test]
    fn gps_points_resolve_to_mobility_spots_mostly() {
        let g = gaz();
        let cfg = TweetGenConfig::default();
        let (p, t) = fixture(g, true, 1000);
        let tweets = tweets_for_user(&cfg, g, &p, &t, 9);
        let spot_ids: Vec<_> = t.mobility.spots().iter().map(|s| s.0).collect();
        let mut in_spots = 0;
        let mut total = 0;
        for tw in tweets.iter().filter(|t| t.gps.is_some()) {
            total += 1;
            if let Some(d) = g.resolve_point(tw.gps.unwrap()) {
                if spot_ids.contains(&d) {
                    in_spots += 1;
                }
            }
        }
        assert!(total > 300);
        assert!(
            in_spots * 10 >= total * 7,
            "{in_spots}/{total} resolved into spots"
        );
    }

    #[test]
    fn skip_plain_text_leaves_gps_text() {
        let g = gaz();
        let cfg = TweetGenConfig {
            skip_plain_text: true,
            ..Default::default()
        };
        let (p, t) = fixture(g, true, 500);
        let tweets = tweets_for_user(&cfg, g, &p, &t, 3);
        for t in &tweets {
            if t.gps.is_some() {
                assert!(!t.text.is_empty());
            } else {
                assert!(t.text.is_empty());
            }
        }
    }

    #[test]
    fn lognormal_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 20_000;
        let mu = 4.6f64;
        let sigma = 1.1f64;
        let mean: f64 = (0..n)
            .map(|_| sample_lognormal(&mut rng, mu, sigma))
            .sum::<f64>()
            / n as f64;
        let expected = (mu + sigma * sigma / 2.0).exp();
        assert!(
            (mean - expected).abs() / expected < 0.15,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn diurnal_peaks_in_evening() {
        let g = gaz();
        let cfg = TweetGenConfig::default();
        let (p, t) = fixture(g, true, 5000);
        let tweets = tweets_for_user(&cfg, g, &p, &t, 21);
        let mut by_hour = [0usize; 24];
        for t in &tweets {
            by_hour[((t.timestamp / 3600) % 24) as usize] += 1;
        }
        assert!(
            by_hour[20] > by_hour[3] * 3,
            "evening {} vs dawn {}",
            by_hour[20],
            by_hour[3]
        );
    }
}
