//! The streaming-API collector — how the "Lady Gaga" dataset was gathered
//! (slide "Dataset": "2,0xx,xx9 Users · 7x7,7xx Tweets · Streaming API").
//!
//! The 2011 streaming API delivered a keyword-filtered firehose sample with
//! its own constraints: tweets arrive in time order, the connection rate-
//! limits, and you only see users who happened to tweet the keyword during
//! the window. This module simulates that collection path over a generated
//! dataset: merge all users' tweets into time order, keep keyword matches
//! (subject to a sampling rate), and accumulate the distinct author set —
//! the population the paper's second analysis runs on.

use std::collections::HashSet;

use stir_geokr::Gazetteer;

use crate::datasets::Dataset;
use crate::ids::UserId;
use crate::tweetgen::Tweet;

/// Parameters of a streaming collection session.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    /// Keyword filter (case-insensitive substring).
    pub keyword: String,
    /// Fraction of matching tweets actually delivered (the firehose
    /// sample: 2011's free tier delivered far less than 100%).
    pub sample_rate: f64,
    /// Stop after this many delivered tweets (0 = unlimited).
    pub max_tweets: usize,
}

impl StreamSpec {
    /// A filter for `keyword` with full delivery.
    pub fn keyword(keyword: &str) -> Self {
        StreamSpec {
            keyword: keyword.to_ascii_lowercase(),
            sample_rate: 1.0,
            max_tweets: 0,
        }
    }

    /// The unfiltered firehose: every tweet matches, nothing is sampled
    /// out — the full corpus in arrival order. What an incremental
    /// consumer ingests to cover the same population as a batch run.
    pub fn firehose() -> Self {
        StreamSpec::keyword("")
    }
}

/// The result of a streaming session.
#[derive(Clone, Debug)]
pub struct StreamCollection {
    /// Delivered tweets, in timestamp order.
    pub tweets: Vec<Tweet>,
    /// Distinct authors seen, in first-seen order.
    pub users: Vec<UserId>,
    /// Total tweets that flowed past the filter (delivered or sampled out).
    pub matched: u64,
}

impl StreamCollection {
    /// Arrival-order delivery batches: the collection handed to a consumer
    /// `chunk` tweets at a time, the way a streaming client drains its
    /// connection buffer. Concatenating the batches reproduces
    /// [`StreamCollection::tweets`] exactly; the final batch may be short.
    /// A `chunk` of 0 delivers everything in one batch.
    pub fn deliveries(&self, chunk: usize) -> impl Iterator<Item = &[Tweet]> {
        let n = if chunk == 0 {
            self.tweets.len().max(1)
        } else {
            chunk
        };
        self.tweets.chunks(n)
    }
}

/// Runs a streaming collection over a dataset.
///
/// Deterministic: the sampling decision for a tweet hashes its id against
/// the spec's rate, so re-running yields the identical collection.
pub fn collect(dataset: &Dataset, gazetteer: &Gazetteer, spec: &StreamSpec) -> StreamCollection {
    // Merge all tweets into time order. Per-user streams are already
    // sorted; a full sort keeps the code simple at the scales involved
    // (matching tweets are rare).
    let mut delivered: Vec<Tweet> = Vec::new();
    let mut matched = 0u64;
    dataset.for_each_tweet(gazetteer, |t| {
        if spec.max_tweets > 0 && delivered.len() >= spec.max_tweets {
            return;
        }
        if !t.text.to_ascii_lowercase().contains(&spec.keyword) {
            return;
        }
        matched += 1;
        // Deterministic per-tweet sampling.
        let h = t.id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11;
        let u = h as f64 / (1u64 << 53) as f64;
        if u < spec.sample_rate {
            delivered.push(t.clone());
        }
    });
    delivered.sort_by_key(|t| (t.timestamp, t.id));
    let mut seen = HashSet::new();
    let mut users = Vec::new();
    for t in &delivered {
        if seen.insert(t.user) {
            users.push(t.user);
        }
    }
    StreamCollection {
        tweets: delivered,
        users,
        matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    fn fixtures() -> (&'static Gazetteer, &'static Dataset) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let d: &'static Dataset = Box::leak(Box::new(Dataset::generate(
            DatasetSpec {
                n_users: 500,
                ..DatasetSpec::korean_paper()
            },
            g,
            44,
        )));
        (g, d)
    }

    #[test]
    fn collects_only_matching_tweets_in_order() {
        let (g, d) = fixtures();
        let c = collect(d, g, &StreamSpec::keyword("coffee"));
        assert!(!c.tweets.is_empty());
        for t in &c.tweets {
            assert!(t.text.to_ascii_lowercase().contains("coffee"));
        }
        for w in c.tweets.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert_eq!(c.matched as usize, c.tweets.len()); // rate 1.0
    }

    #[test]
    fn sampling_thins_the_stream_deterministically() {
        let (g, d) = fixtures();
        let full = collect(d, g, &StreamSpec::keyword("coffee"));
        let spec = StreamSpec {
            sample_rate: 0.4,
            ..StreamSpec::keyword("coffee")
        };
        let a = collect(d, g, &spec);
        let b = collect(d, g, &spec);
        assert_eq!(a.tweets.len(), b.tweets.len());
        assert!(a.tweets.len() < full.tweets.len());
        assert!(
            a.tweets.len() * 5 > full.tweets.len(),
            "sampled too aggressively"
        );
    }

    #[test]
    fn distinct_users_first_seen_order() {
        let (g, d) = fixtures();
        let c = collect(d, g, &StreamSpec::keyword("coffee"));
        let mut seen = HashSet::new();
        for u in &c.users {
            assert!(seen.insert(*u), "duplicate user {u}");
        }
        assert!(c.users.len() <= c.tweets.len());
    }

    #[test]
    fn max_tweets_caps_collection() {
        let (g, d) = fixtures();
        let spec = StreamSpec {
            max_tweets: 5,
            ..StreamSpec::keyword("coffee")
        };
        let c = collect(d, g, &spec);
        assert!(c.tweets.len() <= 5);
    }

    #[test]
    fn firehose_delivers_the_whole_corpus() {
        let (g, d) = fixtures();
        let mut total = 0u64;
        d.for_each_tweet(g, |_| total += 1);
        let c = collect(d, g, &StreamSpec::firehose());
        assert_eq!(c.tweets.len() as u64, total);
        assert_eq!(c.matched, total);
    }

    #[test]
    fn deliveries_chunk_the_stream_in_arrival_order() {
        let (g, d) = fixtures();
        let c = collect(d, g, &StreamSpec::keyword("coffee"));
        assert!(c.tweets.len() > 7, "fixture too small to chunk");
        let chunks: Vec<&[Tweet]> = c.deliveries(7).collect();
        assert!(chunks[..chunks.len() - 1].iter().all(|b| b.len() == 7));
        assert!(!chunks.last().unwrap().is_empty());
        let rejoined: Vec<_> = chunks.concat();
        assert_eq!(rejoined.len(), c.tweets.len());
        for (a, b) in rejoined.iter().zip(&c.tweets) {
            assert_eq!(a.id, b.id);
        }
        // Chunk 0 is "all at once".
        assert_eq!(c.deliveries(0).count(), 1);
    }

    #[test]
    fn unmatched_keyword_collects_nothing() {
        let (g, d) = fixtures();
        let c = collect(d, g, &StreamSpec::keyword("zebra unicorn"));
        assert!(c.tweets.is_empty());
        assert!(c.users.is_empty());
        assert_eq!(c.matched, 0);
    }
}
