//! # stir-twitter-sim — synthetic Twitter substrate
//!
//! The paper's raw material is a live 2011 Twitter crawl (52k Korean users /
//! 11.1M tweets via follower crawling, plus a streaming-API "Lady Gaga"
//! dataset). That data cannot be re-collected; this crate is the generative
//! replacement. It exposes the same observable surface the paper consumed —
//! user profiles with free-text locations, tweets with optional GPS
//! coordinates, a follower graph behind a rate-limited API — while keeping
//! the *ground truth* (each user's actual mobility) explicit and tunable, so
//! the paper's aggregate shapes are emergent rather than hard-coded.
//!
//! * [`archetype`] / [`mobility`] — user mobility models: home-anchored,
//!   dual-centre, commuter (never tweets from the profile district),
//!   wanderer, relocated.
//! * [`profiles`] — free-text profile-location rendering with the paper's
//!   Fig. 3 noise taxonomy (well-formed / typo / Korean script / province-
//!   only / vague / foreign / multi-location / embedded coordinates).
//! * [`tweetgen`] / [`textgen`] — per-user tweet streams: log-normal volume,
//!   diurnal timestamps, GPS-adoption model, deterministic per-user seeds so
//!   tweets can be re-generated instead of stored.
//! * [`graph`] — preferential-attachment follower graph.
//! * [`api`] / [`crawler`] — a rate-limited Twitter-API facade and the
//!   follower crawler the paper describes ("explores the every followers of
//!   the given seed user"), on a simulated clock.
//! * [`datasets`] — the two paper datasets as parameter sets, at paper scale
//!   and a default 1/10 scale; [`stream`] — the keyword streaming-API
//!   collector the "Lady Gaga" dataset came through.
//! * [`event`] — ground-truth event injection (earthquake-style) for the
//!   event-detection experiments.

#![warn(missing_docs)]

pub mod api;
pub mod archetype;
pub mod clock;
pub mod crawler;
pub mod datasets;
pub mod event;
pub mod graph;
pub mod ids;
pub mod mobility;
pub mod profiles;
pub mod stream;
pub mod textgen;
pub mod tweetgen;

pub use api::{ApiError, RateLimit, TwitterApi};
pub use archetype::{Archetype, ArchetypeMix};
pub use clock::SimClock;
pub use crawler::{CrawlReport, Crawler};
pub use datasets::{Dataset, DatasetSpec};
pub use graph::FollowerGraph;
pub use ids::{TweetId, UserId};
pub use mobility::MobilityModel;
pub use profiles::{GroundTruth, ProfileStyle, UserProfile};
pub use stream::{collect as collect_stream, StreamCollection, StreamSpec};
pub use tweetgen::Tweet;
