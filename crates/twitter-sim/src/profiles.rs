//! User profiles and the free-text rendering of profile locations.
//!
//! [`ProfileStyle`] is the generator's quality taxonomy; it deliberately
//! mirrors the paper's Fig. 3 examples (well-formed entries in two scripts,
//! "darangland :)", "Earth", the two-location profile, exact coordinates)
//! so that the `stir-textgeo` classifier faces the same mess the authors
//! faced. The *style distribution* is a dataset parameter — it controls the
//! refinement funnel (52k crawled → ~30k well-defined in the paper).

use rand::Rng;
use stir_geokr::{DistrictId, Gazetteer};

use crate::archetype::Archetype;
use crate::ids::UserId;
use crate::mobility::MobilityModel;

/// How a user's profile-location text is written.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProfileStyle {
    /// "Seoul Yangcheon-gu" — province + district, romanized.
    FullEn,
    /// "서울특별시 양천구" — Korean script.
    FullKo,
    /// "Yangcheon-gu" — district only (fine when the name is unique).
    DistrictOnlyEn,
    /// "양천구" — Korean district only.
    DistrictOnlyKo,
    /// "Bucheon, Korea" — district + country.
    WithCountry,
    /// "yangcheon gu seoul" — lowercase, suffix split, shuffled.
    Sloppy,
    /// One-character typo in the district name.
    Typo,
    /// Province only — the paper's "insufficient" ("Seoul").
    ProvinceOnly,
    /// Country only ("Korea", "대한민국").
    CountryOnly,
    /// Planet scale ("Earth").
    PlanetOnly,
    /// Non-geographic ("my home", "darangland :)").
    Vague,
    /// Empty string.
    Empty,
    /// A foreign location ("Gold Coast Australia").
    Foreign,
    /// Two locations, foreign + Korean — the paper's ambiguous example.
    MultiLocation,
    /// Exact GPS coordinates of the home district.
    Coordinates,
}

impl ProfileStyle {
    /// Styles that the paper's refinement keeps (resolvable to one
    /// district).
    pub fn is_well_defined(self) -> bool {
        matches!(
            self,
            ProfileStyle::FullEn
                | ProfileStyle::FullKo
                | ProfileStyle::DistrictOnlyEn
                | ProfileStyle::DistrictOnlyKo
                | ProfileStyle::WithCountry
                | ProfileStyle::Sloppy
                | ProfileStyle::Typo
                | ProfileStyle::Coordinates
        )
    }
}

/// A distribution over profile styles; pairs of (style, weight).
#[derive(Clone, Debug)]
pub struct StyleMix {
    entries: Vec<(ProfileStyle, f64)>,
    total: f64,
}

impl StyleMix {
    /// Builds a mix; weights need not be normalized.
    pub fn new(entries: Vec<(ProfileStyle, f64)>) -> Self {
        let total = entries.iter().map(|e| e.1).sum::<f64>();
        assert!(total > 0.0, "style mix needs positive mass");
        StyleMix { entries, total }
    }

    /// Korean-crawl mix: ≈ 58% of profiles resolve to a district, matching
    /// the paper's 52k → ~30k funnel stage.
    pub fn korean() -> Self {
        StyleMix::new(vec![
            (ProfileStyle::FullEn, 0.17),
            (ProfileStyle::FullKo, 0.16),
            (ProfileStyle::DistrictOnlyEn, 0.07),
            (ProfileStyle::DistrictOnlyKo, 0.07),
            (ProfileStyle::WithCountry, 0.04),
            (ProfileStyle::Sloppy, 0.03),
            (ProfileStyle::Typo, 0.025),
            (ProfileStyle::Coordinates, 0.015),
            (ProfileStyle::ProvinceOnly, 0.12),
            (ProfileStyle::CountryOnly, 0.05),
            (ProfileStyle::PlanetOnly, 0.015),
            (ProfileStyle::Vague, 0.115),
            (ProfileStyle::Empty, 0.06),
            (ProfileStyle::Foreign, 0.03),
            (ProfileStyle::MultiLocation, 0.02),
        ])
    }

    /// Streaming-sample mix: a global audience — most profiles are foreign
    /// or junk; only a thin slice is well-defined Korean.
    pub fn lady_gaga() -> Self {
        StyleMix::new(vec![
            (ProfileStyle::FullEn, 0.05),
            (ProfileStyle::FullKo, 0.04),
            (ProfileStyle::DistrictOnlyEn, 0.02),
            (ProfileStyle::DistrictOnlyKo, 0.02),
            (ProfileStyle::WithCountry, 0.015),
            (ProfileStyle::Sloppy, 0.01),
            (ProfileStyle::Typo, 0.008),
            (ProfileStyle::Coordinates, 0.007),
            (ProfileStyle::ProvinceOnly, 0.05),
            (ProfileStyle::CountryOnly, 0.03),
            (ProfileStyle::PlanetOnly, 0.05),
            (ProfileStyle::Vague, 0.23),
            (ProfileStyle::Empty, 0.13),
            (ProfileStyle::Foreign, 0.51),
            (ProfileStyle::MultiLocation, 0.02),
        ])
    }

    /// Samples a style.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> ProfileStyle {
        let mut target = rng.gen::<f64>() * self.total;
        for &(style, w) in &self.entries {
            if target < w {
                return style;
            }
            target -= w;
        }
        self.entries.last().unwrap().0
    }

    /// The probability that a sampled style is well defined.
    pub fn well_defined_mass(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.0.is_well_defined())
            .map(|e| e.1)
            .sum::<f64>()
            / self.total
    }
}

const VAGUE_TEXTS: &[&str] = &[
    "my home",
    "darangland :)",
    "somewhere over the rainbow",
    "in ur heart ♥",
    "침대 위",
    "the internet",
    "neverland",
    "wherever you are",
];

const FOREIGN_TEXTS: &[&str] = &[
    "Gold Coast Australia",
    "Tokyo, Japan",
    "New York, USA",
    "London UK",
    "Paris",
    "Beijing, China",
    "Sydney",
    "California",
];

/// Renders the profile-location text for a style and home district.
pub fn render_location<R: Rng>(
    style: ProfileStyle,
    home: DistrictId,
    gazetteer: &Gazetteer,
    rng: &mut R,
) -> String {
    let d = gazetteer.district(home);
    match style {
        ProfileStyle::FullEn => format!("{} {}", d.province.name_en(), d.name_en),
        ProfileStyle::FullKo => format!("{} {}", d.province.name_ko(), d.name_ko),
        ProfileStyle::DistrictOnlyEn => d.name_en.to_string(),
        ProfileStyle::DistrictOnlyKo => d.name_ko.to_string(),
        ProfileStyle::WithCountry => format!("{}, Korea", d.name_en),
        ProfileStyle::Sloppy => {
            let stem = d.stem_en().to_ascii_lowercase();
            let suffix = d.kind.suffix_en().trim_start_matches('-');
            format!(
                "{stem} {suffix} {}",
                d.province.name_en().to_ascii_lowercase()
            )
        }
        ProfileStyle::Typo => {
            let mut chars: Vec<char> = d.name_en.chars().collect();
            // Delete one interior letter (keeps edit distance 1).
            let idx = rng.gen_range(1..chars.len().saturating_sub(4).max(2));
            chars.remove(idx);
            format!(
                "{} {}",
                d.province.name_en(),
                chars.into_iter().collect::<String>()
            )
        }
        ProfileStyle::ProvinceOnly => d.province.name_en().to_string(),
        ProfileStyle::CountryOnly => {
            if rng.gen_bool(0.5) {
                "Korea".to_string()
            } else {
                "대한민국".to_string()
            }
        }
        ProfileStyle::PlanetOnly => "Earth".to_string(),
        ProfileStyle::Vague => VAGUE_TEXTS[rng.gen_range(0..VAGUE_TEXTS.len())].to_string(),
        ProfileStyle::Empty => String::new(),
        ProfileStyle::Foreign => FOREIGN_TEXTS[rng.gen_range(0..FOREIGN_TEXTS.len())].to_string(),
        ProfileStyle::MultiLocation => {
            let foreign = FOREIGN_TEXTS[rng.gen_range(0..FOREIGN_TEXTS.len())];
            format!("{foreign} / {} {}", d.province.name_ko(), d.name_ko)
        }
        ProfileStyle::Coordinates => {
            let c = d.centroid;
            let lat = c.lat + rng.gen_range(-0.01..0.01);
            let lon = c.lon + rng.gen_range(-0.01..0.01);
            format!("{lat:.4}, {lon:.4}")
        }
    }
}

/// The public face of a user: what a crawler (or the paper's pipeline) sees.
#[derive(Clone, Debug)]
pub struct UserProfile {
    /// Dense user id.
    pub id: UserId,
    /// Synthetic screen name.
    pub screen_name: String,
    /// Free-text profile location (≤ 30 chars on real Twitter).
    pub location_text: String,
    /// True when the user tweets from a GPS-capable client at all.
    pub gps_device: bool,
    /// Fraction of this user's tweets that carry GPS when `gps_device`.
    pub gps_tag_rate: f64,
    /// Expected tweet volume over the collection window.
    pub tweet_budget: u32,
}

/// What the generator knows about a user that the analysis must *infer*.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// The district the profile text encodes (regardless of text quality).
    pub profile_district: DistrictId,
    /// The rendering style used for the profile text.
    pub style: ProfileStyle,
    /// Mobility behaviour class.
    pub archetype: Archetype,
    /// Where the user actually tweets from.
    pub mobility: MobilityModel,
}

/// Generates a deterministic screen name for a user id.
pub fn screen_name<R: Rng>(id: UserId, rng: &mut R) -> String {
    const SYLLABLES: &[&str] = &[
        "min", "ji", "soo", "hye", "jun", "seo", "yeon", "woo", "kyu", "han", "bin", "chul",
    ];
    let a = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
    let b = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
    format!("{a}{b}_{}", id.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stir_textgeo::{ProfileClass, ProfileClassifier};

    fn gaz() -> &'static Gazetteer {
        Box::leak(Box::new(Gazetteer::load()))
    }

    #[test]
    fn well_defined_styles_classify_well_defined() {
        let g = gaz();
        let classifier = ProfileClassifier::new(g);
        let mut rng = StdRng::seed_from_u64(11);
        let home = g.find_by_name_en("Yangcheon-gu")[0];
        for style in [
            ProfileStyle::FullEn,
            ProfileStyle::FullKo,
            ProfileStyle::DistrictOnlyEn,
            ProfileStyle::DistrictOnlyKo,
            ProfileStyle::WithCountry,
            ProfileStyle::Sloppy,
            ProfileStyle::Typo,
        ] {
            for _ in 0..10 {
                let text = render_location(style, home, g, &mut rng);
                match classifier.classify(&text) {
                    ProfileClass::WellDefined(id) => {
                        assert_eq!(id, home, "style {style:?}: {text:?}")
                    }
                    other => panic!("style {style:?} text {text:?} → {other:?}"),
                }
            }
        }
    }

    #[test]
    fn coordinates_style_classifies_as_coordinates() {
        let g = gaz();
        let classifier = ProfileClassifier::new(g);
        let mut rng = StdRng::seed_from_u64(12);
        let home = g.find_by_name_en("Gangnam-gu")[0];
        let text = render_location(ProfileStyle::Coordinates, home, g, &mut rng);
        match classifier.classify(&text) {
            ProfileClass::Coordinates(p) => {
                let resolved = g.resolve_point(p).unwrap();
                assert_eq!(resolved, home);
            }
            other => panic!("{text:?} → {other:?}"),
        }
    }

    #[test]
    fn rejected_styles_classify_rejected() {
        let g = gaz();
        let classifier = ProfileClassifier::new(g);
        let mut rng = StdRng::seed_from_u64(13);
        let home = g.find_by_name_en("Suwon-si")[0];
        for style in [
            ProfileStyle::ProvinceOnly,
            ProfileStyle::CountryOnly,
            ProfileStyle::PlanetOnly,
            ProfileStyle::Vague,
            ProfileStyle::Empty,
            ProfileStyle::Foreign,
            ProfileStyle::MultiLocation,
        ] {
            for _ in 0..10 {
                let text = render_location(style, home, g, &mut rng);
                let class = classifier.classify(&text);
                assert!(
                    !class.is_well_defined(),
                    "style {style:?} text {text:?} wrongly kept: {class:?}"
                );
            }
        }
    }

    #[test]
    fn korean_style_mix_hits_paper_funnel_rate() {
        let mix = StyleMix::korean();
        let wd = mix.well_defined_mass();
        // Paper: ~30k of ~52k crawled users were well defined (≈ 58%).
        assert!((0.53..0.63).contains(&wd), "well-defined mass {wd}");
    }

    #[test]
    fn lady_gaga_mix_is_mostly_rejected() {
        let mix = StyleMix::lady_gaga();
        assert!(mix.well_defined_mass() < 0.20);
    }

    #[test]
    fn style_sampling_tracks_weights() {
        let mix = StyleMix::korean();
        let mut rng = StdRng::seed_from_u64(14);
        let n = 40_000;
        let mut wd = 0usize;
        for _ in 0..n {
            if mix.sample(&mut rng).is_well_defined() {
                wd += 1;
            }
        }
        let got = wd as f64 / n as f64;
        assert!((got - mix.well_defined_mass()).abs() < 0.01);
    }

    #[test]
    fn screen_names_are_deterministic_per_rng() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            screen_name(UserId(9), &mut a),
            screen_name(UserId(9), &mut b)
        );
    }
}
