//! Dataset specifications and generation.
//!
//! Two canned specs mirror the paper's data (slide "Dataset"):
//!
//! * **Korean dataset** — 52,2xx users crawled by following the follower
//!   graph, ≈ 11.1M tweets, Search-API era. Strong home anchoring.
//! * **Lady Gaga dataset** — ≈ 2M users observed through a streaming-API
//!   keyword sample, ≈ 7xx,xxx tweets (1–2 visible tweets per user). Global
//!   audience, mostly non-Korean profiles.
//!
//! Both come at paper scale and at a 1/10 default scale that keeps `repro
//! all` in the minutes range. Tweets are never materialized here — see
//! [`Dataset::for_each_tweet`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stir_geokr::Gazetteer;

use crate::archetype::ArchetypeMix;
use crate::graph::FollowerGraph;
use crate::ids::UserId;
use crate::mobility::MobilityModel;
use crate::profiles::{render_location, screen_name, GroundTruth, StyleMix, UserProfile};
use crate::tweetgen::{sample_lognormal, tweets_for_user, Tweet, TweetGenConfig};

/// Everything that parameterizes a generated dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Human-readable name ("korean", "lady-gaga").
    pub name: &'static str,
    /// Number of users.
    pub n_users: usize,
    /// Log-normal μ for per-user tweet volume.
    pub tweets_mu: f64,
    /// Log-normal σ for per-user tweet volume.
    pub tweets_sigma: f64,
    /// Hard cap on per-user tweets (the Search API caps visible history).
    pub tweets_cap: u32,
    /// Probability a user tweets from a GPS-capable client at all.
    pub gps_device_rate: f64,
    /// Range of per-user GPS tagging rates for device owners.
    pub gps_tag_range: (f64, f64),
    /// Mobility archetype mix.
    pub archetypes: ArchetypeMix,
    /// Profile-text quality mix.
    pub styles: StyleMix,
    /// Average follows per user in the follower graph (0 = no graph).
    pub graph_m: usize,
    /// Tweet stream configuration.
    pub tweet_cfg: TweetGenConfig,
}

impl DatasetSpec {
    /// The Korean crawl at full paper scale (52,200 users ≈ 11M tweets).
    pub fn korean_paper() -> Self {
        DatasetSpec {
            name: "korean",
            n_users: 52_200,
            // mean ≈ exp(μ + σ²/2) ≈ 213 tweets/user over the window.
            tweets_mu: 4.68,
            tweets_sigma: 1.1,
            tweets_cap: 3_200,
            gps_device_rate: 0.06,
            gps_tag_range: (0.05, 0.35),
            archetypes: ArchetypeMix::korean(),
            styles: StyleMix::korean(),
            graph_m: 8,
            tweet_cfg: TweetGenConfig {
                skip_plain_text: true,
                ..Default::default()
            },
        }
    }

    /// The Korean dataset at 1/10 scale — the default for experiments.
    pub fn korean_default() -> Self {
        DatasetSpec {
            n_users: 5_220,
            ..Self::korean_paper()
        }
    }

    /// The streaming "Lady Gaga" sample at paper scale (≈ 2M users).
    pub fn lady_gaga_paper() -> Self {
        DatasetSpec {
            name: "lady-gaga",
            n_users: 2_000_000,
            // Streaming keyword capture: ~1.4 visible tweets per user.
            tweets_mu: 0.1,
            tweets_sigma: 0.7,
            tweets_cap: 40,
            gps_device_rate: 0.08,
            gps_tag_range: (0.3, 1.0),
            archetypes: ArchetypeMix::lady_gaga(),
            styles: StyleMix::lady_gaga(),
            graph_m: 0,
            tweet_cfg: TweetGenConfig {
                skip_plain_text: true,
                ..Default::default()
            },
        }
    }

    /// The Lady Gaga dataset at 1/10 scale.
    pub fn lady_gaga_default() -> Self {
        DatasetSpec {
            n_users: 200_000,
            ..Self::lady_gaga_paper()
        }
    }

    /// Scales the user count by `factor` (for benchmark sweeps).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.n_users = ((self.n_users as f64 * factor) as usize).max(10);
        self
    }

    /// Expected tweets per user, `min(exp(μ+σ²/2), cap)` ignoring the cap's
    /// truncation effect.
    pub fn expected_tweets_per_user(&self) -> f64 {
        (self.tweets_mu + self.tweets_sigma * self.tweets_sigma / 2.0).exp()
    }
}

/// A generated dataset: users and ground truth are materialized; tweets are
/// re-derived deterministically on demand.
pub struct Dataset {
    /// The spec that produced this dataset.
    pub spec: DatasetSpec,
    /// Master seed.
    pub seed: u64,
    /// Public user profiles, indexed by `UserId.0`.
    pub users: Vec<UserProfile>,
    /// Ground truth parallel to `users` (the analysis must not read this;
    /// tests and EXPERIMENTS.md use it for validation).
    pub truth: Vec<GroundTruth>,
    /// Follower graph (empty for streaming datasets).
    pub graph: FollowerGraph,
}

impl Dataset {
    /// Generates a dataset from a spec, deterministically from `seed`.
    pub fn generate(spec: DatasetSpec, gazetteer: &Gazetteer, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut users = Vec::with_capacity(spec.n_users);
        let mut truth = Vec::with_capacity(spec.n_users);
        for i in 0..spec.n_users {
            let id = UserId(i as u64);
            let home = gazetteer.weighted_district(rng.gen::<f64>());
            let archetype = spec.archetypes.sample(&mut rng);
            let mobility = MobilityModel::build(archetype, home, gazetteer, &mut rng);
            let style = spec.styles.sample(&mut rng);
            let location_text = render_location(style, home, gazetteer, &mut rng);
            let gps_device = rng.gen_bool(spec.gps_device_rate);
            let gps_tag_rate = rng.gen_range(spec.gps_tag_range.0..spec.gps_tag_range.1);
            let budget =
                sample_lognormal(&mut rng, spec.tweets_mu, spec.tweets_sigma).round() as u32;
            let tweet_budget = budget.clamp(1, spec.tweets_cap);
            users.push(UserProfile {
                id,
                screen_name: screen_name(id, &mut rng),
                location_text,
                gps_device,
                gps_tag_rate,
                tweet_budget,
            });
            truth.push(GroundTruth {
                profile_district: home,
                style,
                archetype,
                mobility,
            });
        }
        let graph = if spec.graph_m > 0 {
            FollowerGraph::preferential_attachment(spec.n_users, spec.graph_m, &mut rng)
        } else {
            FollowerGraph::empty(spec.n_users)
        };
        Dataset {
            spec,
            seed,
            users,
            truth,
            graph,
        }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when the dataset has no users.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Regenerates the tweet stream of one user (deterministic).
    pub fn user_tweets(&self, gazetteer: &Gazetteer, user: UserId) -> Vec<Tweet> {
        let idx = user.0 as usize;
        tweets_for_user(
            &self.spec.tweet_cfg,
            gazetteer,
            &self.users[idx],
            &self.truth[idx],
            self.seed,
        )
    }

    /// Streams every tweet of every user through `f` without materializing
    /// the corpus. Iteration order is by user id, then timestamp.
    pub fn for_each_tweet<F: FnMut(&Tweet)>(&self, gazetteer: &Gazetteer, mut f: F) {
        for u in &self.users {
            for t in self.user_tweets(gazetteer, u.id) {
                f(&t);
            }
        }
    }

    /// Total tweet count (sum of budgets) without generating anything.
    pub fn total_tweets(&self) -> u64 {
        self.users.iter().map(|u| u.tweet_budget as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> &'static Gazetteer {
        Box::leak(Box::new(Gazetteer::load()))
    }

    fn small_korean() -> DatasetSpec {
        DatasetSpec {
            n_users: 400,
            ..DatasetSpec::korean_paper()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = gaz();
        let a = Dataset::generate(small_korean(), g, 7);
        let b = Dataset::generate(small_korean(), g, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.location_text, y.location_text);
            assert_eq!(x.tweet_budget, y.tweet_budget);
        }
        let ta = a.user_tweets(g, UserId(3));
        let tb = b.user_tweets(g, UserId(3));
        assert_eq!(ta.len(), tb.len());
    }

    #[test]
    fn seeds_change_content() {
        let g = gaz();
        let a = Dataset::generate(small_korean(), g, 1);
        let b = Dataset::generate(small_korean(), g, 2);
        let diff = a
            .users
            .iter()
            .zip(&b.users)
            .filter(|(x, y)| x.location_text != y.location_text)
            .count();
        assert!(diff > 100, "only {diff} users differ");
    }

    #[test]
    fn tweet_volume_near_expectation() {
        let g = gaz();
        let spec = small_korean();
        let expected = spec.expected_tweets_per_user();
        let d = Dataset::generate(spec, g, 3);
        let mean = d.total_tweets() as f64 / d.len() as f64;
        // The cap truncates the tail, so the realized mean sits below the
        // untruncated expectation but in its neighbourhood.
        assert!(
            mean > expected * 0.5 && mean < expected * 1.3,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn gps_device_rate_respected() {
        let g = gaz();
        let d = Dataset::generate(
            DatasetSpec {
                n_users: 5000,
                ..DatasetSpec::korean_paper()
            },
            g,
            4,
        );
        let devices = d.users.iter().filter(|u| u.gps_device).count();
        let rate = devices as f64 / d.len() as f64;
        assert!((rate - 0.06).abs() < 0.012, "device rate {rate}");
    }

    #[test]
    fn korean_has_graph_lady_gaga_does_not() {
        let g = gaz();
        let k = Dataset::generate(small_korean(), g, 5);
        assert!(k.graph.edge_count() > 0);
        let lg = Dataset::generate(
            DatasetSpec {
                n_users: 300,
                ..DatasetSpec::lady_gaga_paper()
            },
            g,
            5,
        );
        assert_eq!(lg.graph.edge_count(), 0);
    }

    #[test]
    fn for_each_tweet_covers_all_budgets() {
        let g = gaz();
        let d = Dataset::generate(
            DatasetSpec {
                n_users: 50,
                ..small_korean()
            },
            g,
            6,
        );
        let mut n = 0u64;
        d.for_each_tweet(g, |_| n += 1);
        assert_eq!(n, d.total_tweets());
    }

    #[test]
    fn lady_gaga_tweets_are_sparse() {
        let g = gaz();
        let d = Dataset::generate(
            DatasetSpec {
                n_users: 2000,
                ..DatasetSpec::lady_gaga_paper()
            },
            g,
            8,
        );
        let mean = d.total_tweets() as f64 / d.len() as f64;
        assert!(mean < 3.0, "lady gaga mean tweets {mean}");
    }
}
