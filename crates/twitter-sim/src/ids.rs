//! Identifier newtypes for users and tweets.

use std::fmt;

/// A user id. Dense: generated datasets number users `0..n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A tweet id. Generated tweets use `user_id * TWEETS_PER_USER_SPAN + seq`,
/// so ids are unique and sortable by (user, sequence).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TweetId(pub u64);

/// Maximum tweets a single generated user can emit; fixes the id layout.
pub const TWEETS_PER_USER_SPAN: u64 = 1 << 16;

impl TweetId {
    /// Composes an id from its user and per-user sequence number.
    pub fn compose(user: UserId, seq: u32) -> Self {
        debug_assert!((seq as u64) < TWEETS_PER_USER_SPAN);
        TweetId(user.0 * TWEETS_PER_USER_SPAN + seq as u64)
    }

    /// The user component.
    pub fn user(self) -> UserId {
        UserId(self.0 / TWEETS_PER_USER_SPAN)
    }

    /// The per-user sequence component.
    pub fn seq(self) -> u32 {
        (self.0 % TWEETS_PER_USER_SPAN) as u32
    }
}

impl fmt::Display for TweetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_roundtrips() {
        let id = TweetId::compose(UserId(42), 7);
        assert_eq!(id.user(), UserId(42));
        assert_eq!(id.seq(), 7);
    }

    #[test]
    fn ids_sort_by_user_then_seq() {
        let a = TweetId::compose(UserId(1), 9999);
        let b = TweetId::compose(UserId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(TweetId(12).to_string(), "t12");
    }
}
