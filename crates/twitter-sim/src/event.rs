//! Ground-truth event injection for the event-detection experiments.
//!
//! Models the Toretter observation process (Sakaki et al., the paper's
//! ref [3]): an event with a known epicenter occurs at a known time; users
//! near it become "social sensors" and tweet the event term within minutes.
//! Each report carries either the sensor's GPS position (when their client
//! tags it) or nothing — in which case a downstream estimator must fall back
//! to the *profile location*, which is exactly where this paper's
//! reliability analysis plugs in.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stir_geoindex::Point;
use stir_geokr::{DistrictId, Gazetteer};

use crate::datasets::Dataset;
use crate::ids::{TweetId, UserId};
use crate::textgen;
use crate::tweetgen::Tweet;

/// A ground-truth event scenario.
#[derive(Clone, Debug)]
pub struct EventScenario {
    /// True epicenter.
    pub epicenter: Point,
    /// Event time, seconds on the dataset window clock.
    pub start: u64,
    /// The term sensors tweet ("earthquake").
    pub term: &'static str,
    /// Radius (km) within which users sense the event.
    pub felt_radius_km: f64,
    /// Probability that a user inside the radius reports at all.
    pub report_rate: f64,
    /// Mean reporting delay in seconds (exponential).
    pub mean_delay_secs: f64,
}

impl EventScenario {
    /// A magnitude-5-style earthquake felt across ~80 km.
    pub fn earthquake(epicenter: Point, start: u64) -> Self {
        EventScenario {
            epicenter,
            start,
            term: "earthquake",
            felt_radius_km: 80.0,
            report_rate: 0.55,
            mean_delay_secs: 240.0,
        }
    }
}

/// One injected event report.
#[derive(Clone, Debug)]
pub struct EventReport {
    /// The tweet as it would appear in the stream.
    pub tweet: Tweet,
    /// The district the sensor was actually in when reporting.
    pub true_district: DistrictId,
}

/// Injects the scenario into a dataset: every user whose *current position*
/// (sampled from their mobility model) falls inside the felt radius reports
/// with probability `report_rate` after an exponential delay. GPS presence
/// follows the user's device/tag profile.
///
/// Returns the reports sorted by timestamp.
pub fn inject(
    scenario: &EventScenario,
    dataset: &Dataset,
    gazetteer: &Gazetteer,
    seed: u64,
) -> Vec<EventReport> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE7E7_E7E7);
    let mut reports = Vec::new();
    for (profile, truth) in dataset.users.iter().zip(&dataset.truth) {
        // Where is this user right now? One draw from their mobility model.
        let district = truth.mobility.sample_district(&mut rng);
        let position = gazetteer.sample_point_in(district, || rng.gen::<f64>());
        if position.haversine_km(scenario.epicenter) > scenario.felt_radius_km {
            continue;
        }
        if !rng.gen_bool(scenario.report_rate) {
            continue;
        }
        let delay = -scenario.mean_delay_secs * (1.0 - rng.gen::<f64>()).ln();
        let timestamp = scenario.start + delay as u64;
        let gps_tagged = profile.gps_device && rng.gen_bool(profile.gps_tag_rate);
        let name = gazetteer.district(district).name_en;
        let text = textgen::compose_event_report(&mut rng, scenario.term, name);
        reports.push(EventReport {
            tweet: Tweet {
                id: TweetId::compose(UserId(profile.id.0), u16::MAX as u32),
                user: profile.id,
                timestamp,
                text,
                gps: gps_tagged.then_some(position),
            },
            true_district: district,
        });
    }
    reports.sort_by_key(|r| r.tweet.timestamp);
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    fn fixtures() -> (&'static Gazetteer, &'static Dataset) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let d: &'static Dataset = Box::leak(Box::new(Dataset::generate(
            DatasetSpec {
                n_users: 3000,
                ..DatasetSpec::korean_paper()
            },
            g,
            55,
        )));
        (g, d)
    }

    #[test]
    fn reports_cluster_near_epicenter() {
        let (g, d) = fixtures();
        let epicenter = Point::new(37.50, 127.00); // Seoul
        let scenario = EventScenario::earthquake(epicenter, 1000);
        let reports = inject(&scenario, d, g, 1);
        assert!(reports.len() > 20, "only {} reports", reports.len());
        for r in &reports {
            let c = g.district(r.true_district).centroid;
            assert!(
                c.haversine_km(epicenter) < scenario.felt_radius_km + 40.0,
                "report from {} km away",
                c.haversine_km(epicenter)
            );
            assert!(r.tweet.text.contains("earthquake"));
            assert!(r.tweet.timestamp >= scenario.start);
        }
    }

    #[test]
    fn remote_epicenter_yields_fewer_reports() {
        let (g, d) = fixtures();
        let seoul = inject(
            &EventScenario::earthquake(Point::new(37.50, 127.00), 0),
            d,
            g,
            2,
        );
        let ulleung = inject(
            &EventScenario::earthquake(Point::new(37.48, 130.90), 0),
            d,
            g,
            2,
        );
        assert!(
            seoul.len() > ulleung.len() * 3,
            "seoul {} vs ulleung {}",
            seoul.len(),
            ulleung.len()
        );
    }

    #[test]
    fn injection_is_deterministic() {
        let (g, d) = fixtures();
        let s = EventScenario::earthquake(Point::new(37.50, 127.00), 500);
        let a = inject(&s, d, g, 9);
        let b = inject(&s, d, g, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tweet.timestamp, y.tweet.timestamp);
            assert_eq!(x.true_district, y.true_district);
        }
    }

    #[test]
    fn delays_are_exponential_ish() {
        let (g, d) = fixtures();
        let s = EventScenario::earthquake(Point::new(37.50, 127.00), 10_000);
        let reports = inject(&s, d, g, 3);
        let delays: Vec<f64> = reports
            .iter()
            .map(|r| (r.tweet.timestamp - s.start) as f64)
            .collect();
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        assert!(
            (mean - s.mean_delay_secs).abs() < s.mean_delay_secs * 0.5,
            "mean delay {mean}"
        );
    }

    #[test]
    fn some_reports_have_gps_most_do_not() {
        let (g, d) = fixtures();
        let s = EventScenario::earthquake(Point::new(37.50, 127.00), 0);
        let reports = inject(&s, d, g, 4);
        let with_gps = reports.iter().filter(|r| r.tweet.gps.is_some()).count();
        assert!(with_gps > 0, "no GPS reports at all");
        assert!(
            with_gps * 2 < reports.len(),
            "{with_gps}/{} tagged",
            reports.len()
        );
    }
}
