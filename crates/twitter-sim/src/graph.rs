//! The follower graph.
//!
//! Generated with preferential attachment (Barabási–Albert): each new user
//! follows `m` existing users chosen proportionally to in-degree, producing
//! the heavy-tailed follower counts real Twitter has. The paper's crawler
//! walks this graph: "we collect the users with crawler that explores the
//! every followers of the given seed user".

use rand::Rng;

use crate::ids::UserId;

/// A directed follower graph. `followers[u]` lists the users who follow
/// `u` — the set the paper's crawler requests page by page.
#[derive(Clone, Debug)]
pub struct FollowerGraph {
    followers: Vec<Vec<u32>>,
    edges: usize,
}

impl FollowerGraph {
    /// An empty graph over `n` users (used by datasets that never crawl).
    pub fn empty(n: usize) -> Self {
        FollowerGraph {
            followers: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Generates a preferential-attachment graph over `n` users where every
    /// user follows about `m` others.
    ///
    /// # Panics
    /// Panics if `n == 0` or `m == 0`.
    pub fn preferential_attachment<R: Rng>(n: usize, m: usize, rng: &mut R) -> Self {
        assert!(n > 0 && m > 0, "graph needs users and edges");
        let mut followers: Vec<Vec<u32>> = vec![Vec::new(); n];
        // `targets` holds one entry per (in-)degree unit; sampling from it is
        // sampling proportional to degree.
        let mut targets: Vec<u32> = Vec::with_capacity(n * m * 2);
        let mut edges = 0usize;

        // Seed clique among the first m+1 users so early sampling has mass.
        let seed = (m + 1).min(n);
        for (v, follower_list) in followers.iter_mut().enumerate().take(seed) {
            for u in 0..seed {
                if u != v {
                    follower_list.push(u as u32);
                    targets.push(v as u32);
                    edges += 1;
                }
            }
        }
        for u in seed..n {
            let mut chosen: Vec<u32> = Vec::with_capacity(m);
            let mut guard = 0;
            while chosen.len() < m && guard < m * 20 {
                guard += 1;
                let t = targets[rng.gen_range(0..targets.len())];
                if t as usize != u && !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            for t in chosen {
                followers[t as usize].push(u as u32);
                targets.push(t);
                edges += 1;
            }
            // The new user also becomes reachable.
            targets.push(u as u32);
        }
        FollowerGraph { followers, edges }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.followers.len()
    }

    /// True when the graph has no users.
    pub fn is_empty(&self) -> bool {
        self.followers.is_empty()
    }

    /// Total number of follow edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The followers of `user`.
    pub fn followers_of(&self, user: UserId) -> &[u32] {
        &self.followers[user.0 as usize]
    }

    /// The highest-in-degree user — a natural crawl seed (the paper seeds
    /// from a well-connected account).
    pub fn best_seed(&self) -> UserId {
        let idx = (0..self.followers.len())
            .max_by_key(|&i| self.followers[i].len())
            .unwrap_or(0);
        UserId(idx as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = FollowerGraph::preferential_attachment(1000, 8, &mut rng);
        assert_eq!(g.len(), 1000);
        assert!(g.edge_count() >= 1000 * 7, "edges {}", g.edge_count());
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = FollowerGraph::preferential_attachment(5000, 5, &mut rng);
        let mut degrees: Vec<usize> = (0..g.len())
            .map(|i| g.followers_of(UserId(i as u64)).len())
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: usize = degrees.iter().take(50).sum();
        let total: usize = degrees.iter().sum();
        // The top 1% of users hold far more than 1% of the follower edges.
        assert!(top1pct * 10 > total, "top1% {top1pct} of {total}");
    }

    #[test]
    fn best_seed_has_max_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = FollowerGraph::preferential_attachment(500, 4, &mut rng);
        let seed = g.best_seed();
        let max = (0..500)
            .map(|i| g.followers_of(UserId(i)).len())
            .max()
            .unwrap();
        assert_eq!(g.followers_of(seed).len(), max);
    }

    #[test]
    fn no_self_follows_or_duplicate_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = FollowerGraph::preferential_attachment(800, 6, &mut rng);
        for u in 0..g.len() {
            let fs = g.followers_of(UserId(u as u64));
            assert!(!fs.contains(&(u as u32)), "self follow at {u}");
            let mut sorted = fs.to_vec();
            sorted.sort_unstable();
            let before = sorted.len();
            sorted.dedup();
            assert_eq!(sorted.len(), before, "duplicate follower edge at {u}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = FollowerGraph::empty(10);
        assert_eq!(g.len(), 10);
        assert_eq!(g.edge_count(), 0);
        assert!(g.followers_of(UserId(3)).is_empty());
    }
}
