//! A rate-limited Twitter-API facade over a generated [`Dataset`].
//!
//! Models the constraints the paper worked under ("Due to the changed policy
//! of Twitter, we collect the users with crawler …"): cursor-paginated
//! follower lists, per-window request quotas, and a keyword search endpoint.
//! All waiting happens on the [`SimClock`], so a full 52k-user crawl
//! "takes days" of simulated time in milliseconds of real time.

use stir_geokr::Gazetteer;

use crate::clock::SimClock;
use crate::datasets::Dataset;
use crate::ids::UserId;
use crate::profiles::UserProfile;
use crate::tweetgen::Tweet;

/// API request quota: `requests` per rolling `window_secs` window.
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Requests allowed per window.
    pub requests: u32,
    /// Window length in seconds.
    pub window_secs: u64,
}

impl RateLimit {
    /// The 2011-era authenticated REST quota: 350 requests/hour.
    pub fn rest_2011() -> Self {
        RateLimit {
            requests: 350,
            window_secs: 3600,
        }
    }
}

/// Errors an API call can return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// Quota exhausted; retry after the window resets (seconds on the sim
    /// clock).
    RateLimited {
        /// Sim-clock time at which the window resets.
        reset_at: u64,
    },
    /// Unknown user id.
    NotFound,
}

/// One page of follower ids plus the next cursor, mirroring
/// `GET followers/ids`.
#[derive(Clone, Debug)]
pub struct FollowerPage {
    /// Follower ids on this page.
    pub ids: Vec<UserId>,
    /// Cursor for the next page, `None` when exhausted.
    pub next_cursor: Option<u64>,
}

/// Page size of `followers/ids` (the real endpoint returns 5000 ids/page).
pub const FOLLOWER_PAGE: usize = 5000;

/// The API facade. Holds a reference to the dataset and a sim clock;
/// interior counters track quota usage.
pub struct TwitterApi<'d> {
    dataset: &'d Dataset,
    gazetteer: &'d Gazetteer,
    clock: SimClock,
    limit: RateLimit,
    window_start: std::cell::Cell<u64>,
    window_used: std::cell::Cell<u32>,
    total_requests: std::cell::Cell<u64>,
}

impl<'d> TwitterApi<'d> {
    /// Wraps a dataset with the default 2011 REST rate limit.
    pub fn new(dataset: &'d Dataset, gazetteer: &'d Gazetteer) -> Self {
        Self::with_limit(dataset, gazetteer, RateLimit::rest_2011())
    }

    /// Wraps a dataset with an explicit rate limit.
    pub fn with_limit(dataset: &'d Dataset, gazetteer: &'d Gazetteer, limit: RateLimit) -> Self {
        TwitterApi {
            dataset,
            gazetteer,
            clock: SimClock::new(),
            limit,
            window_start: std::cell::Cell::new(0),
            window_used: std::cell::Cell::new(0),
            total_requests: std::cell::Cell::new(0),
        }
    }

    /// The simulated clock (shared with callers that want to sleep).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Total requests issued.
    pub fn total_requests(&self) -> u64 {
        self.total_requests.get()
    }

    fn charge(&self) -> Result<(), ApiError> {
        let now = self.clock.now();
        if now >= self.window_start.get() + self.limit.window_secs {
            self.window_start.set(now);
            self.window_used.set(0);
        }
        if self.window_used.get() >= self.limit.requests {
            return Err(ApiError::RateLimited {
                reset_at: self.window_start.get() + self.limit.window_secs,
            });
        }
        self.window_used.set(self.window_used.get() + 1);
        self.total_requests.set(self.total_requests.get() + 1);
        // Each request costs a little simulated latency.
        self.clock.advance(1);
        Ok(())
    }

    fn check_user(&self, user: UserId) -> Result<(), ApiError> {
        if (user.0 as usize) < self.dataset.len() {
            Ok(())
        } else {
            Err(ApiError::NotFound)
        }
    }

    /// `GET users/show` — a user's public profile.
    pub fn user_show(&self, user: UserId) -> Result<&'d UserProfile, ApiError> {
        self.check_user(user)?;
        self.charge()?;
        Ok(&self.dataset.users[user.0 as usize])
    }

    /// `GET followers/ids` — one page of followers.
    pub fn followers_ids(&self, user: UserId, cursor: u64) -> Result<FollowerPage, ApiError> {
        self.check_user(user)?;
        self.charge()?;
        let all = self.dataset.graph.followers_of(user);
        let start = cursor as usize;
        let end = (start + FOLLOWER_PAGE).min(all.len());
        let ids = all[start..end].iter().map(|&u| UserId(u as u64)).collect();
        let next_cursor = (end < all.len()).then_some(end as u64);
        Ok(FollowerPage { ids, next_cursor })
    }

    /// `GET statuses/user_timeline` — the user's tweets (the simulation
    /// regenerates them deterministically).
    pub fn user_timeline(&self, user: UserId) -> Result<Vec<Tweet>, ApiError> {
        self.check_user(user)?;
        self.charge()?;
        Ok(self.dataset.user_tweets(self.gazetteer, user))
    }

    /// `GET search` — tweets whose text contains `term` (case-insensitive),
    /// scanning up to `max_users` users from the given offset. Expensive by
    /// construction, like the real search API's shallow index.
    pub fn search(
        &self,
        term: &str,
        user_offset: usize,
        max_users: usize,
    ) -> Result<Vec<Tweet>, ApiError> {
        self.charge()?;
        let term_lc = term.to_ascii_lowercase();
        let mut hits = Vec::new();
        let end = (user_offset + max_users).min(self.dataset.len());
        for idx in user_offset..end {
            for t in self.dataset.user_tweets(self.gazetteer, UserId(idx as u64)) {
                if t.text.to_ascii_lowercase().contains(&term_lc) {
                    hits.push(t);
                }
            }
        }
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;

    fn fixtures() -> (&'static Gazetteer, &'static Dataset) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let d: &'static Dataset = Box::leak(Box::new(Dataset::generate(
            DatasetSpec {
                n_users: 300,
                ..DatasetSpec::korean_paper()
            },
            g,
            21,
        )));
        (g, d)
    }

    #[test]
    fn user_show_and_timeline() {
        let (g, d) = fixtures();
        let api = TwitterApi::new(d, g);
        let u = api.user_show(UserId(5)).unwrap();
        assert_eq!(u.id, UserId(5));
        let tl = api.user_timeline(UserId(5)).unwrap();
        assert_eq!(tl.len(), u.tweet_budget as usize);
        assert_eq!(api.total_requests(), 2);
    }

    #[test]
    fn unknown_user_is_not_found() {
        let (g, d) = fixtures();
        let api = TwitterApi::new(d, g);
        assert_eq!(
            api.user_show(UserId(999_999)).unwrap_err(),
            ApiError::NotFound
        );
    }

    #[test]
    fn follower_pagination_covers_everything() {
        let (g, d) = fixtures();
        let api = TwitterApi::with_limit(
            d,
            g,
            RateLimit {
                requests: 10_000,
                window_secs: 3600,
            },
        );
        let seed = d.graph.best_seed();
        let mut cursor = 0u64;
        let mut collected = Vec::new();
        loop {
            let page = api.followers_ids(seed, cursor).unwrap();
            collected.extend(page.ids);
            match page.next_cursor {
                Some(c) => cursor = c,
                None => break,
            }
        }
        assert_eq!(collected.len(), d.graph.followers_of(seed).len());
    }

    #[test]
    fn rate_limit_trips_and_resets() {
        let (g, d) = fixtures();
        let api = TwitterApi::with_limit(
            d,
            g,
            RateLimit {
                requests: 2,
                window_secs: 100,
            },
        );
        api.user_show(UserId(0)).unwrap();
        api.user_show(UserId(1)).unwrap();
        match api.user_show(UserId(2)) {
            Err(ApiError::RateLimited { reset_at }) => {
                api.clock().advance_to(reset_at);
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
        assert!(api.user_show(UserId(2)).is_ok());
    }

    #[test]
    fn search_finds_injected_terms() {
        let (g, d) = fixtures();
        let api = TwitterApi::with_limit(
            d,
            g,
            RateLimit {
                requests: 10_000,
                window_secs: 3600,
            },
        );
        // Background chatter includes "coffee time" openers.
        let hits = api.search("coffee", 0, 300).unwrap();
        assert!(!hits.is_empty());
        for t in &hits {
            assert!(t.text.to_ascii_lowercase().contains("coffee"));
        }
    }
}
