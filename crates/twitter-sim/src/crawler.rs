//! The follower crawler (paper §III-B: "we collect the users with crawler
//! that explores the every followers of the given seed user").
//!
//! Breadth-first over `followers/ids`, sleeping on the simulated clock when
//! the API rate-limits. The report carries the funnel's first number (users
//! discovered) plus the crawl cost in requests and simulated days.

use std::collections::VecDeque;

use crate::api::{ApiError, TwitterApi};
use crate::ids::UserId;

/// Result of a crawl.
#[derive(Clone, Debug)]
pub struct CrawlReport {
    /// Users discovered, in discovery (BFS) order; includes the seed.
    pub users: Vec<UserId>,
    /// API requests issued.
    pub requests: u64,
    /// Times the crawler hit the rate limit and slept.
    pub rate_limit_stalls: u64,
    /// Total simulated duration of the crawl, in seconds.
    pub simulated_secs: u64,
}

impl CrawlReport {
    /// Simulated crawl duration in days.
    pub fn simulated_days(&self) -> f64 {
        self.simulated_secs as f64 / 86_400.0
    }
}

/// A breadth-first follower crawler over a [`TwitterApi`].
pub struct Crawler<'a, 'd> {
    api: &'a TwitterApi<'d>,
}

impl<'a, 'd> Crawler<'a, 'd> {
    /// Wraps an API handle.
    pub fn new(api: &'a TwitterApi<'d>) -> Self {
        Crawler { api }
    }

    /// Crawls from `seed`, visiting every reachable user's follower list,
    /// until `max_users` users have been discovered (or the frontier
    /// empties). Sleeps through rate limits on the simulated clock.
    pub fn run(&self, seed: UserId, max_users: usize) -> CrawlReport {
        let start = self.api.clock().now();
        let mut visited: Vec<bool> = Vec::new();
        let mark = |u: UserId, visited: &mut Vec<bool>| -> bool {
            let idx = u.0 as usize;
            if idx >= visited.len() {
                visited.resize(idx + 1, false);
            }
            if visited[idx] {
                false
            } else {
                visited[idx] = true;
                true
            }
        };
        let mut users = Vec::new();
        let mut queue = VecDeque::new();
        let mut stalls = 0u64;
        mark(seed, &mut visited);
        users.push(seed);
        queue.push_back(seed);

        'bfs: while let Some(u) = queue.pop_front() {
            let mut cursor = 0u64;
            loop {
                match self.api.followers_ids(u, cursor) {
                    Ok(page) => {
                        for f in page.ids {
                            if mark(f, &mut visited) {
                                users.push(f);
                                queue.push_back(f);
                                if users.len() >= max_users {
                                    break 'bfs;
                                }
                            }
                        }
                        match page.next_cursor {
                            Some(c) => cursor = c,
                            None => break,
                        }
                    }
                    Err(ApiError::RateLimited { reset_at }) => {
                        stalls += 1;
                        self.api.clock().advance_to(reset_at);
                    }
                    Err(ApiError::NotFound) => break,
                }
            }
        }
        CrawlReport {
            users,
            requests: self.api.total_requests(),
            rate_limit_stalls: stalls,
            simulated_secs: self.api.clock().now() - start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::RateLimit;
    use crate::datasets::{Dataset, DatasetSpec};
    use stir_geokr::Gazetteer;

    fn fixtures(n: usize) -> (&'static Gazetteer, &'static Dataset) {
        let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
        let d: &'static Dataset = Box::leak(Box::new(Dataset::generate(
            DatasetSpec {
                n_users: n,
                ..DatasetSpec::korean_paper()
            },
            g,
            33,
        )));
        (g, d)
    }

    #[test]
    fn crawl_discovers_most_of_the_graph() {
        let (g, d) = fixtures(2000);
        let api = TwitterApi::with_limit(
            d,
            g,
            RateLimit {
                requests: 1_000_000,
                window_secs: 3600,
            },
        );
        let report = Crawler::new(&api).run(d.graph.best_seed(), usize::MAX);
        // Follower-direction BFS reaches everyone who follows somebody
        // reachable; preferential attachment keeps that near-total.
        assert!(
            report.users.len() > d.len() * 9 / 10,
            "discovered {} of {}",
            report.users.len(),
            d.len()
        );
        assert!(report.requests > 0);
    }

    #[test]
    fn crawl_respects_max_users() {
        let (g, d) = fixtures(2000);
        let api = TwitterApi::with_limit(
            d,
            g,
            RateLimit {
                requests: 1_000_000,
                window_secs: 3600,
            },
        );
        let report = Crawler::new(&api).run(d.graph.best_seed(), 500);
        assert_eq!(report.users.len(), 500);
    }

    #[test]
    fn crawl_has_no_duplicates() {
        let (g, d) = fixtures(1000);
        let api = TwitterApi::with_limit(
            d,
            g,
            RateLimit {
                requests: 1_000_000,
                window_secs: 3600,
            },
        );
        let report = Crawler::new(&api).run(d.graph.best_seed(), usize::MAX);
        let mut ids: Vec<_> = report.users.iter().map(|u| u.0).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn tight_rate_limit_forces_stalls_and_sim_time() {
        let (g, d) = fixtures(800);
        let api = TwitterApi::with_limit(
            d,
            g,
            RateLimit {
                requests: 50,
                window_secs: 900,
            },
        );
        let report = Crawler::new(&api).run(d.graph.best_seed(), usize::MAX);
        assert!(report.rate_limit_stalls > 0);
        assert!(
            report.simulated_secs > 900,
            "sim time {}",
            report.simulated_secs
        );
    }
}
