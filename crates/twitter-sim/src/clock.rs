//! A virtual clock for the API/crawler simulation.
//!
//! All "time" in the simulation is seconds on this clock; nothing reads the
//! wall clock, so crawls over rate-limited APIs reproduce exactly.

use std::cell::Cell;

/// Simulated seconds since the start of the collection window.
#[derive(Debug, Default)]
pub struct SimClock {
    now: Cell<u64>,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        SimClock { now: Cell::new(0) }
    }

    /// A clock starting at `t` seconds.
    pub fn starting_at(t: u64) -> Self {
        SimClock { now: Cell::new(t) }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> u64 {
        self.now.get()
    }

    /// Advances the clock by `secs`.
    pub fn advance(&self, secs: u64) {
        self.now.set(self.now.get() + secs);
    }

    /// Advances the clock to `t` if `t` is in the future; never goes back.
    pub fn advance_to(&self, t: u64) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0);
        c.advance(10);
        assert_eq!(c.now(), 10);
        c.advance_to(5); // no-op backwards
        assert_eq!(c.now(), 10);
        c.advance_to(42);
        assert_eq!(c.now(), 42);
    }

    #[test]
    fn starting_offset() {
        let c = SimClock::starting_at(100);
        assert_eq!(c.now(), 100);
    }
}
