//! Per-user mobility models: the districts a user actually tweets from.

use rand::Rng;
use stir_geokr::{DistrictId, Gazetteer};

use crate::archetype::Archetype;

/// A categorical distribution over the districts a user visits.
///
/// `spots` holds `(district, weight)` pairs with weights summing to 1,
/// ordered by descending weight. The *profile* district may or may not be
/// among them — that gap is exactly what the paper measures.
#[derive(Clone, Debug)]
pub struct MobilityModel {
    spots: Vec<(DistrictId, f64)>,
    cumulative: Vec<f64>,
}

impl MobilityModel {
    /// Builds a model from raw `(district, weight)` pairs.
    ///
    /// # Panics
    /// Panics if `spots` is empty or total weight is not positive.
    pub fn from_spots(mut spots: Vec<(DistrictId, f64)>) -> Self {
        assert!(!spots.is_empty(), "mobility model needs at least one spot");
        let total: f64 = spots.iter().map(|s| s.1).sum();
        assert!(total > 0.0, "mobility weights must be positive");
        for s in &mut spots {
            s.1 /= total;
        }
        spots.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let mut acc = 0.0;
        let cumulative = spots
            .iter()
            .map(|s| {
                acc += s.1;
                acc
            })
            .collect();
        MobilityModel { spots, cumulative }
    }

    /// Builds the model for a user of the given archetype whose *profile*
    /// names `profile_district`.
    ///
    /// Secondary spots are drawn from the districts nearest the anchor
    /// (urban mobility is local), with an occasional far-away district for
    /// travel. For [`Archetype::Commuter`] the spots orbit the profile
    /// district but exclude it; for [`Archetype::Relocated`] they orbit a
    /// random distant district.
    pub fn build<R: Rng>(
        archetype: Archetype,
        profile_district: DistrictId,
        gazetteer: &Gazetteer,
        rng: &mut R,
    ) -> Self {
        let home = profile_district;
        match archetype {
            Archetype::HomeBody => {
                let n = rng.gen_range(1..=4);
                let mut spots = vec![(home, 0.55)];
                spots.extend(zipf_spots(gazetteer, home, n, 0.45, true, rng));
                MobilityModel::from_spots(spots)
            }
            Archetype::DualCenter => {
                let second = pick_nearby(gazetteer, home, rng, &[home]);
                let n = rng.gen_range(1..=4);
                // Residual mass (0.28) stays below home's weight even when a
                // single extra spot absorbs all of it, so home ranks second.
                let mut spots = vec![(second, 0.42), (home, 0.30)];
                spots.extend(zipf_spots_excluding(
                    gazetteer,
                    home,
                    n,
                    0.28,
                    &[home, second],
                    rng,
                ));
                MobilityModel::from_spots(spots)
            }
            Archetype::TertiaryHome => {
                let a = pick_nearby(gazetteer, home, rng, &[home]);
                let b = pick_nearby(gazetteer, home, rng, &[home, a]);
                let n = rng.gen_range(2..=5);
                let mut spots = vec![(a, 0.32), (b, 0.24), (home, 0.14)];
                spots.extend(zipf_spots_excluding(
                    gazetteer,
                    home,
                    n,
                    0.30,
                    &[home, a, b],
                    rng,
                ));
                MobilityModel::from_spots(spots)
            }
            Archetype::Wanderer => {
                let n = rng.gen_range(6..=10);
                let mut spots = vec![(home, 0.07)];
                // Near-flat weights with jitter; wanderers roam widely, so
                // half the spots are drawn from anywhere in the country.
                let mut chosen = vec![home];
                for _ in 0..n {
                    let d = if rng.gen_bool(0.5) {
                        pick_nearby(gazetteer, home, rng, &chosen)
                    } else {
                        pick_anywhere(gazetteer, rng, &chosen)
                    };
                    chosen.push(d);
                    let w = (0.93 / n as f64) * rng.gen_range(0.6..1.4);
                    spots.push((d, w));
                }
                MobilityModel::from_spots(spots)
            }
            Archetype::Commuter => {
                let work = pick_nearby(gazetteer, home, rng, &[home]);
                let mut spots = vec![(work, 0.70)];
                let mut taken = vec![home, work];
                if rng.gen_bool(0.8) {
                    let hangout = pick_nearby(gazetteer, home, rng, &taken);
                    taken.push(hangout);
                    spots.push((hangout, 0.22));
                }
                if rng.gen_bool(0.4) {
                    let extra = pick_anywhere(gazetteer, rng, &taken);
                    spots.push((extra, 0.08));
                }
                MobilityModel::from_spots(spots)
            }
            Archetype::Relocated => {
                let new_home = pick_anywhere(gazetteer, rng, &[home]);
                let n = rng.gen_range(0..=2);
                let mut spots = vec![(new_home, 0.7)];
                spots.extend(zipf_spots_excluding(
                    gazetteer,
                    new_home,
                    n,
                    0.3,
                    &[home, new_home],
                    rng,
                ));
                MobilityModel::from_spots(spots)
            }
        }
    }

    /// The `(district, weight)` pairs, heaviest first.
    pub fn spots(&self) -> &[(DistrictId, f64)] {
        &self.spots
    }

    /// The probability mass on `district` (0 when not a spot).
    pub fn weight_of(&self, district: DistrictId) -> f64 {
        self.spots
            .iter()
            .find(|s| s.0 == district)
            .map_or(0.0, |s| s.1)
    }

    /// Samples the district for one tweet.
    pub fn sample_district<R: Rng>(&self, rng: &mut R) -> DistrictId {
        let u = rng.gen::<f64>();
        let idx = self.cumulative.partition_point(|&c| c <= u);
        self.spots[idx.min(self.spots.len() - 1)].0
    }
}

/// Draws `n` nearby spots with Zipf-decaying weights totalling `mass`.
fn zipf_spots<R: Rng>(
    gazetteer: &Gazetteer,
    anchor: DistrictId,
    n: usize,
    mass: f64,
    exclude_anchor: bool,
    rng: &mut R,
) -> Vec<(DistrictId, f64)> {
    let exclude = if exclude_anchor { vec![anchor] } else { vec![] };
    zipf_spots_excluding(gazetteer, anchor, n, mass, &exclude, rng)
}

fn zipf_spots_excluding<R: Rng>(
    gazetteer: &Gazetteer,
    anchor: DistrictId,
    n: usize,
    mass: f64,
    exclude: &[DistrictId],
    rng: &mut R,
) -> Vec<(DistrictId, f64)> {
    let mut chosen: Vec<DistrictId> = exclude.to_vec();
    let mut out = Vec::with_capacity(n);
    let norm: f64 = (1..=n.max(1)).map(|i| 1.0 / (i as f64).powf(1.15)).sum();
    for i in 1..=n {
        let d = if rng.gen_bool(0.85) {
            pick_nearby(gazetteer, anchor, rng, &chosen)
        } else {
            pick_anywhere(gazetteer, rng, &chosen)
        };
        chosen.push(d);
        let w = mass * (1.0 / (i as f64).powf(1.15)) / norm;
        out.push((d, w));
    }
    out
}

/// A district near `anchor` not in `exclude` (falls back to any district).
fn pick_nearby<R: Rng>(
    gazetteer: &Gazetteer,
    anchor: DistrictId,
    rng: &mut R,
    exclude: &[DistrictId],
) -> DistrictId {
    let center = gazetteer.district(anchor).centroid;
    let ring = gazetteer.nearest_districts(center, 12);
    for _ in 0..16 {
        let d = ring[rng.gen_range(0..ring.len())];
        if !exclude.contains(&d) {
            return d;
        }
    }
    pick_anywhere(gazetteer, rng, exclude)
}

/// Any district not in `exclude`, population-weighted.
fn pick_anywhere<R: Rng>(gazetteer: &Gazetteer, rng: &mut R, exclude: &[DistrictId]) -> DistrictId {
    for _ in 0..32 {
        let d = gazetteer.weighted_district(rng.gen::<f64>());
        if !exclude.contains(&d) {
            return d;
        }
    }
    // Exhausted retries (tiny gazetteer in tests): linear fallback.
    gazetteer
        .districts()
        .iter()
        .map(|d| d.id)
        .find(|id| !exclude.contains(id))
        .unwrap_or(exclude[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaz() -> &'static Gazetteer {
        Box::leak(Box::new(Gazetteer::load()))
    }

    fn home(g: &Gazetteer) -> DistrictId {
        g.find_by_name_en("Yangcheon-gu")[0]
    }

    #[test]
    fn weights_normalized_and_sorted() {
        let g = gaz();
        let mut rng = StdRng::seed_from_u64(1);
        for arch in Archetype::ALL {
            let m = MobilityModel::build(arch, home(g), g, &mut rng);
            let total: f64 = m.spots().iter().map(|s| s.1).sum();
            assert!((total - 1.0).abs() < 1e-9, "{arch:?} total {total}");
            for w in m.spots().windows(2) {
                assert!(w[0].1 >= w[1].1, "{arch:?} not sorted");
            }
        }
    }

    #[test]
    fn homebody_home_is_top_spot() {
        let g = gaz();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let m = MobilityModel::build(Archetype::HomeBody, home(g), g, &mut rng);
            assert_eq!(m.spots()[0].0, home(g));
            assert!(m.spots()[0].1 > 0.5);
        }
    }

    #[test]
    fn dualcenter_home_is_second() {
        let g = gaz();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let m = MobilityModel::build(Archetype::DualCenter, home(g), g, &mut rng);
            assert_ne!(m.spots()[0].0, home(g));
            assert_eq!(m.spots()[1].0, home(g));
        }
    }

    #[test]
    fn never_home_archetypes_exclude_home() {
        let g = gaz();
        let mut rng = StdRng::seed_from_u64(4);
        for arch in [Archetype::Commuter, Archetype::Relocated] {
            for _ in 0..50 {
                let m = MobilityModel::build(arch, home(g), g, &mut rng);
                assert_eq!(m.weight_of(home(g)), 0.0, "{arch:?} visits home");
            }
        }
    }

    #[test]
    fn commuter_has_narrow_range() {
        let g = gaz();
        let mut rng = StdRng::seed_from_u64(5);
        let mut total_spots = 0usize;
        for _ in 0..100 {
            let m = MobilityModel::build(Archetype::Commuter, home(g), g, &mut rng);
            total_spots += m.spots().len();
        }
        let avg = total_spots as f64 / 100.0;
        assert!((1.5..3.5).contains(&avg), "commuter avg spots {avg}");
    }

    #[test]
    fn wanderer_has_wide_range() {
        let g = gaz();
        let mut rng = StdRng::seed_from_u64(6);
        let m = MobilityModel::build(Archetype::Wanderer, home(g), g, &mut rng);
        assert!(m.spots().len() >= 7, "wanderer spots {}", m.spots().len());
        assert!(m.weight_of(home(g)) > 0.0);
        assert!(m.weight_of(home(g)) < 0.15);
    }

    #[test]
    fn sampling_tracks_weights() {
        let g = gaz();
        let mut rng = StdRng::seed_from_u64(7);
        let m = MobilityModel::build(Archetype::HomeBody, home(g), g, &mut rng);
        let n = 20_000;
        let mut home_hits = 0;
        for _ in 0..n {
            if m.sample_district(&mut rng) == home(g) {
                home_hits += 1;
            }
        }
        let expected = m.weight_of(home(g));
        let got = home_hits as f64 / n as f64;
        assert!(
            (got - expected).abs() < 0.02,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn spots_are_distinct() {
        let g = gaz();
        let mut rng = StdRng::seed_from_u64(8);
        for arch in Archetype::ALL {
            for _ in 0..20 {
                let m = MobilityModel::build(arch, home(g), g, &mut rng);
                let mut ids: Vec<_> = m.spots().iter().map(|s| s.0).collect();
                ids.sort_unstable();
                let before = ids.len();
                ids.dedup();
                assert_eq!(ids.len(), before, "{arch:?} has duplicate spots");
            }
        }
    }
}
