//! User mobility archetypes.
//!
//! The paper measures *where people actually tweet* relative to the location
//! they wrote in their profile, and sketches the behaviours behind the
//! numbers: users who "post a half of his/her tweets at the profile
//! location", users with "another place for posting tweets instead of the
//! profile location", commuters who "provide their hometown location for the
//! profile, but they usually stay outside for work", and narrow-mobility
//! users. Each archetype encodes one of those behaviours; the mix is a
//! dataset parameter, and the Top-k group shapes **emerge** from sampling —
//! the analysis never reads the archetype.

use rand::Rng;

/// A user's ground-truth mobility behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Archetype {
    /// Lives and mostly tweets in the profile district (expected Top-1).
    HomeBody,
    /// Two centres of life; the non-profile one slightly dominates
    /// (expected Top-2).
    DualCenter,
    /// The profile district is one of several regular spots, none dominant
    /// (expected Top-3 … Top-5).
    TertiaryHome,
    /// Many spots, wide range, profile district visited rarely (expected
    /// high Top-k or None; highest distinct-district counts).
    Wanderer,
    /// Profile names the hometown, but work/life happens entirely elsewhere
    /// in a narrow 2–3 district range (expected None, low district count —
    /// the paper's §IV "possible scenario").
    Commuter,
    /// Moved away; the profile still names the old home, every tweet comes
    /// from the new region (expected None).
    Relocated,
}

impl Archetype {
    /// All archetypes, in mix order.
    pub const ALL: [Archetype; 6] = [
        Archetype::HomeBody,
        Archetype::DualCenter,
        Archetype::TertiaryHome,
        Archetype::Wanderer,
        Archetype::Commuter,
        Archetype::Relocated,
    ];

    /// True when the archetype never tweets from the profile district, i.e.
    /// its users can only land in the None group.
    pub fn never_home(self) -> bool {
        matches!(self, Archetype::Commuter | Archetype::Relocated)
    }
}

/// A probability mix over archetypes; weights need not be normalized.
#[derive(Clone, Debug)]
pub struct ArchetypeMix {
    weights: [f64; 6],
    total: f64,
}

impl ArchetypeMix {
    /// Builds a mix from per-archetype weights (order of [`Archetype::ALL`]).
    ///
    /// # Panics
    /// Panics if all weights are zero or any is negative.
    pub fn new(weights: [f64; 6]) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "negative archetype weight"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "archetype mix must have positive mass");
        ArchetypeMix { weights, total }
    }

    /// The mix calibrated for the Korean follower-crawl dataset: strong home
    /// anchoring (≈ half the cohort in Top-1/Top-2) with ≈ 30% never-home.
    pub fn korean() -> Self {
        // Structural never-home mass is 0.27; sampling noise (users with
        // only a handful of GPS tweets missing their home district) lifts
        // the realized None share to the paper's ≈ 30%, and Top-1∪Top-2
        // lands near the paper's "nearly half".
        ArchetypeMix::new([0.44, 0.13, 0.07, 0.09, 0.17, 0.10])
    }

    /// The mix for the streaming "Lady Gaga" dataset: a broader, younger,
    /// more mobile audience — weaker home anchoring, more wanderers.
    pub fn lady_gaga() -> Self {
        ArchetypeMix::new([0.30, 0.12, 0.08, 0.20, 0.18, 0.12])
    }

    /// The probability of `archetype` under this mix.
    pub fn probability(&self, archetype: Archetype) -> f64 {
        let idx = Archetype::ALL.iter().position(|&a| a == archetype).unwrap();
        self.weights[idx] / self.total
    }

    /// Samples an archetype.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Archetype {
        let mut target = rng.gen::<f64>() * self.total;
        for (i, &w) in self.weights.iter().enumerate() {
            if target < w {
                return Archetype::ALL[i];
            }
            target -= w;
        }
        *Archetype::ALL.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        for mix in [ArchetypeMix::korean(), ArchetypeMix::lady_gaga()] {
            let sum: f64 = Archetype::ALL.iter().map(|&a| mix.probability(a)).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_tracks_weights() {
        let mix = ArchetypeMix::korean();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 6];
        let n = 50_000;
        for _ in 0..n {
            let a = mix.sample(&mut rng);
            let idx = Archetype::ALL.iter().position(|&x| x == a).unwrap();
            counts[idx] += 1;
        }
        for (i, &a) in Archetype::ALL.iter().enumerate() {
            let expected = mix.probability(a);
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "{a:?}: got {got:.3}, expected {expected:.3}"
            );
        }
    }

    #[test]
    fn never_home_flags() {
        assert!(Archetype::Commuter.never_home());
        assert!(Archetype::Relocated.never_home());
        assert!(!Archetype::HomeBody.never_home());
        assert!(!Archetype::Wanderer.never_home());
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_mix_panics() {
        ArchetypeMix::new([0.0; 6]);
    }
}
