//! The pruned, parallel, zero-copy scan engine.
//!
//! Three ideas compose here:
//!
//! 1. **Zone-map pruning** — a segment whose [`crate::ZoneMap`] disproves
//!    the predicate is skipped without touching a byte of its payload.
//! 2. **Header-only decode** — surviving segments are walked as
//!    [`TweetView`]s: the fixed fields decode, the text stays a borrowed
//!    slice. Predicates need only headers (see
//!    [`Query::matches_header`]), so rejected records never pay the text
//!    allocation, and accepted ones pay it only if the consumer asks.
//! 3. **Block-parallel execution** — surviving segments are chunked into
//!    slot blocks and fanned over a work-stealing pool (an atomic cursor
//!    over the block list, the same scheme the geocoding stage uses).
//!    Results are stitched back in block order, which is exactly
//!    (segment, slot) order — so output is byte-identical to a serial
//!    scan at any thread count or block size.
//!
//! [`ScanMetrics`] reports what the engine did: segments pruned, records
//! header-rejected, bytes decoded versus bytes stored, throughput, and
//! per-thread block counts.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::codec::{TweetHeader, TweetView};
use crate::colseg::COL_HEADER_BYTES;
use crate::query::Query;
use crate::store::{SegmentRef, TweetStore};
use crate::wal::WalRecovery;

/// Default records per work block for the parallel scan.
pub const DEFAULT_SCAN_BLOCK: usize = 4096;

/// Minimum surviving records before a parallel scan spawns threads.
const PARALLEL_THRESHOLD: usize = 4096;

/// Knobs for [`Query::scan_filtered`].
#[derive(Clone, Copy, Debug)]
pub struct ScanOptions {
    /// Worker threads (1 = serial, no spawn).
    pub threads: usize,
    /// Records per work block handed to a worker at a time.
    pub block_records: usize,
}

impl ScanOptions {
    /// Serial execution (the default).
    pub fn serial() -> Self {
        ScanOptions {
            threads: 1,
            block_records: DEFAULT_SCAN_BLOCK,
        }
    }

    /// Parallel execution over `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ScanOptions {
            threads: threads.max(1),
            block_records: DEFAULT_SCAN_BLOCK,
        }
    }
}

impl Default for ScanOptions {
    fn default() -> Self {
        Self::serial()
    }
}

/// What a scan did: pruning effectiveness, decode volume, throughput.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScanMetrics {
    /// Segments in the store.
    pub segments_total: u64,
    /// Segments skipped entirely by zone-map pruning.
    pub segments_pruned: u64,
    /// Records in the store.
    pub records_stored: u64,
    /// Records inside pruned segments (never decoded at all).
    pub records_pruned: u64,
    /// Records whose header was decoded.
    pub headers_decoded: u64,
    /// Header-decoded records rejected by the predicate.
    pub records_rejected: u64,
    /// Records that matched and were handed to the consumer.
    pub records_yielded: u64,
    /// Records whose header failed to decode (skipped).
    pub records_corrupt: u64,
    /// Encoded payload bytes in the store.
    pub bytes_stored: u64,
    /// Bytes actually decoded: header bytes for every examined record,
    /// plus text bytes for yielded ones (the text a consumer *may* read;
    /// rejected records never pay it). For columnar segments this counts
    /// the column bytes materialized per record.
    pub bytes_decoded: u64,
    /// Row-format (`STIRSEG1`) segments seen, including the active tail.
    pub segments_row: u64,
    /// Columnar (`STIRSEG2`) segments seen.
    pub segments_col: u64,
    /// Bytes read from columnar segments (primitive column slices plus
    /// text bytes for yielded records).
    pub col_bytes_read: u64,
    /// What the same reads would have decoded on the row path — header
    /// frames for every examined record, text for yields. `col_bytes_read`
    /// vs this is the observable decode win of the columnar format.
    pub row_bytes_equiv: u64,
    /// Worker threads used (1 = serial).
    pub threads: usize,
    /// Work blocks completed per thread (work-stealing makes this uneven).
    pub blocks_per_thread: Vec<u64>,
    /// Wall-clock time of the scan.
    pub wall: Duration,
    /// Per-shard breakdown when the scan ran over a sharded store
    /// (empty for single-store scans). Rendered as one row per shard.
    pub per_shard: Vec<ShardScanMetrics>,
    /// Sealed segments answered from their materialized group sketch
    /// instead of being scanned (0 when the sketch path was off or
    /// inapplicable).
    pub sketch_segments: u64,
    /// Sketch entries merged across those segments — the work the merge
    /// path did in place of per-record decodes.
    pub sketch_entries_merged: u64,
    /// Records scanned record-wise outside the sketch path: the open tail
    /// plus any non-day-aligned window boundaries.
    pub records_scanned_residual: u64,
    /// Encoded sketch bytes merged; against `bytes_stored` of the sketched
    /// segments this is the aggregation-pushdown read ratio.
    pub sketch_bytes: u64,
}

/// One shard's slice of a sharded scan: pruning, decode volume, and the
/// WAL recovery outcome the shard opened with (if it opened from a log).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardScanMetrics {
    /// Shard index.
    pub shard: u32,
    /// Segments the shard holds.
    pub segments_total: u64,
    /// Segments zone-map-pruned in this shard.
    pub segments_pruned: u64,
    /// Records the shard holds.
    pub records_stored: u64,
    /// Records inside this shard's pruned segments.
    pub records_pruned: u64,
    /// Bytes decoded from this shard.
    pub bytes_decoded: u64,
    /// How this shard's WAL recovery went at open (`None` when the shard
    /// was built in memory or loaded from a persisted snapshot).
    pub wal: Option<WalRecovery>,
}

impl ScanMetrics {
    /// Fraction of stored records skipped without any decode.
    pub fn prune_fraction(&self) -> f64 {
        if self.records_stored == 0 {
            0.0
        } else {
            self.records_pruned as f64 / self.records_stored as f64
        }
    }

    /// Bytes decoded as a fraction of bytes stored.
    pub fn decode_fraction(&self) -> f64 {
        if self.bytes_stored == 0 {
            0.0
        } else {
            self.bytes_decoded as f64 / self.bytes_stored as f64
        }
    }

    /// Stored records processed (pruned or scanned) per wall-clock second.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.records_stored as f64 / secs
        }
    }

    /// Multi-line human-readable rendering (joins `PipelineMetrics`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "store scan: {}/{} segments pruned, {}/{} records skipped ({:.1}%)\n",
            self.segments_pruned,
            self.segments_total,
            self.records_pruned,
            self.records_stored,
            100.0 * self.prune_fraction(),
        ));
        out.push_str(&format!(
            "  headers decoded {}  rejected {}  yielded {}  corrupt {}\n",
            self.headers_decoded, self.records_rejected, self.records_yielded, self.records_corrupt,
        ));
        out.push_str(&format!(
            "  bytes decoded {} of {} stored ({:.1}%)\n",
            self.bytes_decoded,
            self.bytes_stored,
            100.0 * self.decode_fraction(),
        ));
        out.push_str(&format!(
            "  formats: {} row / {} col segments; column bytes read {} vs row-equivalent {}\n",
            self.segments_row, self.segments_col, self.col_bytes_read, self.row_bytes_equiv,
        ));
        out.push_str(&format!(
            "  {} thread(s), blocks per thread {:?}, {:.0} records/sec\n",
            self.threads,
            self.blocks_per_thread,
            self.records_per_sec(),
        ));
        if self.sketch_segments > 0 {
            let ratio = if self.bytes_stored == 0 {
                0.0
            } else {
                self.sketch_bytes as f64 / self.bytes_stored as f64
            };
            out.push_str(&format!(
                "  sketches: {} segment(s) answered from sketches, {} entries merged, \
                 {} residual records scanned, {} sketch bytes vs {} stored ({:.1}%)\n",
                self.sketch_segments,
                self.sketch_entries_merged,
                self.records_scanned_residual,
                self.sketch_bytes,
                self.bytes_stored,
                100.0 * ratio,
            ));
        }
        for s in &self.per_shard {
            out.push_str(&format!(
                "  shard {}: {}/{} segments pruned, {}/{} records pruned, {} bytes decoded",
                s.shard,
                s.segments_pruned,
                s.segments_total,
                s.records_pruned,
                s.records_stored,
                s.bytes_decoded,
            ));
            match s.wal {
                Some(w) => out.push_str(&format!(
                    ", wal recovered {} (truncated {} B)\n",
                    w.recovered, w.truncated_bytes
                )),
                None => out.push('\n'),
            }
        }
        out
    }
}

/// Per-worker counters, merged into [`ScanMetrics`] at the end.
#[derive(Clone, Copy, Debug, Default)]
struct LocalCounts {
    headers_decoded: u64,
    records_rejected: u64,
    records_yielded: u64,
    records_corrupt: u64,
    bytes_decoded: u64,
    col_bytes_read: u64,
    row_bytes_equiv: u64,
    blocks: u64,
}

impl LocalCounts {
    fn merge_into(&self, m: &mut ScanMetrics) {
        m.headers_decoded += self.headers_decoded;
        m.records_rejected += self.records_rejected;
        m.records_yielded += self.records_yielded;
        m.records_corrupt += self.records_corrupt;
        m.bytes_decoded += self.bytes_decoded;
        m.col_bytes_read += self.col_bytes_read;
        m.row_bytes_equiv += self.row_bytes_equiv;
    }
}

/// Walks `[lo, hi)` slots of one segment, calling `on_match` for each
/// predicate-passing view. The shared inner loop of serial and parallel
/// scans — identical per-record behaviour guarantees identical output
/// across formats and thread counts.
fn scan_slots<F: FnMut(&TweetView<'_>)>(
    seg: SegmentRef<'_>,
    lo: u32,
    hi: u32,
    query: &Query,
    counts: &mut LocalCounts,
    mut on_match: F,
) {
    match seg {
        SegmentRef::Rows(s) => {
            for slot in lo..hi {
                let view = match s.view(slot) {
                    Ok(v) => v,
                    Err(_) => {
                        counts.records_corrupt += 1;
                        continue;
                    }
                };
                counts.headers_decoded += 1;
                counts.bytes_decoded += view.header_len() as u64;
                counts.row_bytes_equiv += view.header_len() as u64;
                if query.matches_header(&view.header) {
                    counts.records_yielded += 1;
                    counts.bytes_decoded += view.raw_text().len() as u64;
                    counts.row_bytes_equiv += view.raw_text().len() as u64;
                    on_match(&view);
                } else {
                    counts.records_rejected += 1;
                }
            }
        }
        SegmentRef::Cols(c) => {
            // Columns decoded once at load: a "view" here assembles a
            // header from primitive arrays, charged at the fixed column
            // width. The row-equivalent is the segment's recorded row
            // header bytes, pro-rated over the slots examined.
            if !c.is_empty() {
                counts.row_bytes_equiv += c.row_header_bytes() * (hi - lo) as u64 / c.len() as u64;
            }
            for slot in lo..hi {
                let view = c.view(slot);
                counts.headers_decoded += 1;
                counts.bytes_decoded += view.header_len() as u64;
                counts.col_bytes_read += view.header_len() as u64;
                if query.matches_header(&view.header) {
                    counts.records_yielded += 1;
                    let text = view.raw_text().len() as u64;
                    counts.bytes_decoded += text;
                    counts.col_bytes_read += text;
                    counts.row_bytes_equiv += text;
                    on_match(&view);
                } else {
                    counts.records_rejected += 1;
                }
            }
        }
    }
}

/// Splits the store into (pruned-out, surviving) segment lists and
/// pre-fills the pruning and per-format fields of the metrics.
fn prune<'s>(query: &Query, store: &'s TweetStore, m: &mut ScanMetrics) -> Vec<SegmentRef<'s>> {
    let segments = store.segments();
    m.segments_total = segments.len() as u64;
    m.records_stored = store.len() as u64;
    m.bytes_stored = store.stats().payload_bytes;
    let mut survivors = Vec::with_capacity(segments.len());
    for seg in segments {
        if seg.is_columnar() {
            m.segments_col += 1;
        } else {
            m.segments_row += 1;
        }
        if query.zone_may_match(seg.zone_map()) {
            survivors.push(seg);
        } else {
            m.segments_pruned += 1;
            m.records_pruned += seg.len() as u64;
        }
    }
    survivors
}

/// Serial streaming scan; see [`Query::for_each`].
pub(crate) fn for_each<F: FnMut(&TweetView<'_>)>(
    query: &Query,
    store: &TweetStore,
    mut visit: F,
) -> ScanMetrics {
    let start = Instant::now();
    let mut m = ScanMetrics {
        threads: 1,
        ..Default::default()
    };
    let survivors = prune(query, store, &mut m);
    let mut counts = LocalCounts::default();
    for &seg in &survivors {
        scan_slots(seg, 0, seg.len() as u32, query, &mut counts, &mut visit);
        counts.blocks += 1;
    }
    counts.merge_into(&mut m);
    m.blocks_per_thread = vec![counts.blocks];
    m.wall = start.elapsed();
    m
}

/// Pruned, optionally parallel scan; see [`Query::scan_filtered`].
pub(crate) fn scan_filtered<R, F>(
    query: &Query,
    store: &TweetStore,
    opts: &ScanOptions,
    map: &F,
) -> (Vec<R>, ScanMetrics)
where
    R: Send,
    F: Fn(&TweetView<'_>) -> Option<R> + Sync,
{
    let start = Instant::now();
    let mut m = ScanMetrics::default();
    let survivors = prune(query, store, &mut m);
    let surviving_records: usize = survivors.iter().map(|s| s.len()).sum();

    if opts.threads <= 1 || surviving_records < PARALLEL_THRESHOLD {
        // Serial: one implicit block per surviving segment.
        let mut out = Vec::new();
        let mut counts = LocalCounts::default();
        for &seg in &survivors {
            scan_slots(seg, 0, seg.len() as u32, query, &mut counts, |view| {
                if let Some(r) = map(view) {
                    out.push(r);
                }
            });
            counts.blocks += 1;
        }
        counts.merge_into(&mut m);
        m.threads = 1;
        m.blocks_per_thread = vec![counts.blocks];
        m.wall = start.elapsed();
        return (out, m);
    }

    // Chunk surviving segments into slot blocks. Block order is
    // (segment, slot) order, so stitching by block index reproduces the
    // serial output exactly.
    let block_records = opts.block_records.max(64) as u32;
    let mut blocks: Vec<(usize, u32, u32)> = Vec::new();
    for (i, seg) in survivors.iter().enumerate() {
        let len = seg.len() as u32;
        let mut lo = 0u32;
        while lo < len {
            let hi = (lo + block_records).min(len);
            blocks.push((i, lo, hi));
            lo = hi;
        }
    }

    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<(usize, Vec<R>)> = Vec::new();
    let mut per_thread_blocks = Vec::with_capacity(opts.threads);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..opts.threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local_parts: Vec<(usize, Vec<R>)> = Vec::new();
                    let mut counts = LocalCounts::default();
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(seg_idx, lo, hi)) = blocks.get(b) else {
                            break;
                        };
                        let mut out = Vec::new();
                        scan_slots(survivors[seg_idx], lo, hi, query, &mut counts, |view| {
                            if let Some(r) = map(view) {
                                out.push(r);
                            }
                        });
                        local_parts.push((b, out));
                        counts.blocks += 1;
                    }
                    (local_parts, counts)
                })
            })
            .collect();
        for w in workers {
            let (local_parts, counts) = w.join().expect("scan worker panicked");
            parts.extend(local_parts);
            per_thread_blocks.push(counts.blocks);
            counts.merge_into(&mut m);
        }
    });

    parts.sort_unstable_by_key(|(b, _)| *b);
    let mut out = Vec::with_capacity(parts.iter().map(|(_, v)| v.len()).sum());
    for (_, mut v) in parts {
        out.append(&mut v);
    }
    m.threads = opts.threads;
    m.blocks_per_thread = per_thread_blocks;
    m.wall = start.elapsed();
    (out, m)
}

/// A thread-safe, block-granular header reader over a whole store — the
/// store-side half of a fused pipeline: many workers call
/// [`HeaderBlocks::next_block_with`] concurrently, each draw decodes one
/// block of record **headers** (the text stays untouched in the segment
/// buffers, exactly like [`TweetStore::scan_views`]) straight into the
/// caller's reusable buffer. Blocks are laid out in `(segment, slot)`
/// order at construction, an atomic cursor hands them out, and every
/// block carries the global *ordinal* (slot position across the whole
/// store) of its first slot. A corrupt record is skipped and counted;
/// ordinals of later rows in that block shift down but stay strictly
/// increasing and unique across the store — which is all a
/// determinism-by-ordinal consumer needs, since serial replay skips the
/// same records in the same order.
pub struct HeaderBlocks<'s> {
    blocks: Vec<HeaderBlock<'s>>,
    cursor: AtomicUsize,
    block_records: usize,
    records: u64,
    segments: u64,
    segments_row: u64,
    segments_col: u64,
    headers_decoded: AtomicU64,
    records_corrupt: AtomicU64,
    bytes_decoded: AtomicU64,
    col_bytes_read: AtomicU64,
    row_bytes_equiv: AtomicU64,
}

struct HeaderBlock<'s> {
    seg: SegmentRef<'s>,
    lo: u32,
    hi: u32,
    first_ordinal: u64,
}

/// One columnar block's rows as borrowed primitive slices — what
/// [`HeaderBlocks::next_block_mixed`] hands a consumer for `STIRSEG2`
/// segments. All slices have the block's length; coordinates use the
/// micro-degree grid with `i32::MIN` meaning "no GPS fix" (the same
/// sentinel the pipeline's column batches use), so a consumer bulk-copies
/// them without any per-record decode or transpose.
#[derive(Clone, Copy, Debug)]
pub struct ColumnSlice<'a> {
    /// Author user ids.
    pub users: &'a [u64],
    /// Timestamps (seconds since the collection-window epoch).
    pub timestamps: &'a [u64],
    /// Latitudes in micro-degrees (`i32::MIN` = no fix).
    pub lats_e6: &'a [i32],
    /// Longitudes in micro-degrees (`i32::MIN` = no fix).
    pub lons_e6: &'a [i32],
}

impl ColumnSlice<'_> {
    /// Rows in the slice.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

/// Column bytes a direct columnar block read touches per row: user(8) +
/// timestamp(8) + lat_e6(4) + lon_e6(4). Ids and text are never read.
const COL_SLICE_BYTES: u64 = 24;

/// What [`HeaderBlocks::next_block_mixed`] hands its sink: a whole
/// columnar block at once, or one decoded header at a time from a row
/// block. A single sink closure (rather than one per variant) lets a
/// consumer accumulate both shapes into the same mutable buffer.
#[derive(Clone, Copy, Debug)]
pub enum BlockChunk<'a> {
    /// One `STIRSEG2` block as borrowed primitive column slices.
    Columns(ColumnSlice<'a>),
    /// One decoded row-segment header.
    Header(&'a TweetHeader),
}

impl<'s> HeaderBlocks<'s> {
    /// Chunks every segment of `store` into blocks of at most
    /// `block_records` slots (min 1), in `(segment, slot)` order.
    pub fn new(store: &'s TweetStore, block_records: usize) -> Self {
        let block_records = block_records.max(1);
        let step = block_records as u32;
        let mut blocks = Vec::new();
        let mut ordinal = 0u64;
        let mut segments_row = 0u64;
        let mut segments_col = 0u64;
        let segments = store.segments();
        for &seg in &segments {
            if seg.is_columnar() {
                segments_col += 1;
            } else {
                segments_row += 1;
            }
            let len = seg.len() as u32;
            let mut lo = 0u32;
            while lo < len {
                let hi = (lo + step).min(len);
                blocks.push(HeaderBlock {
                    seg,
                    lo,
                    hi,
                    first_ordinal: ordinal + lo as u64,
                });
                lo = hi;
            }
            ordinal += len as u64;
        }
        HeaderBlocks {
            blocks,
            cursor: AtomicUsize::new(0),
            block_records,
            records: ordinal,
            segments: segments.len() as u64,
            segments_row,
            segments_col,
            headers_decoded: AtomicU64::new(0),
            records_corrupt: AtomicU64::new(0),
            bytes_decoded: AtomicU64::new(0),
            col_bytes_read: AtomicU64::new(0),
            row_bytes_equiv: AtomicU64::new(0),
        }
    }

    /// Charges a columnar block's reads to the counters: `per_row` column
    /// bytes for each row, and the segment's row header bytes pro-rated
    /// over the rows as the row-path equivalent.
    fn charge_columnar(&self, c: &crate::colseg::ColumnSegment, rows: u64, per_row: u64) {
        self.headers_decoded.fetch_add(rows, Ordering::Relaxed);
        self.bytes_decoded
            .fetch_add(rows * per_row, Ordering::Relaxed);
        self.col_bytes_read
            .fetch_add(rows * per_row, Ordering::Relaxed);
        if !c.is_empty() {
            self.row_bytes_equiv.fetch_add(
                c.row_header_bytes() * rows / c.len() as u64,
                Ordering::Relaxed,
            );
        }
    }

    /// Draws the next block and hands every decoded header to `sink`, in
    /// slot order. Returns the first slot's global ordinal, or `None` when
    /// the store is drained. Columnar blocks assemble headers from their
    /// columns; consumers that can take raw columns should prefer
    /// [`HeaderBlocks::next_block_mixed`], which skips even that.
    pub fn next_block_headers(&self, mut sink: impl FnMut(&TweetHeader)) -> Option<u64> {
        let b = self.cursor.fetch_add(1, Ordering::Relaxed);
        let block = self.blocks.get(b)?;
        match block.seg {
            SegmentRef::Rows(s) => {
                let mut decoded = 0u64;
                let mut corrupt = 0u64;
                let mut bytes = 0u64;
                for slot in block.lo..block.hi {
                    match s.view(slot) {
                        Ok(view) => {
                            decoded += 1;
                            bytes += view.header_len() as u64;
                            sink(&view.header);
                        }
                        Err(_) => corrupt += 1,
                    }
                }
                self.headers_decoded.fetch_add(decoded, Ordering::Relaxed);
                self.records_corrupt.fetch_add(corrupt, Ordering::Relaxed);
                self.bytes_decoded.fetch_add(bytes, Ordering::Relaxed);
                self.row_bytes_equiv.fetch_add(bytes, Ordering::Relaxed);
            }
            SegmentRef::Cols(c) => {
                for slot in block.lo..block.hi {
                    sink(&c.header(slot));
                }
                self.charge_columnar(c, (block.hi - block.lo) as u64, COL_HEADER_BYTES as u64);
            }
        }
        Some(block.first_ordinal)
    }

    /// Draws the next block through the format-aware direct path: a
    /// columnar block is handed to `sink` as one
    /// [`BlockChunk::Columns`] of borrowed primitive slices (zero
    /// per-record work — no header is ever assembled), a row block decodes
    /// headers into per-record [`BlockChunk::Header`] calls exactly like
    /// [`HeaderBlocks::next_block_headers`]. Returns the first slot's
    /// global ordinal, or `None` when the store is drained. Both paths
    /// visit identical logical rows in identical order, so a consumer
    /// that treats them uniformly stays byte-identical across formats.
    pub fn next_block_mixed(&self, mut sink: impl FnMut(BlockChunk<'_>)) -> Option<u64> {
        let b = self.cursor.fetch_add(1, Ordering::Relaxed);
        let block = self.blocks.get(b)?;
        match block.seg {
            SegmentRef::Rows(s) => {
                let mut decoded = 0u64;
                let mut corrupt = 0u64;
                let mut bytes = 0u64;
                for slot in block.lo..block.hi {
                    match s.view(slot) {
                        Ok(view) => {
                            decoded += 1;
                            bytes += view.header_len() as u64;
                            sink(BlockChunk::Header(&view.header));
                        }
                        Err(_) => corrupt += 1,
                    }
                }
                self.headers_decoded.fetch_add(decoded, Ordering::Relaxed);
                self.records_corrupt.fetch_add(corrupt, Ordering::Relaxed);
                self.bytes_decoded.fetch_add(bytes, Ordering::Relaxed);
                self.row_bytes_equiv.fetch_add(bytes, Ordering::Relaxed);
            }
            SegmentRef::Cols(c) => {
                let (lo, hi) = (block.lo as usize, block.hi as usize);
                sink(BlockChunk::Columns(ColumnSlice {
                    users: &c.users()[lo..hi],
                    timestamps: &c.timestamps()[lo..hi],
                    lats_e6: &c.lats_e6()[lo..hi],
                    lons_e6: &c.lons_e6()[lo..hi],
                }));
                self.charge_columnar(c, (hi - lo) as u64, COL_SLICE_BYTES);
            }
        }
        Some(block.first_ordinal)
    }

    /// Draws the next block, decodes its headers, and fills `out`
    /// (cleared first) with `map(header)` per decoded record. Returns the
    /// first slot's global ordinal, or `None` when the store is drained.
    pub fn next_block_with<T>(
        &self,
        out: &mut Vec<T>,
        mut map: impl FnMut(&TweetHeader) -> T,
    ) -> Option<u64> {
        out.clear();
        self.next_block_headers(|h| out.push(map(h)))
    }

    /// Records per full block, as configured.
    pub fn block_records(&self) -> usize {
        self.block_records
    }

    /// Records stored across all segments.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Segments the store holds.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Headers decoded so far (exact once concurrent readers joined).
    pub fn headers_decoded(&self) -> u64 {
        self.headers_decoded.load(Ordering::Relaxed)
    }

    /// Corrupt records skipped so far.
    pub fn records_corrupt(&self) -> u64 {
        self.records_corrupt.load(Ordering::Relaxed)
    }

    /// Header bytes decoded so far (text is never touched).
    pub fn bytes_decoded(&self) -> u64 {
        self.bytes_decoded.load(Ordering::Relaxed)
    }

    /// Row-format segments (including the active tail).
    pub fn segments_row(&self) -> u64 {
        self.segments_row
    }

    /// Columnar segments.
    pub fn segments_col(&self) -> u64 {
        self.segments_col
    }

    /// Bytes read from columnar segments so far.
    pub fn col_bytes_read(&self) -> u64 {
        self.col_bytes_read.load(Ordering::Relaxed)
    }

    /// Row-path equivalent of all reads so far (what the same draws would
    /// have decoded from row frames).
    pub fn row_bytes_equiv(&self) -> u64 {
        self.row_bytes_equiv.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::TweetRecord;
    use stir_geoindex::{BBox, Point};

    fn build_store_n(segment_bytes: usize, n: u64) -> TweetStore {
        let mut s = TweetStore::with_segment_bytes(segment_bytes);
        // Time-ordered appends, so segments cover disjoint time ranges and
        // zone-map pruning on a time predicate has real bite.
        for i in 0..n {
            s.append(&TweetRecord {
                id: i,
                user: i % 50,
                timestamp: i * 10,
                gps: (i % 5 == 0).then(|| {
                    Point::new(
                        35.0 + (i % 100) as f64 * 0.03,
                        126.0 + (i % 70) as f64 * 0.04,
                    )
                }),
                text: format!("tweet body number {i} with some realistic length padding"),
            });
        }
        s
    }

    fn build_store(segment_bytes: usize) -> TweetStore {
        build_store_n(segment_bytes, 3000)
    }

    fn naive(query: &Query, store: &TweetStore) -> Vec<u64> {
        store
            .scan()
            .filter_map(|r| r.ok())
            .filter(|r| query.matches(r))
            .map(|r| r.id)
            .collect()
    }

    #[test]
    fn serial_scan_matches_naive() {
        let s = build_store(4096);
        for q in [
            Query::all(),
            Query::all().gps(true),
            Query::all().user(7),
            Query::all().between(5_000, 9_000),
            Query::all().within(BBox::new(35.0, 126.0, 36.0, 127.0)),
            Query::all().user(3).between(0, 15_000).gps(true),
        ] {
            let (got, m) = q.scan_filtered(&s, &ScanOptions::serial(), |v| Some(v.header.id));
            assert_eq!(got, naive(&q, &s), "query {q:?}");
            assert_eq!(m.records_yielded as usize, got.len());
            assert_eq!(
                m.records_pruned + m.headers_decoded + m.records_corrupt,
                m.records_stored
            );
        }
    }

    #[test]
    fn parallel_scan_identical_to_serial() {
        // Large enough that the surviving record count clears the
        // parallel threshold and threads actually spawn.
        let s = build_store_n(2048, 10_000);
        let q = Query::all().between(2_000, 80_000);
        let (serial, _) = q.scan_filtered(&s, &ScanOptions::serial(), |v| Some(v.header.id));
        for threads in [2, 3, 8] {
            for block in [64, 101, 1000] {
                let opts = ScanOptions {
                    threads,
                    block_records: block,
                };
                let (par, m) = q.scan_filtered(&s, &opts, |v| Some(v.header.id));
                assert_eq!(par, serial, "threads={threads} block={block}");
                assert_eq!(m.threads, threads);
                assert_eq!(m.blocks_per_thread.len(), threads);
            }
        }
    }

    #[test]
    fn time_pruning_skips_segments() {
        let s = build_store(4096);
        assert!(s.stats().segments > 4, "fixture must roll segments");
        // A narrow window at the end of the corpus: early segments are
        // disjoint in time and must be pruned without a single decode.
        let q = Query::all().between(28_000, 30_000);
        let (rows, m) = q.scan_filtered(&s, &ScanOptions::serial(), |v| Some(v.header.id));
        assert_eq!(rows, naive(&q, &s));
        assert!(m.segments_pruned > 0, "metrics: {m:?}");
        assert!(m.records_pruned > 0);
        assert!(m.headers_decoded < m.records_stored);
        assert!(m.bytes_decoded < m.bytes_stored);
    }

    #[test]
    fn user_out_of_range_prunes_everything() {
        let s = build_store(4096);
        let q = Query::all().user(10_000);
        let (rows, m) = q.for_each_collect(&s);
        assert!(rows.is_empty());
        assert_eq!(m.segments_pruned, m.segments_total);
        assert_eq!(m.headers_decoded, 0);
        assert_eq!(m.bytes_decoded, 0);
    }

    #[test]
    fn rejected_records_never_pay_text_bytes() {
        let s = build_store(1 << 20); // single segment: nothing pruned
        let q = Query::all().user(0); // 60 of 3000 match
        let (_, m) = q.scan_filtered(&s, &ScanOptions::serial(), |v| Some(v.header.id));
        assert_eq!(m.segments_pruned, 0);
        assert_eq!(m.headers_decoded, 3000);
        assert_eq!(m.records_yielded, 60);
        // Decoded bytes must be far below stored bytes: text is only
        // charged for the 2% of records that matched.
        assert!(
            m.bytes_decoded * 2 < m.bytes_stored,
            "decoded {} stored {}",
            m.bytes_decoded,
            m.bytes_stored
        );
    }

    #[test]
    fn for_each_streams_matches_in_order() {
        let s = build_store(2048);
        let q = Query::all().gps(true).between(0, 10_000);
        let mut ids = Vec::new();
        let m = q.for_each(&s, |v| ids.push(v.header.id));
        assert_eq!(ids, naive(&q, &s));
        assert_eq!(m.records_yielded as usize, ids.len());
        assert_eq!(m.threads, 1);
    }

    #[test]
    fn metrics_render_mentions_key_fields() {
        let s = build_store(4096);
        let q = Query::all().between(0, 5_000);
        let (_, m) = q.scan_filtered(&s, &ScanOptions::with_threads(2), |v| Some(v.header.id));
        let text = m.render();
        for marker in [
            "store scan:",
            "segments pruned",
            "headers decoded",
            "bytes decoded",
            "records/sec",
        ] {
            assert!(text.contains(marker), "missing {marker:?} in:\n{text}");
        }
    }

    impl Query {
        /// Test helper: collect matching ids via the streaming visitor.
        fn for_each_collect(&self, store: &TweetStore) -> (Vec<u64>, ScanMetrics) {
            let mut ids = Vec::new();
            let m = self.for_each(store, |v| ids.push(v.header.id));
            (ids, m)
        }
    }

    #[test]
    fn header_blocks_drain_every_record_in_slot_order_with_slot_ordinals() {
        let s = build_store_n(4096, 500);
        let blocks = HeaderBlocks::new(&s, 64);
        assert_eq!(blocks.records(), 500);
        let mut buf: Vec<u64> = Vec::new();
        let mut ids = Vec::new();
        let mut last_first = None;
        while let Some(first) = blocks.next_block_with(&mut buf, |h| h.id) {
            // Ordinals strictly increase across blocks and each block's
            // rows rank densely after its first ordinal (no corruption
            // here, so ordinals are exactly slot positions).
            if let Some(prev) = last_first {
                assert!(first > prev);
            }
            last_first = Some(first);
            assert_eq!(buf.len() as u64, {
                let next = ids.len() as u64 + buf.len() as u64;
                next - first
            });
            ids.extend(buf.iter().copied());
        }
        assert_eq!(blocks.next_block_with(&mut buf, |h| h.id), None);
        // Serial reference: scan_views order.
        let reference: Vec<u64> = s.scan_views().map(|r| r.unwrap().header.id).collect();
        assert_eq!(ids, reference);
        assert_eq!(blocks.headers_decoded(), 500);
        assert_eq!(blocks.records_corrupt(), 0);
        // Header-only: decode volume falls far short of the stored bytes.
        assert!(blocks.bytes_decoded() < s.stats().payload_bytes);
    }

    #[test]
    fn header_blocks_mixed_path_identical_across_formats() {
        use crate::segment::quantize_e6;
        use crate::store::StoreFormat;
        // Same appends into a v1 and a v2 store: draining v1 via headers
        // and v2 via the column direct path must yield identical logical
        // rows in identical order, with identical ordinals.
        let build = |format| {
            let mut s = TweetStore::with_segment_bytes_and_format(2048, format);
            for i in 0..1500u64 {
                s.append(&TweetRecord {
                    id: i,
                    user: i % 40,
                    timestamp: i * 10,
                    gps: (i % 3 == 0).then(|| Point::new(37.0 + (i % 9) as f64 * 0.01, 127.0)),
                    text: format!("mixed path {i}"),
                });
            }
            s
        };
        let drain = |s: &TweetStore| {
            let blocks = HeaderBlocks::new(s, 128);
            let mut rows: Vec<(u64, u64, i32, i32)> = Vec::new();
            let mut ordinals = Vec::new();
            while let Some(ord) = blocks.next_block_mixed(|chunk| match chunk {
                BlockChunk::Columns(cols) => {
                    for i in 0..cols.len() {
                        rows.push((
                            cols.users[i],
                            cols.timestamps[i],
                            cols.lats_e6[i],
                            cols.lons_e6[i],
                        ));
                    }
                }
                BlockChunk::Header(h) => {
                    let (lat, lon) = h.gps.map(quantize_e6).unwrap_or((i32::MIN, i32::MIN));
                    rows.push((h.user, h.timestamp, lat, lon));
                }
            }) {
                ordinals.push(ord);
            }
            (
                rows,
                ordinals,
                blocks.col_bytes_read(),
                blocks.row_bytes_equiv(),
            )
        };
        let v1 = build(StoreFormat::V1);
        let v2 = build(StoreFormat::V2);
        let (rows1, ords1, col1, row_equiv1) = drain(&v1);
        let (rows2, ords2, col2, row_equiv2) = drain(&v2);
        assert_eq!(rows1, rows2);
        assert_eq!(ords1, ords2);
        assert_eq!(col1, 0, "v1 store reads no column bytes");
        assert!(col2 > 0, "v2 store must use the direct path");
        assert!(
            row_equiv2 > 0 && row_equiv2 <= row_equiv1,
            "row-equivalent accounting: v2 {row_equiv2} vs v1 {row_equiv1}"
        );
    }

    #[test]
    fn header_blocks_survive_concurrent_draining() {
        let s = build_store_n(2048, 1200);
        let blocks = HeaderBlocks::new(&s, 50);
        let total = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut buf: Vec<u64> = Vec::new();
                        let mut seen = 0u64;
                        while blocks.next_block_with(&mut buf, |h| h.user).is_some() {
                            seen += buf.len() as u64;
                        }
                        seen
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("drain worker panicked"))
                .sum::<u64>()
        });
        assert_eq!(total, 1200);
        assert_eq!(blocks.headers_decoded(), 1200);
    }
}
