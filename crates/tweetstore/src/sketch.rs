//! Seal-time group sketches: per-segment materialized grouping partials.
//!
//! A [`GroupSketch`] is an immutable aggregate computed over one sealed
//! segment: for every user, the merged `(district, count, first-slot)`
//! entries of their resolvable GPS fixes, bucketed by UTC day so windowed
//! queries can include or exclude whole buckets, plus per-day record
//! totals for funnel accounting. Because sealed segments never change, a
//! sketch computed once (at seal time, or lazily on first use for
//! segments sealed before sketches existed) answers every later grouping
//! query over that segment without touching a single record — the query
//! layer k-way merges the per-segment sketches and scans only the open
//! tail.
//!
//! The store layer is deliberately ignorant of *how* a GPS fix maps to a
//! district: callers hand in a [`SketchResolver`], and the resolver's
//! [`fingerprint`](SketchResolver::fingerprint) is embedded in every
//! sketch so a sketch built under one district vocabulary is never merged
//! under another.
//!
//! On disk a sketch rides as a sidecar block after the `STIRSEG2` column
//! region: the [`SKETCH_MAGIC`] tag, then one FNV-checksummed frame
//! (`len(u32 LE) · crc(u32 LE) · varint payload`). A tampered or
//! truncated sidecar fails its checksum and is dropped at load — the
//! query path falls back to the column scan; corruption can never error
//! (or silently skew) a query.

use std::collections::BTreeMap;

use crate::codec::{fnv1a, get_varint_at, put_varint, CodecError};
use crate::store::SegmentRef;

/// Magic tag opening a serialized sketch sidecar.
pub const SKETCH_MAGIC: &[u8; 8] = b"STIRSKT1";

/// Seconds per sketch day bucket.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// Maps a GPS fix to a district id for sketch building. Implemented by
/// the analysis layer (the gazetteer path); the store stays vocabulary-
/// agnostic.
pub trait SketchResolver: Send + Sync {
    /// Identifies the resolver's district vocabulary. Sketches embed this
    /// value; a consumer must ignore sketches whose fingerprint differs
    /// from its own resolver's.
    fn fingerprint(&self) -> u64;

    /// Resolves a coordinate to a district id, `None` when the fix is
    /// outside coverage (it counts as unresolvable, exactly as the scan
    /// path would have counted it).
    fn resolve(&self, lat: f64, lon: f64) -> Option<u32>;
}

/// One merged district entry of one user within one day bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchEntry {
    /// Resolver district id.
    pub district: u32,
    /// Resolvable fixes of this user in this district on this day.
    pub count: u64,
    /// Lowest slot (within the sketched segment) among those fixes — the
    /// merge layer turns `segment ordinal base + first_slot` back into a
    /// global first-seen ordinal.
    pub first_slot: u32,
}

/// One user's aggregates for one day bucket. The merged per-district
/// entries live in the sketch's flat entry arena — fetch them with
/// [`GroupSketch::entries_of`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DaySketch {
    /// UTC day ordinal (`timestamp / 86_400`).
    pub day: u64,
    /// GPS fixes of this user on this day that the resolver could not
    /// place (outside coverage).
    pub unresolvable: u64,
    /// Range of this day's entries in the sketch's entry arena.
    entry_lo: u32,
    entry_hi: u32,
}

/// One user's row within the segment. The day buckets live in the
/// sketch's flat day arena — fetch them with [`GroupSketch::days_of`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UserSketch {
    /// User id.
    pub user: u64,
    /// Range of this user's day buckets in the sketch's day arena.
    day_lo: u32,
    day_hi: u32,
}

/// Whole-segment per-day record totals (all users, GPS or not) — the
/// funnel's `tweets_total` / `tweets_with_gps` contributions of a window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DayTotal {
    /// UTC day ordinal.
    pub day: u64,
    /// Decodable records with a timestamp in this day.
    pub records: u64,
    /// Of those, records carrying a GPS fix.
    pub gps_records: u64,
}

/// The materialized grouping partial of one sealed segment.
///
/// The user → day → entry hierarchy is stored as three flat arenas with
/// index ranges, not nested vectors: a merge walks contiguous memory (no
/// pointer chasing through per-user heap allocations), and footprint /
/// entry accounting is O(1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSketch {
    /// Fingerprint of the [`SketchResolver`] this sketch was built under.
    pub fingerprint: u64,
    /// Slot count of the segment the sketch covers — a cheap staleness
    /// check for persisted sidecars.
    pub records: u64,
    /// Per-day record totals, ascending by day.
    pub day_totals: Vec<DayTotal>,
    /// Per-user rows, ascending by user id.
    pub users: Vec<UserSketch>,
    /// Day-bucket arena: each user's buckets contiguous, ascending by day.
    days: Vec<DaySketch>,
    /// Entry arena: each bucket's entries contiguous, ascending by
    /// district id.
    entries: Vec<SketchEntry>,
}

impl GroupSketch {
    /// Computes the sketch of `seg` under `resolver`. Slots whose header
    /// fails to decode are skipped, mirroring the scan engine's
    /// corrupt-record handling; the result is independent of scan order
    /// or parallelism by construction.
    pub fn build(seg: SegmentRef<'_>, resolver: &dyn SketchResolver) -> GroupSketch {
        let mut totals: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        type DayAcc = (u64, BTreeMap<u32, (u64, u32)>);
        let mut users: BTreeMap<u64, BTreeMap<u64, DayAcc>> = BTreeMap::new();
        for slot in 0..seg.len() as u32 {
            let Ok(h) = seg.header(slot) else { continue };
            let day = h.timestamp / SECONDS_PER_DAY;
            let t = totals.entry(day).or_insert((0, 0));
            t.0 += 1;
            let Some(p) = h.gps else { continue };
            t.1 += 1;
            let per_day = users
                .entry(h.user)
                .or_default()
                .entry(day)
                .or_insert_with(|| (0, BTreeMap::new()));
            match resolver.resolve(p.lat, p.lon) {
                None => per_day.0 += 1,
                Some(district) => per_day.1.entry(district).or_insert((0, slot)).0 += 1,
            }
        }
        let mut sketch = GroupSketch {
            fingerprint: resolver.fingerprint(),
            records: seg.len() as u64,
            day_totals: totals
                .into_iter()
                .map(|(day, (records, gps_records))| DayTotal {
                    day,
                    records,
                    gps_records,
                })
                .collect(),
            users: Vec::with_capacity(users.len()),
            days: Vec::new(),
            entries: Vec::new(),
        };
        for (user, days) in users {
            let day_lo = sketch.days.len() as u32;
            for (day, (unresolvable, entries)) in days {
                let entry_lo = sketch.entries.len() as u32;
                sketch.entries.extend(entries.into_iter().map(
                    |(district, (count, first_slot))| SketchEntry {
                        district,
                        count,
                        first_slot,
                    },
                ));
                sketch.days.push(DaySketch {
                    day,
                    unresolvable,
                    entry_lo,
                    entry_hi: sketch.entries.len() as u32,
                });
            }
            sketch.users.push(UserSketch {
                user,
                day_lo,
                day_hi: sketch.days.len() as u32,
            });
        }
        sketch
    }

    /// The day buckets of one user row, ascending by day. Empty for a row
    /// that did not come from this sketch.
    pub fn days_of(&self, u: &UserSketch) -> &[DaySketch] {
        self.days
            .get(u.day_lo as usize..u.day_hi as usize)
            .unwrap_or(&[])
    }

    /// The merged per-district entries of one day bucket, ascending by
    /// district id. Empty for a bucket that did not come from this sketch.
    pub fn entries_of(&self, d: &DaySketch) -> &[SketchEntry] {
        self.entries
            .get(d.entry_lo as usize..d.entry_hi as usize)
            .unwrap_or(&[])
    }

    /// Merged `(user, district, day)` entries in the sketch.
    pub fn entry_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// In-memory footprint in bytes — what a merge reads in place of the
    /// segment's records.
    pub fn mem_bytes(&self) -> u64 {
        (std::mem::size_of::<GroupSketch>()
            + self.day_totals.len() * std::mem::size_of::<DayTotal>()
            + self.users.len() * std::mem::size_of::<UserSketch>()
            + self.days.len() * std::mem::size_of::<DaySketch>()
            + self.entries.len() * std::mem::size_of::<SketchEntry>()) as u64
    }

    /// Serializes the sketch as a sidecar block: [`SKETCH_MAGIC`], then
    /// `len(u32 LE) · fnv1a(u32 LE) · varint payload`.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(64 + self.users.len() * 16);
        put_varint(&mut p, self.fingerprint);
        put_varint(&mut p, self.records);
        put_varint(&mut p, self.day_totals.len() as u64);
        for t in &self.day_totals {
            put_varint(&mut p, t.day);
            put_varint(&mut p, t.records);
            put_varint(&mut p, t.gps_records);
        }
        put_varint(&mut p, self.users.len() as u64);
        for u in &self.users {
            let days = self.days_of(u);
            put_varint(&mut p, u.user);
            put_varint(&mut p, days.len() as u64);
            for d in days {
                let entries = self.entries_of(d);
                put_varint(&mut p, d.day);
                put_varint(&mut p, d.unresolvable);
                put_varint(&mut p, entries.len() as u64);
                for e in entries {
                    put_varint(&mut p, e.district as u64);
                    put_varint(&mut p, e.count);
                    put_varint(&mut p, e.first_slot as u64);
                }
            }
        }
        let mut out = Vec::with_capacity(SKETCH_MAGIC.len() + 8 + p.len());
        out.extend_from_slice(SKETCH_MAGIC);
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&p).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Deserializes a sidecar block produced by [`GroupSketch::encode`],
    /// verifying the magic, the checksum, and every structural bound. Any
    /// corruption or truncation returns `Err`; no input can trigger a
    /// panic or an unbounded allocation. Trailing bytes after the block
    /// are an error — the sidecar is always the last thing in its file.
    pub fn decode(bytes: &[u8]) -> Result<GroupSketch, CodecError> {
        let head = SKETCH_MAGIC.len();
        if bytes.len() < head + 8 || &bytes[..head] != SKETCH_MAGIC {
            return Err(CodecError::UnexpectedEof);
        }
        let len = u32::from_le_bytes(bytes[head..head + 4].try_into().unwrap()) as usize;
        let expected = u32::from_le_bytes(bytes[head + 4..head + 8].try_into().unwrap());
        let Some(p) = bytes.get(head + 8..head + 8 + len) else {
            return Err(CodecError::UnexpectedEof);
        };
        if head + 8 + len != bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let actual = fnv1a(p);
        if actual != expected {
            return Err(CodecError::ChecksumMismatch { expected, actual });
        }
        let mut at = 0usize;
        let fingerprint = get_varint_at(p, &mut at)?;
        let records = get_varint_at(p, &mut at)?;
        let n_totals = get_varint_at(p, &mut at)? as usize;
        let mut day_totals = Vec::with_capacity(n_totals.min(1 << 12));
        for _ in 0..n_totals {
            let day = get_varint_at(p, &mut at)?;
            let records = get_varint_at(p, &mut at)?;
            let gps_records = get_varint_at(p, &mut at)?;
            day_totals.push(DayTotal {
                day,
                records,
                gps_records,
            });
        }
        let n_users = get_varint_at(p, &mut at)? as usize;
        let mut users = Vec::with_capacity(n_users.min(1 << 12));
        let mut days = Vec::new();
        let mut entries = Vec::new();
        for _ in 0..n_users {
            let user = get_varint_at(p, &mut at)?;
            let n_days = get_varint_at(p, &mut at)? as usize;
            let day_lo = days.len() as u32;
            for _ in 0..n_days {
                let day = get_varint_at(p, &mut at)?;
                let unresolvable = get_varint_at(p, &mut at)?;
                let n_entries = get_varint_at(p, &mut at)? as usize;
                let entry_lo = entries.len() as u32;
                for _ in 0..n_entries {
                    let district = get_varint_at(p, &mut at)?;
                    let count = get_varint_at(p, &mut at)?;
                    let first_slot = get_varint_at(p, &mut at)?;
                    if district > u32::MAX as u64 || first_slot > u32::MAX as u64 {
                        return Err(CodecError::VarintOverflow);
                    }
                    entries.push(SketchEntry {
                        district: district as u32,
                        count,
                        first_slot: first_slot as u32,
                    });
                }
                days.push(DaySketch {
                    day,
                    unresolvable,
                    entry_lo,
                    entry_hi: entries.len() as u32,
                });
            }
            users.push(UserSketch {
                user,
                day_lo,
                day_hi: days.len() as u32,
            });
        }
        if at != p.len() {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(GroupSketch {
            fingerprint,
            records,
            day_totals,
            users,
            days,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::TweetRecord;
    use crate::store::{StoreFormat, TweetStore};
    use stir_geoindex::Point;

    /// A toy resolver: districts are integer-degree latitude bands.
    struct Bands;

    impl SketchResolver for Bands {
        fn fingerprint(&self) -> u64 {
            0xBAAD
        }

        fn resolve(&self, lat: f64, lon: f64) -> Option<u32> {
            (lon < 130.0).then_some(lat as u32)
        }
    }

    fn fixture() -> GroupSketch {
        let mut store = TweetStore::with_segment_bytes_and_format(1024, StoreFormat::V2);
        for i in 0..500u64 {
            store.append(&TweetRecord {
                id: i,
                user: i % 7,
                timestamp: i * 600, // spans several days
                gps: (i % 3 != 0).then(|| {
                    Point::new(
                        35.0 + (i % 5) as f64,
                        if i % 11 == 0 { 150.0 } else { 127.0 },
                    )
                }),
                text: format!("t{i}"),
            });
        }
        let segs = store.segments();
        let seg = segs.iter().find(|s| s.is_columnar()).expect("sealed cols");
        GroupSketch::build(*seg, &Bands)
    }

    #[test]
    fn build_accounts_for_every_record() {
        let s = fixture();
        assert_eq!(s.fingerprint, 0xBAAD);
        let total: u64 = s.day_totals.iter().map(|t| t.records).sum();
        assert_eq!(total, s.records, "every decodable slot lands in a day");
        let gps: u64 = s.day_totals.iter().map(|t| t.gps_records).sum();
        let resolved: u64 = s
            .users
            .iter()
            .flat_map(|u| s.days_of(u))
            .flat_map(|d| s.entries_of(d))
            .map(|e| e.count)
            .sum();
        let unresolvable: u64 = s
            .users
            .iter()
            .flat_map(|u| s.days_of(u))
            .map(|d| d.unresolvable)
            .sum();
        assert_eq!(gps, resolved + unresolvable);
        assert!(unresolvable > 0, "fixture has out-of-coverage fixes");
        // Sorted invariants the k-way merge relies on.
        assert!(s.users.windows(2).all(|w| w[0].user < w[1].user));
        for u in &s.users {
            let days = s.days_of(u);
            assert!(!days.is_empty(), "every user row has at least one day");
            assert!(days.windows(2).all(|w| w[0].day < w[1].day));
            for d in days {
                assert!(s
                    .entries_of(d)
                    .windows(2)
                    .all(|w| w[0].district < w[1].district));
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = fixture();
        let bytes = s.encode();
        assert!(bytes.starts_with(SKETCH_MAGIC));
        let back = GroupSketch::decode(&bytes).unwrap();
        assert_eq!(s, back);
        assert!(s.entry_count() > 0);
        assert!(s.mem_bytes() > 0);
    }

    #[test]
    fn decode_rejects_tampering_truncation_and_trailing_garbage() {
        let s = fixture();
        let bytes = s.encode();
        // Flip every byte position in turn: decode must error or return
        // the original, never panic. (A flip in a varint's payload can
        // only survive if the checksum collides, which fnv1a won't here.)
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x40;
            assert!(GroupSketch::decode(&b).is_err(), "flip at {i} accepted");
        }
        for cut in 0..bytes.len() {
            assert!(GroupSketch::decode(&bytes[..cut]).is_err());
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(GroupSketch::decode(&padded).is_err());
        assert!(GroupSketch::decode(b"").is_err());
        assert!(GroupSketch::decode(b"STIRSKT1").is_err());
    }

    #[test]
    fn empty_segment_sketch_roundtrips() {
        let store = TweetStore::new();
        let segs = store.segments();
        let s = GroupSketch::build(segs[0], &Bands);
        assert_eq!(s.records, 0);
        assert!(s.day_totals.is_empty() && s.users.is_empty());
        assert_eq!(GroupSketch::decode(&s.encode()).unwrap(), s);
    }
}
