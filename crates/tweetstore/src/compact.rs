//! Compaction: rebuild a store keeping only the records a predicate
//! accepts.
//!
//! The paper's pipeline throws away ~99% of the corpus (non-GPS tweets,
//! tweets of removed users) before analysis. Doing that *in storage* —
//! compacting 11M records down to the 1–2% that matter — shrinks segments
//! and indexes by the same factor and makes every later scan proportionally
//! cheaper. [`gps_only`] is the canonical instance.
//!
//! Compaction is zero-copy on the record level for row segments: the
//! predicate is decided on [`TweetHeader`]s alone, and survivors are moved
//! as raw encoded frames (checksum re-verified by
//! [`TweetStore::append_raw`]) — a record's bytes are never decoded into a
//! `String` and re-encoded just to be kept. Survivors of columnar
//! (`STIRSEG2`) segments are re-framed from the decoded columns without a
//! float or UTF-8 round-trip.
//!
//! Compaction is also the row→column **upgrade point**: the output store
//! inherits the source's [`StoreFormat`](crate::store::StoreFormat), so
//! compacting a store switched to `V2` re-seals every full segment —
//! including legacy `STIRSEG1` row segments — in the columnar format.

use crate::codec::{encode_parts, TweetHeader};
use crate::store::{SegmentRef, TweetStore};

/// What a compaction did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records scanned in the source store.
    pub scanned: u64,
    /// Records kept.
    pub kept: u64,
    /// Source payload bytes.
    pub bytes_before: u64,
    /// Compacted payload bytes.
    pub bytes_after: u64,
}

impl CompactionReport {
    /// Fraction of records kept.
    pub fn keep_ratio(&self) -> f64 {
        if self.scanned == 0 {
            0.0
        } else {
            self.kept as f64 / self.scanned as f64
        }
    }

    /// Fraction of bytes reclaimed.
    pub fn space_saved(&self) -> f64 {
        if self.bytes_before == 0 {
            0.0
        } else {
            1.0 - self.bytes_after as f64 / self.bytes_before as f64
        }
    }
}

/// Rebuilds `store` keeping only records whose *header* satisfies `keep`.
/// Indexes are rebuilt from scratch; record order is preserved. Survivors
/// are copied as raw frames — decoded once for the header, never for the
/// text — and the copy is re-verified with the codec's FNV-1a checksum.
pub fn compact<F: FnMut(&TweetHeader) -> bool>(
    store: &TweetStore,
    mut keep: F,
) -> (TweetStore, CompactionReport) {
    let mut out = TweetStore::with_segment_bytes_and_format(store.segment_bytes(), store.format());
    // The output inherits the source's sketch resolver, so rebuilt columnar
    // seals re-materialize their group sketches eagerly; the source's own
    // sketches are never carried over (slots and counts changed).
    if let Some(sk) = store.sketcher() {
        out.set_sketcher(std::sync::Arc::clone(sk));
    }
    let mut report = CompactionReport {
        bytes_before: store.stats().payload_bytes,
        ..Default::default()
    };
    let mut scratch = Vec::new();
    for seg in store.segments() {
        match seg {
            SegmentRef::Rows(s) => {
                for slot in 0..s.len() as u32 {
                    let Ok(header) = s.header(slot) else {
                        continue;
                    };
                    report.scanned += 1;
                    if keep(&header) && out.append_raw(s.raw(slot)).is_ok() {
                        report.kept += 1;
                    }
                }
            }
            SegmentRef::Cols(c) => {
                for slot in 0..c.len() as u32 {
                    let header = c.header(slot);
                    report.scanned += 1;
                    if keep(&header) {
                        scratch.clear();
                        encode_parts(
                            &mut scratch,
                            header.id,
                            header.user,
                            header.timestamp,
                            c.gps_e6(slot),
                            c.text_bytes(slot),
                        );
                        if out.append_raw(&scratch).is_ok() {
                            report.kept += 1;
                        }
                    }
                }
            }
        }
    }
    report.bytes_after = out.stats().payload_bytes;
    (out, report)
}

/// The paper's filter: keep only GPS-tagged records.
pub fn gps_only(store: &TweetStore) -> (TweetStore, CompactionReport) {
    compact(store, |h| h.gps.is_some())
}

/// Keep only records whose author is in the `users` list — the
/// "well-defined profiles only" stage. The list may arrive in any order:
/// the probe is a binary search, so an unsorted input is sorted into a
/// local copy first (an already-sorted list pays nothing but the check —
/// release builds used to skip straight to the search and silently drop
/// survivors whose authors sat out of order).
pub fn users_only(store: &TweetStore, users: &[u64]) -> (TweetStore, CompactionReport) {
    let sorted: Vec<u64>;
    let users = if users.windows(2).all(|w| w[0] <= w[1]) {
        users
    } else {
        sorted = {
            let mut v = users.to_vec();
            v.sort_unstable();
            v
        };
        &sorted
    };
    compact(store, |h| users.binary_search(&h.user).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::TweetRecord;
    use crate::query::Query;
    use stir_geoindex::Point;

    fn populated() -> TweetStore {
        let mut s = TweetStore::new();
        for i in 0..1_000u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 10,
                timestamp: i * 60,
                gps: (i % 20 == 0).then(|| Point::new(37.5, 127.0)),
                text: format!("tweet {i}"),
            });
        }
        s
    }

    #[test]
    fn gps_only_keeps_exactly_gps_records() {
        let s = populated();
        let (c, report) = gps_only(&s);
        assert_eq!(report.scanned, 1_000);
        assert_eq!(report.kept, 50);
        assert_eq!(c.len(), 50);
        assert_eq!(c.stats().gps_records, 50);
        assert!((report.keep_ratio() - 0.05).abs() < 1e-12);
        assert!(report.space_saved() > 0.9, "saved {}", report.space_saved());
        // Queries still work on the compacted store.
        assert_eq!(Query::all().gps(true).execute(&c).len(), 50);
        assert!(Query::all().gps(false).execute(&c).is_empty());
    }

    #[test]
    fn users_only_filters_authors() {
        let s = populated();
        let (c, report) = users_only(&s, &[2, 5]);
        assert_eq!(report.kept, 200);
        assert!(c.scan().all(|r| {
            let u = r.unwrap().user;
            u == 2 || u == 5
        }));
    }

    #[test]
    fn users_only_accepts_unsorted_caller_list() {
        // Regression: the binary-search probe used to assume a sorted list
        // and silently dropped survivors in release builds when callers
        // passed one out of order.
        let s = populated();
        let (sorted, r_sorted) = users_only(&s, &[2, 5, 8]);
        let (unsorted, r_unsorted) = users_only(&s, &[8, 2, 5]);
        assert_eq!(r_sorted, r_unsorted);
        assert_eq!(r_sorted.kept, 300);
        let a: Vec<u64> = sorted.scan().map(|r| r.unwrap().id).collect();
        let b: Vec<u64> = unsorted.scan().map(|r| r.unwrap().id).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn compose_filters_like_the_paper_funnel() {
        let s = populated();
        let (wd, _) = users_only(&s, &[0, 1, 2, 3, 4]);
        let (finals, report) = gps_only(&wd);
        // Users 0..5, every 20th tweet has GPS; user = i % 10, gps = i % 20
        // == 0 means GPS tweets belong to users 0 (i=0,20,…): i%20==0 →
        // user i%10 == 0. So 50 GPS tweets, all user 0.
        assert_eq!(finals.len(), 50);
        assert_eq!(finals.user_count(), 1);
        assert_eq!(report.scanned, 500);
    }

    #[test]
    fn empty_store_compacts_to_empty() {
        let s = TweetStore::new();
        let (c, report) = gps_only(&s);
        assert!(c.is_empty());
        assert_eq!(report.keep_ratio(), 0.0);
        assert_eq!(report.space_saved(), 0.0);
    }

    #[test]
    fn survivors_are_byte_identical_raw_frames() {
        // Raw-frame compaction must not re-encode: every surviving
        // record's encoded bytes in the compacted store equal its bytes in
        // the source, and so does the concatenated payload stream.
        let mut s = TweetStore::with_segment_bytes(2048); // force rolling
        for i in 0..1_000u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 10,
                timestamp: i * 60,
                gps: (i % 20 == 0).then(|| Point::new(37.5, 127.0)),
                text: format!("tweet {i} with enough text to make frames distinctive"),
            });
        }
        let (c, report) = gps_only(&s);
        assert_eq!(report.kept, 50);
        let rows = |store: &TweetStore| -> Vec<Vec<u8>> {
            store
                .segments()
                .iter()
                .flat_map(|seg| {
                    let rows = seg.as_rows().expect("v1 store is all row segments");
                    (0..rows.len() as u32)
                        .map(|slot| rows.raw(slot).to_vec())
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let src_frames: Vec<Vec<u8>> = rows(&s)
            .into_iter()
            .filter(|frame| {
                crate::codec::decode_header(frame)
                    .map(|(h, _)| h.gps.is_some())
                    .unwrap_or(false)
            })
            .collect();
        let dst_frames: Vec<Vec<u8>> = rows(&c);
        assert_eq!(src_frames, dst_frames);
        assert_eq!(
            report.bytes_after,
            dst_frames.iter().map(|f| f.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn v2_compaction_emits_columnar_segments_with_identical_answers() {
        use crate::store::StoreFormat;
        // Mixed source: row segments sealed under V1, then the store is
        // switched to V2 and keeps growing. Compacting must (a) inherit V2,
        // (b) re-seal survivors columnar — the upgrade path — and (c)
        // answer queries identically to a V1 compaction of the same data.
        let mut s = TweetStore::with_segment_bytes(2048);
        for i in 0..600u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 10,
                timestamp: i * 60,
                gps: (i % 3 == 0).then(|| Point::new(37.5 + (i as f64) * 1e-4, 127.0)),
                text: format!("tweet {i} with enough text to force segment rolls"),
            });
        }
        s.set_format(StoreFormat::V2);
        for i in 600..1_200u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 10,
                timestamp: i * 60,
                gps: (i % 3 == 0).then(|| Point::new(37.5 + (i as f64) * 1e-4, 127.0)),
                text: format!("tweet {i} with enough text to force segment rolls"),
            });
        }
        let (c, report) = gps_only(&s);
        assert_eq!(c.format(), StoreFormat::V2);
        assert_eq!(report.kept, 400);
        let sealed_cols = c.segments().iter().filter(|seg| seg.is_columnar()).count();
        assert!(sealed_cols > 0, "V2 compaction must seal columnar segments");
        // Same records, byte-for-byte, as a V1 compaction of the same data.
        let mut v1 = TweetStore::with_segment_bytes(2048);
        for r in s.scan() {
            v1.append(&r.unwrap());
        }
        let (c1, report1) = gps_only(&v1);
        assert_eq!(report.kept, report1.kept);
        let a: Vec<TweetRecord> = c.scan().map(|r| r.unwrap()).collect();
        let b: Vec<TweetRecord> = c1.scan().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
        // Queries over the columnar compacted store still work.
        assert_eq!(Query::all().gps(true).execute(&c).len(), 400);
        assert_eq!(Query::all().user(3).execute(&c).len(), 40);
    }

    #[test]
    fn compaction_rebuilds_sketches_for_new_seals() {
        use crate::sketch::SketchResolver;
        use crate::store::StoreFormat;
        struct Bands;
        impl SketchResolver for Bands {
            fn fingerprint(&self) -> u64 {
                0x5EED
            }
            fn resolve(&self, lat: f64, _lon: f64) -> Option<u32> {
                Some(lat as u32)
            }
        }
        let mut s = TweetStore::with_segment_bytes_and_format(2048, StoreFormat::V2);
        s.set_sketcher(std::sync::Arc::new(Bands));
        for i in 0..1_000u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 10,
                timestamp: i * 60,
                gps: (i % 3 == 0).then(|| Point::new(36.0 + (i % 3) as f64, 127.0)),
                text: format!("tweet {i} with enough text to force segment rolls"),
            });
        }
        let (c, report) = gps_only(&s);
        // The output inherits the resolver, and every re-sealed columnar
        // segment carries a freshly built sketch over the *kept* records —
        // never a stale copy from the source.
        assert!(c.sketcher().is_some());
        let mut sketched_records = 0;
        for (i, seg) in c.segments().iter().enumerate() {
            if seg.is_columnar() {
                let sk = c
                    .sketch_cached(i)
                    .expect("compacted seal must carry a sketch");
                assert_eq!(sk.records, seg.len() as u64);
                sketched_records += sk.records;
            }
        }
        let tail_records = c.segments().last().map_or(0, |seg| seg.len() as u64);
        assert_eq!(sketched_records + tail_records, report.kept);
    }

    #[test]
    fn order_is_preserved() {
        let s = populated();
        let (c, _) = gps_only(&s);
        let ids: Vec<u64> = c.scan().map(|r| r.unwrap().id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
