//! Append-only segments.
//!
//! A segment is a byte buffer of concatenated encoded records plus a slot
//! table (byte offset per record). Sealed segments are immutable; the store
//! rolls to a new active segment at a size threshold. Framing for
//! persistence adds an FNV-1a checksum over the payload.

use bytes::BytesMut;

use crate::codec::{decode_record, encode_record, fnv1a, CodecError, TweetRecord};

/// Default segment roll threshold (bytes of encoded records).
pub const DEFAULT_SEGMENT_BYTES: usize = 4 << 20;

/// An append-only run of encoded records.
#[derive(Debug, Clone, Default)]
pub struct Segment {
    data: BytesMut,
    offsets: Vec<u32>,
}

impl Segment {
    /// An empty segment.
    pub fn new() -> Self {
        Segment {
            data: BytesMut::with_capacity(64 * 1024),
            offsets: Vec::new(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Encoded payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Appends a record; returns its slot.
    pub fn append(&mut self, rec: &TweetRecord) -> u32 {
        let slot = self.offsets.len() as u32;
        self.offsets.push(self.data.len() as u32);
        encode_record(&mut self.data, rec);
        slot
    }

    /// Decodes the record at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range; corruption within a slot surfaces
    /// as a `CodecError`.
    pub fn get(&self, slot: u32) -> Result<TweetRecord, CodecError> {
        let start = self.offsets[slot as usize] as usize;
        let end = self
            .offsets
            .get(slot as usize + 1)
            .map_or(self.data.len(), |&o| o as usize);
        let mut slice = &self.data[start..end];
        decode_record(&mut slice)
    }

    /// Iterates over all records in slot order.
    pub fn iter(&self) -> impl Iterator<Item = Result<TweetRecord, CodecError>> + '_ {
        (0..self.len() as u32).map(move |slot| self.get(slot))
    }

    /// Serializes the segment with framing:
    /// `record_count(u32 LE) · payload_len(u32 LE) · checksum(u32 LE) ·
    /// offsets(u32 LE each) · payload`.
    pub fn to_framed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.offsets.len() * 4 + self.data.len());
        out.extend_from_slice(&(self.offsets.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.data).to_le_bytes());
        for &o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Deserializes a framed segment, verifying the checksum.
    pub fn from_framed_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < 12 {
            return Err(CodecError::UnexpectedEof);
        }
        let count = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let payload_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let expected = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let offsets_end = 12 + count * 4;
        if bytes.len() < offsets_end + payload_len {
            return Err(CodecError::UnexpectedEof);
        }
        let mut offsets = Vec::with_capacity(count);
        for i in 0..count {
            let at = 12 + i * 4;
            offsets.push(u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()));
        }
        let payload = &bytes[offsets_end..offsets_end + payload_len];
        let actual = fnv1a(payload);
        if actual != expected {
            return Err(CodecError::ChecksumMismatch { expected, actual });
        }
        Ok(Segment {
            data: BytesMut::from(payload),
            offsets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geoindex::Point;

    fn rec(id: u64) -> TweetRecord {
        TweetRecord {
            id,
            user: id % 7,
            timestamp: id * 11,
            gps: id
                .is_multiple_of(3)
                .then(|| Point::new(37.0 + id as f64 * 1e-4, 127.0)),
            text: format!("tweet number {id}"),
        }
    }

    #[test]
    fn append_get_roundtrip() {
        let mut s = Segment::new();
        for i in 0..100 {
            let slot = s.append(&rec(i));
            assert_eq!(slot, i as u32);
        }
        assert_eq!(s.len(), 100);
        for i in 0..100u32 {
            let r = s.get(i).unwrap();
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn iter_yields_in_order() {
        let mut s = Segment::new();
        for i in 0..20 {
            s.append(&rec(i));
        }
        let ids: Vec<u64> = s.iter().map(|r| r.unwrap().id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn framed_roundtrip() {
        let mut s = Segment::new();
        for i in 0..50 {
            s.append(&rec(i));
        }
        let framed = s.to_framed_bytes();
        let back = Segment::from_framed_bytes(&framed).unwrap();
        assert_eq!(back.len(), 50);
        for i in 0..50u32 {
            assert_eq!(back.get(i).unwrap(), s.get(i).unwrap());
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut s = Segment::new();
        for i in 0..10 {
            s.append(&rec(i));
        }
        let mut framed = s.to_framed_bytes();
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        match Segment::from_framed_bytes(&framed) {
            Err(CodecError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut s = Segment::new();
        s.append(&rec(1));
        let framed = s.to_framed_bytes();
        assert!(Segment::from_framed_bytes(&framed[..framed.len() - 2]).is_err());
        assert!(Segment::from_framed_bytes(&framed[..4]).is_err());
    }

    #[test]
    fn empty_segment_frames() {
        let s = Segment::new();
        let back = Segment::from_framed_bytes(&s.to_framed_bytes()).unwrap();
        assert!(back.is_empty());
    }
}
