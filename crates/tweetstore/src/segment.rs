//! Append-only segments.
//!
//! A segment is a byte buffer of concatenated encoded records plus a slot
//! table (byte offset per record). Sealed segments are immutable; the store
//! rolls to a new active segment at a size threshold. Framing for
//! persistence adds an FNV-1a checksum over the payload.

use bytes::BytesMut;

use crate::codec::{
    decode_header, decode_record, decode_view, encode_record, fnv1a, CodecError, TweetHeader,
    TweetRecord, TweetView,
};

/// Default segment roll threshold (bytes of encoded records).
pub const DEFAULT_SEGMENT_BYTES: usize = 4 << 20;

/// Quantizes a coordinate pair to the fixed-point micro-degree grid the
/// codec stores. Zone-map GPS bounds MUST be tracked on this grid — raw
/// `f64` bounds could disagree with decoded points by up to half a
/// micro-degree and prune a segment that actually matches.
pub(crate) fn quantize_e6(p: stir_geoindex::Point) -> (i32, i32) {
    ((p.lat * 1e6).round() as i32, (p.lon * 1e6).round() as i32)
}

/// Per-segment statistics maintained at append time and consulted by the
/// query planner to skip segments that cannot match a predicate.
///
/// Invariants (for every record in the owning segment):
/// - `records` equals the segment's slot count;
/// - `min_ts ..= max_ts` and `min_user ..= max_user` bound every record's
///   timestamp and user id;
/// - `gps_records` counts records with GPS, and the `*_e6` fields bound
///   their coordinates on the codec's micro-degree grid (the exact values
///   a decode returns, not the pre-quantization floats).
///
/// An empty zone map keeps inverted sentinels (`min_* = MAX`, `max_* = 0`)
/// so that `observe` is branch-free on the first record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZoneMap {
    /// Records in the segment.
    pub records: u32,
    /// Minimum timestamp over all records.
    pub min_ts: u64,
    /// Maximum timestamp over all records.
    pub max_ts: u64,
    /// Minimum user id over all records.
    pub min_user: u64,
    /// Maximum user id over all records.
    pub max_user: u64,
    /// Records carrying GPS.
    pub gps_records: u32,
    /// Minimum latitude in micro-degrees over GPS records.
    pub min_lat_e6: i32,
    /// Maximum latitude in micro-degrees over GPS records.
    pub max_lat_e6: i32,
    /// Minimum longitude in micro-degrees over GPS records.
    pub min_lon_e6: i32,
    /// Maximum longitude in micro-degrees over GPS records.
    pub max_lon_e6: i32,
}

impl Default for ZoneMap {
    fn default() -> Self {
        ZoneMap {
            records: 0,
            min_ts: u64::MAX,
            max_ts: 0,
            min_user: u64::MAX,
            max_user: 0,
            gps_records: 0,
            min_lat_e6: i32::MAX,
            max_lat_e6: i32::MIN,
            min_lon_e6: i32::MAX,
            max_lon_e6: i32::MIN,
        }
    }
}

impl ZoneMap {
    /// Folds one record's header into the statistics.
    pub(crate) fn observe(&mut self, h: &TweetHeader) {
        self.records += 1;
        self.min_ts = self.min_ts.min(h.timestamp);
        self.max_ts = self.max_ts.max(h.timestamp);
        self.min_user = self.min_user.min(h.user);
        self.max_user = self.max_user.max(h.user);
        if let Some(p) = h.gps {
            let (lat, lon) = quantize_e6(p);
            self.gps_records += 1;
            self.min_lat_e6 = self.min_lat_e6.min(lat);
            self.max_lat_e6 = self.max_lat_e6.max(lat);
            self.min_lon_e6 = self.min_lon_e6.min(lon);
            self.max_lon_e6 = self.max_lon_e6.max(lon);
        }
    }

    /// Recomputes the zone map from a segment's records. Used to verify
    /// persisted statistics on load and rebuilt statistics in tests.
    pub fn compute(seg: &Segment) -> Result<ZoneMap, CodecError> {
        let mut zone = ZoneMap::default();
        for slot in 0..seg.len() as u32 {
            zone.observe(&seg.header(slot)?);
        }
        Ok(zone)
    }

    /// The GPS bounding box in degrees, if any record carries GPS.
    pub fn gps_bbox(&self) -> Option<stir_geoindex::BBox> {
        (self.gps_records > 0).then(|| {
            stir_geoindex::BBox::new(
                self.min_lat_e6 as f64 / 1e6,
                self.min_lon_e6 as f64 / 1e6,
                self.max_lat_e6 as f64 / 1e6,
                self.max_lon_e6 as f64 / 1e6,
            )
        })
    }
}

/// An append-only run of encoded records.
#[derive(Debug, Clone, Default)]
pub struct Segment {
    data: BytesMut,
    offsets: Vec<u32>,
    zone: ZoneMap,
}

impl Segment {
    /// An empty segment.
    pub fn new() -> Self {
        Segment {
            data: BytesMut::with_capacity(64 * 1024),
            offsets: Vec::new(),
            zone: ZoneMap::default(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Encoded payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Appends a record; returns its slot.
    pub fn append(&mut self, rec: &TweetRecord) -> u32 {
        let slot = self.offsets.len() as u32;
        self.offsets.push(self.data.len() as u32);
        encode_record(&mut self.data, rec);
        self.zone.observe(&rec.header());
        slot
    }

    /// Appends an already-encoded record frame without decoding its text;
    /// returns the slot and the decoded header. The frame must be exactly
    /// one record — trailing bytes are rejected.
    pub fn append_raw_frame(&mut self, frame: &[u8]) -> Result<(u32, TweetHeader), CodecError> {
        let (header, consumed) = decode_header(frame)?;
        if consumed != frame.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let slot = self.offsets.len() as u32;
        self.offsets.push(self.data.len() as u32);
        self.data.extend_from_slice(frame);
        self.zone.observe(&header);
        Ok((slot, header))
    }

    /// The segment's zone map.
    pub fn zone_map(&self) -> &ZoneMap {
        &self.zone
    }

    /// Byte range of the record at `slot` within the payload.
    fn slot_range(&self, slot: u32) -> (usize, usize) {
        let start = self.offsets[slot as usize] as usize;
        let end = self
            .offsets
            .get(slot as usize + 1)
            .map_or(self.data.len(), |&o| o as usize);
        (start, end)
    }

    /// The raw encoded frame of the record at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn raw(&self, slot: u32) -> &[u8] {
        let (start, end) = self.slot_range(slot);
        &self.data[start..end]
    }

    /// Decodes the record at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range; corruption within a slot surfaces
    /// as a `CodecError`.
    pub fn get(&self, slot: u32) -> Result<TweetRecord, CodecError> {
        let mut slice = self.raw(slot);
        decode_record(&mut slice)
    }

    /// Header-only decode of the record at `slot` (phase one: no text).
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn header(&self, slot: u32) -> Result<TweetHeader, CodecError> {
        decode_header(self.raw(slot)).map(|(h, _)| h)
    }

    /// Borrowed view of the record at `slot`: header decoded, text lazy.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn view(&self, slot: u32) -> Result<TweetView<'_>, CodecError> {
        decode_view(self.raw(slot))
    }

    /// Iterates over all records in slot order.
    pub fn iter(&self) -> impl Iterator<Item = Result<TweetRecord, CodecError>> + '_ {
        (0..self.len() as u32).map(move |slot| self.get(slot))
    }

    /// Iterates over borrowed views in slot order.
    pub fn views(&self) -> impl Iterator<Item = Result<TweetView<'_>, CodecError>> + '_ {
        (0..self.len() as u32).map(move |slot| self.view(slot))
    }

    /// Serializes the segment with framing:
    /// `record_count(u32 LE) · payload_len(u32 LE) · checksum(u32 LE) ·
    /// offsets(u32 LE each) · payload`.
    pub fn to_framed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.offsets.len() * 4 + self.data.len());
        out.extend_from_slice(&(self.offsets.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.data).to_le_bytes());
        for &o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Deserializes a framed segment, verifying the checksum.
    pub fn from_framed_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < 12 {
            return Err(CodecError::UnexpectedEof);
        }
        let count = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let payload_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let expected = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let offsets_end = 12 + count * 4;
        if bytes.len() < offsets_end + payload_len {
            return Err(CodecError::UnexpectedEof);
        }
        let mut offsets = Vec::with_capacity(count);
        for i in 0..count {
            let at = 12 + i * 4;
            offsets.push(u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()));
        }
        // The checksum below covers the payload only, so the offset table
        // must be validated independently: every offset in range and the
        // table monotone, or `raw()`'s slicing would panic on lookup.
        let mut prev = 0u32;
        for &o in &offsets {
            if o < prev || o as usize > payload_len {
                return Err(CodecError::UnexpectedEof);
            }
            prev = o;
        }
        let payload = &bytes[offsets_end..offsets_end + payload_len];
        let actual = fnv1a(payload);
        if actual != expected {
            return Err(CodecError::ChecksumMismatch { expected, actual });
        }
        let mut seg = Segment {
            data: BytesMut::from(payload),
            offsets,
            zone: ZoneMap::default(),
        };
        // Rebuild the zone map from headers. The checksum above guarantees
        // the payload is what was written, and writes only go through the
        // encoder — so a header that fails to decode means a crafted or
        // incoherent frame, which we reject outright rather than carry as
        // an unindexable slot.
        seg.zone = ZoneMap::compute(&seg)?;
        Ok(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geoindex::Point;

    fn rec(id: u64) -> TweetRecord {
        TweetRecord {
            id,
            user: id % 7,
            timestamp: id * 11,
            gps: id
                .is_multiple_of(3)
                .then(|| Point::new(37.0 + id as f64 * 1e-4, 127.0)),
            text: format!("tweet number {id}"),
        }
    }

    #[test]
    fn append_get_roundtrip() {
        let mut s = Segment::new();
        for i in 0..100 {
            let slot = s.append(&rec(i));
            assert_eq!(slot, i as u32);
        }
        assert_eq!(s.len(), 100);
        for i in 0..100u32 {
            let r = s.get(i).unwrap();
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn iter_yields_in_order() {
        let mut s = Segment::new();
        for i in 0..20 {
            s.append(&rec(i));
        }
        let ids: Vec<u64> = s.iter().map(|r| r.unwrap().id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn framed_roundtrip() {
        let mut s = Segment::new();
        for i in 0..50 {
            s.append(&rec(i));
        }
        let framed = s.to_framed_bytes();
        let back = Segment::from_framed_bytes(&framed).unwrap();
        assert_eq!(back.len(), 50);
        for i in 0..50u32 {
            assert_eq!(back.get(i).unwrap(), s.get(i).unwrap());
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut s = Segment::new();
        for i in 0..10 {
            s.append(&rec(i));
        }
        let mut framed = s.to_framed_bytes();
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        match Segment::from_framed_bytes(&framed) {
            Err(CodecError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut s = Segment::new();
        s.append(&rec(1));
        let framed = s.to_framed_bytes();
        assert!(Segment::from_framed_bytes(&framed[..framed.len() - 2]).is_err());
        assert!(Segment::from_framed_bytes(&framed[..4]).is_err());
    }

    #[test]
    fn empty_segment_frames() {
        let s = Segment::new();
        let back = Segment::from_framed_bytes(&s.to_framed_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(*back.zone_map(), ZoneMap::default());
    }

    #[test]
    fn zone_map_tracks_appends() {
        let mut s = Segment::new();
        for i in 0..30 {
            s.append(&rec(i));
        }
        let z = *s.zone_map();
        assert_eq!(z.records, 30);
        assert_eq!(z.min_ts, 0);
        assert_eq!(z.max_ts, 29 * 11);
        assert_eq!(z.min_user, 0);
        assert_eq!(z.max_user, 6);
        assert_eq!(z.gps_records, 10); // ids 0, 3, 6, ... 27
        let bbox = z.gps_bbox().unwrap();
        assert!(bbox.contains(Point::new(37.0, 127.0)));
        assert!(bbox.contains(Point::new(37.0027, 127.0)));
        // Zone map matches a from-scratch recompute exactly.
        assert_eq!(z, ZoneMap::compute(&s).unwrap());
    }

    #[test]
    fn zone_map_rebuilt_on_load() {
        let mut s = Segment::new();
        for i in 0..40 {
            s.append(&rec(i));
        }
        let back = Segment::from_framed_bytes(&s.to_framed_bytes()).unwrap();
        assert_eq!(back.zone_map(), s.zone_map());
    }

    #[test]
    fn zone_map_gps_bounds_match_decoded_points() {
        // Bounds are tracked on the quantized grid, so every decoded GPS
        // point must fall inside the zone bbox exactly — no epsilon.
        let mut s = Segment::new();
        for i in 0..50u64 {
            s.append(&TweetRecord {
                id: i,
                user: 1,
                timestamp: i,
                gps: Some(Point::new(
                    37.0 + (i as f64) * 1e-7 * 3.0, // sub-micro-degree steps
                    127.0 - (i as f64) * 1e-7 * 7.0,
                )),
                text: String::new(),
            });
        }
        let bbox = s.zone_map().gps_bbox().unwrap();
        for r in s.iter() {
            let p = r.unwrap().gps.unwrap();
            assert!(
                bbox.contains(p),
                "decoded point {p:?} outside zone {bbox:?}"
            );
        }
    }

    #[test]
    fn append_raw_frame_is_byte_identical() {
        let mut src = Segment::new();
        for i in 0..20 {
            src.append(&rec(i));
        }
        let mut dst = Segment::new();
        for slot in 0..src.len() as u32 {
            let (new_slot, header) = dst.append_raw_frame(src.raw(slot)).unwrap();
            assert_eq!(new_slot, slot);
            assert_eq!(header, src.header(slot).unwrap());
            assert_eq!(dst.raw(new_slot), src.raw(slot));
        }
        assert_eq!(dst.zone_map(), src.zone_map());
        // Trailing bytes are rejected.
        let mut frame = src.raw(0).to_vec();
        frame.push(0);
        assert!(dst.append_raw_frame(&frame).is_err());
    }

    #[test]
    fn view_defers_text_decode() {
        let mut s = Segment::new();
        for i in 0..10 {
            s.append(&rec(i));
        }
        for slot in 0..10u32 {
            let view = s.view(slot).unwrap();
            let full = s.get(slot).unwrap();
            assert_eq!(view.header, full.header());
            assert_eq!(view.text().unwrap(), full.text);
            assert_eq!(view.frame_len(), s.raw(slot).len());
            assert!(view.header_len() < view.frame_len());
        }
    }
}
