//! User-hash-sharded multi-store scale-out.
//!
//! One [`TweetStore`] is a single segment chain behind a single WAL: ingest
//! serializes on one log file and every scan walks one chain. At the
//! paper's headline scale (tens of millions of tweets from millions of
//! users, §IV) that single chain is the bottleneck no matter how fast the
//! pipeline above it is. [`ShardedStore`] splits the corpus into N
//! independent stores by a **deterministic user hash**:
//!
//! ```text
//! shard_of(user) = splitmix64(user) % N
//! ```
//!
//! — the exact invariant the fused pipeline's hash partitions rely on, so
//! every record of one user lives in exactly one shard, in append order.
//! That placement is what makes everything downstream composable:
//!
//! * **Scatter-gather queries** ([`ShardedStore::query`]) run the
//!   zone-map-pruned per-shard plans independently (concurrently above a
//!   size threshold) and k-way merge the already-`(timestamp, id)`-sorted
//!   per-shard answers — byte-identical to the single-store result,
//!   because record keys are unique and each shard's answer is a sorted
//!   disjoint subset of the global one.
//! * **Cross-shard morsel source** ([`ShardedHeaderBlocks`]) lays shard
//!   blocks out shard-by-shard with cumulative ordinal bases, so ordinals
//!   stay unique and each user's records keep their relative order — all a
//!   determinism-by-ordinal consumer (the fused pipeline, the incremental
//!   session) needs.
//! * **Parallel durable ingest** ([`ShardedDurableStore`]) gives every
//!   shard its own WAL file; recovery truncates torn tails **per shard**,
//!   so one torn log never holds back the other N−1.
//! * **Background compaction** ([`ShardedStore::begin_compaction`] /
//!   [`ShardedStore::finish_compaction`]) detaches a cold shard's frames
//!   (picked by zone-map recency + reclaimable-estimate,
//!   [`ShardedStore::pick_cold_shard`]), rewrites them off-thread with the
//!   zero-copy [`crate::compact`] raw-frame moves, and swaps the result
//!   back in — ingest into the other shards (and even into the shard being
//!   compacted) never blocks.

use std::path::{Path, PathBuf};

use crate::codec::{encode_parts, encode_record, fnv1a, TweetHeader, TweetRecord};
use crate::compact::{compact, CompactionReport};
use crate::persist::{self, PersistError};
use crate::query::Query;
use crate::scan::{BlockChunk, HeaderBlocks};
use crate::segment::DEFAULT_SEGMENT_BYTES;
use crate::store::{RecordPtr, SegmentRef, StoreFormat, StoreStats, TweetStore};
use crate::wal::{Wal, WalRecovery};

/// File name of the shard-count manifest inside a sharded persist dir.
const SHARDS_MANIFEST: &str = "SHARDS";

/// The canonical mixer behind shard (and pipeline-partition) placement.
///
/// This is the *one* definition in the workspace: `stir_core`'s fused
/// pipeline partitions users with the same function, so a shard can feed
/// its partition group with no cross-shard shuffle.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The shard a user's records live in — a pure function of the user id and
/// the shard count, independent of ingest order, threads, or restarts.
pub fn shard_of(user: u64, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    (splitmix64(user) % shards as u64) as usize
}

/// Records below which a scatter-gather query stays serial (thread spawn
/// costs more than it saves on small corpora).
const PARALLEL_QUERY_THRESHOLD: usize = 4096;

/// N independent [`TweetStore`]s behind deterministic
/// `splitmix64(user) % N` placement. See the [module docs](self).
pub struct ShardedStore {
    shards: Vec<TweetStore>,
    segment_bytes: usize,
    /// Per-shard WAL recovery outcome, filled by
    /// [`ShardedDurableStore::open`] — `None` for shards built in memory.
    recovery: Vec<Option<WalRecovery>>,
}

impl ShardedStore {
    /// A sharded store with `shards` stores at the default segment size.
    pub fn new(shards: usize) -> Self {
        Self::with_segment_bytes(shards, DEFAULT_SEGMENT_BYTES)
    }

    /// A sharded store whose shards seal segments at `segment_bytes`.
    pub fn with_segment_bytes(shards: usize, segment_bytes: usize) -> Self {
        Self::with_segment_bytes_and_format(shards, segment_bytes, StoreFormat::default())
    }

    /// A sharded store whose shards seal segments at `segment_bytes` in
    /// `format` — every shard targets the same sealed-segment encoding.
    pub fn with_segment_bytes_and_format(
        shards: usize,
        segment_bytes: usize,
        format: StoreFormat,
    ) -> Self {
        let shards = shards.max(1);
        ShardedStore {
            shards: (0..shards)
                .map(|_| TweetStore::with_segment_bytes_and_format(segment_bytes, format))
                .collect(),
            segment_bytes,
            recovery: vec![None; shards],
        }
    }

    /// The sealed-segment format the shards target (shard 0's — every
    /// constructor and [`ShardedStore::set_format`] keep them uniform).
    pub fn format(&self) -> StoreFormat {
        self.shards[0].format()
    }

    /// Switches every shard's sealed-segment format for segments sealed
    /// from now on; already-sealed segments keep their encoding (mixed
    /// shards scan and query fine).
    pub fn set_format(&mut self, format: StoreFormat) {
        for s in &mut self.shards {
            s.set_format(format);
        }
    }

    /// Adopts pre-built per-shard stores (recovery/persistence path). The
    /// caller guarantees every record already sits in its placement shard.
    fn from_shards(shards: Vec<TweetStore>, segment_bytes: usize) -> Self {
        let n = shards.len().max(1);
        let mut this = ShardedStore {
            shards,
            segment_bytes,
            recovery: vec![None; n],
        };
        if this.shards.is_empty() {
            this.shards
                .push(TweetStore::with_segment_bytes(segment_bytes));
        }
        this
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `user`'s records live in.
    pub fn shard_of(&self, user: u64) -> usize {
        shard_of(user, self.shards.len())
    }

    /// Read access to every shard, in shard order.
    pub fn shards(&self) -> &[TweetStore] {
        &self.shards
    }

    /// Read access to one shard.
    pub fn shard(&self, i: usize) -> &TweetStore {
        &self.shards[i]
    }

    /// Mutable access to every shard — module-private so external code
    /// cannot break the placement invariant.
    pub(crate) fn shards_mut(&mut self) -> &mut [TweetStore] {
        &mut self.shards
    }

    /// Installs one sketch resolver on every shard (see
    /// [`TweetStore::set_sketcher`]): future columnar seals in any shard
    /// build their group sketch eagerly, and already-sealed segments build
    /// theirs lazily on first use.
    pub fn set_sketcher(&mut self, resolver: std::sync::Arc<dyn crate::sketch::SketchResolver>) {
        for s in &mut self.shards {
            s.set_sketcher(std::sync::Arc::clone(&resolver));
        }
    }

    /// Seals every shard's open tail (see [`TweetStore::seal_active`]):
    /// after this, all records live in sealed segments and a sketched
    /// query has no residue to scan.
    pub fn seal_active(&mut self) {
        for s in &mut self.shards {
            s.seal_active();
        }
    }

    /// Per-shard WAL recovery outcomes (`None` where no WAL was involved).
    pub fn recovery(&self) -> &[Option<WalRecovery>] {
        &self.recovery
    }

    /// Appends a record to its placement shard; returns `(shard, ptr)`.
    pub fn append(&mut self, rec: &TweetRecord) -> (usize, RecordPtr) {
        let shard = self.shard_of(rec.user);
        (shard, self.shards[shard].append(rec))
    }

    /// Total records across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Aggregate statistics over all shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.records += st.records;
            total.gps_records += st.gps_records;
            total.payload_bytes += st.payload_bytes;
            total.segments += st.segments;
        }
        total
    }

    /// Distinct users across shards (placement makes shards user-disjoint,
    /// so the per-shard counts sum exactly).
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(|s| s.user_count()).sum()
    }

    /// Looks up a record by tweet id (ids are global; every shard is
    /// probed — the id index is per shard and the hit is unique).
    pub fn get_by_id(&self, id: u64) -> Option<TweetRecord> {
        self.shards.iter().find_map(|s| s.get_by_id(id))
    }

    /// Scatter-gather query execution: each shard runs its own
    /// zone-map-pruned plan (concurrently when the corpus is large enough
    /// to pay for threads), and the per-shard `(timestamp, id)`-sorted
    /// answers are k-way merged in that same order. Because every record
    /// key is unique and shards partition the corpus, the merge *is* the
    /// globally sorted answer — byte-identical to
    /// [`Query::execute`] on an equivalent single store.
    pub fn query(&self, query: &Query) -> Vec<TweetRecord> {
        let parts: Vec<Vec<TweetRecord>> =
            if self.shards.len() > 1 && self.len() >= PARALLEL_QUERY_THRESHOLD {
                std::thread::scope(|scope| {
                    let workers: Vec<_> = self
                        .shards
                        .iter()
                        .map(|s| scope.spawn(move || query.execute(s)))
                        .collect();
                    workers
                        .into_iter()
                        .map(|w| w.join().expect("shard query worker panicked"))
                        .collect()
                })
            } else {
                self.shards.iter().map(|s| query.execute(s)).collect()
            };
        merge_by_time_id(parts)
    }

    /// Zone-map-derived per-shard temperature, the compaction scheduler's
    /// input: recency (newest timestamp any segment holds) plus an
    /// estimate of how many records the paper's GPS-only rewrite would
    /// reclaim — both read straight off the segment zone maps, no decode.
    pub fn shard_heat(&self) -> Vec<ShardHeat> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| {
                let mut max_ts = 0u64;
                let mut records = 0u64;
                let mut gps_records = 0u64;
                for seg in s.segments() {
                    let z = seg.zone_map();
                    if z.records > 0 {
                        max_ts = max_ts.max(z.max_ts);
                        records += z.records as u64;
                        gps_records += z.gps_records as u64;
                    }
                }
                ShardHeat {
                    shard,
                    records,
                    max_ts,
                    reclaimable: records - gps_records,
                }
            })
            .collect()
    }

    /// Picks the coldest shard worth compacting under `policy`: among
    /// shards with at least `min_records` records and a reclaimable
    /// fraction of at least `min_reclaimable`, the one whose newest record
    /// is oldest (ties break to the lowest shard index). `None` when no
    /// shard qualifies — the scheduler idles.
    pub fn pick_cold_shard(&self, policy: &CompactionPolicy) -> Option<usize> {
        self.shard_heat()
            .into_iter()
            .filter(|h| {
                h.records >= policy.min_records.max(1)
                    && h.reclaimable as f64 >= policy.min_reclaimable * h.records as f64
            })
            .min_by_key(|h| (h.max_ts, h.shard))
            .map(|h| h.shard)
    }

    /// Detaches shard `shard`'s current frames into an owned
    /// [`CompactionJob`] that can be rewritten on any thread. The live
    /// shard keeps serving reads and appends; nothing blocks. Frames are
    /// moved raw (checksum re-verified), never re-encoded.
    pub fn begin_compaction(&self, shard: usize) -> CompactionJob {
        let src = &self.shards[shard];
        let mut detached =
            TweetStore::with_segment_bytes_and_format(self.segment_bytes, src.format());
        let mut scratch = Vec::new();
        for seg in src.segments() {
            for slot in 0..seg.len() as u32 {
                // The source store verified these frames at append; a
                // re-verify failure here would be a memory error, so
                // propagating is pointless — skip defensively.
                let _ = detached.append_raw(reframe(seg, slot, &mut scratch));
            }
        }
        CompactionJob {
            shard,
            records_at_begin: src.len() as u64,
            store: detached,
        }
    }

    /// Installs a finished [`CompactedShard`]: the rewritten store replaces
    /// the shard, and every record appended since
    /// [`ShardedStore::begin_compaction`] is re-applied on top (raw-frame
    /// move, same `keep` predicate). This is the only step that holds
    /// `&mut self`, and its cost is proportional to the append tail, not
    /// the shard.
    pub fn finish_compaction<F: FnMut(&TweetHeader) -> bool>(
        &mut self,
        done: CompactedShard,
        mut keep: F,
    ) -> CompactionReport {
        let CompactedShard {
            shard,
            records_at_begin,
            compacted,
            mut report,
        } = done;
        let mut rebuilt = compacted;
        let live = &self.shards[shard];
        report.bytes_before = live.stats().payload_bytes;
        let mut skip = records_at_begin;
        let mut scratch = Vec::new();
        for seg in live.segments() {
            let len = seg.len() as u64;
            if skip >= len {
                skip -= len;
                continue;
            }
            for slot in skip as u32..len as u32 {
                let Ok(header) = seg.header(slot) else {
                    continue;
                };
                report.scanned += 1;
                if keep(&header) && rebuilt.append_raw(reframe(seg, slot, &mut scratch)).is_ok() {
                    report.kept += 1;
                }
            }
            skip = 0;
        }
        report.bytes_after = rebuilt.stats().payload_bytes;
        self.shards[shard] = rebuilt;
        self.recovery[shard] = None;
        report
    }

    /// One synchronous scheduler step: pick the coldest qualifying shard,
    /// rewrite it with `keep`, install the result. Returns the shard and
    /// its report, or `None` when nothing qualified. (The asynchronous
    /// shape — `begin_compaction` on one thread, `finish_compaction` after
    /// joining — is what a background scheduler loop composes from.)
    pub fn maintain<F: FnMut(&TweetHeader) -> bool>(
        &mut self,
        policy: &CompactionPolicy,
        mut keep: F,
    ) -> Option<(usize, CompactionReport)> {
        let shard = self.pick_cold_shard(policy)?;
        let job = self.begin_compaction(shard);
        let done = job.run(&mut keep);
        let report = self.finish_compaction(done, keep);
        Some((shard, report))
    }

    /// Persists every shard under `dir`: `shard-NNN/` subdirectories (each
    /// a normal [`crate::persist::save`] layout) plus a `SHARDS` manifest
    /// carrying the shard count — placement is a pure function of user and
    /// count, so the count is all reopen needs to reproduce it.
    pub fn save(&self, dir: &Path) -> Result<(), PersistError> {
        std::fs::create_dir_all(dir)?;
        for (i, shard) in self.shards.iter().enumerate() {
            persist::save(shard, &shard_dir(dir, i))?;
        }
        std::fs::write(
            dir.join(SHARDS_MANIFEST),
            format!("{}\n", self.shards.len()),
        )?;
        Ok(())
    }

    /// Loads a sharded store persisted by [`ShardedStore::save`]. The
    /// shard count comes from the `SHARDS` manifest; every record loads
    /// back into the shard `splitmix64(user) % N` placed it in, so
    /// assignments are stable across reopen.
    pub fn load(dir: &Path) -> Result<Self, PersistError> {
        Self::load_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`ShardedStore::load`] with an explicit segment-roll threshold.
    pub fn load_with_segment_bytes(dir: &Path, segment_bytes: usize) -> Result<Self, PersistError> {
        let manifest = std::fs::read_to_string(dir.join(SHARDS_MANIFEST))
            .map_err(|_| PersistError::BadManifest)?;
        let n: usize = manifest
            .trim()
            .parse()
            .map_err(|_| PersistError::BadManifest)?;
        if n == 0 {
            return Err(PersistError::BadManifest);
        }
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            shards.push(persist::load_with_segment_bytes(
                &shard_dir(dir, i),
                segment_bytes,
            )?);
        }
        Ok(Self::from_shards(shards, segment_bytes))
    }
}

/// `dir/shard-NNN`, the per-shard persist subdirectory.
fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}"))
}

/// One slot's row frame: row segments hand back their stored bytes
/// zero-copy; columnar segments re-frame the slot from the decoded columns
/// into `scratch` — µ° integers written directly, so no float or UTF-8
/// round-trip can perturb the bytes.
fn reframe<'a>(seg: SegmentRef<'a>, slot: u32, scratch: &'a mut Vec<u8>) -> &'a [u8] {
    match seg {
        SegmentRef::Rows(s) => s.raw(slot),
        SegmentRef::Cols(c) => {
            let h = c.header(slot);
            scratch.clear();
            encode_parts(
                scratch,
                h.id,
                h.user,
                h.timestamp,
                c.gps_e6(slot),
                c.text_bytes(slot),
            );
            scratch
        }
    }
}

/// K-way merges per-shard `(timestamp, id)`-sorted answers into the global
/// `(timestamp, id)` order. Keys are unique across shards, so the merge is
/// exactly the sorted union.
fn merge_by_time_id(mut parts: Vec<Vec<TweetRecord>>) -> Vec<TweetRecord> {
    parts.retain(|p| !p.is_empty());
    match parts.len() {
        0 => return Vec::new(),
        1 => return parts.pop().unwrap(),
        _ => {}
    }
    let total = parts.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; parts.len()];
    loop {
        let mut best: Option<(usize, (u64, u64))> = None;
        for (i, part) in parts.iter().enumerate() {
            if let Some(rec) = part.get(cursors[i]) {
                let key = (rec.timestamp, rec.id);
                if best.is_none_or(|(_, k)| key < k) {
                    best = Some((i, key));
                }
            }
        }
        let Some((i, _)) = best else { break };
        out.push(parts[i][cursors[i]].clone());
        cursors[i] += 1;
    }
    out
}

/// One shard's zone-map-derived temperature (see
/// [`ShardedStore::shard_heat`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardHeat {
    /// Shard index.
    pub shard: usize,
    /// Records the shard holds (zone-map sum).
    pub records: u64,
    /// Newest timestamp any segment holds — the recency signal; smaller
    /// means colder.
    pub max_ts: u64,
    /// Records the GPS-only rewrite would drop (`records − gps_records`).
    pub reclaimable: u64,
}

/// When the compaction scheduler considers a shard worth rewriting.
#[derive(Clone, Copy, Debug)]
pub struct CompactionPolicy {
    /// Shards below this record count are never picked (rewriting dust
    /// buys nothing).
    pub min_records: u64,
    /// Minimum reclaimable fraction (`reclaimable / records`) before a
    /// rewrite pays for itself.
    pub min_reclaimable: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_records: 1024,
            min_reclaimable: 0.5,
        }
    }
}

/// A cold shard's frames, detached by [`ShardedStore::begin_compaction`]
/// and owned by whichever thread runs the rewrite.
pub struct CompactionJob {
    shard: usize,
    records_at_begin: u64,
    store: TweetStore,
}

impl CompactionJob {
    /// The shard this job will replace.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Records the detached copy covers (appends past this ordinal are
    /// re-applied at [`ShardedStore::finish_compaction`]).
    pub fn records_at_begin(&self) -> u64 {
        self.records_at_begin
    }

    /// Rewrites the detached frames through [`crate::compact::compact`] —
    /// zero-copy raw-frame moves, checksums re-verified. Runs on any
    /// thread; the sharded store is untouched meanwhile.
    pub fn run<F: FnMut(&TweetHeader) -> bool>(self, keep: F) -> CompactedShard {
        let (compacted, report) = compact(&self.store, keep);
        CompactedShard {
            shard: self.shard,
            records_at_begin: self.records_at_begin,
            compacted,
            report,
        }
    }
}

/// A finished rewrite, ready for [`ShardedStore::finish_compaction`].
pub struct CompactedShard {
    shard: usize,
    records_at_begin: u64,
    compacted: TweetStore,
    report: CompactionReport,
}

impl CompactedShard {
    /// The shard the rewrite belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The rewrite's report so far (the tail re-apply in
    /// [`ShardedStore::finish_compaction`] extends it).
    pub fn report(&self) -> CompactionReport {
        self.report
    }
}

/// Per-shard counters a drained [`ShardedHeaderBlocks`] reports, the
/// source of the per-shard rows in [`crate::ScanMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardBlockCounts {
    /// Segments the shard holds.
    pub segments: u64,
    /// Records the shard holds.
    pub records: u64,
    /// Headers decoded from this shard so far.
    pub headers_decoded: u64,
    /// Corrupt records skipped in this shard so far.
    pub records_corrupt: u64,
    /// Header bytes decoded from this shard so far.
    pub bytes_decoded: u64,
}

/// A [`HeaderBlocks`]-style morsel source spanning every shard.
///
/// Blocks are laid out shard-by-shard; each shard's block ordinals are
/// offset by the cumulative record count of the shards before it, so
/// ordinals are unique across the whole sharded store and each user's
/// records (confined to one shard by placement) keep their append-order
/// ordinals ascending — the two properties a determinism-by-ordinal
/// consumer needs. A shard-level cursor advances as shards drain, so a
/// draw costs one extra atomic read, not a walk over drained shards.
pub struct ShardedHeaderBlocks<'s> {
    parts: Vec<ShardPart<'s>>,
    /// First shard that may still have blocks (monotone hint; drained
    /// shards below it are never touched again).
    active: std::sync::atomic::AtomicUsize,
    block_records: usize,
}

struct ShardPart<'s> {
    base: u64,
    blocks: HeaderBlocks<'s>,
}

impl<'s> ShardedHeaderBlocks<'s> {
    /// Chunks every shard into blocks of at most `block_records` records.
    pub fn new(store: &'s ShardedStore, block_records: usize) -> Self {
        let block_records = block_records.max(1);
        let mut parts = Vec::with_capacity(store.shard_count());
        let mut base = 0u64;
        for shard in store.shards() {
            let blocks = HeaderBlocks::new(shard, block_records);
            let records = blocks.records();
            parts.push(ShardPart { base, blocks });
            base += records;
        }
        ShardedHeaderBlocks {
            parts,
            active: std::sync::atomic::AtomicUsize::new(0),
            block_records,
        }
    }

    /// Draws the next block (shard-by-shard) and hands every decoded
    /// header to `sink` in slot order. Returns the first record's
    /// store-wide ordinal (shard base + in-shard ordinal), or `None` when
    /// every shard is drained.
    pub fn next_block_headers(&self, mut sink: impl FnMut(&TweetHeader)) -> Option<u64> {
        use std::sync::atomic::Ordering;
        let start = self.active.load(Ordering::Relaxed);
        for (i, part) in self.parts.iter().enumerate().skip(start) {
            if let Some(ordinal) = part.blocks.next_block_headers(&mut sink) {
                return Some(part.base + ordinal);
            }
            // This shard is drained: let later draws skip straight past it.
            self.active.fetch_max(i + 1, Ordering::Relaxed);
        }
        None
    }

    /// Draws the next block like
    /// [`ShardedHeaderBlocks::next_block_headers`], but columnar segments
    /// hand the block over as one [`BlockChunk::Columns`] of borrowed
    /// slices instead of materializing per-record headers; row segments
    /// still decode headers into per-record [`BlockChunk::Header`] calls.
    /// Ordinal semantics are identical to the header path.
    pub fn next_block_mixed(&self, mut sink: impl FnMut(BlockChunk<'_>)) -> Option<u64> {
        use std::sync::atomic::Ordering;
        let start = self.active.load(Ordering::Relaxed);
        for (i, part) in self.parts.iter().enumerate().skip(start) {
            if let Some(ordinal) = part.blocks.next_block_mixed(&mut sink) {
                return Some(part.base + ordinal);
            }
            self.active.fetch_max(i + 1, Ordering::Relaxed);
        }
        None
    }

    /// Records per full block, as configured.
    pub fn block_records(&self) -> usize {
        self.block_records
    }

    /// Row-format segments across all shards.
    pub fn segments_row(&self) -> u64 {
        self.parts.iter().map(|p| p.blocks.segments_row()).sum()
    }

    /// Columnar segments across all shards.
    pub fn segments_col(&self) -> u64 {
        self.parts.iter().map(|p| p.blocks.segments_col()).sum()
    }

    /// Column bytes read so far, summed over shards.
    pub fn col_bytes_read(&self) -> u64 {
        self.parts.iter().map(|p| p.blocks.col_bytes_read()).sum()
    }

    /// Row-equivalent bytes for the work done so far, summed over shards.
    pub fn row_bytes_equiv(&self) -> u64 {
        self.parts.iter().map(|p| p.blocks.row_bytes_equiv()).sum()
    }

    /// Records across all shards.
    pub fn records(&self) -> u64 {
        self.parts.iter().map(|p| p.blocks.records()).sum()
    }

    /// Headers decoded so far, summed over shards.
    pub fn headers_decoded(&self) -> u64 {
        self.parts.iter().map(|p| p.blocks.headers_decoded()).sum()
    }

    /// Corrupt records skipped so far, summed over shards.
    pub fn records_corrupt(&self) -> u64 {
        self.parts.iter().map(|p| p.blocks.records_corrupt()).sum()
    }

    /// Header bytes decoded so far, summed over shards.
    pub fn bytes_decoded(&self) -> u64 {
        self.parts.iter().map(|p| p.blocks.bytes_decoded()).sum()
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn per_shard(&self) -> Vec<ShardBlockCounts> {
        self.parts
            .iter()
            .map(|p| ShardBlockCounts {
                segments: p.blocks.segments(),
                records: p.blocks.records(),
                headers_decoded: p.blocks.headers_decoded(),
                records_corrupt: p.blocks.records_corrupt(),
                bytes_decoded: p.blocks.bytes_decoded(),
            })
            .collect()
    }
}

/// A [`ShardedStore`] coupled to one WAL per shard: appends hit the
/// placement shard's log first, [`ShardedDurableStore::sync`] is the
/// durability point, and [`ShardedDurableStore::open`] recovers every
/// shard's log **independently** — a torn tail on one shard truncates that
/// log alone and the other shards recover in full.
pub struct ShardedDurableStore {
    store: ShardedStore,
    wals: Vec<Wal>,
}

impl ShardedDurableStore {
    /// Opens (or creates) `shards` WALs under `dir` (`wal-NNN.log`),
    /// recovering each existing log into its shard. Per-shard recovery
    /// outcomes are recorded on the store
    /// ([`ShardedStore::recovery`]).
    pub fn open(dir: &Path, shards: usize) -> Result<Self, PersistError> {
        Self::open_with_segment_bytes(dir, shards, DEFAULT_SEGMENT_BYTES)
    }

    /// [`ShardedDurableStore::open`] with an explicit segment threshold.
    pub fn open_with_segment_bytes(
        dir: &Path,
        shards: usize,
        segment_bytes: usize,
    ) -> Result<Self, PersistError> {
        Self::open_with_segment_bytes_and_format(dir, shards, segment_bytes, StoreFormat::default())
    }

    /// [`ShardedDurableStore::open`] with an explicit segment threshold
    /// and sealed-segment format. WAL recovery itself is format-agnostic —
    /// logs hold `STIRWAL1` row frames either way, and replay rebuilds
    /// row segments byte-identically — the format only governs how
    /// segments sealed *after* recovery are encoded.
    pub fn open_with_segment_bytes_and_format(
        dir: &Path,
        shards: usize,
        segment_bytes: usize,
        format: StoreFormat,
    ) -> Result<Self, PersistError> {
        let shards = shards.max(1);
        std::fs::create_dir_all(dir)?;
        let mut stores = Vec::with_capacity(shards);
        let mut recovery = Vec::with_capacity(shards);
        let mut wals = Vec::with_capacity(shards);
        for i in 0..shards {
            let path = wal_path(dir, i);
            let (store, rec) = if path.exists() {
                let before = std::fs::metadata(&path)?.len();
                let (store, recovered) = Wal::recover(&path)?;
                let after = std::fs::metadata(&path)?.len();
                (
                    store,
                    Some(WalRecovery {
                        recovered,
                        truncated_bytes: before - after,
                    }),
                )
            } else {
                (TweetStore::with_segment_bytes(segment_bytes), None)
            };
            stores.push(store);
            recovery.push(rec);
            wals.push(Wal::open(&path)?);
        }
        let mut store = ShardedStore::from_shards(stores, segment_bytes);
        store.recovery = recovery;
        store.set_format(format);
        Ok(ShardedDurableStore { store, wals })
    }

    /// Appends one record: placement shard's WAL first, then its store.
    pub fn append(&mut self, rec: &TweetRecord) -> Result<(), PersistError> {
        let shard = self.store.shard_of(rec.user);
        self.wals[shard].append(rec)?;
        self.store.shards_mut()[shard].append(rec);
        Ok(())
    }

    /// Ingests a batch with up to `workers` threads, each owning a
    /// disjoint set of `(shard store, shard WAL)` pairs — the N
    /// independent log files are what makes the writes truly parallel.
    /// Records are pre-partitioned by placement, so the result is
    /// identical to serial [`ShardedDurableStore::append`] of the same
    /// batch in order (per-shard append order is arrival order either
    /// way). `workers` is clamped to the shard count; 1 runs inline.
    pub fn ingest_parallel(
        &mut self,
        records: &[TweetRecord],
        workers: usize,
    ) -> Result<(), PersistError> {
        let shards = self.store.shard_count();
        let workers = workers.clamp(1, shards);
        if workers == 1 {
            return self.ingest_staged(records);
        }
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (i, rec) in records.iter().enumerate() {
            by_shard[shard_of(rec.user, shards)].push(i);
        }
        // Hand each worker a contiguous run of (store, wal, index-list)
        // triples; shards are disjoint, so no synchronization is needed.
        let mut lanes: Vec<(&mut TweetStore, &mut Wal, &Vec<usize>)> = self
            .store
            .shards
            .iter_mut()
            .zip(self.wals.iter_mut())
            .zip(by_shard.iter())
            .map(|((s, w), idxs)| (s, w, idxs))
            .collect();
        let per_worker = lanes.len().div_ceil(workers);
        let mut failure: Option<PersistError> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut rest = lanes.as_mut_slice();
            while !rest.is_empty() {
                let take = per_worker.min(rest.len());
                let (chunk, tail) = rest.split_at_mut(take);
                rest = tail;
                handles.push(scope.spawn(move || -> Result<(), PersistError> {
                    // Encode once per record: the same payload bytes are
                    // the WAL frame and the segment frame.
                    let mut payload: Vec<u8> = Vec::with_capacity(128);
                    for (store, wal, idxs) in chunk.iter_mut() {
                        for &i in idxs.iter() {
                            payload.clear();
                            encode_record(&mut payload, &records[i]);
                            let crc = fnv1a(&payload);
                            wal.append_payload(&payload, crc)?;
                            store.append_raw_with_crc(&payload, crc)?;
                        }
                    }
                    Ok(())
                }));
            }
            for h in handles {
                if let Err(e) = h.join().expect("ingest worker panicked") {
                    failure.get_or_insert(e);
                }
            }
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Serial batch ingest with staged per-shard encoding.
    ///
    /// Each record is encoded **once**, in arrival order, straight into
    /// its placement shard's staging buffer with the WAL framing
    /// (`len·crc·payload`) inline; a flush then writes each shard's run
    /// in one buffered log write and replays the payload slices into the
    /// shard store as raw frames. Two wins over streaming per record:
    /// the segment encode and the WAL encode collapse into one, and the
    /// per-shard index inserts land in long hot runs instead of
    /// alternating shard structures per record. Per-shard order is still
    /// arrival order and the staged framing is byte-identical to
    /// [`Wal::append`]'s, so log and store bytes match serial
    /// [`ShardedDurableStore::append`] of the same batch exactly.
    fn ingest_staged(&mut self, records: &[TweetRecord]) -> Result<(), PersistError> {
        self.ingest_staged_with(records, STAGE_FLUSH_BYTES)
    }

    /// [`ShardedDurableStore::ingest_staged`] with an explicit flush
    /// threshold (tests force tiny windows to cover mid-batch flushes).
    fn ingest_staged_with(
        &mut self,
        records: &[TweetRecord],
        flush_bytes: usize,
    ) -> Result<(), PersistError> {
        let shards = self.store.shard_count();
        let mut stages: Vec<ShardStage> = (0..shards).map(|_| ShardStage::default()).collect();
        let mut staged = 0usize;
        for rec in records {
            let st = &mut stages[shard_of(rec.user, shards)];
            let start = st.framed.len();
            st.offsets.push(start as u32);
            st.framed.extend_from_slice(&[0u8; 8]);
            encode_record(&mut st.framed, rec);
            let payload_len = (st.framed.len() - start - 8) as u32;
            let crc = fnv1a(&st.framed[start + 8..]);
            st.framed[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
            st.framed[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
            staged += st.framed.len() - start;
            if staged >= flush_bytes {
                self.flush_stages(&mut stages)?;
                staged = 0;
            }
        }
        self.flush_stages(&mut stages)
    }

    /// Drains every staging buffer shard by shard: one bulk WAL write,
    /// then the payload slices into the shard store.
    fn flush_stages(&mut self, stages: &mut [ShardStage]) -> Result<(), PersistError> {
        for (shard, st) in stages.iter_mut().enumerate() {
            if st.offsets.is_empty() {
                continue;
            }
            self.wals[shard].append_framed(&st.framed, st.offsets.len() as u64)?;
            let store = &mut self.store.shards_mut()[shard];
            for i in 0..st.offsets.len() {
                let start = st.offsets[i] as usize;
                let end = st
                    .offsets
                    .get(i + 1)
                    .map_or(st.framed.len(), |&o| o as usize);
                let crc = u32::from_le_bytes(st.framed[start + 4..start + 8].try_into().unwrap());
                store.append_raw_with_crc(&st.framed[start + 8..end], crc)?;
            }
            st.framed.clear();
            st.offsets.clear();
        }
        Ok(())
    }

    /// Fsyncs every shard's WAL — the batch durability point.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        for wal in &mut self.wals {
            wal.sync()?;
        }
        Ok(())
    }

    /// The in-memory sharded store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Consumes the shell, returning the recovered in-memory store.
    pub fn into_store(self) -> ShardedStore {
        self.store
    }
}

/// Staged frame bytes (across all shards) that trigger a flush in
/// [`ShardedDurableStore::ingest_parallel`]'s serial path — large enough
/// that each shard's index inserts run in long hot streaks, small enough
/// that staging memory stays bounded for arbitrarily large batches.
const STAGE_FLUSH_BYTES: usize = 32 << 20;

/// One shard's staged ingest run: WAL-framed record bytes plus the start
/// offset of each frame (the store frame is the payload slice after the
/// 8-byte `len·crc` prefix).
#[derive(Default)]
struct ShardStage {
    framed: Vec<u8>,
    offsets: Vec<u32>,
}

/// `dir/wal-NNN.log`, the per-shard WAL path.
pub fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-{shard:03}.log"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geoindex::Point;

    fn rec(id: u64) -> TweetRecord {
        TweetRecord {
            id,
            user: id % 97,
            timestamp: id * 31 % 100_000,
            gps: id.is_multiple_of(3).then(|| {
                Point::new(
                    35.0 + (id % 100) as f64 * 0.02,
                    126.0 + (id % 80) as f64 * 0.03,
                )
            }),
            text: format!("shard test tweet {id}"),
        }
    }

    fn build(shards: usize, n: u64) -> (ShardedStore, TweetStore) {
        let mut sharded = ShardedStore::with_segment_bytes(shards, 4096);
        let mut single = TweetStore::with_segment_bytes(4096);
        for i in 0..n {
            let r = rec(i);
            sharded.append(&r);
            single.append(&r);
        }
        (sharded, single)
    }

    #[test]
    fn placement_is_splitmix64_mod_n() {
        let (sharded, _) = build(7, 500);
        for (i, shard) in sharded.shards().iter().enumerate() {
            for r in shard.scan().map(|r| r.unwrap()) {
                assert_eq!(shard_of(r.user, 7), i, "user {} in wrong shard", r.user);
            }
        }
        assert_eq!(sharded.len(), 500);
    }

    #[test]
    fn aggregate_stats_and_lookup() {
        let (sharded, single) = build(4, 1000);
        let (a, b) = (sharded.stats(), single.stats());
        assert_eq!(a.records, b.records);
        assert_eq!(a.gps_records, b.gps_records);
        assert_eq!(a.payload_bytes, b.payload_bytes);
        assert_eq!(sharded.user_count(), single.user_count());
        assert_eq!(
            sharded.get_by_id(123).unwrap(),
            single.get_by_id(123).unwrap()
        );
        assert!(sharded.get_by_id(10_000).is_none());
    }

    #[test]
    fn scatter_gather_matches_single_store() {
        use stir_geoindex::BBox;
        let (sharded, single) = build(5, 2000);
        for q in [
            Query::all(),
            Query::all().user(13),
            Query::all().between(10_000, 60_000),
            Query::all().within(BBox::new(35.0, 126.0, 36.0, 127.0)),
            Query::all().gps(true),
            Query::all().user(9999),
        ] {
            assert_eq!(sharded.query(&q), q.execute(&single), "query {q:?}");
        }
    }

    #[test]
    fn sharded_blocks_cover_every_record_with_unique_ordinals() {
        let (sharded, _) = build(3, 1500);
        let blocks = ShardedHeaderBlocks::new(&sharded, 64);
        assert_eq!(blocks.records(), 1500);
        let mut seen = std::collections::HashSet::new();
        let mut count = 0u64;
        let mut per_user_ordinals: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        let mut buf: Vec<(u64, u64)> = Vec::new();
        loop {
            buf.clear();
            let Some(first) = blocks.next_block_headers(|h| buf.push((h.user, h.id))) else {
                break;
            };
            for (off, &(user, _)) in buf.iter().enumerate() {
                let ordinal = first + off as u64;
                assert!(seen.insert(ordinal), "duplicate ordinal {ordinal}");
                per_user_ordinals.entry(user).or_default().push(ordinal);
                count += 1;
            }
        }
        assert_eq!(count, 1500);
        assert_eq!(blocks.headers_decoded(), 1500);
        // Per-user ordinals ascend in append order (id order here): the
        // property grouping determinism rests on.
        for (user, ords) in per_user_ordinals {
            assert!(
                ords.windows(2).all(|w| w[0] < w[1]),
                "user {user} ordinals out of order: {ords:?}"
            );
        }
        let per = blocks.per_shard();
        assert_eq!(per.len(), 3);
        assert_eq!(per.iter().map(|p| p.headers_decoded).sum::<u64>(), 1500);
    }

    #[test]
    fn save_load_reproduces_placement_and_queries() {
        let dir = std::env::temp_dir().join(format!("stir-shard-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (sharded, single) = build(4, 800);
        sharded.save(&dir).unwrap();
        let loaded = ShardedStore::load_with_segment_bytes(&dir, 4096).unwrap();
        assert_eq!(loaded.shard_count(), 4);
        assert_eq!(loaded.len(), 800);
        for (i, shard) in loaded.shards().iter().enumerate() {
            for r in shard.scan().map(|r| r.unwrap()) {
                assert_eq!(shard_of(r.user, 4), i);
            }
        }
        let q = Query::all().between(0, 50_000);
        assert_eq!(loaded.query(&q), q.execute(&single));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_roundtrip_and_parallel_ingest_match_serial() {
        let base = std::env::temp_dir().join(format!("stir-shard-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let records: Vec<TweetRecord> = (0..1200).map(rec).collect();
        // Serial reference.
        let dir_a = base.join("serial");
        let mut a = ShardedDurableStore::open_with_segment_bytes(&dir_a, 6, 4096).unwrap();
        for r in &records {
            a.append(r).unwrap();
        }
        a.sync().unwrap();
        // Parallel ingest of the same batch.
        let dir_b = base.join("parallel");
        let mut b = ShardedDurableStore::open_with_segment_bytes(&dir_b, 6, 4096).unwrap();
        b.ingest_parallel(&records, 4).unwrap();
        b.sync().unwrap();
        assert_eq!(a.store().stats(), b.store().stats());
        for (sa, sb) in a.store().shards().iter().zip(b.store().shards()) {
            let ra: Vec<_> = sa.scan().map(|r| r.unwrap()).collect();
            let rb: Vec<_> = sb.scan().map(|r| r.unwrap()).collect();
            assert_eq!(ra, rb, "per-shard append order must match");
        }
        // Reopen both: full recovery on every shard.
        drop(a);
        let a2 = ShardedDurableStore::open_with_segment_bytes(&dir_a, 6, 4096).unwrap();
        assert_eq!(a2.store().len(), 1200);
        for r in a2.store().recovery() {
            let r = r.as_ref().unwrap();
            assert_eq!(r.truncated_bytes, 0);
        }
        assert_eq!(
            a2.store()
                .recovery()
                .iter()
                .map(|r| r.as_ref().unwrap().recovered)
                .sum::<u64>(),
            1200
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn staged_serial_ingest_is_byte_identical_to_per_record_appends() {
        let base = std::env::temp_dir().join(format!("stir-shard-stage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let records: Vec<TweetRecord> = (0..900).map(rec).collect();
        // Per-record append reference.
        let dir_a = base.join("serial");
        let mut a = ShardedDurableStore::open_with_segment_bytes(&dir_a, 5, 4096).unwrap();
        for r in &records {
            a.append(r).unwrap();
        }
        a.sync().unwrap();
        // Staged serial ingest with a tiny window so mid-batch flushes
        // (the partial-buffer path) are exercised, not just the final one.
        let dir_b = base.join("staged");
        let mut b = ShardedDurableStore::open_with_segment_bytes(&dir_b, 5, 4096).unwrap();
        b.ingest_staged_with(&records, 512).unwrap();
        b.sync().unwrap();
        assert_eq!(a.store().stats(), b.store().stats());
        for shard in 0..5 {
            let log_a = std::fs::read(wal_path(&dir_a, shard)).unwrap();
            let log_b = std::fs::read(wal_path(&dir_b, shard)).unwrap();
            assert_eq!(log_a, log_b, "shard {shard} WAL bytes must match");
            let ra: Vec<_> = a.store().shard(shard).scan().map(|r| r.unwrap()).collect();
            let rb: Vec<_> = b.store().shard(shard).scan().map(|r| r.unwrap()).collect();
            assert_eq!(ra, rb, "shard {shard} store contents must match");
        }
        // The default-window path (single flush at the end) too.
        let dir_c = base.join("staged-default");
        let mut c = ShardedDurableStore::open_with_segment_bytes(&dir_c, 5, 4096).unwrap();
        c.ingest_parallel(&records, 1).unwrap();
        c.sync().unwrap();
        for shard in 0..5 {
            assert_eq!(
                std::fs::read(wal_path(&dir_a, shard)).unwrap(),
                std::fs::read(wal_path(&dir_c, shard)).unwrap(),
            );
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn cold_shard_scheduler_picks_by_recency_and_reclaim() {
        let mut s = ShardedStore::with_segment_bytes(4, 4096);
        // Fill with records whose GPS share is low (reclaimable high).
        for i in 0..8000u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 200,
                timestamp: i,
                gps: i.is_multiple_of(50).then(|| Point::new(37.0, 127.0)),
                text: format!("cold {i}"),
            });
        }
        let policy = CompactionPolicy {
            min_records: 100,
            min_reclaimable: 0.5,
        };
        let heat = s.shard_heat();
        assert_eq!(heat.len(), 4);
        let picked = s.pick_cold_shard(&policy).unwrap();
        let coldest = heat
            .iter()
            .filter(|h| h.records >= 100 && h.reclaimable * 2 >= h.records)
            .min_by_key(|h| (h.max_ts, h.shard))
            .unwrap();
        assert_eq!(picked, coldest.shard);
        // After a GPS-only maintain pass the picked shard holds only GPS
        // records, and no longer qualifies under the policy once every
        // shard is rewritten.
        let before = s.len();
        let (shard, report) = s.maintain(&policy, |h| h.gps.is_some()).unwrap();
        assert_eq!(shard, picked);
        assert!(report.kept < report.scanned);
        assert!(s.len() < before);
        assert_eq!(
            s.shard(shard).stats().gps_records,
            s.shard(shard).stats().records
        );
    }

    #[test]
    fn background_compaction_does_not_block_ingest() {
        let mut s = ShardedStore::with_segment_bytes(3, 4096);
        for i in 0..6000u64 {
            s.append(&rec(i));
        }
        let target = s.pick_cold_shard(&CompactionPolicy::default()).unwrap_or(0);
        let job = s.begin_compaction(target);
        assert_eq!(job.records_at_begin(), s.shard(target).len() as u64);
        // The job runs on another thread while the owner keeps appending —
        // including into the shard being compacted.
        let done = std::thread::scope(|scope| {
            let worker = scope.spawn(move || job.run(|h| h.gps.is_some()));
            for i in 6000..7000u64 {
                s.append(&rec(i));
            }
            worker.join().expect("compaction worker panicked")
        });
        let report = s.finish_compaction(done, |h| h.gps.is_some());
        // Survivors: every GPS record that was ever in the shard, tail
        // included, in append order.
        let ids: Vec<u64> = s.shard(target).scan().map(|r| r.unwrap().id).collect();
        let expected: Vec<u64> = (0..7000u64)
            .map(rec)
            .filter(|r| shard_of(r.user, 3) == target && r.gps.is_some())
            .map(|r| r.id)
            .collect();
        assert_eq!(ids, expected);
        assert!(report.scanned >= report.kept);
        // Other shards untouched: full record counts preserved.
        let others: usize = (0..3)
            .filter(|&i| i != target)
            .map(|i| s.shard(i).len())
            .sum();
        let expected_others = (0..7000u64)
            .map(rec)
            .filter(|r| shard_of(r.user, 3) != target)
            .count();
        assert_eq!(others, expected_others);
    }

    #[test]
    fn cold_shard_compaction_emits_columnar_segments_under_v2() {
        // A sharded store switched to V2 (e.g. after recovery, which is
        // always row-first) upgrades shards to columnar as the scheduler
        // rewrites them — and the rewritten shard answers identically.
        let mut s = ShardedStore::with_segment_bytes(3, 2048);
        for i in 0..6000u64 {
            s.append(&rec(i));
        }
        assert_eq!(s.format(), StoreFormat::V1);
        s.set_format(StoreFormat::V2);
        let policy = CompactionPolicy {
            min_records: 100,
            min_reclaimable: 0.1,
        };
        let target = s.pick_cold_shard(&policy).unwrap();
        let (shard, _) = s.maintain(&policy, |h| h.gps.is_some()).unwrap();
        assert_eq!(shard, target);
        let cols = s
            .shard(shard)
            .segments()
            .iter()
            .filter(|seg| seg.is_columnar())
            .count();
        assert!(cols > 0, "V2 rewrite must seal columnar segments");
        let expected: Vec<u64> = (0..6000u64)
            .map(rec)
            .filter(|r| shard_of(r.user, 3) == shard && r.gps.is_some())
            .map(|r| r.id)
            .collect();
        let ids: Vec<u64> = s.shard(shard).scan().map(|r| r.unwrap().id).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn merge_is_time_id_sorted_union() {
        let (sharded, single) = build(16, 3000);
        let merged = sharded.query(&Query::all());
        let mut expected = Query::all().execute(&single);
        expected.sort_by_key(|r| (r.timestamp, r.id));
        assert_eq!(merged, expected);
        for w in merged.windows(2) {
            assert!((w[0].timestamp, w[0].id) < (w[1].timestamp, w[1].id));
        }
    }

    #[test]
    fn one_shard_degenerates_to_single_store() {
        let (sharded, single) = build(1, 700);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.query(&Query::all()), Query::all().execute(&single));
    }
}
