//! Query execution: predicate composition, index selection, post-filtering.

use stir_geoindex::{geohash, BBox};

use crate::codec::TweetRecord;
use crate::store::{RecordPtr, TweetStore, GEO_PRECISION};

/// A conjunctive query over the store.
#[derive(Clone, Debug, Default)]
pub struct Query {
    /// Restrict to one author.
    pub user: Option<u64>,
    /// Restrict to `[start, end)` in window seconds.
    pub time_range: Option<(u64, u64)>,
    /// Restrict to records with GPS inside the box.
    pub bbox: Option<BBox>,
    /// Require/forbid GPS presence.
    pub has_gps: Option<bool>,
}

/// Which access path the planner chose (exposed for tests and benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Per-user posting list.
    UserIndex,
    /// Geohash cell union covering the bbox.
    GeoIndex,
    /// Time-bucket range.
    TimeIndex,
    /// Full scan.
    FullScan,
}

impl Query {
    /// A query matching everything.
    pub fn all() -> Self {
        Query::default()
    }

    /// Restricts to one user.
    pub fn user(mut self, user: u64) -> Self {
        self.user = Some(user);
        self
    }

    /// Restricts to a `[start, end)` time range.
    pub fn between(mut self, start: u64, end: u64) -> Self {
        self.time_range = Some((start, end));
        self
    }

    /// Restricts to GPS records inside `bbox`.
    pub fn within(mut self, bbox: BBox) -> Self {
        self.bbox = Some(bbox);
        self
    }

    /// Requires (or forbids) GPS presence.
    pub fn gps(mut self, present: bool) -> Self {
        self.has_gps = Some(present);
        self
    }

    fn matches(&self, rec: &TweetRecord) -> bool {
        if let Some(u) = self.user {
            if rec.user != u {
                return false;
            }
        }
        if let Some((start, end)) = self.time_range {
            if rec.timestamp < start || rec.timestamp >= end {
                return false;
            }
        }
        if let Some(want) = self.has_gps {
            if rec.gps.is_some() != want {
                return false;
            }
        }
        if let Some(bbox) = self.bbox {
            match rec.gps {
                Some(p) if bbox.contains(p) => {}
                _ => return false,
            }
        }
        true
    }

    /// The access path the planner would pick against `store`.
    ///
    /// Heuristic selectivity order: a user list is the narrowest, then a
    /// geohash cover (bounded cell count), then a time range, then a scan.
    pub fn plan(&self, store: &TweetStore) -> AccessPath {
        if self.user.is_some() {
            return AccessPath::UserIndex;
        }
        if let Some(bbox) = self.bbox {
            if geohash::cover_bbox(&bbox, GEO_PRECISION, 512).is_some() {
                return AccessPath::GeoIndex;
            }
        }
        if let Some((start, end)) = self.time_range {
            // A time range narrower than the whole store is worth the index.
            if end > start && !store.is_empty() {
                return AccessPath::TimeIndex;
            }
        }
        AccessPath::FullScan
    }

    /// Executes against the store, returning matching records.
    pub fn execute(&self, store: &TweetStore) -> Vec<TweetRecord> {
        let candidates: Vec<RecordPtr> = match self.plan(store) {
            AccessPath::UserIndex => store.user_ptrs(self.user.unwrap()).to_vec(),
            AccessPath::GeoIndex => {
                let bbox = self.bbox.unwrap();
                let cells = geohash::cover_bbox(&bbox, GEO_PRECISION, 512)
                    .expect("plan() verified the cover fits");
                let mut ptrs = Vec::new();
                for cell in cells {
                    ptrs.extend_from_slice(store.geo_cell_ptrs(&cell));
                }
                ptrs
            }
            AccessPath::TimeIndex => {
                let (start, end) = self.time_range.unwrap();
                store.time_ptrs(start, end)
            }
            AccessPath::FullScan => {
                return store
                    .scan()
                    .filter_map(|r| r.ok())
                    .filter(|r| self.matches(r))
                    .collect();
            }
        };
        let mut out: Vec<TweetRecord> = candidates
            .into_iter()
            .filter_map(|p| store.get(p).ok())
            .filter(|r| self.matches(r))
            .collect();
        out.sort_by_key(|r| (r.timestamp, r.id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geoindex::Point;

    fn build_store() -> TweetStore {
        let mut s = TweetStore::new();
        // 3 users × 100 tweets over 10 hours; user 1's tweets carry GPS
        // alternating between Seoul and Busan.
        let mut id = 0u64;
        for user in 0..3u64 {
            for i in 0..100u64 {
                let gps = (user == 1).then(|| {
                    if i % 2 == 0 {
                        Point::new(37.55, 126.98) // Seoul
                    } else {
                        Point::new(35.15, 129.05) // Busan
                    }
                });
                s.append(&TweetRecord {
                    id,
                    user,
                    timestamp: i * 360,
                    gps,
                    text: String::new(),
                });
                id += 1;
            }
        }
        s
    }

    #[test]
    fn user_query_uses_user_index() {
        let s = build_store();
        let q = Query::all().user(1);
        assert_eq!(q.plan(&s), AccessPath::UserIndex);
        let rows = q.execute(&s);
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|r| r.user == 1));
    }

    #[test]
    fn bbox_query_uses_geo_index() {
        let s = build_store();
        let seoul = BBox::new(37.4, 126.8, 37.7, 127.2);
        let q = Query::all().within(seoul);
        assert_eq!(q.plan(&s), AccessPath::GeoIndex);
        let rows = q.execute(&s);
        assert_eq!(rows.len(), 50); // user 1's even tweets
        assert!(rows.iter().all(|r| seoul.contains(r.gps.unwrap())));
    }

    #[test]
    fn time_query_uses_time_index() {
        let s = build_store();
        let q = Query::all().between(0, 3600);
        assert_eq!(q.plan(&s), AccessPath::TimeIndex);
        let rows = q.execute(&s);
        assert_eq!(rows.len(), 30); // 10 per user
        assert!(rows.iter().all(|r| r.timestamp < 3600));
    }

    #[test]
    fn gps_only_full_scan() {
        let s = build_store();
        let q = Query::all().gps(true);
        assert_eq!(q.plan(&s), AccessPath::FullScan);
        assert_eq!(q.execute(&s).len(), 100);
        assert_eq!(Query::all().gps(false).execute(&s).len(), 200);
    }

    #[test]
    fn conjunction_filters_apply() {
        let s = build_store();
        let seoul = BBox::new(37.4, 126.8, 37.7, 127.2);
        let rows = Query::all()
            .user(1)
            .between(0, 7200)
            .within(seoul)
            .execute(&s);
        // user 1, first 20 tweets (t < 7200), even ones in Seoul → 10.
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert_eq!(r.user, 1);
            assert!(r.timestamp < 7200);
            assert!(seoul.contains(r.gps.unwrap()));
        }
    }

    #[test]
    fn results_sorted_by_time() {
        let s = build_store();
        let rows = Query::all().user(2).execute(&s);
        for w in rows.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn query_matching_nothing() {
        let s = build_store();
        assert!(Query::all().user(99).execute(&s).is_empty());
        assert!(Query::all()
            .between(1_000_000, 2_000_000)
            .execute(&s)
            .is_empty());
    }

    #[test]
    fn all_paths_agree_with_scan_semantics() {
        let s = build_store();
        let seoul = BBox::new(37.4, 126.8, 37.7, 127.2);
        // Same predicate through different plans: force scan by matching
        // with no index-able field vs geo plan.
        let via_geo = Query::all().within(seoul).execute(&s);
        let via_scan: Vec<TweetRecord> = s
            .scan()
            .filter_map(|r| r.ok())
            .filter(|r| r.gps.is_some_and(|p| seoul.contains(p)))
            .collect();
        assert_eq!(via_geo.len(), via_scan.len());
    }
}
