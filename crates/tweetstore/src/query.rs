//! Query execution: predicate composition, index selection, post-filtering.

use stir_geoindex::{geohash, BBox};

use crate::codec::{TweetHeader, TweetRecord};
use crate::scan::{self, ScanOptions};
use crate::segment::ZoneMap;
use crate::store::{RecordPtr, TweetStore, GEO_PRECISION};

/// Geohash-cover cell budget shared by the planner and the geo path.
const GEO_COVER_LIMIT: usize = 512;

/// A conjunctive query over the store.
#[derive(Clone, Debug, Default)]
pub struct Query {
    /// Restrict to one author.
    pub user: Option<u64>,
    /// Restrict to `[start, end)` in window seconds.
    pub time_range: Option<(u64, u64)>,
    /// Restrict to records with GPS inside the box.
    pub bbox: Option<BBox>,
    /// Require/forbid GPS presence.
    pub has_gps: Option<bool>,
}

/// Which access path the planner chose (exposed for tests and benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Per-user posting list.
    UserIndex,
    /// Geohash cell union covering the bbox.
    GeoIndex,
    /// Time-bucket range.
    TimeIndex,
    /// Full scan.
    FullScan,
}

impl Query {
    /// A query matching everything.
    pub fn all() -> Self {
        Query::default()
    }

    /// Restricts to one user.
    pub fn user(mut self, user: u64) -> Self {
        self.user = Some(user);
        self
    }

    /// Restricts to a `[start, end)` time range.
    pub fn between(mut self, start: u64, end: u64) -> Self {
        self.time_range = Some((start, end));
        self
    }

    /// Restricts to GPS records inside `bbox`.
    pub fn within(mut self, bbox: BBox) -> Self {
        self.bbox = Some(bbox);
        self
    }

    /// Requires (or forbids) GPS presence.
    pub fn gps(mut self, present: bool) -> Self {
        self.has_gps = Some(present);
        self
    }

    /// Evaluates the predicate on a record's fixed fields. Every clause —
    /// user, time range, GPS presence, bbox — needs only the header, which
    /// is what makes header-only scanning safe: the text can never change
    /// whether a record matches.
    pub fn matches_header(&self, h: &TweetHeader) -> bool {
        if let Some(u) = self.user {
            if h.user != u {
                return false;
            }
        }
        if let Some((start, end)) = self.time_range {
            if h.timestamp < start || h.timestamp >= end {
                return false;
            }
        }
        if let Some(want) = self.has_gps {
            if h.gps.is_some() != want {
                return false;
            }
        }
        if let Some(bbox) = self.bbox {
            match h.gps {
                Some(p) if bbox.contains(p) => {}
                _ => return false,
            }
        }
        true
    }

    /// Evaluates the predicate on a full record.
    pub fn matches(&self, rec: &TweetRecord) -> bool {
        self.matches_header(&rec.header())
    }

    /// True unless the zone map proves no record in the segment can match.
    ///
    /// A `false` is definitive (the segment is skipped without decoding a
    /// byte); a `true` only means "cannot rule out". Clause by clause:
    /// user outside `[min_user, max_user]`, a time range disjoint from
    /// `[min_ts, max_ts]`, `gps(true)` against zero GPS records (or
    /// `gps(false)` against all-GPS), and a bbox disjoint from the
    /// segment's GPS bounding box are all disprovable from the stats.
    pub fn zone_may_match(&self, zone: &ZoneMap) -> bool {
        if zone.records == 0 {
            return false;
        }
        if let Some(u) = self.user {
            if u < zone.min_user || u > zone.max_user {
                return false;
            }
        }
        if let Some((start, end)) = self.time_range {
            if start >= end || zone.max_ts < start || zone.min_ts >= end {
                return false;
            }
        }
        if let Some(want) = self.has_gps {
            if want && zone.gps_records == 0 {
                return false;
            }
            if !want && zone.gps_records == zone.records {
                return false;
            }
        }
        if let Some(bbox) = self.bbox {
            match zone.gps_bbox() {
                None => return false,
                Some(z) => {
                    if z.min_lat > bbox.max_lat
                        || z.max_lat < bbox.min_lat
                        || z.min_lon > bbox.max_lon
                        || z.max_lon < bbox.min_lon
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The geohash cover of the query bbox, when one fits the cell budget.
    fn geo_cover(&self) -> Option<Vec<String>> {
        let bbox = self.bbox?;
        geohash::cover_bbox(&bbox, GEO_PRECISION, GEO_COVER_LIMIT)
    }

    /// Estimated candidate rows a full scan would examine after zone-map
    /// pruning.
    fn scan_estimate(&self, store: &TweetStore) -> usize {
        store
            .segments()
            .iter()
            .filter(|s| self.zone_may_match(s.zone_map()))
            .map(|s| s.len())
            .sum()
    }

    /// The access path the planner picks against `store`.
    ///
    /// Cardinality-aware: each applicable path is costed by the number of
    /// candidate rows it would decode — the user posting list length, the
    /// sum of posting lists under the geohash cover, the time-bucket row
    /// count, and the zone-map-pruned record count for a scan — and the
    /// cheapest wins. Ties break in fixed priority order (user, geo, time,
    /// scan) so planning is deterministic.
    pub fn plan(&self, store: &TweetStore) -> AccessPath {
        let mut best = (self.scan_estimate(store), AccessPath::FullScan);
        // Candidates in reverse priority order, each replacing the
        // incumbent when at least as cheap — so on a full tie the
        // highest-priority (narrowest) path wins: user, geo, time, scan.
        if let Some((start, end)) = self.time_range {
            let est = store.time_ptr_count(start, end);
            if est <= best.0 {
                best = (est, AccessPath::TimeIndex);
            }
        }
        if let Some(cells) = self.geo_cover() {
            let est: usize = cells.iter().map(|c| store.geo_cell_ptrs(c).len()).sum();
            if est <= best.0 {
                best = (est, AccessPath::GeoIndex);
            }
        }
        if let Some(u) = self.user {
            let est = store.user_ptrs(u).len();
            if est <= best.0 {
                best = (est, AccessPath::UserIndex);
            }
        }
        best.1
    }

    /// Executes against the store through a specific access path. All
    /// paths return the same rows in the same `(timestamp, id)` order, so
    /// plan choice can never change what a caller observes.
    pub fn execute_via(&self, store: &TweetStore, path: AccessPath) -> Vec<TweetRecord> {
        let candidates: Vec<RecordPtr> = match path {
            AccessPath::UserIndex => self
                .user
                .map_or_else(Vec::new, |u| store.user_ptrs(u).to_vec()),
            AccessPath::GeoIndex => {
                let mut ptrs = Vec::new();
                for cell in self.geo_cover().unwrap_or_default() {
                    ptrs.extend_from_slice(store.geo_cell_ptrs(&cell));
                }
                ptrs
            }
            AccessPath::TimeIndex => {
                let (start, end) = self.time_range.unwrap_or((0, 0));
                store.time_ptrs(start, end)
            }
            AccessPath::FullScan => {
                let (mut out, _) = scan::scan_filtered(self, store, &ScanOptions::serial(), &|v| {
                    v.to_record().ok()
                });
                out.sort_by_key(|r| (r.timestamp, r.id));
                return out;
            }
        };
        let mut out: Vec<TweetRecord> = candidates
            .into_iter()
            .filter_map(|p| store.get(p).ok())
            .filter(|r| self.matches(r))
            .collect();
        out.sort_by_key(|r| (r.timestamp, r.id));
        out
    }

    /// Executes against the store, returning matching records sorted by
    /// `(timestamp, id)` regardless of the chosen access path.
    pub fn execute(&self, store: &TweetStore) -> Vec<TweetRecord> {
        self.execute_via(store, self.plan(store))
    }

    /// Streams every matching record through `visit` as a borrowed
    /// [`crate::TweetView`], pruning segments by zone map and deciding
    /// matches on headers alone — the text is never decoded unless the
    /// visitor asks the view for it. Returns scan statistics.
    pub fn for_each<F: FnMut(&crate::TweetView<'_>)>(
        &self,
        store: &TweetStore,
        visit: F,
    ) -> scan::ScanMetrics {
        scan::for_each(self, store, visit)
    }

    /// Pruned, optionally parallel scan: maps every matching record
    /// through `map` (which may still reject by returning `None`) and
    /// collects the results in (segment, slot) order — byte-identical to
    /// a serial scan at any thread/block geometry.
    pub fn scan_filtered<R, F>(
        &self,
        store: &TweetStore,
        opts: &ScanOptions,
        map: F,
    ) -> (Vec<R>, scan::ScanMetrics)
    where
        R: Send,
        F: Fn(&crate::TweetView<'_>) -> Option<R> + Sync,
    {
        scan::scan_filtered(self, store, opts, &map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geoindex::Point;

    fn build_store() -> TweetStore {
        let mut s = TweetStore::new();
        // 3 users × 100 tweets over 10 hours; user 1's tweets carry GPS
        // alternating between Seoul and Busan.
        let mut id = 0u64;
        for user in 0..3u64 {
            for i in 0..100u64 {
                let gps = (user == 1).then(|| {
                    if i % 2 == 0 {
                        Point::new(37.55, 126.98) // Seoul
                    } else {
                        Point::new(35.15, 129.05) // Busan
                    }
                });
                s.append(&TweetRecord {
                    id,
                    user,
                    timestamp: i * 360,
                    gps,
                    text: String::new(),
                });
                id += 1;
            }
        }
        s
    }

    #[test]
    fn user_query_uses_user_index() {
        let s = build_store();
        let q = Query::all().user(1);
        assert_eq!(q.plan(&s), AccessPath::UserIndex);
        let rows = q.execute(&s);
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|r| r.user == 1));
    }

    #[test]
    fn bbox_query_uses_geo_index() {
        let s = build_store();
        let seoul = BBox::new(37.4, 126.8, 37.7, 127.2);
        let q = Query::all().within(seoul);
        assert_eq!(q.plan(&s), AccessPath::GeoIndex);
        let rows = q.execute(&s);
        assert_eq!(rows.len(), 50); // user 1's even tweets
        assert!(rows.iter().all(|r| seoul.contains(r.gps.unwrap())));
    }

    #[test]
    fn time_query_uses_time_index() {
        let s = build_store();
        let q = Query::all().between(0, 3600);
        assert_eq!(q.plan(&s), AccessPath::TimeIndex);
        let rows = q.execute(&s);
        assert_eq!(rows.len(), 30); // 10 per user
        assert!(rows.iter().all(|r| r.timestamp < 3600));
    }

    #[test]
    fn gps_only_full_scan() {
        let s = build_store();
        let q = Query::all().gps(true);
        assert_eq!(q.plan(&s), AccessPath::FullScan);
        assert_eq!(q.execute(&s).len(), 100);
        assert_eq!(Query::all().gps(false).execute(&s).len(), 200);
    }

    #[test]
    fn conjunction_filters_apply() {
        let s = build_store();
        let seoul = BBox::new(37.4, 126.8, 37.7, 127.2);
        let rows = Query::all()
            .user(1)
            .between(0, 7200)
            .within(seoul)
            .execute(&s);
        // user 1, first 20 tweets (t < 7200), even ones in Seoul → 10.
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert_eq!(r.user, 1);
            assert!(r.timestamp < 7200);
            assert!(seoul.contains(r.gps.unwrap()));
        }
    }

    #[test]
    fn results_sorted_by_time() {
        let s = build_store();
        let rows = Query::all().user(2).execute(&s);
        for w in rows.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn query_matching_nothing() {
        let s = build_store();
        assert!(Query::all().user(99).execute(&s).is_empty());
        assert!(Query::all()
            .between(1_000_000, 2_000_000)
            .execute(&s)
            .is_empty());
    }

    #[test]
    fn all_paths_agree_with_scan_semantics() {
        let s = build_store();
        let seoul = BBox::new(37.4, 126.8, 37.7, 127.2);
        // Same predicate through different plans: force scan by matching
        // with no index-able field vs geo plan.
        let via_geo = Query::all().within(seoul).execute(&s);
        let via_scan: Vec<TweetRecord> = s
            .scan()
            .filter_map(|r| r.ok())
            .filter(|r| r.gps.is_some_and(|p| seoul.contains(p)))
            .collect();
        assert_eq!(via_geo.len(), via_scan.len());
    }
}
