//! # stir-tweetstore — an append-only tweet store
//!
//! The paper's funnel filters 11.1M crawled tweets down to the 2xx,xxx that
//! carry GPS coordinates, then scans them per user. This crate is the
//! storage substrate that makes those scans honest at that scale:
//!
//! * [`codec`] — a compact varint binary record format (`bytes`-based);
//!   GPS coordinates are fixed-point micro-degrees. Decoding is two-phase:
//!   a fixed-field [`TweetHeader`] decode, then a lazy text decode through
//!   a borrowed [`TweetView`] — predicates never pay the text allocation.
//! * [`segment`] — append-only segments with slot offsets, CRC-checked
//!   framing, and a per-segment [`ZoneMap`] (record count, min/max
//!   timestamp and user, GPS count and bounding box) maintained at append
//!   time and rebuilt-and-verified on load.
//! * [`colseg`] — columnar sealed segments (`STIRSEG2`): per-column
//!   checksummed blocks (delta-varint timestamps, varint users,
//!   micro-degree `i32` coordinates, an LZ-compressed text region), a
//!   zero-decode scan path, and point lookups through a [`ColumnCursor`].
//!   Writes stay row-first; sealing and compaction convert rows→columns.
//! * [`TweetStore`] — segmented log plus three secondary indexes: by user,
//!   by time bucket, and by geohash cell (GPS tweets only). A
//!   [`StoreFormat`] picks the sealed-segment encoding; mixed stores work.
//! * [`query`] — a cardinality-aware query planner: point/user/time/bbox
//!   predicates, index selection by estimated candidate rows, zone-map
//!   segment pruning, post-filtering.
//! * [`scan`] — the pruned, parallel, zero-copy scan engine behind
//!   [`Query::for_each`] and [`Query::scan_filtered`], with [`ScanMetrics`]
//!   reporting pruning and decode volume.
//! * [`compact`] — predicate compaction (the paper's GPS-only filter as a
//!   storage operation); survivors are copied as raw frames, re-verified
//!   by checksum, never re-encoded.
//! * [`persist`] — directory-based save/load with manifest and checksums;
//!   the manifest carries each segment's zone map, cross-checked against
//!   the rebuilt statistics on load.
//! * [`wal`] — per-append durability: a CRC-framed write-ahead log with
//!   torn-tail truncation on recovery.
//! * [`snapshot`] — append-only checkpoint frames for incremental
//!   services: an opaque state payload plus the WAL record ordinal it
//!   covers, newest-intact-frame recovery.
//! * [`shard`] — user-hash-sharded scale-out: N independent stores behind
//!   deterministic `splitmix64(user) % N` placement, with scatter-gather
//!   queries, one WAL per shard (independent torn-tail recovery), a
//!   cross-shard morsel source, and a cold-shard compaction scheduler.
//! * [`sketch`] — seal-time group sketches: per-segment materialized
//!   grouping partials (per-user `(district, count, first-slot)` entries
//!   bucketed by day), persisted as FNV-checksummed sidecars after the
//!   `STIRSEG2` column region and merged by the analysis layer instead of
//!   re-scanning sealed records.

#![warn(missing_docs)]

pub mod codec;
pub mod colseg;
pub mod compact;
pub mod persist;
pub mod query;
pub mod scan;
pub mod segment;
pub mod shard;
pub mod sketch;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::{TweetHeader, TweetRecord, TweetView};
pub use colseg::{ColumnCursor, ColumnSegment};
pub use compact::{compact, gps_only, users_only, CompactionReport};
pub use query::{AccessPath, Query};
pub use scan::{BlockChunk, ColumnSlice, HeaderBlocks, ScanMetrics, ScanOptions, ShardScanMetrics};
pub use segment::ZoneMap;
pub use shard::{
    shard_of, splitmix64, CompactionPolicy, ShardedDurableStore, ShardedHeaderBlocks, ShardedStore,
};
pub use sketch::{DaySketch, DayTotal, GroupSketch, SketchEntry, SketchResolver, UserSketch};
pub use snapshot::{append_snapshot, latest_snapshot, SnapshotFrame};
pub use store::{RecordPtr, SegmentRef, StoreFormat, StoreStats, TweetStore};
pub use wal::{DurableStore, Wal, WalRecovery};
