//! # stir-tweetstore — an append-only tweet store
//!
//! The paper's funnel filters 11.1M crawled tweets down to the 2xx,xxx that
//! carry GPS coordinates, then scans them per user. This crate is the
//! storage substrate that makes those scans honest at that scale:
//!
//! * [`codec`] — a compact varint binary record format (`bytes`-based);
//!   GPS coordinates are fixed-point micro-degrees.
//! * [`segment`] — append-only segments with slot offsets and CRC-checked
//!   framing.
//! * [`TweetStore`] — segmented log plus three secondary indexes: by user,
//!   by time bucket, and by geohash cell (GPS tweets only).
//! * [`query`] — a small query planner: point/user/time/bbox predicates,
//!   index selection by expected selectivity, post-filtering.
//! * [`compact`] — predicate compaction (the paper's GPS-only filter as a
//!   storage operation).
//! * [`persist`] — directory-based save/load with manifest and checksums.
//! * [`wal`] — per-append durability: a CRC-framed write-ahead log with
//!   torn-tail truncation on recovery.

#![warn(missing_docs)]

pub mod codec;
pub mod compact;
pub mod persist;
pub mod query;
pub mod segment;
pub mod store;
pub mod wal;

pub use codec::TweetRecord;
pub use compact::{compact, gps_only, users_only, CompactionReport};
pub use query::Query;
pub use store::{RecordPtr, StoreStats, TweetStore};
pub use wal::{DurableStore, Wal};
