//! Directory-based persistence: one framed file per segment plus a
//! manifest. Loading verifies checksums and rebuilds every index.
//!
//! Each segment file opens with a format magic — `STIRSEG1` for row
//! segments, `STIRSEG2` for columnar ones — and a mixed store persists
//! each sealed segment in its own encoding, so saving never converts.
//! The manifest opens with a version header (`STIRMAN\t3\t<v1|v2>`)
//! recording the store's target format; version-2 manifests (pre-sketch)
//! and headerless ones from before the header existed (all-row by
//! construction, target `v1`) still load.
//!
//! A columnar segment whose [`GroupSketch`] is in memory at save time
//! persists it as a sidecar block after the column region (see
//! [`crate::sketch`]). On load the sidecar is decoded leniently: a
//! tampered or truncated sketch is dropped — queries fall back to the
//! column scan — while corruption in the column region itself still
//! rejects the file.
//!
//! Each manifest segment line carries the segment's file name followed by
//! its [`ZoneMap`] statistics (tab-separated; GPS bounds in micro-degrees
//! so the round trip is exact). On load the zone map is rebuilt from the
//! segment's records and cross-checked against the manifest — a segment
//! file swapped for a different (but internally consistent) one is caught
//! even though its own checksum passes. Legacy manifests that list bare
//! file names still load; they simply skip the cross-check.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::codec::CodecError;
use crate::colseg::ColumnSegment;
use crate::segment::{Segment, ZoneMap, DEFAULT_SEGMENT_BYTES};
use crate::sketch::GroupSketch;
use crate::store::{SealedSegment, SegmentRef, StoreFormat, TweetStore};

/// Magic header of row-format segment files.
const MAGIC: &[u8; 8] = b"STIRSEG1";
/// Magic header of columnar segment files.
const MAGIC_COLS: &[u8; 8] = b"STIRSEG2";
/// Manifest file name.
const MANIFEST: &str = "MANIFEST";
/// First field of the manifest's version header line.
const MANIFEST_MAGIC: &str = "STIRMAN";
/// Current manifest version (3 = segment files may carry sketch
/// sidecars).
const MANIFEST_VERSION: &str = "3";
/// Manifest versions this build reads.
const MANIFEST_READABLE: [&str; 2] = ["2", "3"];

/// Persistence errors.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Segment file failed decoding or checksum verification.
    Corrupt(CodecError),
    /// File did not start with the segment magic.
    BadMagic,
    /// Manifest was missing or unreadable.
    BadManifest,
    /// A segment's rebuilt zone map disagreed with the manifest.
    ZoneMapMismatch(String),
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Corrupt(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Corrupt(e) => write!(f, "corrupt segment: {e}"),
            PersistError::BadMagic => write!(f, "bad segment magic"),
            PersistError::BadManifest => write!(f, "bad manifest"),
            PersistError::ZoneMapMismatch(name) => {
                write!(f, "zone map mismatch for segment {name}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Serializes a zone map as the manifest's tab-separated stat fields.
fn zone_to_fields(z: &ZoneMap) -> String {
    if z.records == 0 {
        // Sentinel bounds are meaningless when empty; persist just the count.
        return "0".to_string();
    }
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        z.records,
        z.min_ts,
        z.max_ts,
        z.min_user,
        z.max_user,
        z.gps_records,
        z.min_lat_e6,
        z.max_lat_e6,
        z.min_lon_e6,
        z.max_lon_e6
    )
}

/// Parses manifest stat fields back into a zone map. `None` means the
/// fields are malformed (a bad manifest, not a legacy one).
fn zone_from_fields(fields: &[&str]) -> Option<ZoneMap> {
    match fields {
        ["0"] => Some(ZoneMap::default()),
        [records, min_ts, max_ts, min_user, max_user, gps_records, min_lat, max_lat, min_lon, max_lon] => {
            Some(ZoneMap {
                records: records.parse().ok()?,
                min_ts: min_ts.parse().ok()?,
                max_ts: max_ts.parse().ok()?,
                min_user: min_user.parse().ok()?,
                max_user: max_user.parse().ok()?,
                gps_records: gps_records.parse().ok()?,
                min_lat_e6: min_lat.parse().ok()?,
                max_lat_e6: max_lat.parse().ok()?,
                min_lon_e6: min_lon.parse().ok()?,
                max_lon_e6: max_lon.parse().ok()?,
            })
        }
        _ => None,
    }
}

/// Writes the store to `dir` (created if absent): `seg-NNNN.stir` files and
/// a `MANIFEST` listing them in order, each with its zone-map statistics.
pub fn save(store: &TweetStore, dir: &Path) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    let segments = store.segments();
    let mut manifest = format!(
        "{MANIFEST_MAGIC}\t{MANIFEST_VERSION}\t{}\n",
        store.format().as_str()
    );
    for (i, seg) in segments.iter().enumerate() {
        let name = format!("seg-{i:04}.stir");
        let path = dir.join(&name);
        let mut f = fs::File::create(&path)?;
        match seg {
            SegmentRef::Rows(s) => {
                f.write_all(MAGIC)?;
                f.write_all(&s.to_framed_bytes())?;
            }
            SegmentRef::Cols(c) => {
                f.write_all(MAGIC_COLS)?;
                f.write_all(&c.encode())?;
                // Sketch sidecar: persisted only when already in memory
                // (a seal-time or on-demand build, or a sidecar loaded
                // earlier) — saving never forces a build.
                if let Some(sketch) = store.sketch_cached(i) {
                    f.write_all(&sketch.encode())?;
                }
            }
        }
        f.sync_all()?;
        manifest.push_str(&name);
        manifest.push('\t');
        manifest.push_str(&zone_to_fields(seg.zone_map()));
        manifest.push('\n');
    }
    fs::write(dir.join(MANIFEST), manifest)?;
    Ok(())
}

/// Loads a store from `dir`, verifying every segment checksum and
/// rebuilding the indexes.
pub fn load(dir: &Path) -> Result<TweetStore, PersistError> {
    load_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
}

/// [`load`] with an explicit segment-roll threshold for the rebuilt store.
pub fn load_with_segment_bytes(
    dir: &Path,
    segment_bytes: usize,
) -> Result<TweetStore, PersistError> {
    let manifest = fs::read_to_string(dir.join(MANIFEST)).map_err(|_| PersistError::BadManifest)?;
    let mut lines = manifest.lines().filter(|l| !l.is_empty()).peekable();
    // Versioned manifests lead with `STIRMAN\t<version>\t<format>`;
    // headerless ones predate columnar segments and target v1.
    let format = match lines.peek() {
        Some(first) if first.starts_with(MANIFEST_MAGIC) => {
            let fields: Vec<&str> = first.split('\t').collect();
            if fields.len() != 3
                || fields[0] != MANIFEST_MAGIC
                || !MANIFEST_READABLE.contains(&fields[1])
            {
                return Err(PersistError::BadManifest);
            }
            let format = StoreFormat::parse(fields[2]).ok_or(PersistError::BadManifest)?;
            lines.next();
            format
        }
        _ => StoreFormat::V1,
    };
    let mut segments = Vec::new();
    for line in lines {
        let mut fields = line.split('\t');
        let name = fields.next().ok_or(PersistError::BadManifest)?;
        let stat_fields: Vec<&str> = fields.collect();
        let expected_zone = if stat_fields.is_empty() {
            None // legacy manifest: bare file name, no stats to verify
        } else {
            Some(zone_from_fields(&stat_fields).ok_or(PersistError::BadManifest)?)
        };
        let mut f = fs::File::open(dir.join(name))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        // Dispatch on the per-file magic — a mixed store round-trips each
        // segment in the encoding it was sealed with.
        let (seg, sketch) = if bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC {
            (
                SealedSegment::Rows(Segment::from_framed_bytes(&bytes[MAGIC.len()..])?),
                None,
            )
        } else if bytes.len() >= MAGIC_COLS.len() && &bytes[..MAGIC_COLS.len()] == MAGIC_COLS {
            let (cols, consumed) = ColumnSegment::decode_prefix(&bytes[MAGIC_COLS.len()..])?;
            // Anything after the column region is the optional sketch
            // sidecar. It is decoded leniently: a damaged sidecar is
            // dropped (queries fall back to scanning) rather than
            // rejecting the otherwise-intact segment.
            let rest = &bytes[MAGIC_COLS.len() + consumed..];
            let sketch = if rest.is_empty() {
                None
            } else {
                GroupSketch::decode(rest).ok()
            };
            (SealedSegment::Cols(cols), sketch)
        } else {
            return Err(PersistError::BadMagic);
        };
        // Decoding rebuilt the zone map from the payload; it must agree
        // with what the manifest promised.
        if let Some(expected) = expected_zone {
            if *seg.as_ref().zone_map() != expected {
                return Err(PersistError::ZoneMapMismatch(name.to_string()));
            }
        }
        segments.push((seg, sketch));
    }
    Ok(TweetStore::from_sealed_with_sketches(
        segments,
        segment_bytes,
        format,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::TweetRecord;
    use crate::query::Query;
    use stir_geoindex::Point;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stir-tweetstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn populated() -> TweetStore {
        let mut s = TweetStore::with_segment_bytes(4096);
        for i in 0..1000u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 11,
                timestamp: i * 17,
                gps: (i % 4 == 0).then(|| Point::new(36.0 + (i as f64) * 1e-3 % 2.0, 127.5)),
                text: format!("tweet {i}"),
            });
        }
        s
    }

    #[test]
    fn save_load_roundtrip_preserves_queries() {
        let dir = tmpdir("roundtrip");
        let s = populated();
        save(&s, &dir).unwrap();
        let loaded = load_with_segment_bytes(&dir, 4096).unwrap();
        assert_eq!(loaded.len(), s.len());
        assert_eq!(loaded.stats().gps_records, s.stats().gps_records);
        let a = Query::all().user(3).execute(&s);
        let b = Query::all().user(3).execute(&loaded);
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_file_is_rejected() {
        let dir = tmpdir("corrupt");
        save(&populated(), &dir).unwrap();
        // Flip a byte in the first segment's payload.
        let seg_path = dir.join("seg-0000.stir");
        let mut bytes = fs::read(&seg_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        fs::write(&seg_path, bytes).unwrap();
        match load(&dir) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corrupt, got {:?}", other.map(|s| s.len())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zone_maps_round_trip_through_manifest() {
        let dir = tmpdir("zonemap");
        let s = populated();
        save(&s, &dir).unwrap();
        let loaded = load_with_segment_bytes(&dir, 4096).unwrap();
        // Loaded zone maps equal both the source's and an independent
        // recompute — exact, including the micro-degree GPS bounds.
        for (a, b) in s.segments().iter().zip(loaded.segments().iter()) {
            assert_eq!(a.zone_map(), b.zone_map());
            let rows = b.as_rows().expect("v1 store is all row segments");
            assert_eq!(*b.zone_map(), ZoneMap::compute(rows).unwrap());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_manifest_zone_map_is_rejected() {
        let dir = tmpdir("zonetamper");
        save(&populated(), &dir).unwrap();
        let manifest = fs::read_to_string(dir.join(MANIFEST)).unwrap();
        // Corrupt the record count of the first segment's stats (line 0 is
        // the version header; segment lines start at 1).
        let mut lines: Vec<String> = manifest.lines().map(str::to_string).collect();
        let mut fields: Vec<String> = lines[1].split('\t').map(str::to_string).collect();
        fields[1] = "99999".to_string();
        lines[1] = fields.join("\t");
        fs::write(dir.join(MANIFEST), lines.join("\n")).unwrap();
        assert!(matches!(
            load(&dir),
            Err(PersistError::ZoneMapMismatch(name)) if name == "seg-0000.stir"
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_bare_name_manifest_still_loads() {
        let dir = tmpdir("legacy");
        let s = populated();
        save(&s, &dir).unwrap();
        // Strip the stats columns and the version header: a manifest from
        // before zone maps and formats.
        let manifest = fs::read_to_string(dir.join(MANIFEST)).unwrap();
        let bare: String = manifest
            .lines()
            .filter(|l| !l.starts_with(MANIFEST_MAGIC))
            .map(|l| l.split('\t').next().unwrap())
            .collect::<Vec<_>>()
            .join("\n");
        fs::write(dir.join(MANIFEST), bare).unwrap();
        let loaded = load_with_segment_bytes(&dir, 4096).unwrap();
        assert_eq!(loaded.len(), s.len());
        // Zone maps are still rebuilt from the payload on load.
        for (a, b) in s.segments().iter().zip(loaded.segments().iter()) {
            assert_eq!(a.zone_map(), b.zone_map());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbled_manifest_stats_are_rejected() {
        let dir = tmpdir("garbled");
        save(&populated(), &dir).unwrap();
        let manifest = fs::read_to_string(dir.join(MANIFEST)).unwrap();
        // Garble a stats field on the first *segment* line (the header
        // line is checked separately below).
        let mut lines: Vec<String> = manifest.lines().map(str::to_string).collect();
        lines[1] = lines[1].replacen('\t', "\tnot-a-number\t", 1);
        fs::write(dir.join(MANIFEST), lines.join("\n")).unwrap();
        assert!(matches!(load(&dir), Err(PersistError::BadManifest)));
        // A garbled header is rejected too.
        let mut lines: Vec<String> = manifest.lines().map(str::to_string).collect();
        lines[0] = format!("{MANIFEST_MAGIC}\tnot-a-version\tv1");
        fs::write(dir.join(MANIFEST), lines.join("\n")).unwrap();
        assert!(matches!(load(&dir), Err(PersistError::BadManifest)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_store_roundtrips_with_columnar_files() {
        let dir = tmpdir("v2roundtrip");
        let mut s = TweetStore::with_segment_bytes_and_format(4096, StoreFormat::V2);
        for i in 0..1000u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 11,
                timestamp: i * 17,
                gps: (i % 4 == 0).then(|| Point::new(36.0 + (i as f64) * 1e-3 % 2.0, 127.5)),
                text: format!("tweet {i}"),
            });
        }
        save(&s, &dir).unwrap();
        // At least one persisted file is columnar (STIRSEG2 magic).
        let col_files = (0..)
            .map_while(|i| fs::read(dir.join(format!("seg-{i:04}.stir"))).ok())
            .filter(|b| b.starts_with(b"STIRSEG2"))
            .count();
        assert!(col_files > 0, "v2 store must persist STIRSEG2 files");
        let loaded = load_with_segment_bytes(&dir, 4096).unwrap();
        assert_eq!(loaded.format(), StoreFormat::V2);
        assert_eq!(loaded.len(), s.len());
        assert_eq!(
            loaded.segments().iter().filter(|g| g.is_columnar()).count(),
            s.segments().iter().filter(|g| g.is_columnar()).count(),
            "sealed-segment encodings must survive the round trip"
        );
        let a: Vec<TweetRecord> = s.scan().map(|r| r.unwrap()).collect();
        let b: Vec<TweetRecord> = loaded.scan().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
        assert_eq!(
            Query::all().user(3).execute(&s),
            Query::all().user(3).execute(&loaded)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_store_roundtrips_each_segment_in_its_own_encoding() {
        let dir = tmpdir("mixedroundtrip");
        let mut s = TweetStore::with_segment_bytes(4096);
        for i in 0..500u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 7,
                timestamp: i * 13,
                gps: None,
                text: format!("row-era tweet {i}"),
            });
        }
        s.set_format(StoreFormat::V2);
        for i in 500..1000u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 7,
                timestamp: i * 13,
                gps: Some(Point::new(37.0, 127.0)),
                text: format!("column-era tweet {i}"),
            });
        }
        let rows_before = s.segments().iter().filter(|g| !g.is_columnar()).count();
        let cols_before = s.segments().iter().filter(|g| g.is_columnar()).count();
        assert!(rows_before > 0 && cols_before > 0, "fixture must be mixed");
        save(&s, &dir).unwrap();
        let loaded = load_with_segment_bytes(&dir, 4096).unwrap();
        assert_eq!(loaded.format(), StoreFormat::V2);
        assert_eq!(
            loaded
                .segments()
                .iter()
                .filter(|g| !g.is_columnar())
                .count(),
            rows_before
        );
        assert_eq!(
            loaded.segments().iter().filter(|g| g.is_columnar()).count(),
            cols_before
        );
        let a: Vec<TweetRecord> = s.scan().map(|r| r.unwrap()).collect();
        let b: Vec<TweetRecord> = loaded.scan().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_columnar_file_is_rejected() {
        let dir = tmpdir("v2corrupt");
        let mut s = TweetStore::with_segment_bytes_and_format(4096, StoreFormat::V2);
        for i in 0..1000u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 11,
                timestamp: i * 17,
                gps: (i % 4 == 0).then(|| Point::new(36.5, 127.5)),
                text: format!("tweet {i}"),
            });
        }
        save(&s, &dir).unwrap();
        let seg_path = dir.join("seg-0000.stir");
        let mut bytes = fs::read(&seg_path).unwrap();
        assert!(bytes.starts_with(b"STIRSEG2"));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        fs::write(&seg_path, bytes).unwrap();
        match load(&dir) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corrupt, got {:?}", other.map(|s| s.len())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Test resolver: district = whole-degree latitude band.
    struct Bands;
    impl crate::sketch::SketchResolver for Bands {
        fn fingerprint(&self) -> u64 {
            0x5EED
        }
        fn resolve(&self, lat: f64, _lon: f64) -> Option<u32> {
            Some(lat as u32)
        }
    }

    fn populated_v2_with_sketches() -> TweetStore {
        let mut s = TweetStore::with_segment_bytes_and_format(4096, StoreFormat::V2);
        s.set_sketcher(std::sync::Arc::new(Bands));
        for i in 0..1000u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 11,
                timestamp: i * 17,
                gps: (i % 4 == 0).then(|| Point::new(36.0 + (i as f64) * 1e-3 % 2.0, 127.5)),
                text: format!("tweet {i}"),
            });
        }
        s
    }

    #[test]
    fn sketch_sidecar_round_trips() {
        let dir = tmpdir("sketchside");
        let s = populated_v2_with_sketches();
        let sealed_cols: Vec<usize> = (0..s.segments().len())
            .filter(|&i| s.segments()[i].is_columnar())
            .collect();
        assert!(
            !sealed_cols.is_empty(),
            "fixture must seal columnar segments"
        );
        save(&s, &dir).unwrap();
        // The loaded store has no resolver installed, so any sketch it can
        // produce must come from the persisted sidecar.
        let loaded = load_with_segment_bytes(&dir, 4096).unwrap();
        assert!(loaded.sketcher().is_none());
        for &i in &sealed_cols {
            let orig = s.sketch_cached(i).expect("seal-time sketch present");
            let got = loaded
                .sketch_for(i, 0x5EED)
                .expect("persisted sidecar must satisfy sketch_for without a resolver");
            assert_eq!(orig.encode(), got.encode());
            // A different fingerprint must not be served stale data.
            assert!(loaded.sketch_for(i, 0xDEAD).is_none());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_sketch_sidecar_falls_back_to_scan() {
        let dir = tmpdir("sketchtamper");
        let s = populated_v2_with_sketches();
        save(&s, &dir).unwrap();
        let seg_path = dir.join("seg-0000.stir");
        let pristine = fs::read(&seg_path).unwrap();
        let sidecar_at = pristine
            .windows(8)
            .rposition(|w| w == crate::sketch::SKETCH_MAGIC)
            .expect("saved columnar file must carry a sketch sidecar");
        for mutated in [
            // Flip the file's last byte: inside the sidecar payload.
            {
                let mut b = pristine.clone();
                let last = b.len() - 1;
                b[last] ^= 0x55;
                b
            },
            // Truncate mid-sidecar.
            pristine[..sidecar_at + 10].to_vec(),
            // Garble the sidecar magic itself.
            {
                let mut b = pristine.clone();
                b[sidecar_at] = b'X';
                b
            },
        ] {
            fs::write(&seg_path, mutated).unwrap();
            // The column region is intact, so the load succeeds; the
            // damaged sidecar is simply dropped.
            let loaded = load_with_segment_bytes(&dir, 4096).unwrap();
            assert!(
                loaded.sketch_cached(0).is_none(),
                "damaged sidecar must be dropped"
            );
            assert!(loaded.sketch_for(0, 0x5EED).is_none());
            assert_eq!(
                Query::all().user(3).execute(&s),
                Query::all().user(3).execute(&loaded),
                "records must survive sidecar damage"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_rejected() {
        let dir = tmpdir("nomanifest");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(load(&dir), Err(PersistError::BadManifest)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = tmpdir("badmagic");
        save(&populated(), &dir).unwrap();
        let seg_path = dir.join("seg-0000.stir");
        let mut bytes = fs::read(&seg_path).unwrap();
        bytes[0] = b'X';
        fs::write(&seg_path, bytes).unwrap();
        assert!(matches!(load(&dir), Err(PersistError::BadMagic)));
        fs::remove_dir_all(&dir).unwrap();
    }
}
