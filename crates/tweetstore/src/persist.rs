//! Directory-based persistence: one framed file per segment plus a
//! manifest. Loading verifies checksums and rebuilds every index.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::codec::CodecError;
use crate::segment::{Segment, DEFAULT_SEGMENT_BYTES};
use crate::store::TweetStore;

/// Magic header of segment files.
const MAGIC: &[u8; 8] = b"STIRSEG1";
/// Manifest file name.
const MANIFEST: &str = "MANIFEST";

/// Persistence errors.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Segment file failed decoding or checksum verification.
    Corrupt(CodecError),
    /// File did not start with the segment magic.
    BadMagic,
    /// Manifest was missing or unreadable.
    BadManifest,
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Corrupt(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Corrupt(e) => write!(f, "corrupt segment: {e}"),
            PersistError::BadMagic => write!(f, "bad segment magic"),
            PersistError::BadManifest => write!(f, "bad manifest"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Writes the store to `dir` (created if absent): `seg-NNNN.stir` files and
/// a `MANIFEST` listing them in order.
pub fn save(store: &TweetStore, dir: &Path) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    let segments = store.segments();
    let mut manifest = String::new();
    for (i, seg) in segments.iter().enumerate() {
        let name = format!("seg-{i:04}.stir");
        let path = dir.join(&name);
        let mut f = fs::File::create(&path)?;
        f.write_all(MAGIC)?;
        f.write_all(&seg.to_framed_bytes())?;
        f.sync_all()?;
        manifest.push_str(&name);
        manifest.push('\n');
    }
    fs::write(dir.join(MANIFEST), manifest)?;
    Ok(())
}

/// Loads a store from `dir`, verifying every segment checksum and
/// rebuilding the indexes.
pub fn load(dir: &Path) -> Result<TweetStore, PersistError> {
    load_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
}

/// [`load`] with an explicit segment-roll threshold for the rebuilt store.
pub fn load_with_segment_bytes(
    dir: &Path,
    segment_bytes: usize,
) -> Result<TweetStore, PersistError> {
    let manifest = fs::read_to_string(dir.join(MANIFEST)).map_err(|_| PersistError::BadManifest)?;
    let mut segments = Vec::new();
    for name in manifest.lines().filter(|l| !l.is_empty()) {
        let mut f = fs::File::open(dir.join(name))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        segments.push(Segment::from_framed_bytes(&bytes[MAGIC.len()..])?);
    }
    Ok(TweetStore::from_segments(segments, segment_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::TweetRecord;
    use crate::query::Query;
    use stir_geoindex::Point;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stir-tweetstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn populated() -> TweetStore {
        let mut s = TweetStore::with_segment_bytes(4096);
        for i in 0..1000u64 {
            s.append(&TweetRecord {
                id: i,
                user: i % 11,
                timestamp: i * 17,
                gps: (i % 4 == 0).then(|| Point::new(36.0 + (i as f64) * 1e-3 % 2.0, 127.5)),
                text: format!("tweet {i}"),
            });
        }
        s
    }

    #[test]
    fn save_load_roundtrip_preserves_queries() {
        let dir = tmpdir("roundtrip");
        let s = populated();
        save(&s, &dir).unwrap();
        let loaded = load_with_segment_bytes(&dir, 4096).unwrap();
        assert_eq!(loaded.len(), s.len());
        assert_eq!(loaded.stats().gps_records, s.stats().gps_records);
        let a = Query::all().user(3).execute(&s);
        let b = Query::all().user(3).execute(&loaded);
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_file_is_rejected() {
        let dir = tmpdir("corrupt");
        save(&populated(), &dir).unwrap();
        // Flip a byte in the first segment's payload.
        let seg_path = dir.join("seg-0000.stir");
        let mut bytes = fs::read(&seg_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        fs::write(&seg_path, bytes).unwrap();
        match load(&dir) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected corrupt, got {:?}", other.map(|s| s.len())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_rejected() {
        let dir = tmpdir("nomanifest");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(load(&dir), Err(PersistError::BadManifest)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = tmpdir("badmagic");
        save(&populated(), &dir).unwrap();
        let seg_path = dir.join("seg-0000.stir");
        let mut bytes = fs::read(&seg_path).unwrap();
        bytes[0] = b'X';
        fs::write(&seg_path, bytes).unwrap();
        assert!(matches!(load(&dir), Err(PersistError::BadMagic)));
        fs::remove_dir_all(&dir).unwrap();
    }
}
