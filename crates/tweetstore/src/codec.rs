//! Binary encoding of tweet records.
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! id · user · timestamp · flags(u8) · [lat_e6: i32 LE · lon_e6: i32 LE] ·
//! text_len · text_bytes
//! ```
//!
//! GPS coordinates are fixed-point micro-degrees (`i32`), ~11 cm of
//! resolution — far beyond GPS accuracy — in 8 bytes instead of 16.

use bytes::{Buf, BufMut};
use stir_geoindex::Point;

/// Flag bit: record carries GPS coordinates.
const FLAG_GPS: u8 = 0b0000_0001;

/// A stored tweet.
#[derive(Clone, Debug, PartialEq)]
pub struct TweetRecord {
    /// Tweet id.
    pub id: u64,
    /// Author user id.
    pub user: u64,
    /// Seconds since the collection-window epoch.
    pub timestamp: u64,
    /// GPS coordinates, if the client attached them.
    pub gps: Option<Point>,
    /// Tweet text (may be empty).
    pub text: String,
}

/// Encoding/decoding errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-record.
    UnexpectedEof,
    /// Varint longer than 10 bytes.
    VarintOverflow,
    /// Text bytes were not valid UTF-8.
    BadUtf8,
    /// GPS coordinates outside the valid latitude/longitude ranges —
    /// only possible on corrupted input.
    InvalidCoordinate,
    /// Checksum mismatch on a framed segment (see [`crate::segment`]).
    ChecksumMismatch {
        /// Expected checksum from the frame header.
        expected: u32,
        /// Checksum computed over the payload.
        actual: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::VarintOverflow => write!(f, "varint overflow"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in text"),
            CodecError::InvalidCoordinate => write!(f, "GPS coordinate out of range"),
            CodecError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:08x}, got {actual:08x}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Writes a LEB128 varint.
pub fn put_varint<B: BufMut>(buf: &mut B, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
pub fn get_varint<B: Buf>(buf: &mut B) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encodes one record onto `buf`.
pub fn encode_record<B: BufMut>(buf: &mut B, rec: &TweetRecord) {
    put_varint(buf, rec.id);
    put_varint(buf, rec.user);
    put_varint(buf, rec.timestamp);
    match rec.gps {
        Some(p) => {
            buf.put_u8(FLAG_GPS);
            buf.put_i32_le((p.lat * 1e6).round() as i32);
            buf.put_i32_le((p.lon * 1e6).round() as i32);
        }
        None => buf.put_u8(0),
    }
    put_varint(buf, rec.text.len() as u64);
    buf.put_slice(rec.text.as_bytes());
}

/// Encodes one record onto `buf` from already-quantized parts — the
/// columnar→row conversion path. Byte-identical to [`encode_record`] on
/// the record those parts decode to: GPS coordinates are written as the
/// stored µ° integers directly, so no float round-trip can perturb them.
pub(crate) fn encode_parts<B: BufMut>(
    buf: &mut B,
    id: u64,
    user: u64,
    timestamp: u64,
    gps_e6: Option<(i32, i32)>,
    text: &[u8],
) {
    put_varint(buf, id);
    put_varint(buf, user);
    put_varint(buf, timestamp);
    match gps_e6 {
        Some((lat_e6, lon_e6)) => {
            buf.put_u8(FLAG_GPS);
            buf.put_i32_le(lat_e6);
            buf.put_i32_le(lon_e6);
        }
        None => buf.put_u8(0),
    }
    put_varint(buf, text.len() as u64);
    buf.put_slice(text);
}

/// Zigzag-encodes a signed delta so small magnitudes stay small varints.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Decodes one record from `buf`, advancing it.
pub fn decode_record<B: Buf>(buf: &mut B) -> Result<TweetRecord, CodecError> {
    let id = get_varint(buf)?;
    let user = get_varint(buf)?;
    let timestamp = get_varint(buf)?;
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let flags = buf.get_u8();
    let gps = if flags & FLAG_GPS != 0 {
        if buf.remaining() < 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let lat = buf.get_i32_le() as f64 / 1e6;
        let lon = buf.get_i32_le() as f64 / 1e6;
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
            return Err(CodecError::InvalidCoordinate);
        }
        Some(Point::new(lat, lon))
    } else {
        None
    };
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(CodecError::UnexpectedEof);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    let text = String::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)?;
    Ok(TweetRecord {
        id,
        user,
        timestamp,
        gps,
        text,
    })
}

/// The fixed fields of a stored tweet, decoded without touching the text.
///
/// This is the first phase of the two-phase decode: everything a query
/// predicate can test (id, user, timestamp, GPS) costs a header decode
/// only; the text `String` — the one heap allocation in
/// [`decode_record`] — is deferred until a consumer actually asks for it
/// through [`TweetView::text`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TweetHeader {
    /// Tweet id.
    pub id: u64,
    /// Author user id.
    pub user: u64,
    /// Seconds since the collection-window epoch.
    pub timestamp: u64,
    /// GPS coordinates, if the client attached them.
    pub gps: Option<Point>,
}

impl TweetRecord {
    /// The record's fixed fields as a [`TweetHeader`].
    pub fn header(&self) -> TweetHeader {
        TweetHeader {
            id: self.id,
            user: self.user,
            timestamp: self.timestamp,
            gps: self.gps,
        }
    }
}

/// A borrowed, lazily-decoded record over a segment buffer.
///
/// The header is decoded eagerly; the text stays a borrowed byte slice
/// into the segment until [`TweetView::text`] validates it (zero-copy) or
/// [`TweetView::to_record`] materializes an owned [`TweetRecord`].
#[derive(Clone, Copy, Debug)]
pub struct TweetView<'a> {
    /// The decoded fixed fields.
    pub header: TweetHeader,
    text_bytes: &'a [u8],
    header_len: usize,
}

impl<'a> TweetView<'a> {
    /// Builds a view from already-decoded parts — the columnar segment's
    /// view path, where the header lives in column arrays and the text is
    /// a slice of the segment's concatenated text region. `header_len` is
    /// the *charged* header width (what a bytes-decoded metric should
    /// count), not a row-frame offset.
    pub(crate) fn from_parts(header: TweetHeader, text_bytes: &'a [u8], header_len: usize) -> Self {
        TweetView {
            header,
            text_bytes,
            header_len,
        }
    }

    /// The tweet text, UTF-8 validated in place — no copy, no allocation.
    pub fn text(&self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.text_bytes).map_err(|_| CodecError::BadUtf8)
    }

    /// The raw text bytes (not yet UTF-8 validated).
    pub fn raw_text(&self) -> &'a [u8] {
        self.text_bytes
    }

    /// Encoded size of the fixed fields plus the text-length prefix.
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// Total encoded size of the record.
    pub fn frame_len(&self) -> usize {
        self.header_len + self.text_bytes.len()
    }

    /// Materializes an owned [`TweetRecord`] (validates and copies the
    /// text — the only allocating step of the two-phase decode).
    pub fn to_record(&self) -> Result<TweetRecord, CodecError> {
        Ok(TweetRecord {
            id: self.header.id,
            user: self.header.user,
            timestamp: self.header.timestamp,
            gps: self.header.gps,
            text: self.text()?.to_owned(),
        })
    }
}

/// Reads a LEB128 varint from `buf` starting at `*at`, advancing it.
pub(crate) fn get_varint_at(buf: &[u8], at: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*at) else {
            return Err(CodecError::UnexpectedEof);
        };
        *at += 1;
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Decodes the fixed fields of the record at the start of `buf` plus the
/// byte range of its text, without touching the text bytes.
fn decode_fixed(buf: &[u8]) -> Result<(TweetHeader, usize, usize), CodecError> {
    let mut at = 0usize;
    let id = get_varint_at(buf, &mut at)?;
    let user = get_varint_at(buf, &mut at)?;
    let timestamp = get_varint_at(buf, &mut at)?;
    let Some(&flags) = buf.get(at) else {
        return Err(CodecError::UnexpectedEof);
    };
    at += 1;
    let gps = if flags & FLAG_GPS != 0 {
        let Some(bytes) = buf.get(at..at + 8) else {
            return Err(CodecError::UnexpectedEof);
        };
        at += 8;
        let lat = i32::from_le_bytes(bytes[0..4].try_into().unwrap()) as f64 / 1e6;
        let lon = i32::from_le_bytes(bytes[4..8].try_into().unwrap()) as f64 / 1e6;
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
            return Err(CodecError::InvalidCoordinate);
        }
        Some(Point::new(lat, lon))
    } else {
        None
    };
    let text_len = get_varint_at(buf, &mut at)? as usize;
    if buf.len().saturating_sub(at) < text_len {
        return Err(CodecError::UnexpectedEof);
    }
    Ok((
        TweetHeader {
            id,
            user,
            timestamp,
            gps,
        },
        at,
        text_len,
    ))
}

/// Phase-one decode: the fixed fields of the record at the start of `buf`,
/// plus the record's total encoded length. The text bytes are bounds-checked
/// but never read.
pub fn decode_header(buf: &[u8]) -> Result<(TweetHeader, usize), CodecError> {
    let (header, text_start, text_len) = decode_fixed(buf)?;
    Ok((header, text_start + text_len))
}

/// Decodes a [`TweetView`] over the record at the start of `buf`: the
/// header eagerly, the text as a borrowed slice.
pub fn decode_view(buf: &[u8]) -> Result<TweetView<'_>, CodecError> {
    let (header, text_start, text_len) = decode_fixed(buf)?;
    Ok(TweetView {
        header,
        text_bytes: &buf[text_start..text_start + text_len],
        header_len: text_start,
    })
}

/// FNV-1a 32-bit checksum, used for segment framing.
pub fn fnv1a(data: &[u8]) -> u32 {
    let mut hash = 0x811C_9DC5u32;
    for &b in data {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample(gps: bool) -> TweetRecord {
        TweetRecord {
            id: 123_456_789,
            user: 42,
            timestamp: 86_400,
            gps: gps.then(|| Point::new(37.5663, 126.9779)),
            text: "just arrived in Jung-gu ㅋㅋ".into(),
        }
    }

    #[test]
    fn roundtrip_with_and_without_gps() {
        for gps in [true, false] {
            let rec = sample(gps);
            let mut buf = BytesMut::new();
            encode_record(&mut buf, &rec);
            let mut slice = buf.freeze();
            let back = decode_record(&mut slice).unwrap();
            assert_eq!(back.id, rec.id);
            assert_eq!(back.user, rec.user);
            assert_eq!(back.timestamp, rec.timestamp);
            assert_eq!(back.text, rec.text);
            match (back.gps, rec.gps) {
                (Some(a), Some(b)) => {
                    assert!((a.lat - b.lat).abs() < 1e-6);
                    assert!((a.lon - b.lon).abs() < 1e-6);
                }
                (None, None) => {}
                other => panic!("gps mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn empty_text_roundtrips() {
        let rec = TweetRecord {
            id: 0,
            user: 0,
            timestamp: 0,
            gps: None,
            text: String::new(),
        };
        let mut buf = BytesMut::new();
        encode_record(&mut buf, &rec);
        let mut slice = buf.freeze();
        assert_eq!(decode_record(&mut slice).unwrap(), rec);
    }

    #[test]
    fn varint_roundtrips_extremes() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut slice = buf.freeze();
            assert_eq!(get_varint(&mut slice).unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_is_eof() {
        let rec = sample(true);
        let mut buf = BytesMut::new();
        encode_record(&mut buf, &rec);
        let full = buf.freeze();
        for cut in [0, 1, 3, full.len() / 2, full.len() - 1] {
            let mut slice = full.slice(..cut);
            assert!(decode_record(&mut slice).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn negative_coordinates_roundtrip() {
        let rec = TweetRecord {
            id: 1,
            user: 2,
            timestamp: 3,
            gps: Some(Point::new(-33.8688, -151.2093 + 300.0)), // lon must be in range
            text: String::new(),
        };
        let mut buf = BytesMut::new();
        encode_record(&mut buf, &rec);
        let mut slice = buf.freeze();
        let back = decode_record(&mut slice).unwrap();
        assert!((back.gps.unwrap().lat - -33.8688).abs() < 1e-6);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0x811C_9DC5);
        assert_eq!(fnv1a(b"a"), 0xE40C_292C);
        assert_ne!(fnv1a(b"abc"), fnv1a(b"acb"));
    }

    #[test]
    fn gps_resolution_is_sub_meter() {
        let p = Point::new(37.123456789, 127.987654321);
        let rec = TweetRecord {
            id: 1,
            user: 1,
            timestamp: 1,
            gps: Some(p),
            text: String::new(),
        };
        let mut buf = BytesMut::new();
        encode_record(&mut buf, &rec);
        let mut slice = buf.freeze();
        let back = decode_record(&mut slice).unwrap().gps.unwrap();
        assert!(
            p.haversine_km(back) < 0.0002,
            "error {} km",
            p.haversine_km(back)
        );
    }
}
