//! State-snapshot frames for incremental services.
//!
//! A live analysis service checkpoints its in-memory state so a restart
//! resumes from the checkpoint plus a short WAL tail instead of replaying
//! the corpus. This module stores those checkpoints as an append-only
//! frame log (same shape as [`crate::wal`]): `len(u32 LE) · crc(u32 LE) ·
//! ordinal(u64 LE) · payload`, where `ordinal` is the number of WAL
//! records the state covers. Appending never rewrites earlier frames, so a
//! crash mid-checkpoint tears at most the *last* frame — [`latest_snapshot`]
//! walks the log and returns the newest frame that passes its checksum,
//! which is exactly the recovery contract the WAL gives records.

use std::fs::OpenOptions;
use std::io::{Read, Write};
use std::path::Path;

use crate::codec::fnv1a;
use crate::persist::PersistError;

/// Magic header of snapshot logs.
const MAGIC: &[u8; 8] = b"STIRSNP1";

/// One recovered checkpoint: the opaque state payload and the WAL record
/// ordinal it covers (replay resumes at this ordinal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotFrame {
    /// WAL records covered by the state — the replay resume point.
    pub ordinal: u64,
    /// The service's serialized state, opaque to the store.
    pub payload: Vec<u8>,
}

/// Appends one checkpoint frame to the log at `path` (creating it with the
/// magic header if absent) and fsyncs — the checkpoint durability point.
pub fn append_snapshot(path: &Path, ordinal: u64, payload: &[u8]) -> Result<(), PersistError> {
    let fresh = !path.exists();
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    if fresh {
        file.write_all(MAGIC)?;
    }
    let body_len = 8 + payload.len();
    let mut body = Vec::with_capacity(body_len);
    body.extend_from_slice(&ordinal.to_le_bytes());
    body.extend_from_slice(payload);
    file.write_all(&(body_len as u32).to_le_bytes())?;
    file.write_all(&fnv1a(&body).to_le_bytes())?;
    file.write_all(&body)?;
    file.sync_all()?;
    Ok(())
}

/// Returns the newest intact checkpoint in the log, or `None` when the log
/// is missing or holds no valid frame. A torn or corrupt tail frame is
/// skipped in favor of the frame before it; a missing file is not an error
/// (a service's first boot has no checkpoint).
pub fn latest_snapshot(path: &Path) -> Result<Option<SnapshotFrame>, PersistError> {
    if !path.exists() {
        return Ok(None);
    }
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut latest = None;
    let mut at = MAGIC.len();
    loop {
        if at + 8 > bytes.len() {
            break; // torn header
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        let start = at + 8;
        if len < 8 || start + len > bytes.len() {
            break; // torn payload
        }
        let body = &bytes[start..start + len];
        if fnv1a(body) != crc {
            break; // corrupt frame — everything after it is suspect
        }
        latest = Some(SnapshotFrame {
            ordinal: u64::from_le_bytes(body[..8].try_into().unwrap()),
            payload: body[8..].to_vec(),
        });
        at = start + len;
    }
    Ok(latest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("stir-snap-{tag}-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn roundtrip_latest_wins() {
        let path = tmp("roundtrip");
        assert_eq!(latest_snapshot(&path).unwrap(), None);
        append_snapshot(&path, 10, b"alpha").unwrap();
        append_snapshot(&path, 25, b"beta").unwrap();
        let f = latest_snapshot(&path).unwrap().unwrap();
        assert_eq!(f.ordinal, 25);
        assert_eq!(f.payload, b"beta");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_falls_back_to_previous_frame() {
        let path = tmp("torn");
        append_snapshot(&path, 10, b"alpha").unwrap();
        append_snapshot(&path, 25, b"beta-which-is-longer").unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let f = latest_snapshot(&path).unwrap().unwrap();
        assert_eq!(f.ordinal, 10, "torn tail frame skipped");
        assert_eq!(f.payload, b"alpha");
        // The log still accepts new frames after the tear.
        append_snapshot(&path, 40, b"gamma").unwrap();
        // The torn frame in the middle stops the walk — recovery stays on
        // the last frame *before* the damage, never a frame after it.
        let f = latest_snapshot(&path).unwrap().unwrap();
        assert_eq!(f.ordinal, 10);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_payload_frame_is_valid() {
        let path = tmp("empty");
        append_snapshot(&path, 0, b"").unwrap();
        let f = latest_snapshot(&path).unwrap().unwrap();
        assert_eq!(f.ordinal, 0);
        assert!(f.payload.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTASNAP-extra").unwrap();
        assert!(matches!(
            latest_snapshot(&path),
            Err(PersistError::BadMagic)
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
