//! Columnar sealed segments — the `STIRSEG2` format.
//!
//! A row segment ([`crate::segment::Segment`]) stores records as
//! concatenated varint frames: every scan pays a per-record
//! `decode_header`, and the fused pipeline then *transposes* the decoded
//! rows back into the column vectors its morsels want. A
//! [`ColumnSegment`] stores the same records column-first, decoded once
//! at load time into primitive arrays, so scans slice `&[u64]` /
//! `&[i32]` directly — no per-record decode, no transpose, and the text
//! region is never touched unless a consumer asks for a specific
//! record's bytes.
//!
//! On-disk layout (after the `STIRSEG2` file magic written by
//! [`crate::persist`]):
//!
//! ```text
//! n(u32 LE) · row_bytes_equiv(u64 LE) · row_header_bytes(u64 LE) ·
//! prefix_crc(u32 LE)
//! IDS     block   zigzag-delta varints        (records are (ts,id)-ordered)
//! USERS   block   plain varints
//! TS      block   zigzag-delta varints        (deltas are small)
//! GPS     block   presence bitmap (LSB-first) · packed lat_e6/lon_e6 i32 LE
//! TEXTLEN block   per-record varint byte lengths
//! TEXT    block   varint raw_len · LZ77 stream over concatenated text
//! ```
//!
//! Each block is framed `enc_len(u32 LE) · crc(u32 LE) · payload` with an
//! FNV-1a checksum, and the 20-byte prefix carries its own checksum — so
//! every byte of the file is covered and any bit flip or truncation
//! surfaces as a [`CodecError`], never a panic. Decoders never trust a
//! length varint for an allocation: reserves are capped and growth is
//! bounded by actual input bytes.
//!
//! GPS coordinates keep the codec's micro-degree quantization; the
//! `i32::MIN` sentinel (shared with the pipeline's `ColumnBatch`) marks
//! "no fix" in both the in-memory columns and, implicitly, a cleared
//! bitmap bit on disk. Writes stay row-first — the WAL and the store's
//! open tail segment are rows; sealing and compaction are the row→column
//! conversion points (see `DESIGN.md` §4).

use stir_geoindex::Point;

use crate::codec::{
    fnv1a, get_varint_at, put_varint, unzigzag, zigzag, CodecError, TweetHeader, TweetRecord,
    TweetView,
};
use crate::segment::{quantize_e6, Segment, ZoneMap};

/// Micro-degree sentinel marking "no GPS fix" in the lat/lon columns.
/// Matches the pipeline's `ColumnBatch` sentinel so column slices feed
/// morsels without translation.
pub const NO_GPS_E6: i32 = i32::MIN;

/// In-memory bytes charged per record for a column-sourced header read:
/// id(8) + user(8) + timestamp(8) + lat_e6(4) + lon_e6(4) + text
/// offset(4). What `bytes_decoded` metrics count for columnar access.
pub(crate) const COL_HEADER_BYTES: usize = 36;

/// Shortest match the LZ77 text compressor emits.
const MIN_MATCH: usize = 4;

/// Longest match emitted (and accepted on decode).
const MAX_MATCH: usize = 1 << 16;

/// Match window: how far back a copy may reach.
const WINDOW: usize = 1 << 16;

/// A sealed segment stored column-first.
///
/// Holds exactly the records of the row segment it was converted from,
/// in the same slot order — `RecordPtr { seg, slot }` addresses are
/// stable across the conversion.
#[derive(Debug, Clone, Default)]
pub struct ColumnSegment {
    ids: Vec<u64>,
    users: Vec<u64>,
    timestamps: Vec<u64>,
    /// Latitude in micro-degrees; [`NO_GPS_E6`] when the record has no fix.
    lats_e6: Vec<i32>,
    /// Longitude in micro-degrees; [`NO_GPS_E6`] when the record has no fix.
    lons_e6: Vec<i32>,
    /// `n + 1` offsets into `text`; record `i` owns `text[off[i]..off[i+1]]`.
    text_offsets: Vec<u32>,
    /// Concatenated text bytes of all records.
    text: Vec<u8>,
    zone: ZoneMap,
    /// Total row-encoded bytes these records occupied (`STIRSEG1`
    /// payload equivalent) — the denominator for compression metrics.
    row_bytes_equiv: u64,
    /// Row-encoded header bytes (frame minus text) — what a row-format
    /// header-only scan would have decoded.
    row_header_bytes: u64,
}

impl ColumnSegment {
    /// Transposes a sealed row segment into columns. The zone map is
    /// carried over unchanged (the records are identical) and the
    /// row-format byte totals are captured for metrics.
    pub fn from_rows(seg: &Segment) -> Result<Self, CodecError> {
        let n = seg.len();
        let mut col = ColumnSegment {
            ids: Vec::with_capacity(n),
            users: Vec::with_capacity(n),
            timestamps: Vec::with_capacity(n),
            lats_e6: Vec::with_capacity(n),
            lons_e6: Vec::with_capacity(n),
            text_offsets: Vec::with_capacity(n + 1),
            text: Vec::new(),
            zone: *seg.zone_map(),
            row_bytes_equiv: seg.byte_len() as u64,
            row_header_bytes: 0,
        };
        col.text_offsets.push(0);
        for view in seg.views() {
            let v = view?;
            let h = v.header;
            col.ids.push(h.id);
            col.users.push(h.user);
            col.timestamps.push(h.timestamp);
            match h.gps {
                Some(p) => {
                    // Round-trips exactly: `p` was decoded from these
                    // integers, and e6/1e6 re-rounds to e6.
                    let (lat, lon) = quantize_e6(p);
                    col.lats_e6.push(lat);
                    col.lons_e6.push(lon);
                }
                None => {
                    col.lats_e6.push(NO_GPS_E6);
                    col.lons_e6.push(NO_GPS_E6);
                }
            }
            col.text.extend_from_slice(v.raw_text());
            col.text_offsets.push(col.text.len() as u32);
            col.row_header_bytes += v.header_len() as u64;
        }
        Ok(col)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The segment's zone map.
    pub fn zone_map(&self) -> &ZoneMap {
        &self.zone
    }

    /// Row-encoded bytes these records would occupy in `STIRSEG1` form.
    pub fn row_bytes_equiv(&self) -> u64 {
        self.row_bytes_equiv
    }

    /// Row-encoded header bytes (frames minus text) of these records.
    pub(crate) fn row_header_bytes(&self) -> u64 {
        self.row_header_bytes
    }

    /// The tweet-id column.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The user-id column.
    pub fn users(&self) -> &[u64] {
        &self.users
    }

    /// The timestamp column.
    pub fn timestamps(&self) -> &[u64] {
        &self.timestamps
    }

    /// The latitude column in micro-degrees ([`NO_GPS_E6`] = no fix).
    pub fn lats_e6(&self) -> &[i32] {
        &self.lats_e6
    }

    /// The longitude column in micro-degrees ([`NO_GPS_E6`] = no fix).
    pub fn lons_e6(&self) -> &[i32] {
        &self.lons_e6
    }

    /// The record's coordinates as stored micro-degree integers, if any.
    pub(crate) fn gps_e6(&self, slot: u32) -> Option<(i32, i32)> {
        let i = slot as usize;
        (self.lats_e6[i] != NO_GPS_E6).then(|| (self.lats_e6[i], self.lons_e6[i]))
    }

    /// Header of the record at `slot`, assembled from the columns.
    /// Decodes GPS exactly as the row codec would (e6 / 1e6).
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn header(&self, slot: u32) -> TweetHeader {
        let i = slot as usize;
        let gps = (self.lats_e6[i] != NO_GPS_E6)
            .then(|| Point::new(self.lats_e6[i] as f64 / 1e6, self.lons_e6[i] as f64 / 1e6));
        TweetHeader {
            id: self.ids[i],
            user: self.users[i],
            timestamp: self.timestamps[i],
            gps,
        }
    }

    /// Raw text bytes of the record at `slot` — a slice into the
    /// segment's concatenated text region, no decode.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn text_bytes(&self, slot: u32) -> &[u8] {
        let i = slot as usize;
        &self.text[self.text_offsets[i] as usize..self.text_offsets[i + 1] as usize]
    }

    /// Borrowed view of the record at `slot`: columns for the header,
    /// text as a zero-copy slice.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn view(&self, slot: u32) -> TweetView<'_> {
        TweetView::from_parts(self.header(slot), self.text_bytes(slot), COL_HEADER_BYTES)
    }

    /// Materializes the record at `slot` (validates and copies the text).
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn record(&self, slot: u32) -> Result<TweetRecord, CodecError> {
        self.view(slot).to_record()
    }

    /// A point-lookup cursor over this segment.
    pub fn cursor(&self) -> ColumnCursor<'_> {
        ColumnCursor { seg: self }
    }

    /// Serializes the segment into the `STIRSEG2` block layout (without
    /// the persist-layer file magic).
    pub fn encode(&self) -> Vec<u8> {
        let n = self.len();
        let mut out = Vec::with_capacity(32 + n * 4 + self.text.len() / 2);
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&self.row_bytes_equiv.to_le_bytes());
        out.extend_from_slice(&self.row_header_bytes.to_le_bytes());
        let prefix_crc = fnv1a(&out);
        out.extend_from_slice(&prefix_crc.to_le_bytes());

        let mut scratch = Vec::with_capacity(n * 2 + 16);
        delta_encode(&mut scratch, &self.ids);
        put_block(&mut out, &scratch);

        scratch.clear();
        for &u in &self.users {
            put_varint(&mut scratch, u);
        }
        put_block(&mut out, &scratch);

        scratch.clear();
        delta_encode(&mut scratch, &self.timestamps);
        put_block(&mut out, &scratch);

        scratch.clear();
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        for (i, &lat) in self.lats_e6.iter().enumerate() {
            if lat != NO_GPS_E6 {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        scratch.extend_from_slice(&bitmap);
        for i in 0..n {
            if self.lats_e6[i] != NO_GPS_E6 {
                scratch.extend_from_slice(&self.lats_e6[i].to_le_bytes());
                scratch.extend_from_slice(&self.lons_e6[i].to_le_bytes());
            }
        }
        put_block(&mut out, &scratch);

        scratch.clear();
        for i in 0..n {
            put_varint(
                &mut scratch,
                (self.text_offsets[i + 1] - self.text_offsets[i]) as u64,
            );
        }
        put_block(&mut out, &scratch);

        scratch.clear();
        put_varint(&mut scratch, self.text.len() as u64);
        lz_compress(&self.text, &mut scratch);
        put_block(&mut out, &scratch);
        out
    }

    /// Deserializes a `STIRSEG2` frame, verifying every checksum and
    /// re-deriving the zone map from the decoded columns. Any corruption
    /// or truncation returns `Err`; no input can trigger a panic or an
    /// unbounded allocation.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let (seg, at) = Self::decode_prefix(bytes)?;
        if at != bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(seg)
    }

    /// [`ColumnSegment::decode`] without the trailing-bytes check:
    /// decodes the column region at the start of `bytes` and returns the
    /// segment together with the number of bytes consumed. Persistence
    /// uses this to read segment files that carry a sketch sidecar after
    /// the column region.
    pub(crate) fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), CodecError> {
        if bytes.len() < 24 {
            return Err(CodecError::UnexpectedEof);
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let row_bytes_equiv = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
        let row_header_bytes = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let expected = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        let actual = fnv1a(&bytes[..20]);
        if actual != expected {
            return Err(CodecError::ChecksumMismatch { expected, actual });
        }
        let mut at = 24usize;

        let ids = delta_decode(get_block(bytes, &mut at)?, n)?;
        let users = plain_decode(get_block(bytes, &mut at)?, n)?;
        let timestamps = delta_decode(get_block(bytes, &mut at)?, n)?;

        let gps_block = get_block(bytes, &mut at)?;
        let bitmap_len = n.div_ceil(8);
        if gps_block.len() < bitmap_len {
            return Err(CodecError::UnexpectedEof);
        }
        let (bitmap, coords) = gps_block.split_at(bitmap_len);
        // Pad bits past `n` must be clear — a set one is corruption the
        // coordinate count check below could otherwise mask.
        if !n.is_multiple_of(8) && bitmap[bitmap_len - 1] >> (n % 8) != 0 {
            return Err(CodecError::UnexpectedEof);
        }
        let gps_count: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
        if coords.len() != gps_count * 8 {
            return Err(CodecError::UnexpectedEof);
        }
        // `n` is now grounded in real input (the id column carried one
        // varint per record), so exact reserves are safe.
        let mut lats_e6 = Vec::with_capacity(n);
        let mut lons_e6 = Vec::with_capacity(n);
        let mut c = 0usize;
        for i in 0..n {
            if bitmap[i / 8] >> (i % 8) & 1 == 1 {
                let lat = i32::from_le_bytes(coords[c * 8..c * 8 + 4].try_into().unwrap());
                let lon = i32::from_le_bytes(coords[c * 8 + 4..c * 8 + 8].try_into().unwrap());
                c += 1;
                if !(-90_000_000..=90_000_000).contains(&lat)
                    || !(-180_000_000..=180_000_000).contains(&lon)
                {
                    return Err(CodecError::InvalidCoordinate);
                }
                lats_e6.push(lat);
                lons_e6.push(lon);
            } else {
                lats_e6.push(NO_GPS_E6);
                lons_e6.push(NO_GPS_E6);
            }
        }

        let lens_block = get_block(bytes, &mut at)?;
        let mut text_offsets = Vec::with_capacity((n + 1).min(1 << 16));
        text_offsets.push(0u32);
        let mut la = 0usize;
        let mut total = 0u64;
        while la < lens_block.len() {
            let len = get_varint_at(lens_block, &mut la)?;
            total = total
                .checked_add(len)
                .filter(|&t| t <= u32::MAX as u64)
                .ok_or(CodecError::UnexpectedEof)?;
            text_offsets.push(total as u32);
        }
        if text_offsets.len() != n + 1 {
            return Err(CodecError::UnexpectedEof);
        }

        let text_block = get_block(bytes, &mut at)?;
        let mut ta = 0usize;
        let raw_len = get_varint_at(text_block, &mut ta)?;
        if raw_len != total {
            return Err(CodecError::UnexpectedEof);
        }
        let text = lz_decompress(&text_block[ta..], raw_len as usize)?;

        let mut seg = ColumnSegment {
            ids,
            users,
            timestamps,
            lats_e6,
            lons_e6,
            text_offsets,
            text,
            zone: ZoneMap::default(),
            row_bytes_equiv,
            row_header_bytes,
        };
        let mut zone = ZoneMap::default();
        for slot in 0..n as u32 {
            zone.observe(&seg.header(slot));
        }
        seg.zone = zone;
        Ok((seg, at))
    }
}

/// A cheap point-lookup handle into one [`ColumnSegment`] — what the
/// query index paths use to materialize individual records without going
/// through a scan.
pub struct ColumnCursor<'a> {
    seg: &'a ColumnSegment,
}

impl ColumnCursor<'_> {
    /// Header of the record at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn header(&self, slot: u32) -> TweetHeader {
        self.seg.header(slot)
    }

    /// Materializes the record at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn record(&self, slot: u32) -> Result<TweetRecord, CodecError> {
        self.seg.record(slot)
    }
}

/// Writes one checksummed block: `enc_len(u32 LE) · crc(u32 LE) · payload`.
fn put_block(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads one checksummed block starting at `*at`, advancing past it.
fn get_block<'a>(bytes: &'a [u8], at: &mut usize) -> Result<&'a [u8], CodecError> {
    let Some(head) = bytes.get(*at..*at + 8) else {
        return Err(CodecError::UnexpectedEof);
    };
    let len = u32::from_le_bytes(head[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
    let start = *at + 8;
    let Some(payload) = bytes.get(start..start + len) else {
        return Err(CodecError::UnexpectedEof);
    };
    let actual = fnv1a(payload);
    if actual != crc {
        return Err(CodecError::ChecksumMismatch {
            expected: crc,
            actual,
        });
    }
    *at = start + len;
    Ok(payload)
}

/// Zigzag-delta varint encodes an (unsorted-safe) `u64` stream: deltas
/// wrap, so any sequence round-trips; sorted-ish sequences stay small.
fn delta_encode(out: &mut Vec<u8>, vals: &[u64]) {
    let mut prev = 0u64;
    for &v in vals {
        put_varint(out, zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
}

/// Inverse of [`delta_encode`]; must consume the payload exactly and
/// yield exactly `n` values. Reserve is capped — a hostile `n` cannot
/// allocate past the real input size.
fn delta_decode(payload: &[u8], n: usize) -> Result<Vec<u64>, CodecError> {
    let mut out = Vec::with_capacity(n.min(1 << 16));
    let mut at = 0usize;
    let mut prev = 0u64;
    while at < payload.len() {
        let d = unzigzag(get_varint_at(payload, &mut at)?);
        let v = prev.wrapping_add(d as u64);
        out.push(v);
        prev = v;
    }
    if out.len() != n {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(out)
}

/// Decodes a plain varint stream of exactly `n` values.
fn plain_decode(payload: &[u8], n: usize) -> Result<Vec<u64>, CodecError> {
    let mut out = Vec::with_capacity(n.min(1 << 16));
    let mut at = 0usize;
    while at < payload.len() {
        out.push(get_varint_at(payload, &mut at)?);
    }
    if out.len() != n {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(out)
}

/// Greedy LZ77 over the text region. Token stream: a varint `tag` where
/// an even tag is a literal run of `tag >> 1` bytes (which follow
/// inline) and an odd tag is a back-reference of length
/// `(tag >> 1) + MIN_MATCH` at a varint distance ≥ 1. Tweet text is
/// short and repetitive (mentions, hashtags, district names), which a
/// byte-level matcher with a 64 KiB window captures well without any
/// external dependency.
fn lz_compress(input: &[u8], out: &mut Vec<u8>) {
    const HASH_BITS: u32 = 15;
    #[inline]
    fn hash(w: u32) -> usize {
        (w.wrapping_mul(0x9E37_79B1) >> (32 - 15)) as usize
    }
    if input.is_empty() {
        return;
    }
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= input.len() {
        let w = u32::from_le_bytes(input[i..i + 4].try_into().unwrap());
        let h = hash(w);
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX && i - cand <= WINDOW && input[cand..cand + 4] == input[i..i + 4] {
            let mut len = MIN_MATCH;
            let max = (input.len() - i).min(MAX_MATCH);
            while len < max && input[cand + len] == input[i + len] {
                len += 1;
            }
            flush_literals(out, &input[lit_start..i]);
            put_varint(out, (((len - MIN_MATCH) as u64) << 1) | 1);
            put_varint(out, (i - cand) as u64);
            // Seed the table through the matched span so later
            // occurrences can reference it.
            let end = i + len;
            i += 1;
            while i < end && i + MIN_MATCH <= input.len() {
                let w = u32::from_le_bytes(input[i..i + 4].try_into().unwrap());
                table[hash(w)] = i;
                i += 1;
            }
            i = end;
            lit_start = end;
        } else {
            i += 1;
        }
    }
    flush_literals(out, &input[lit_start..]);
}

/// Emits one literal-run token (no-op on an empty run).
fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
    if lits.is_empty() {
        return;
    }
    put_varint(out, (lits.len() as u64) << 1);
    out.extend_from_slice(lits);
}

/// Decompresses an LZ77 stream into exactly `raw_len` bytes. Output is
/// bounded by `raw_len` up front (hostile token lengths cannot
/// over-allocate), distances must point into already-produced output,
/// and the stream must be consumed exactly.
fn lz_decompress(data: &[u8], raw_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(raw_len.min(1 << 20));
    let mut at = 0usize;
    while out.len() < raw_len {
        let tag = get_varint_at(data, &mut at)?;
        let need = (raw_len - out.len()) as u64;
        if tag & 1 == 0 {
            let len = tag >> 1;
            if len > need {
                return Err(CodecError::UnexpectedEof);
            }
            let len = len as usize;
            let Some(bytes) = data.get(at..at + len) else {
                return Err(CodecError::UnexpectedEof);
            };
            out.extend_from_slice(bytes);
            at += len;
        } else {
            let mlen = tag >> 1;
            if mlen + MIN_MATCH as u64 > need || mlen as usize + MIN_MATCH > MAX_MATCH {
                return Err(CodecError::UnexpectedEof);
            }
            let len = mlen as usize + MIN_MATCH;
            let dist = get_varint_at(data, &mut at)? as usize;
            if dist == 0 || dist > out.len() {
                return Err(CodecError::UnexpectedEof);
            }
            let start = out.len() - dist;
            // Byte-at-a-time copy: overlapping matches (dist < len) are
            // the RLE case and must see bytes produced this token.
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if at != data.len() {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> TweetRecord {
        TweetRecord {
            id,
            user: id % 7,
            timestamp: id * 11,
            gps: id
                .is_multiple_of(3)
                .then(|| Point::new(37.0 + id as f64 * 1e-4, 127.0 - id as f64 * 2e-4)),
            text: format!("tweet number {id} from Jung-gu #seoul"),
        }
    }

    fn row_segment(n: u64) -> Segment {
        let mut s = Segment::new();
        for i in 0..n {
            s.append(&rec(i));
        }
        s
    }

    #[test]
    fn from_rows_preserves_every_record() {
        let rows = row_segment(200);
        let cols = ColumnSegment::from_rows(&rows).unwrap();
        assert_eq!(cols.len(), 200);
        assert_eq!(cols.zone_map(), rows.zone_map());
        assert_eq!(cols.row_bytes_equiv(), rows.byte_len() as u64);
        for slot in 0..200u32 {
            assert_eq!(cols.header(slot), rows.header(slot).unwrap());
            assert_eq!(cols.record(slot).unwrap(), rows.get(slot).unwrap());
            assert_eq!(
                cols.text_bytes(slot),
                rows.view(slot).unwrap().raw_text(),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let rows = row_segment(300);
        let cols = ColumnSegment::from_rows(&rows).unwrap();
        let bytes = cols.encode();
        let back = ColumnSegment::decode(&bytes).unwrap();
        assert_eq!(back.len(), cols.len());
        assert_eq!(back.zone_map(), cols.zone_map());
        assert_eq!(back.row_bytes_equiv(), cols.row_bytes_equiv());
        assert_eq!(back.row_header_bytes(), cols.row_header_bytes());
        for slot in 0..300u32 {
            assert_eq!(back.record(slot).unwrap(), rows.get(slot).unwrap());
        }
    }

    #[test]
    fn encoded_bytes_beat_row_bytes_on_real_shapes() {
        // (ts, id)-sorted records with short repetitive text — the shape
        // sealed segments actually hold. The columnar encoding must be
        // substantially smaller than the row payload.
        let mut s = Segment::new();
        for i in 0..2000u64 {
            s.append(&TweetRecord {
                id: 1_000_000 + i,
                user: i % 50,
                timestamp: 1_600_000_000 + i * 3,
                gps: (i % 10 < 7).then(|| Point::new(37.5 + (i % 13) as f64 * 1e-3, 127.0)),
                text: format!("checking in at district {} #seoul", i % 25),
            });
        }
        let cols = ColumnSegment::from_rows(&s).unwrap();
        let encoded = cols.encode().len();
        let rows = s.byte_len();
        assert!(
            (encoded as f64) < rows as f64 * 0.7,
            "columnar {encoded} bytes vs row {rows} bytes"
        );
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let cols = ColumnSegment::from_rows(&row_segment(64)).unwrap();
        let bytes = cols.encode();
        for cut in 0..bytes.len() {
            assert!(
                ColumnSegment::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn every_bit_flip_errors_never_panics() {
        let cols = ColumnSegment::from_rows(&row_segment(48)).unwrap();
        let bytes = cols.encode();
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                ColumnSegment::decode(&bad).is_err(),
                "flip at {at} decoded cleanly"
            );
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A crafted prefix claiming u32::MAX records over a tiny file
        // must fail fast, not reserve gigabytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&bytes).to_le_bytes());
        put_block(&mut bytes, &[0x01]); // one varint — not u32::MAX of them
        assert!(ColumnSegment::decode(&bytes).is_err());

        // A hostile LZ raw_len far beyond the stream must error, and a
        // match distance past produced output must error.
        assert!(lz_decompress(&[0x02, 0x61], usize::MAX >> 8).is_err());
        assert!(lz_decompress(&[0x01, 0x05], 10).is_err());
    }

    #[test]
    fn lz_roundtrips_pathological_inputs() {
        let cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            vec![0u8; 100_000],
            (0..255u8).cycle().take(70_000).collect(),
            b"no repeats: qwertyuiop".to_vec(),
        ];
        for case in cases {
            let mut enc = Vec::new();
            lz_compress(&case, &mut enc);
            let back = lz_decompress(&enc, case.len()).unwrap();
            assert_eq!(back, case, "case of {} bytes", case.len());
        }
    }

    #[test]
    fn empty_segment_roundtrips() {
        let cols = ColumnSegment::from_rows(&Segment::new()).unwrap();
        let bytes = cols.encode();
        let back = ColumnSegment::decode(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(*back.zone_map(), ZoneMap::default());
    }

    #[test]
    fn cursor_matches_direct_access() {
        let rows = row_segment(30);
        let cols = ColumnSegment::from_rows(&rows).unwrap();
        let cur = cols.cursor();
        for slot in 0..30u32 {
            assert_eq!(cur.header(slot), cols.header(slot));
            assert_eq!(cur.record(slot).unwrap(), rows.get(slot).unwrap());
        }
    }
}
