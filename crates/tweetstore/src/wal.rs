//! Write-ahead logging for the tweet store.
//!
//! [`crate::persist`] snapshots a whole store; a collector ingesting a live
//! stream needs durability *per append*. The WAL frames each record as
//! `len(u32 LE) · crc(u32 LE) · payload` appended to a log file; recovery
//! replays frames until the first corrupt or torn one and truncates the
//! tail — the standard contract: everything acknowledged before a crash is
//! recovered, a torn tail is dropped, corruption never propagates.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::codec::{decode_view, encode_record, fnv1a, TweetRecord};
use crate::persist::PersistError;
use crate::store::TweetStore;

/// Magic header of WAL files.
const MAGIC: &[u8; 8] = b"STIRWAL1";

/// What recovering one WAL did — how many records replayed cleanly and
/// how many torn-tail bytes were truncated. One of these per shard is the
/// per-shard recovery outcome a sharded open reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Records replayed into the store.
    pub recovered: u64,
    /// Bytes dropped from the log's torn or corrupt tail (0 = clean).
    pub truncated_bytes: u64,
}

/// An append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    appended: u64,
    scratch: Vec<u8>,
}

impl Wal {
    /// Opens (or creates) the log at `path` for appending. A fresh file
    /// gets the magic header; an existing file must carry it.
    pub fn open(path: &Path) -> Result<Self, PersistError> {
        let exists = path.exists();
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        if exists && file.metadata()?.len() >= MAGIC.len() as u64 {
            let mut head = [0u8; 8];
            let mut reader = File::open(path)?;
            reader.read_exact(&mut head)?;
            if &head != MAGIC {
                return Err(PersistError::BadMagic);
            }
        } else {
            file.write_all(MAGIC)?;
            file.sync_all()?;
        }
        Ok(Wal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
            appended: 0,
            scratch: Vec::new(),
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one record frame (buffered; see [`Wal::sync`]).
    pub fn append(&mut self, rec: &TweetRecord) -> Result<(), PersistError> {
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        encode_record(&mut payload, rec);
        let res = self.append_payload(&payload, fnv1a(&payload));
        self.scratch = payload;
        res
    }

    /// Appends one already-encoded record payload under the caller's
    /// checksum — the encode-once path: a batch ingest that also feeds the
    /// bytes to a store frames them here without re-encoding.
    pub(crate) fn append_payload(&mut self, payload: &[u8], crc: u32) -> Result<(), PersistError> {
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc.to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.appended += 1;
        Ok(())
    }

    /// Appends `records` pre-framed records (`len·crc·payload` runs laid
    /// out exactly as [`Wal::append`] writes them) in one buffered write.
    /// The staged batch-ingest path frames records while encoding them for
    /// the store, so the log bytes are identical to per-record appends of
    /// the same sequence.
    pub(crate) fn append_framed(
        &mut self,
        framed: &[u8],
        records: u64,
    ) -> Result<(), PersistError> {
        self.writer.write_all(framed)?;
        self.appended += records;
        Ok(())
    }

    /// Flushes buffers and fsyncs — the durability point.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }

    /// Replays the log into a fresh store. Stops at the first torn or
    /// corrupt frame, truncates the file there, and returns the store plus
    /// the number of recovered records.
    pub fn recover(path: &Path) -> Result<(TweetStore, u64), PersistError> {
        let mut file = File::open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let mut store = TweetStore::new();
        let mut recovered = 0u64;
        let mut at = MAGIC.len();
        let valid_end = loop {
            if at + 8 > bytes.len() {
                break at; // torn header
            }
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
            let start = at + 8;
            if start + len > bytes.len() {
                break at; // torn payload
            }
            let payload = &bytes[start..start + len];
            if fnv1a(payload) != crc {
                break at; // corrupt frame
            }
            // Validate the full record (including text UTF-8), then adopt
            // the frame bytes directly — no re-encode, no text allocation.
            let valid = decode_view(payload).and_then(|v| v.text().map(|_| ()));
            if valid.is_err() || store.append_raw(payload).is_err() {
                break at;
            }
            recovered += 1;
            at = start + len;
        };
        if valid_end < bytes.len() {
            // Drop the broken tail so the log is clean for further appends.
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(valid_end as u64)?;
            f.sync_all()?;
        }
        Ok((store, recovered))
    }
}

/// A store coupled to a WAL: appends hit the log first, then the in-memory
/// store; `sync` defines the durability boundary.
pub struct DurableStore {
    store: TweetStore,
    wal: Wal,
}

impl DurableStore {
    /// Opens the WAL at `path`, recovers any existing records into the
    /// store, and returns the coupled pair.
    pub fn open(path: &Path) -> Result<Self, PersistError> {
        let (store, _) = if path.exists() {
            Wal::recover(path)?
        } else {
            (TweetStore::new(), 0)
        };
        let wal = Wal::open(path)?;
        Ok(DurableStore { store, wal })
    }

    /// Appends durably-loggable record (call [`DurableStore::sync`] to make
    /// it crash-safe).
    pub fn append(&mut self, rec: &TweetRecord) -> Result<(), PersistError> {
        self.wal.append(rec)?;
        self.store.append(rec);
        Ok(())
    }

    /// Fsyncs the log.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.wal.sync()
    }

    /// The in-memory store.
    pub fn store(&self) -> &TweetStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geoindex::Point;

    fn rec(id: u64) -> TweetRecord {
        TweetRecord {
            id,
            user: id % 5,
            timestamp: id * 13,
            gps: id.is_multiple_of(2).then(|| Point::new(37.0, 127.0)),
            text: format!("wal {id}"),
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("stir-wal-{tag}-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_sync_recover_roundtrip() {
        let path = tmp("roundtrip");
        {
            let mut wal = Wal::open(&path).unwrap();
            for i in 0..200 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        let (store, recovered) = Wal::recover(&path).unwrap();
        assert_eq!(recovered, 200);
        assert_eq!(store.len(), 200);
        assert_eq!(store.get_by_id(133).unwrap().text, "wal 133");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_recoverable() {
        let path = tmp("torn");
        {
            let mut wal = Wal::open(&path).unwrap();
            for i in 0..50 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        // Simulate a crash mid-frame: chop 3 bytes off the end.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (store, recovered) = Wal::recover(&path).unwrap();
        assert_eq!(recovered, 49, "last frame is torn, rest recovered");
        assert_eq!(store.len(), 49);
        // The log is clean again: appends after recovery work.
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&rec(999)).unwrap();
        wal.sync().unwrap();
        let (store2, recovered2) = Wal::recover(&path).unwrap();
        assert_eq!(recovered2, 50);
        assert!(store2.get_by_id(999).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_frame_stops_replay() {
        let path = tmp("corrupt");
        {
            let mut wal = Wal::open(&path).unwrap();
            for i in 0..20 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        // Flip a byte in the middle of the file (inside some frame).
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let (store, recovered) = Wal::recover(&path).unwrap();
        assert!(
            recovered < 20,
            "corruption must stop replay, got {recovered}"
        );
        assert_eq!(store.len() as u64, recovered);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTAWAL!extra").unwrap();
        assert!(matches!(Wal::recover(&path), Err(PersistError::BadMagic)));
        assert!(matches!(Wal::open(&path), Err(PersistError::BadMagic)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_store_survives_reopen() {
        let path = tmp("durable");
        {
            let mut ds = DurableStore::open(&path).unwrap();
            for i in 0..30 {
                ds.append(&rec(i)).unwrap();
            }
            ds.sync().unwrap();
            assert_eq!(ds.store().len(), 30);
        }
        {
            let mut ds = DurableStore::open(&path).unwrap();
            assert_eq!(ds.store().len(), 30, "recovery on reopen");
            ds.append(&rec(100)).unwrap();
            ds.sync().unwrap();
        }
        let ds = DurableStore::open(&path).unwrap();
        assert_eq!(ds.store().len(), 31);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_wal_recovers_empty() {
        let path = tmp("empty");
        {
            Wal::open(&path).unwrap();
        }
        let (store, recovered) = Wal::recover(&path).unwrap();
        assert_eq!(recovered, 0);
        assert!(store.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
