//! The tweet store: segmented log + secondary indexes.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

use stir_geoindex::geohash;

use crate::codec::{fnv1a, CodecError, TweetHeader, TweetRecord, TweetView};
use crate::colseg::ColumnSegment;
use crate::segment::{Segment, ZoneMap, DEFAULT_SEGMENT_BYTES};
use crate::sketch::{GroupSketch, SketchResolver};

/// Physical location of a record: `(segment, slot)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RecordPtr {
    /// Segment index.
    pub seg: u32,
    /// Slot within the segment.
    pub slot: u32,
}

/// Geohash precision of the spatial index key (5 chars ≈ 4.9 × 4.9 km cells
/// — comfortably below district size, above GPS noise).
pub const GEO_PRECISION: usize = 5;

/// Width of a time-index bucket in seconds (1 hour).
pub const TIME_BUCKET_SECS: u64 = 3600;

/// On-disk / sealed-segment encoding a store targets.
///
/// Writes are row-first in both: the WAL and the open tail segment always
/// hold `STIRWAL1`-style row frames. The format decides what *sealing*
/// produces — `V2` converts a full row segment into a [`ColumnSegment`]
/// at the moment it seals, `V1` keeps it as rows. Mixed stores (old `V1`
/// sealed segments under a `V2` format) are fully supported; compaction
/// upgrades them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreFormat {
    /// Row-oriented sealed segments (`STIRSEG1`).
    #[default]
    V1,
    /// Columnar sealed segments (`STIRSEG2`).
    V2,
}

impl StoreFormat {
    /// Parses the CLI/manifest spelling (`"v1"` / `"v2"`).
    pub fn parse(s: &str) -> Option<StoreFormat> {
        match s {
            "v1" => Some(StoreFormat::V1),
            "v2" => Some(StoreFormat::V2),
            _ => None,
        }
    }

    /// The manifest/CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            StoreFormat::V1 => "v1",
            StoreFormat::V2 => "v2",
        }
    }
}

/// A sealed segment in either encoding. The active segment is always
/// rows; sealed ones are whatever the store's format (at seal time) says.
#[derive(Debug, Clone)]
pub(crate) enum SealedSegment {
    /// Row frames (`STIRSEG1`).
    Rows(Segment),
    /// Columns (`STIRSEG2`).
    Cols(ColumnSegment),
}

/// A borrowed segment in either format — what [`TweetStore::segments`]
/// hands to the scan engine, compaction, and persistence. `Copy`, so scan
/// blocks capture it by value.
#[derive(Clone, Copy, Debug)]
pub enum SegmentRef<'a> {
    /// A row-oriented segment (sealed `STIRSEG1` or the active tail).
    Rows(&'a Segment),
    /// A columnar sealed segment (`STIRSEG2`).
    Cols(&'a ColumnSegment),
}

impl<'a> SegmentRef<'a> {
    /// Number of records.
    pub fn len(&self) -> usize {
        match self {
            SegmentRef::Rows(s) => s.len(),
            SegmentRef::Cols(c) => c.len(),
        }
    }

    /// True when the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for columnar (`STIRSEG2`) segments.
    pub fn is_columnar(&self) -> bool {
        matches!(self, SegmentRef::Cols(_))
    }

    /// The segment's zone map.
    pub fn zone_map(&self) -> &'a ZoneMap {
        match self {
            SegmentRef::Rows(s) => s.zone_map(),
            SegmentRef::Cols(c) => c.zone_map(),
        }
    }

    /// Row-encoded payload bytes (for columnar segments, the row-format
    /// equivalent) — keeps size accounting format-independent, so roll
    /// thresholds and stats agree across formats.
    pub fn byte_len(&self) -> usize {
        match self {
            SegmentRef::Rows(s) => s.byte_len(),
            SegmentRef::Cols(c) => c.row_bytes_equiv() as usize,
        }
    }

    /// Header of the record at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn header(&self, slot: u32) -> Result<TweetHeader, CodecError> {
        match self {
            SegmentRef::Rows(s) => s.header(slot),
            SegmentRef::Cols(c) => Ok(c.header(slot)),
        }
    }

    /// Borrowed view of the record at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn view(&self, slot: u32) -> Result<TweetView<'a>, CodecError> {
        match self {
            SegmentRef::Rows(s) => s.view(slot),
            SegmentRef::Cols(c) => Ok(c.view(slot)),
        }
    }

    /// Decodes the record at `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn get(&self, slot: u32) -> Result<TweetRecord, CodecError> {
        match self {
            SegmentRef::Rows(s) => s.get(slot),
            SegmentRef::Cols(c) => c.cursor().record(slot),
        }
    }

    /// The underlying row segment, when this is one.
    pub fn as_rows(&self) -> Option<&'a Segment> {
        match self {
            SegmentRef::Rows(s) => Some(s),
            SegmentRef::Cols(_) => None,
        }
    }

    /// The underlying columnar segment, when this is one.
    pub fn as_cols(&self) -> Option<&'a ColumnSegment> {
        match self {
            SegmentRef::Rows(_) => None,
            SegmentRef::Cols(c) => Some(c),
        }
    }

    /// Iterates borrowed views in slot order.
    pub fn views(&self) -> impl Iterator<Item = Result<TweetView<'a>, CodecError>> + 'a {
        let this = *self;
        (0..this.len() as u32).map(move |slot| this.view(slot))
    }
}

impl SealedSegment {
    pub(crate) fn as_ref(&self) -> SegmentRef<'_> {
        match self {
            SealedSegment::Rows(s) => SegmentRef::Rows(s),
            SealedSegment::Cols(c) => SegmentRef::Cols(c),
        }
    }
}

/// One sealed segment's sketch state: a sidecar loaded from disk (kept
/// only while it validates against the segment and the query's resolver
/// fingerprint) and/or a lazily-built in-memory sketch.
#[derive(Debug, Default)]
struct SketchSlot {
    /// Sketch loaded from a persisted sidecar, if the file carried one.
    loaded: Option<Arc<GroupSketch>>,
    /// Sketch built in-process (eagerly at seal, or lazily on first use).
    /// `OnceLock` so concurrent readers race to build at most once;
    /// `None` inside means a build was attempted without a resolver.
    built: OnceLock<Option<Arc<GroupSketch>>>,
}

impl SketchSlot {
    fn from_loaded(loaded: Option<GroupSketch>) -> Self {
        SketchSlot {
            loaded: loaded.map(Arc::new),
            built: OnceLock::new(),
        }
    }
}

/// Aggregate store statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended.
    pub records: u64,
    /// Records carrying GPS.
    pub gps_records: u64,
    /// Total encoded payload bytes (row-format equivalent for columnar
    /// segments, so the figure is stable across formats).
    pub payload_bytes: u64,
    /// Number of segments (including the active one).
    pub segments: u32,
}

/// An in-memory segmented tweet store with user/time/geohash indexes.
///
/// Appends go to the active segment, which seals at a byte threshold.
/// Indexes map to [`RecordPtr`]s, so a record is decoded only when a query
/// actually returns it. Under [`StoreFormat::V2`] a segment is transposed
/// to columns when it seals; slots are preserved, so pointers stay valid.
///
/// ```
/// use stir_tweetstore::{Query, TweetRecord, TweetStore};
/// use stir_geoindex::Point;
///
/// let mut store = TweetStore::new();
/// store.append(&TweetRecord {
///     id: 1,
///     user: 42,
///     timestamp: 3_600,
///     gps: Some(Point::new(37.5, 127.0)),
///     text: "hello".into(),
/// });
/// assert_eq!(Query::all().user(42).execute(&store).len(), 1);
/// assert_eq!(store.get_by_id(1).unwrap().text, "hello");
/// ```
pub struct TweetStore {
    sealed: Vec<SealedSegment>,
    /// Per-sealed-segment sketch state, index-aligned with `sealed`.
    sketches: Vec<SketchSlot>,
    /// Resolver for building sketches (absent = sketches stay cold; only
    /// persisted sidecars can answer).
    sketcher: Option<Arc<dyn SketchResolver>>,
    active: Segment,
    segment_bytes: usize,
    format: StoreFormat,
    by_id: HashMap<u64, RecordPtr>,
    by_user: HashMap<u64, Vec<RecordPtr>>,
    by_time: BTreeMap<u64, Vec<RecordPtr>>,
    by_geo: HashMap<String, Vec<RecordPtr>>,
    stats: StoreStats,
}

impl Default for TweetStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TweetStore {
    /// A store with the default segment size and format (`V1`).
    pub fn new() -> Self {
        Self::with_segment_bytes(DEFAULT_SEGMENT_BYTES)
    }

    /// A store that seals segments at `segment_bytes` encoded bytes.
    pub fn with_segment_bytes(segment_bytes: usize) -> Self {
        Self::with_segment_bytes_and_format(segment_bytes, StoreFormat::default())
    }

    /// A store targeting `format` with the default segment size.
    pub fn with_format(format: StoreFormat) -> Self {
        Self::with_segment_bytes_and_format(DEFAULT_SEGMENT_BYTES, format)
    }

    /// A store with both the roll threshold and the sealed-segment format
    /// chosen by the caller.
    pub fn with_segment_bytes_and_format(segment_bytes: usize, format: StoreFormat) -> Self {
        TweetStore {
            sealed: Vec::new(),
            sketches: Vec::new(),
            sketcher: None,
            active: Segment::new(),
            segment_bytes: segment_bytes.max(1024),
            format,
            by_id: HashMap::new(),
            by_user: HashMap::new(),
            by_time: BTreeMap::new(),
            by_geo: HashMap::new(),
            stats: StoreStats {
                segments: 1,
                ..Default::default()
            },
        }
    }

    /// The sealed-segment format this store targets.
    pub fn format(&self) -> StoreFormat {
        self.format
    }

    /// The configured segment roll threshold in (row-equivalent) bytes.
    pub fn segment_bytes(&self) -> usize {
        self.segment_bytes
    }

    /// Switches the format *future* seals target. Already-sealed segments
    /// keep their encoding (a mixed store — compaction upgrades them).
    pub fn set_format(&mut self, format: StoreFormat) {
        self.format = format;
    }

    /// Seals the active segment if it has reached the roll threshold.
    ///
    /// The threshold is always measured in *row* bytes (the active
    /// segment is rows in both formats), so segment/slot boundaries — and
    /// therefore scan ordinals and `RecordPtr`s — are identical across
    /// formats for the same append sequence.
    fn roll_if_full(&mut self) {
        if self.active.byte_len() >= self.segment_bytes {
            self.roll();
        }
    }

    /// Seals the open tail now, regardless of fill. The forced boundary is
    /// observable (per-segment slot layout, persisted file set), so the
    /// store never does this on its own — it exists for callers that want
    /// a *fully* sealed store: read-only handoff after bulk ingest,
    /// persistence snapshots, benchmarks of the sealed-only paths. An
    /// empty tail is left alone. Under `V2` with a sketcher installed the
    /// forced seal sketches itself like any other.
    pub fn seal_active(&mut self) {
        if !self.active.is_empty() {
            self.roll();
        }
    }

    fn roll(&mut self) {
        let full = std::mem::replace(&mut self.active, Segment::new());
        let sealed = Self::seal(full, self.format);
        let slot = SketchSlot::default();
        // Seal-time sketch: columnar seals under an installed resolver
        // materialize their grouping partial immediately — the sealed
        // payload is immutable from here on, so the sketch never goes
        // stale. Row seals stay lazy (built on first sketch query).
        if let (SealedSegment::Cols(_), Some(resolver)) = (&sealed, &self.sketcher) {
            let sketch = GroupSketch::build(sealed.as_ref(), resolver.as_ref());
            let _ = slot.built.set(Some(Arc::new(sketch)));
        }
        self.sealed.push(sealed);
        self.sketches.push(slot);
        self.stats.segments += 1;
    }

    /// Installs the resolver used to build [`GroupSketch`]es at seal time
    /// and on demand. Replacing the resolver discards sketches built under
    /// the previous one (persisted sidecars stay; they re-validate by
    /// fingerprint at query time).
    pub fn set_sketcher(&mut self, resolver: Arc<dyn SketchResolver>) {
        self.sketcher = Some(resolver);
        for slot in &mut self.sketches {
            slot.built = OnceLock::new();
        }
    }

    /// The installed sketch resolver, if any.
    pub fn sketcher(&self) -> Option<&Arc<dyn SketchResolver>> {
        self.sketcher.as_ref()
    }

    /// The sketch of sealed segment `seg_idx` under the vocabulary
    /// identified by `expected_fingerprint`, building it on first use when
    /// a matching resolver is installed. `None` when the index is the
    /// active tail, no valid sidecar or resolver exists, or the
    /// fingerprints disagree — the caller must fall back to scanning that
    /// segment (in practice: the whole query falls back).
    pub fn sketch_for(
        &self,
        seg_idx: usize,
        expected_fingerprint: u64,
    ) -> Option<Arc<GroupSketch>> {
        let slot = self.sketches.get(seg_idx)?;
        let seg_records = self.sealed[seg_idx].as_ref().len() as u64;
        if let Some(loaded) = &slot.loaded {
            if loaded.fingerprint == expected_fingerprint && loaded.records == seg_records {
                return Some(Arc::clone(loaded));
            }
        }
        let built = slot.built.get_or_init(|| {
            let resolver = self.sketcher.as_ref()?;
            if resolver.fingerprint() != expected_fingerprint {
                return None;
            }
            Some(Arc::new(GroupSketch::build(
                self.sealed[seg_idx].as_ref(),
                resolver.as_ref(),
            )))
        });
        let sketch = built.clone()?;
        (sketch.fingerprint == expected_fingerprint && sketch.records == seg_records)
            .then_some(sketch)
    }

    /// A sketch already in memory for sealed segment `seg_idx` (persisted
    /// sidecar or a completed build) — never triggers a build. What
    /// persistence writes back out.
    pub(crate) fn sketch_cached(&self, seg_idx: usize) -> Option<Arc<GroupSketch>> {
        let slot = self.sketches.get(seg_idx)?;
        slot.built
            .get()
            .and_then(|b| b.clone())
            .or_else(|| slot.loaded.clone())
    }

    /// Converts a full row segment into its sealed form for `format`.
    fn seal(seg: Segment, format: StoreFormat) -> SealedSegment {
        match format {
            StoreFormat::V1 => SealedSegment::Rows(seg),
            StoreFormat::V2 => match ColumnSegment::from_rows(&seg) {
                Ok(cols) => SealedSegment::Cols(cols),
                // A sealed segment only holds frames the append path
                // already validated, so this can't fail in practice; if
                // it somehow does, keep the rows rather than lose data.
                Err(_) => SealedSegment::Rows(seg),
            },
        }
    }

    /// Registers a freshly-appended record (by header) in every index.
    fn index_record(&mut self, header: &TweetHeader, ptr: RecordPtr, frame_bytes: u64) {
        self.by_id.insert(header.id, ptr);
        self.by_user.entry(header.user).or_default().push(ptr);
        self.by_time
            .entry(header.timestamp / TIME_BUCKET_SECS)
            .or_default()
            .push(ptr);
        if let Some(p) = header.gps {
            let cell = geohash::encode(p, GEO_PRECISION);
            self.by_geo.entry(cell).or_default().push(ptr);
            self.stats.gps_records += 1;
        }
        self.stats.records += 1;
        self.stats.payload_bytes += frame_bytes;
    }

    /// Appends a record, indexing it; returns its pointer.
    pub fn append(&mut self, rec: &TweetRecord) -> RecordPtr {
        self.roll_if_full();
        let seg = self.sealed.len() as u32;
        let before = self.active.byte_len();
        let slot = self.active.append(rec);
        let ptr = RecordPtr { seg, slot };
        let frame_bytes = (self.active.byte_len() - before) as u64;
        self.index_record(&rec.header(), ptr, frame_bytes);
        ptr
    }

    /// Appends an already-encoded record frame without re-encoding (and
    /// without decoding the text). The copied bytes are re-verified with
    /// the same FNV-1a checksum persistence uses, so a raw-copy path can
    /// never silently corrupt a record. Used by compaction and WAL replay.
    pub fn append_raw(&mut self, frame: &[u8]) -> Result<RecordPtr, CodecError> {
        self.append_raw_with_crc(frame, fnv1a(frame))
    }

    /// [`TweetStore::append_raw`] when the caller already holds the
    /// frame's FNV-1a checksum (the WAL framing carries it): the copied
    /// bytes are verified against it directly, skipping the second hash
    /// pass while keeping the same end-to-end guarantee.
    pub(crate) fn append_raw_with_crc(
        &mut self,
        frame: &[u8],
        expected: u32,
    ) -> Result<RecordPtr, CodecError> {
        self.roll_if_full();
        let seg = self.sealed.len() as u32;
        let (slot, header) = self.active.append_raw_frame(frame)?;
        let actual = fnv1a(self.active.raw(slot));
        if expected != actual {
            return Err(CodecError::ChecksumMismatch { expected, actual });
        }
        let ptr = RecordPtr { seg, slot };
        self.index_record(&header, ptr, frame.len() as u64);
        Ok(ptr)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.stats.records as usize
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.stats.records == 0
    }

    /// Store statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    fn segment(&self, seg: u32) -> SegmentRef<'_> {
        if (seg as usize) < self.sealed.len() {
            self.sealed[seg as usize].as_ref()
        } else {
            SegmentRef::Rows(&self.active)
        }
    }

    /// Decodes the record at `ptr`. Columnar segments go through their
    /// point-lookup cursor; row segments decode the frame.
    pub fn get(&self, ptr: RecordPtr) -> Result<TweetRecord, CodecError> {
        self.segment(ptr.seg).get(ptr.slot)
    }

    /// Looks up a record by tweet id.
    pub fn get_by_id(&self, id: u64) -> Option<TweetRecord> {
        let ptr = *self.by_id.get(&id)?;
        self.get(ptr).ok()
    }

    /// All pointers for a user, in append order.
    pub fn user_ptrs(&self, user: u64) -> &[RecordPtr] {
        self.by_user.get(&user).map_or(&[], |v| v.as_slice())
    }

    /// Pointers whose timestamps fall in `[start, end)` (bucket-granular
    /// prefilter; exact filtering happens in the query layer).
    pub fn time_ptrs(&self, start: u64, end: u64) -> Vec<RecordPtr> {
        if start >= end {
            return Vec::new();
        }
        let b0 = start / TIME_BUCKET_SECS;
        let b1 = (end - 1) / TIME_BUCKET_SECS;
        self.by_time
            .range(b0..=b1)
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    /// Pointers in the given geohash cell (exact-precision key).
    pub fn geo_cell_ptrs(&self, cell: &str) -> &[RecordPtr] {
        self.by_geo.get(cell).map_or(&[], |v| v.as_slice())
    }

    /// All geo-index cells currently populated.
    pub fn geo_cells(&self) -> impl Iterator<Item = &str> {
        self.by_geo.keys().map(|s| s.as_str())
    }

    /// Distinct users with at least one record.
    pub fn user_count(&self) -> usize {
        self.by_user.len()
    }

    /// Iterates over every record in (segment, slot) order.
    pub fn scan(&self) -> impl Iterator<Item = Result<TweetRecord, CodecError>> + '_ {
        self.segments()
            .into_iter()
            .flat_map(|s| (0..s.len() as u32).map(move |slot| s.get(slot)))
    }

    /// Iterates records in (segment, slot) order starting at record
    /// ordinal `from` — the tail primitive behind snapshot-resume: whole
    /// segments before the ordinal are skipped by their record counts, so
    /// the cost is proportional to the tail, not to the corpus.
    pub fn scan_from(
        &self,
        from: u64,
    ) -> impl Iterator<Item = Result<TweetRecord, CodecError>> + '_ {
        let mut skip = from as usize;
        self.segments()
            .into_iter()
            .filter_map(move |s| {
                if skip >= s.len() {
                    skip -= s.len();
                    None
                } else {
                    let first = skip as u32;
                    skip = 0;
                    Some((s, first))
                }
            })
            .flat_map(|(s, first)| (first..s.len() as u32).map(move |slot| s.get(slot)))
    }

    /// Streams borrowed views over every record in (segment, slot) order —
    /// the zero-copy counterpart of [`TweetStore::scan`]: headers are
    /// decoded, text stays in the segment buffer until asked for.
    pub fn scan_views(&self) -> impl Iterator<Item = Result<TweetView<'_>, CodecError>> + '_ {
        self.segments().into_iter().flat_map(|s| s.views())
    }

    /// Streams header-only decodes in (segment, slot) order.
    pub fn scan_headers(&self) -> impl Iterator<Item = Result<TweetHeader, CodecError>> + '_ {
        self.scan_views().map(|r| r.map(|v| v.header))
    }

    /// Total records indexed under the time buckets overlapping
    /// `[start, end)` — the planner's cardinality estimate for the time
    /// index (bucket-granular, like [`TweetStore::time_ptrs`]).
    pub(crate) fn time_ptr_count(&self, start: u64, end: u64) -> usize {
        if start >= end {
            return 0;
        }
        let b0 = start / TIME_BUCKET_SECS;
        let b1 = (end - 1) / TIME_BUCKET_SECS;
        self.by_time.range(b0..=b1).map(|(_, v)| v.len()).sum()
    }

    /// Every decodable record in timestamp order (stable by id within a
    /// timestamp) — the feed the streaming detectors consume. Walks the
    /// time index bucket by bucket, so cost is proportional to the result,
    /// not to a sort of the whole store.
    pub fn scan_time_ordered(&self) -> Vec<TweetRecord> {
        let mut out: Vec<TweetRecord> = Vec::with_capacity(self.len());
        for ptrs in self.by_time.values() {
            let start = out.len();
            for &p in ptrs {
                if let Ok(rec) = self.get(p) {
                    out.push(rec);
                }
            }
            // Buckets are coarse (1 h); order within one bucket.
            out[start..].sort_by_key(|r| (r.timestamp, r.id));
        }
        out
    }

    /// Sealed + active segments in order — a read-only view used by
    /// persistence, compaction, the scan engine, and zone-map inspection.
    /// Each entry is a [`SegmentRef`] carrying its format.
    pub fn segments(&self) -> Vec<SegmentRef<'_>> {
        self.sealed
            .iter()
            .map(|s| s.as_ref())
            .chain(std::iter::once(SegmentRef::Rows(&self.active)))
            .collect()
    }

    /// Rebuilds a store from sealed segments (persistence path).
    ///
    /// Segments are adopted as-is — payload bytes are never re-encoded and
    /// record text is never decoded. A trailing *row* segment resumes as
    /// the active segment (a columnar tail stays sealed: columns are
    /// immutable). Indexes and stats are rebuilt from a header-only scan.
    /// Each segment arrives with its persisted sketch sidecar (if its file
    /// carried a valid one) riding along.
    pub(crate) fn from_sealed_with_sketches(
        mut segments: Vec<(SealedSegment, Option<GroupSketch>)>,
        segment_bytes: usize,
        format: StoreFormat,
    ) -> Self {
        let mut store = TweetStore::with_segment_bytes_and_format(segment_bytes, format);
        match segments.pop() {
            Some((SealedSegment::Rows(tail), _)) => {
                // The trailing row segment resumes as the active tail; a
                // sketch cannot cover a mutable segment, so any sidecar it
                // had is dropped.
                store.sealed = Vec::with_capacity(segments.len());
                store.sketches = Vec::with_capacity(segments.len());
                for (seg, sketch) in segments {
                    store.sealed.push(seg);
                    store.sketches.push(SketchSlot::from_loaded(sketch));
                }
                store.active = tail;
            }
            Some(cols @ (SealedSegment::Cols(_), _)) => {
                segments.push(cols);
                store.sealed = Vec::with_capacity(segments.len());
                store.sketches = Vec::with_capacity(segments.len());
                for (seg, sketch) in segments {
                    store.sealed.push(seg);
                    store.sketches.push(SketchSlot::from_loaded(sketch));
                }
            }
            None => return store,
        }
        store.stats.segments = store.sealed.len() as u32 + 1;
        for seg_idx in 0..store.stats.segments {
            // Collect headers first: indexing needs `&mut store` while the
            // segment walk borrows `&store`.
            let seg = store.segment(seg_idx);
            let mut entries = Vec::with_capacity(seg.len());
            for slot in 0..seg.len() as u32 {
                // The framed loader verified the checksums and rebuilt the
                // zone map from these same headers, so decode cannot fail
                // here; skip defensively rather than panic.
                let Ok(view) = seg.view(slot) else { continue };
                let ptr = RecordPtr { seg: seg_idx, slot };
                entries.push((view.header, ptr, view.frame_len() as u64));
            }
            for (header, ptr, frame_bytes) in entries {
                store.index_record(&header, ptr, frame_bytes);
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geoindex::Point;

    fn rec(id: u64, user: u64, ts: u64, gps: Option<(f64, f64)>) -> TweetRecord {
        TweetRecord {
            id,
            user,
            timestamp: ts,
            gps: gps.map(|(a, b)| Point::new(a, b)),
            text: format!("t{id}"),
        }
    }

    #[test]
    fn append_and_get_by_id() {
        let mut s = TweetStore::new();
        for i in 0..100 {
            s.append(&rec(i, i % 5, i * 60, None));
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.get_by_id(42).unwrap().id, 42);
        assert!(s.get_by_id(9999).is_none());
    }

    #[test]
    fn user_index_complete() {
        let mut s = TweetStore::new();
        for i in 0..60 {
            s.append(&rec(i, i % 3, i, None));
        }
        assert_eq!(s.user_ptrs(0).len(), 20);
        assert_eq!(s.user_count(), 3);
        for &ptr in s.user_ptrs(1) {
            assert_eq!(s.get(ptr).unwrap().user, 1);
        }
    }

    #[test]
    fn time_index_bucket_ranges() {
        let mut s = TweetStore::new();
        for i in 0..48 {
            s.append(&rec(i, 0, i * 1800, None)); // every 30 min over 24h
        }
        let ptrs = s.time_ptrs(0, 3 * 3600); // first three hours
        let mut hits: Vec<u64> = ptrs
            .into_iter()
            .map(|p| s.get(p).unwrap().timestamp)
            .filter(|&t| t < 3 * 3600)
            .collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1800, 3600, 5400, 7200, 9000]);
        assert!(s.time_ptrs(10, 10).is_empty());
    }

    #[test]
    fn geo_index_only_gps_records() {
        let mut s = TweetStore::new();
        s.append(&rec(1, 0, 0, Some((37.5663, 126.9779))));
        s.append(&rec(2, 0, 0, None));
        s.append(&rec(3, 0, 0, Some((37.5664, 126.9780))));
        assert_eq!(s.stats().gps_records, 2);
        let cell = stir_geoindex::geohash::encode(Point::new(37.5663, 126.9779), GEO_PRECISION);
        assert_eq!(s.geo_cell_ptrs(&cell).len(), 2);
    }

    #[test]
    fn segments_roll_at_threshold() {
        let mut s = TweetStore::with_segment_bytes(2048);
        for i in 0..2000 {
            s.append(&rec(i, i, i, None));
        }
        assert!(s.stats().segments > 1, "segments {}", s.stats().segments);
        // Every record still reachable after rolling.
        assert_eq!(s.scan().filter(|r| r.is_ok()).count(), 2000);
        assert_eq!(s.get_by_id(1999).unwrap().id, 1999);
    }

    #[test]
    fn scan_time_ordered_sorts_globally() {
        let mut s = TweetStore::with_segment_bytes(2048);
        // Insert with shuffled timestamps across many hour buckets.
        let mut state = 7u64;
        for i in 0..800u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ts = state % (72 * 3600);
            s.append(&rec(i, i % 9, ts, None));
        }
        let ordered = s.scan_time_ordered();
        assert_eq!(ordered.len(), 800);
        for w in ordered.windows(2) {
            assert!(
                (w[0].timestamp, w[0].id) <= (w[1].timestamp, w[1].id),
                "out of order: {:?} then {:?}",
                (w[0].timestamp, w[0].id),
                (w[1].timestamp, w[1].id)
            );
        }
    }

    #[test]
    fn append_raw_matches_append() {
        let mut a = TweetStore::with_segment_bytes(2048);
        let mut b = TweetStore::with_segment_bytes(2048);
        for i in 0..500 {
            let r = rec(i, i % 5, i * 60, (i % 3 == 0).then_some((37.5, 127.0)));
            a.append(&r);
        }
        // Replay a's raw frames into b: identical stats, indexes, bytes.
        let frames: Vec<Vec<u8>> = a
            .segments()
            .iter()
            .flat_map(|s| {
                let rows = s.as_rows().expect("v1 store is all rows");
                (0..rows.len() as u32).map(|slot| rows.raw(slot).to_vec())
            })
            .collect();
        for f in &frames {
            b.append_raw(f).unwrap();
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.user_count(), b.user_count());
        for (sa, sb) in a.segments().iter().zip(b.segments().iter()) {
            assert_eq!(sa.zone_map(), sb.zone_map());
            let (ra, rb) = (sa.as_rows().unwrap(), sb.as_rows().unwrap());
            for slot in 0..ra.len() as u32 {
                assert_eq!(ra.raw(slot), rb.raw(slot));
            }
        }
        // Garbage frames are rejected without perturbing the store.
        let before = b.stats();
        assert!(b.append_raw(&[0xFF; 3]).is_err());
        assert_eq!(b.stats(), before);
    }

    #[test]
    fn scan_views_agrees_with_scan() {
        let mut s = TweetStore::with_segment_bytes(1024);
        for i in 0..300 {
            s.append(&rec(
                i,
                i % 7,
                i * 30,
                (i % 4 == 0).then_some((35.1, 129.0)),
            ));
        }
        let full: Vec<TweetRecord> = s.scan().map(|r| r.unwrap()).collect();
        let via_views: Vec<TweetRecord> = s
            .scan_views()
            .map(|v| v.unwrap().to_record().unwrap())
            .collect();
        assert_eq!(full, via_views);
        let headers: Vec<_> = s.scan_headers().map(|h| h.unwrap()).collect();
        assert_eq!(headers, full.iter().map(|r| r.header()).collect::<Vec<_>>());
    }

    #[test]
    fn scan_order_is_append_order() {
        let mut s = TweetStore::with_segment_bytes(1024);
        for i in 0..500 {
            s.append(&rec(i, 0, 0, None));
        }
        let ids: Vec<u64> = s.scan().map(|r| r.unwrap().id).collect();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn v2_store_seals_columnar_and_answers_identically() {
        let mut v1 = TweetStore::with_segment_bytes(2048);
        let mut v2 = TweetStore::with_segment_bytes_and_format(2048, StoreFormat::V2);
        for i in 0..1200 {
            let r = rec(i, i % 11, i * 60, (i % 3 == 0).then_some((37.5, 127.0)));
            v1.append(&r);
            v2.append(&r);
        }
        assert_eq!(v1.stats(), v2.stats(), "stats are format-independent");
        assert!(
            v2.segments().iter().filter(|s| s.is_columnar()).count() > 0,
            "v2 store must seal columnar segments"
        );
        assert!(
            v1.segments().iter().all(|s| !s.is_columnar()),
            "v1 store stays rows"
        );
        // Same segment/slot geometry (roll thresholds are row bytes in
        // both), same answers via every access path.
        for (sa, sb) in v1.segments().iter().zip(v2.segments().iter()) {
            assert_eq!(sa.len(), sb.len());
            assert_eq!(sa.zone_map(), sb.zone_map());
        }
        for i in 0..1200 {
            assert_eq!(v1.get_by_id(i), v2.get_by_id(i));
        }
        let a: Vec<TweetRecord> = v1.scan().map(|r| r.unwrap()).collect();
        let b: Vec<TweetRecord> = v2.scan().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_store_after_format_switch() {
        let mut s = TweetStore::with_segment_bytes(2048);
        for i in 0..600 {
            s.append(&rec(i, i % 5, i, None));
        }
        s.set_format(StoreFormat::V2);
        for i in 600..1200 {
            s.append(&rec(i, i % 5, i, None));
        }
        let segs = s.segments();
        assert!(segs.iter().any(|s| s.is_columnar()));
        assert!(segs.iter().any(|s| !s.is_columnar()));
        assert_eq!(s.scan().filter(|r| r.is_ok()).count(), 1200);
        for i in 0..1200 {
            assert_eq!(s.get_by_id(i).unwrap().id, i);
        }
    }
}
