//! The tweet store: segmented log + secondary indexes.

use std::collections::{BTreeMap, HashMap};

use stir_geoindex::geohash;

use crate::codec::{fnv1a, CodecError, TweetHeader, TweetRecord, TweetView};
use crate::segment::{Segment, DEFAULT_SEGMENT_BYTES};

/// Physical location of a record: `(segment, slot)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RecordPtr {
    /// Segment index.
    pub seg: u32,
    /// Slot within the segment.
    pub slot: u32,
}

/// Geohash precision of the spatial index key (5 chars ≈ 4.9 × 4.9 km cells
/// — comfortably below district size, above GPS noise).
pub const GEO_PRECISION: usize = 5;

/// Width of a time-index bucket in seconds (1 hour).
pub const TIME_BUCKET_SECS: u64 = 3600;

/// Aggregate store statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended.
    pub records: u64,
    /// Records carrying GPS.
    pub gps_records: u64,
    /// Total encoded payload bytes.
    pub payload_bytes: u64,
    /// Number of segments (including the active one).
    pub segments: u32,
}

/// An in-memory segmented tweet store with user/time/geohash indexes.
///
/// Appends go to the active segment, which seals at a byte threshold.
/// Indexes map to [`RecordPtr`]s, so a record is decoded only when a query
/// actually returns it.
///
/// ```
/// use stir_tweetstore::{Query, TweetRecord, TweetStore};
/// use stir_geoindex::Point;
///
/// let mut store = TweetStore::new();
/// store.append(&TweetRecord {
///     id: 1,
///     user: 42,
///     timestamp: 3_600,
///     gps: Some(Point::new(37.5, 127.0)),
///     text: "hello".into(),
/// });
/// assert_eq!(Query::all().user(42).execute(&store).len(), 1);
/// assert_eq!(store.get_by_id(1).unwrap().text, "hello");
/// ```
pub struct TweetStore {
    sealed: Vec<Segment>,
    active: Segment,
    segment_bytes: usize,
    by_id: HashMap<u64, RecordPtr>,
    by_user: HashMap<u64, Vec<RecordPtr>>,
    by_time: BTreeMap<u64, Vec<RecordPtr>>,
    by_geo: HashMap<String, Vec<RecordPtr>>,
    stats: StoreStats,
}

impl Default for TweetStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TweetStore {
    /// A store with the default segment size.
    pub fn new() -> Self {
        Self::with_segment_bytes(DEFAULT_SEGMENT_BYTES)
    }

    /// A store that seals segments at `segment_bytes` encoded bytes.
    pub fn with_segment_bytes(segment_bytes: usize) -> Self {
        TweetStore {
            sealed: Vec::new(),
            active: Segment::new(),
            segment_bytes: segment_bytes.max(1024),
            by_id: HashMap::new(),
            by_user: HashMap::new(),
            by_time: BTreeMap::new(),
            by_geo: HashMap::new(),
            stats: StoreStats {
                segments: 1,
                ..Default::default()
            },
        }
    }

    /// Seals the active segment if it has reached the roll threshold.
    fn roll_if_full(&mut self) {
        if self.active.byte_len() >= self.segment_bytes {
            let full = std::mem::replace(&mut self.active, Segment::new());
            self.sealed.push(full);
            self.stats.segments += 1;
        }
    }

    /// Registers a freshly-appended record (by header) in every index.
    fn index_record(&mut self, header: &TweetHeader, ptr: RecordPtr, frame_bytes: u64) {
        self.by_id.insert(header.id, ptr);
        self.by_user.entry(header.user).or_default().push(ptr);
        self.by_time
            .entry(header.timestamp / TIME_BUCKET_SECS)
            .or_default()
            .push(ptr);
        if let Some(p) = header.gps {
            let cell = geohash::encode(p, GEO_PRECISION);
            self.by_geo.entry(cell).or_default().push(ptr);
            self.stats.gps_records += 1;
        }
        self.stats.records += 1;
        self.stats.payload_bytes += frame_bytes;
    }

    /// Appends a record, indexing it; returns its pointer.
    pub fn append(&mut self, rec: &TweetRecord) -> RecordPtr {
        self.roll_if_full();
        let seg = self.sealed.len() as u32;
        let before = self.active.byte_len();
        let slot = self.active.append(rec);
        let ptr = RecordPtr { seg, slot };
        let frame_bytes = (self.active.byte_len() - before) as u64;
        self.index_record(&rec.header(), ptr, frame_bytes);
        ptr
    }

    /// Appends an already-encoded record frame without re-encoding (and
    /// without decoding the text). The copied bytes are re-verified with
    /// the same FNV-1a checksum persistence uses, so a raw-copy path can
    /// never silently corrupt a record. Used by compaction and WAL replay.
    pub fn append_raw(&mut self, frame: &[u8]) -> Result<RecordPtr, CodecError> {
        self.append_raw_with_crc(frame, fnv1a(frame))
    }

    /// [`TweetStore::append_raw`] when the caller already holds the
    /// frame's FNV-1a checksum (the WAL framing carries it): the copied
    /// bytes are verified against it directly, skipping the second hash
    /// pass while keeping the same end-to-end guarantee.
    pub(crate) fn append_raw_with_crc(
        &mut self,
        frame: &[u8],
        expected: u32,
    ) -> Result<RecordPtr, CodecError> {
        self.roll_if_full();
        let seg = self.sealed.len() as u32;
        let (slot, header) = self.active.append_raw_frame(frame)?;
        let actual = fnv1a(self.active.raw(slot));
        if expected != actual {
            return Err(CodecError::ChecksumMismatch { expected, actual });
        }
        let ptr = RecordPtr { seg, slot };
        self.index_record(&header, ptr, frame.len() as u64);
        Ok(ptr)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.stats.records as usize
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.stats.records == 0
    }

    /// Store statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    fn segment(&self, seg: u32) -> &Segment {
        if (seg as usize) < self.sealed.len() {
            &self.sealed[seg as usize]
        } else {
            &self.active
        }
    }

    /// Decodes the record at `ptr`.
    pub fn get(&self, ptr: RecordPtr) -> Result<TweetRecord, CodecError> {
        self.segment(ptr.seg).get(ptr.slot)
    }

    /// Looks up a record by tweet id.
    pub fn get_by_id(&self, id: u64) -> Option<TweetRecord> {
        let ptr = *self.by_id.get(&id)?;
        self.get(ptr).ok()
    }

    /// All pointers for a user, in append order.
    pub fn user_ptrs(&self, user: u64) -> &[RecordPtr] {
        self.by_user.get(&user).map_or(&[], |v| v.as_slice())
    }

    /// Pointers whose timestamps fall in `[start, end)` (bucket-granular
    /// prefilter; exact filtering happens in the query layer).
    pub fn time_ptrs(&self, start: u64, end: u64) -> Vec<RecordPtr> {
        if start >= end {
            return Vec::new();
        }
        let b0 = start / TIME_BUCKET_SECS;
        let b1 = (end - 1) / TIME_BUCKET_SECS;
        self.by_time
            .range(b0..=b1)
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    /// Pointers in the given geohash cell (exact-precision key).
    pub fn geo_cell_ptrs(&self, cell: &str) -> &[RecordPtr] {
        self.by_geo.get(cell).map_or(&[], |v| v.as_slice())
    }

    /// All geo-index cells currently populated.
    pub fn geo_cells(&self) -> impl Iterator<Item = &str> {
        self.by_geo.keys().map(|s| s.as_str())
    }

    /// Distinct users with at least one record.
    pub fn user_count(&self) -> usize {
        self.by_user.len()
    }

    /// Iterates over every record in (segment, slot) order.
    pub fn scan(&self) -> impl Iterator<Item = Result<TweetRecord, CodecError>> + '_ {
        self.sealed
            .iter()
            .chain(std::iter::once(&self.active))
            .flat_map(|s| s.iter())
    }

    /// Iterates records in (segment, slot) order starting at record
    /// ordinal `from` — the tail primitive behind snapshot-resume: whole
    /// segments before the ordinal are skipped by their record counts, so
    /// the cost is proportional to the tail, not to the corpus.
    pub fn scan_from(
        &self,
        from: u64,
    ) -> impl Iterator<Item = Result<TweetRecord, CodecError>> + '_ {
        let mut skip = from as usize;
        self.sealed
            .iter()
            .chain(std::iter::once(&self.active))
            .filter_map(move |s| {
                if skip >= s.len() {
                    skip -= s.len();
                    None
                } else {
                    let first = skip as u32;
                    skip = 0;
                    Some((s, first))
                }
            })
            .flat_map(|(s, first)| (first..s.len() as u32).map(move |slot| s.get(slot)))
    }

    /// Streams borrowed views over every record in (segment, slot) order —
    /// the zero-copy counterpart of [`TweetStore::scan`]: headers are
    /// decoded, text stays in the segment buffer until asked for.
    pub fn scan_views(&self) -> impl Iterator<Item = Result<TweetView<'_>, CodecError>> + '_ {
        self.sealed
            .iter()
            .chain(std::iter::once(&self.active))
            .flat_map(|s| s.views())
    }

    /// Streams header-only decodes in (segment, slot) order.
    pub fn scan_headers(&self) -> impl Iterator<Item = Result<TweetHeader, CodecError>> + '_ {
        self.scan_views().map(|r| r.map(|v| v.header))
    }

    /// Total records indexed under the time buckets overlapping
    /// `[start, end)` — the planner's cardinality estimate for the time
    /// index (bucket-granular, like [`TweetStore::time_ptrs`]).
    pub(crate) fn time_ptr_count(&self, start: u64, end: u64) -> usize {
        if start >= end {
            return 0;
        }
        let b0 = start / TIME_BUCKET_SECS;
        let b1 = (end - 1) / TIME_BUCKET_SECS;
        self.by_time.range(b0..=b1).map(|(_, v)| v.len()).sum()
    }

    /// Every decodable record in timestamp order (stable by id within a
    /// timestamp) — the feed the streaming detectors consume. Walks the
    /// time index bucket by bucket, so cost is proportional to the result,
    /// not to a sort of the whole store.
    pub fn scan_time_ordered(&self) -> Vec<TweetRecord> {
        let mut out: Vec<TweetRecord> = Vec::with_capacity(self.len());
        for ptrs in self.by_time.values() {
            let start = out.len();
            for &p in ptrs {
                if let Ok(rec) = self.get(p) {
                    out.push(rec);
                }
            }
            // Buckets are coarse (1 h); order within one bucket.
            out[start..].sort_by_key(|r| (r.timestamp, r.id));
        }
        out
    }

    /// Sealed + active segments in order — a read-only view used by
    /// persistence, compaction, the scan engine, and zone-map inspection.
    pub fn segments(&self) -> Vec<&Segment> {
        self.sealed
            .iter()
            .chain(std::iter::once(&self.active))
            .collect()
    }

    /// Rebuilds a store from segments (persistence path).
    ///
    /// Segments are adopted as-is — payload bytes are never re-encoded and
    /// record text is never decoded. All but the last become sealed; the
    /// last resumes as the active segment. Indexes and stats are rebuilt
    /// from a header-only scan.
    pub(crate) fn from_segments(mut segments: Vec<Segment>, segment_bytes: usize) -> Self {
        let mut store = TweetStore::with_segment_bytes(segment_bytes);
        let Some(active) = segments.pop() else {
            return store;
        };
        store.sealed = segments;
        store.active = active;
        store.stats.segments = store.sealed.len() as u32 + 1;
        for seg_idx in 0..store.stats.segments {
            // Collect headers first: indexing needs `&mut store` while the
            // segment walk borrows `&store`.
            let seg = store.segment(seg_idx);
            let mut entries = Vec::with_capacity(seg.len());
            for slot in 0..seg.len() as u32 {
                // The framed loader verified the checksum and rebuilt the
                // zone map from these same headers, so decode cannot fail
                // here; skip defensively rather than panic.
                let Ok(view) = seg.view(slot) else { continue };
                let ptr = RecordPtr { seg: seg_idx, slot };
                entries.push((view.header, ptr, view.frame_len() as u64));
            }
            for (header, ptr, frame_bytes) in entries {
                store.index_record(&header, ptr, frame_bytes);
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stir_geoindex::Point;

    fn rec(id: u64, user: u64, ts: u64, gps: Option<(f64, f64)>) -> TweetRecord {
        TweetRecord {
            id,
            user,
            timestamp: ts,
            gps: gps.map(|(a, b)| Point::new(a, b)),
            text: format!("t{id}"),
        }
    }

    #[test]
    fn append_and_get_by_id() {
        let mut s = TweetStore::new();
        for i in 0..100 {
            s.append(&rec(i, i % 5, i * 60, None));
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.get_by_id(42).unwrap().id, 42);
        assert!(s.get_by_id(9999).is_none());
    }

    #[test]
    fn user_index_complete() {
        let mut s = TweetStore::new();
        for i in 0..60 {
            s.append(&rec(i, i % 3, i, None));
        }
        assert_eq!(s.user_ptrs(0).len(), 20);
        assert_eq!(s.user_count(), 3);
        for &ptr in s.user_ptrs(1) {
            assert_eq!(s.get(ptr).unwrap().user, 1);
        }
    }

    #[test]
    fn time_index_bucket_ranges() {
        let mut s = TweetStore::new();
        for i in 0..48 {
            s.append(&rec(i, 0, i * 1800, None)); // every 30 min over 24h
        }
        let ptrs = s.time_ptrs(0, 3 * 3600); // first three hours
        let mut hits: Vec<u64> = ptrs
            .into_iter()
            .map(|p| s.get(p).unwrap().timestamp)
            .filter(|&t| t < 3 * 3600)
            .collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1800, 3600, 5400, 7200, 9000]);
        assert!(s.time_ptrs(10, 10).is_empty());
    }

    #[test]
    fn geo_index_only_gps_records() {
        let mut s = TweetStore::new();
        s.append(&rec(1, 0, 0, Some((37.5663, 126.9779))));
        s.append(&rec(2, 0, 0, None));
        s.append(&rec(3, 0, 0, Some((37.5664, 126.9780))));
        assert_eq!(s.stats().gps_records, 2);
        let cell = stir_geoindex::geohash::encode(Point::new(37.5663, 126.9779), GEO_PRECISION);
        assert_eq!(s.geo_cell_ptrs(&cell).len(), 2);
    }

    #[test]
    fn segments_roll_at_threshold() {
        let mut s = TweetStore::with_segment_bytes(2048);
        for i in 0..2000 {
            s.append(&rec(i, i, i, None));
        }
        assert!(s.stats().segments > 1, "segments {}", s.stats().segments);
        // Every record still reachable after rolling.
        assert_eq!(s.scan().filter(|r| r.is_ok()).count(), 2000);
        assert_eq!(s.get_by_id(1999).unwrap().id, 1999);
    }

    #[test]
    fn scan_time_ordered_sorts_globally() {
        let mut s = TweetStore::with_segment_bytes(2048);
        // Insert with shuffled timestamps across many hour buckets.
        let mut state = 7u64;
        for i in 0..800u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ts = state % (72 * 3600);
            s.append(&rec(i, i % 9, ts, None));
        }
        let ordered = s.scan_time_ordered();
        assert_eq!(ordered.len(), 800);
        for w in ordered.windows(2) {
            assert!(
                (w[0].timestamp, w[0].id) <= (w[1].timestamp, w[1].id),
                "out of order: {:?} then {:?}",
                (w[0].timestamp, w[0].id),
                (w[1].timestamp, w[1].id)
            );
        }
    }

    #[test]
    fn append_raw_matches_append() {
        let mut a = TweetStore::with_segment_bytes(2048);
        let mut b = TweetStore::with_segment_bytes(2048);
        for i in 0..500 {
            let r = rec(i, i % 5, i * 60, (i % 3 == 0).then_some((37.5, 127.0)));
            a.append(&r);
        }
        // Replay a's raw frames into b: identical stats, indexes, bytes.
        let frames: Vec<Vec<u8>> = a
            .segments()
            .iter()
            .flat_map(|s| (0..s.len() as u32).map(|slot| s.raw(slot).to_vec()))
            .collect();
        for f in &frames {
            b.append_raw(f).unwrap();
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.user_count(), b.user_count());
        for (sa, sb) in a.segments().iter().zip(b.segments().iter()) {
            assert_eq!(sa.zone_map(), sb.zone_map());
            for slot in 0..sa.len() as u32 {
                assert_eq!(sa.raw(slot), sb.raw(slot));
            }
        }
        // Garbage frames are rejected without perturbing the store.
        let before = b.stats();
        assert!(b.append_raw(&[0xFF; 3]).is_err());
        assert_eq!(b.stats(), before);
    }

    #[test]
    fn scan_views_agrees_with_scan() {
        let mut s = TweetStore::with_segment_bytes(1024);
        for i in 0..300 {
            s.append(&rec(
                i,
                i % 7,
                i * 30,
                (i % 4 == 0).then_some((35.1, 129.0)),
            ));
        }
        let full: Vec<TweetRecord> = s.scan().map(|r| r.unwrap()).collect();
        let via_views: Vec<TweetRecord> = s
            .scan_views()
            .map(|v| v.unwrap().to_record().unwrap())
            .collect();
        assert_eq!(full, via_views);
        let headers: Vec<_> = s.scan_headers().map(|h| h.unwrap()).collect();
        assert_eq!(headers, full.iter().map(|r| r.header()).collect::<Vec<_>>());
    }

    #[test]
    fn scan_order_is_append_order() {
        let mut s = TweetStore::with_segment_bytes(1024);
        for i in 0..500 {
            s.append(&rec(i, 0, 0, None));
        }
        let ids: Vec<u64> = s.scan().map(|r| r.unwrap().id).collect();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
    }
}
