//! Property and crash tests for the user-hash-sharded store: scatter-gather
//! query equivalence against a single store across all access paths,
//! placement stability across persist→reload, and independent per-shard
//! torn-tail WAL recovery.

use proptest::prelude::*;
use stir_geoindex::{BBox, Point};
use stir_tweetstore::wal::WalRecovery;
use stir_tweetstore::{
    shard, shard_of, AccessPath, Query, ShardedDurableStore, ShardedStore, TweetRecord, TweetStore,
};

fn record_strategy() -> impl Strategy<Value = TweetRecord> {
    (
        any::<u64>(),
        any::<u32>(),
        0u64..(180 * 86_400),
        prop::option::of((-89.0f64..89.0, -179.0f64..179.0)),
        "\\PC{0,40}",
    )
        .prop_map(|(id, user, timestamp, gps, text)| TweetRecord {
            id,
            user: user as u64,
            timestamp,
            gps: gps.map(|(lat, lon)| Point::new(lat, lon)),
            text,
        })
}

/// Builds the same corpus twice: one single store, one sharded store.
fn build_pair(recs: &[TweetRecord], shards: usize) -> (TweetStore, ShardedStore) {
    let mut single = TweetStore::with_segment_bytes(2048);
    let mut sharded = ShardedStore::with_segment_bytes(shards, 2048);
    for r in recs {
        single.append(r);
        sharded.append(r);
    }
    (single, sharded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_query_equals_single_store_on_every_access_path(
        recs in prop::collection::vec(record_strategy(), 0..80),
        shards_ix in 0usize..4,
        user in 0u64..8,
        t0 in 0u64..86_400u64,
    ) {
        let recs: Vec<TweetRecord> = recs
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.id = i as u64;
                r.user %= 8;
                r
            })
            .collect();
        let shards = [1usize, 2, 7, 16][shards_ix];
        let (single, sharded) = build_pair(&recs, shards);
        // A query carrying every predicate can execute through any of the
        // four single-store access paths; the sharded scatter-gather
        // answer must equal each of them, rows and order alike.
        let q = Query::all()
            .user(user)
            .between(t0, t0 + 12 * 3600)
            .within(BBox::new(30.0, 120.0, 30.9, 120.9));
        let got = sharded.query(&q);
        for path in [
            AccessPath::UserIndex,
            AccessPath::GeoIndex,
            AccessPath::TimeIndex,
            AccessPath::FullScan,
        ] {
            let expected = q.execute_via(&single, path);
            prop_assert_eq!(&got, &expected, "shards={} path {:?} disagrees", shards, path);
        }
        // Unfiltered scatter-gather too: the merge must be total.
        let all_sharded = sharded.query(&Query::all());
        let all_single = Query::all().execute(&single);
        prop_assert_eq!(all_sharded, all_single);
    }

    #[test]
    fn placement_is_stable_across_persist_and_reload(
        recs in prop::collection::vec(record_strategy(), 1..60),
        shards_ix in 0usize..3,
        case in 0u32..1_000_000,
    ) {
        let recs: Vec<TweetRecord> = recs
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.id = i as u64;
                r
            })
            .collect();
        let shards = [2usize, 7, 16][shards_ix];
        let (_, sharded) = build_pair(&recs, shards);
        let dir = std::env::temp_dir().join(format!(
            "stir-shard-prop-{}-{}",
            std::process::id(),
            case
        ));
        let _ = std::fs::remove_dir_all(&dir);
        sharded.save(&dir).unwrap();
        let loaded = ShardedStore::load_with_segment_bytes(&dir, 2048).unwrap();
        prop_assert_eq!(loaded.shard_count(), shards);
        prop_assert_eq!(loaded.len(), sharded.len());
        // Every record sits in the shard its author hashes to, before and
        // after the round trip — appends after reload keep landing where
        // the original store would have put them.
        for store in [&sharded, &loaded] {
            for (i, s) in store.shards().iter().enumerate() {
                for rec in s.scan() {
                    let rec = rec.unwrap();
                    prop_assert_eq!(shard_of(rec.user, shards), i, "user {} misplaced", rec.user);
                }
            }
        }
        let q = Query::all();
        prop_assert_eq!(loaded.query(&q), sharded.query(&q));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn torn_tails_on_multiple_shards_recover_independently() {
    const SHARDS: usize = 4;
    let dir = std::env::temp_dir().join(format!("stir-shard-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let recs: Vec<TweetRecord> = (0..200u64)
        .map(|i| TweetRecord {
            id: i,
            user: i % 23,
            timestamp: i * 60,
            gps: i.is_multiple_of(3).then(|| Point::new(37.5, 127.0)),
            text: format!("tweet {i} with enough text to span a frame"),
        })
        .collect();
    {
        let mut durable = ShardedDurableStore::open(&dir, SHARDS).unwrap();
        for r in &recs {
            durable.append(r).unwrap();
        }
        durable.sync().unwrap();
    }
    // Tear every shard's tail at once — a different number of garbage
    // bytes per shard, simulating simultaneous mid-append crashes.
    let mut clean_lens = Vec::new();
    for i in 0..SHARDS {
        let path = shard::wal_path(&dir, i);
        clean_lens.push(std::fs::metadata(&path).unwrap().len());
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        use std::io::Write;
        let garbage = vec![0xAA; 3 + i];
        f.write_all(&(1000u32).to_le_bytes()).unwrap();
        f.write_all(&garbage).unwrap();
        f.sync_all().unwrap();
    }
    let durable = ShardedDurableStore::open(&dir, SHARDS).unwrap();
    let store = durable.store();
    // Every synced record survived; every shard reports its own recovery
    // with its own truncation count.
    assert_eq!(store.len(), recs.len());
    for (i, rec) in store.recovery().iter().enumerate() {
        let rec = rec.expect("every shard recovered from its log");
        let expected_records = recs
            .iter()
            .filter(|r| shard_of(r.user, SHARDS) == i)
            .count() as u64;
        assert_eq!(
            rec,
            WalRecovery {
                recovered: expected_records,
                truncated_bytes: 4 + 3 + i as u64,
            },
            "shard {i}"
        );
        let path = shard::wal_path(&dir, i);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_lens[i],
            "shard {i} log not truncated back to its synced tail"
        );
    }
    // The recovered store answers exactly like a fresh single store.
    let mut single = TweetStore::new();
    for r in &recs {
        single.append(r);
    }
    assert_eq!(store.query(&Query::all()), Query::all().execute(&single));
    std::fs::remove_dir_all(&dir).ok();
}
