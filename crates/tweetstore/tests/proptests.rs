//! Property tests: codec totality and round trips, segment framing, store
//! queries vs scan, WAL prefix durability.

use proptest::prelude::*;
use stir_geoindex::Point;
use stir_tweetstore::codec::{decode_record, encode_record};
use stir_tweetstore::segment::Segment;
use stir_tweetstore::wal::Wal;
use stir_tweetstore::{Query, TweetRecord, TweetStore};

fn record_strategy() -> impl Strategy<Value = TweetRecord> {
    (
        any::<u64>(),
        any::<u32>(),
        0u64..(180 * 86_400),
        prop::option::of((-89.0f64..89.0, -179.0f64..179.0)),
        "\\PC{0,40}",
    )
        .prop_map(|(id, user, timestamp, gps, text)| TweetRecord {
            id,
            user: user as u64,
            timestamp,
            gps: gps.map(|(lat, lon)| Point::new(lat, lon)),
            text,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip(rec in record_strategy()) {
        let mut buf = Vec::new();
        encode_record(&mut buf, &rec);
        let mut slice = buf.as_slice();
        let back = decode_record(&mut slice).unwrap();
        prop_assert_eq!(back.id, rec.id);
        prop_assert_eq!(back.user, rec.user);
        prop_assert_eq!(back.timestamp, rec.timestamp);
        prop_assert_eq!(&back.text, &rec.text);
        match (back.gps, rec.gps) {
            (Some(a), Some(b)) => {
                prop_assert!((a.lat - b.lat).abs() < 1e-5);
                prop_assert!((a.lon - b.lon).abs() < 1e-5);
            }
            (None, None) => {}
            other => prop_assert!(false, "gps mismatch {:?}", other),
        }
        prop_assert!(slice.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut slice = bytes.as_slice();
        let _ = decode_record(&mut slice);
    }

    #[test]
    fn segment_framing_roundtrip(recs in prop::collection::vec(record_strategy(), 0..40)) {
        let mut seg = Segment::new();
        for r in &recs {
            seg.append(r);
        }
        let framed = seg.to_framed_bytes();
        let back = Segment::from_framed_bytes(&framed).unwrap();
        prop_assert_eq!(back.len(), recs.len());
        for (i, r) in recs.iter().enumerate() {
            let got = back.get(i as u32).unwrap();
            prop_assert_eq!(got.id, r.id);
            prop_assert_eq!(&got.text, &r.text);
        }
    }

    #[test]
    fn store_queries_agree_with_scan(recs in prop::collection::vec(record_strategy(), 0..80), user in 0u64..8, t0 in 0u64..86_400u64) {
        let mut store = TweetStore::with_segment_bytes(2048);
        for (i, r) in recs.iter().enumerate() {
            // Make ids unique and users small so queries hit.
            let mut r = r.clone();
            r.id = i as u64;
            r.user %= 8;
            store.append(&r);
        }
        let t1 = t0 + 6 * 3600;
        let rows = Query::all().user(user).between(t0, t1).execute(&store);
        let expect = store
            .scan()
            .filter_map(|r| r.ok())
            .filter(|r| r.user == user && (t0..t1).contains(&r.timestamp))
            .count();
        prop_assert_eq!(rows.len(), expect);
    }

    #[test]
    fn wal_prefix_durability(recs in prop::collection::vec(record_strategy(), 1..30), cut in 1usize..200) {
        // Whatever prefix of frames survives a tail-chop must recover
        // exactly, in order.
        let path = std::env::temp_dir().join(format!(
            "stir-wal-prop-{}-{}.log",
            std::process::id(),
            cut
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            for (i, r) in recs.iter().enumerate() {
                let mut r = r.clone();
                r.id = i as u64;
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        let keep = full_len.saturating_sub(cut as u64).max(8);
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep).unwrap();
        drop(f);
        let (store, recovered) = Wal::recover(&path).unwrap();
        prop_assert!(recovered <= recs.len() as u64);
        prop_assert_eq!(store.len() as u64, recovered);
        // Recovered records are the exact prefix 0..recovered.
        for i in 0..recovered {
            prop_assert!(store.get_by_id(i).is_some(), "record {} missing", i);
        }
        std::fs::remove_file(&path).ok();
    }
}
