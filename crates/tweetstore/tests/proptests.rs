//! Property tests: codec totality and round trips, segment framing, store
//! queries vs scan, WAL prefix durability, pruned/parallel scan
//! equivalence, and zone-map persistence invariants.

use proptest::prelude::*;
use stir_geoindex::{BBox, Point};
use stir_tweetstore::codec::{decode_record, encode_record};
use stir_tweetstore::segment::{Segment, ZoneMap};
use stir_tweetstore::wal::Wal;
use stir_tweetstore::{
    persist, AccessPath, ColumnSegment, Query, ScanOptions, StoreFormat, TweetRecord, TweetStore,
};

fn record_strategy() -> impl Strategy<Value = TweetRecord> {
    (
        any::<u64>(),
        any::<u32>(),
        0u64..(180 * 86_400),
        prop::option::of((-89.0f64..89.0, -179.0f64..179.0)),
        "\\PC{0,40}",
    )
        .prop_map(|(id, user, timestamp, gps, text)| TweetRecord {
            id,
            user: user as u64,
            timestamp,
            gps: gps.map(|(lat, lon)| Point::new(lat, lon)),
            text,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip(rec in record_strategy()) {
        let mut buf = Vec::new();
        encode_record(&mut buf, &rec);
        let mut slice = buf.as_slice();
        let back = decode_record(&mut slice).unwrap();
        prop_assert_eq!(back.id, rec.id);
        prop_assert_eq!(back.user, rec.user);
        prop_assert_eq!(back.timestamp, rec.timestamp);
        prop_assert_eq!(&back.text, &rec.text);
        match (back.gps, rec.gps) {
            (Some(a), Some(b)) => {
                prop_assert!((a.lat - b.lat).abs() < 1e-5);
                prop_assert!((a.lon - b.lon).abs() < 1e-5);
            }
            (None, None) => {}
            other => prop_assert!(false, "gps mismatch {:?}", other),
        }
        prop_assert!(slice.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut slice = bytes.as_slice();
        let _ = decode_record(&mut slice);
    }

    #[test]
    fn segment_framing_roundtrip(recs in prop::collection::vec(record_strategy(), 0..40)) {
        let mut seg = Segment::new();
        for r in &recs {
            seg.append(r);
        }
        let framed = seg.to_framed_bytes();
        let back = Segment::from_framed_bytes(&framed).unwrap();
        prop_assert_eq!(back.len(), recs.len());
        for (i, r) in recs.iter().enumerate() {
            let got = back.get(i as u32).unwrap();
            prop_assert_eq!(got.id, r.id);
            prop_assert_eq!(&got.text, &r.text);
        }
    }

    #[test]
    fn store_queries_agree_with_scan(recs in prop::collection::vec(record_strategy(), 0..80), user in 0u64..8, t0 in 0u64..86_400u64) {
        let mut store = TweetStore::with_segment_bytes(2048);
        for (i, r) in recs.iter().enumerate() {
            // Make ids unique and users small so queries hit.
            let mut r = r.clone();
            r.id = i as u64;
            r.user %= 8;
            store.append(&r);
        }
        let t1 = t0 + 6 * 3600;
        let rows = Query::all().user(user).between(t0, t1).execute(&store);
        let expect = store
            .scan()
            .filter_map(|r| r.ok())
            .filter(|r| r.user == user && (t0..t1).contains(&r.timestamp))
            .count();
        prop_assert_eq!(rows.len(), expect);
    }

    #[test]
    fn pruned_parallel_scan_equals_naive(
        recs in prop::collection::vec(record_strategy(), 1..60),
        reps in 1usize..80,
        threads in 1usize..8,
        block in 64usize..2048,
        user in prop::option::of(0u64..8),
        t in prop::option::of((0u64..86_400, 1u64..86_400)),
        bbox in prop::option::of((-60.0f64..60.0, -100.0f64..100.0, 0.1f64..1.0, 0.1f64..1.0)),
        gps in prop::option::of(any::<bool>()),
    ) {
        // Tile the generated records so corpora cross the parallel
        // threshold and roll many segments; mostly-increasing timestamps
        // give zone-map pruning real opportunities.
        let mut store = TweetStore::with_segment_bytes(4096);
        let mut id = 0u64;
        for rep in 0..reps as u64 {
            for r in &recs {
                let mut r = r.clone();
                r.id = id;
                r.user %= 8;
                r.timestamp = (r.timestamp + rep * 3_600) % (200 * 86_400);
                store.append(&r);
                id += 1;
            }
        }
        let mut q = Query::all();
        if let Some(u) = user {
            q = q.user(u);
        }
        if let Some((start, len)) = t {
            q = q.between(start, start + len);
        }
        if let Some((lat, lon, dlat, dlon)) = bbox {
            q = q.within(BBox::new(lat, lon, lat + dlat, lon + dlon));
        }
        if let Some(g) = gps {
            q = q.gps(g);
        }
        let naive: Vec<u64> = store
            .scan()
            .filter_map(|r| r.ok())
            .filter(|r| q.matches(r))
            .map(|r| r.id)
            .collect();
        let opts = ScanOptions { threads, block_records: block };
        let (got, m) = q.scan_filtered(&store, &opts, |v| Some(v.header.id));
        prop_assert_eq!(&got, &naive, "parallel threads={} block={}", threads, block);
        let (serial, _) = q.scan_filtered(&store, &ScanOptions::serial(), |v| Some(v.header.id));
        prop_assert_eq!(&serial, &naive, "serial disagrees with naive");
        // Every stored record is accounted for exactly once.
        prop_assert_eq!(
            m.records_pruned + m.headers_decoded + m.records_corrupt,
            m.records_stored
        );
        prop_assert_eq!(m.records_yielded as usize, naive.len());
    }

    #[test]
    fn all_access_paths_return_identical_rows(
        recs in prop::collection::vec(record_strategy(), 0..80),
        user in 0u64..8,
        t0 in 0u64..86_400u64,
    ) {
        // A query with every predicate present can execute through any of
        // the four access paths; all must return the same rows in the same
        // (timestamp, id) order.
        let mut store = TweetStore::with_segment_bytes(2048);
        for (i, r) in recs.iter().enumerate() {
            let mut r = r.clone();
            r.id = i as u64;
            r.user %= 8;
            store.append(&r);
        }
        let q = Query::all()
            .user(user)
            .between(t0, t0 + 12 * 3600)
            .within(BBox::new(30.0, 120.0, 30.9, 120.9));
        let expected = q.execute(&store);
        for path in [
            AccessPath::UserIndex,
            AccessPath::GeoIndex,
            AccessPath::TimeIndex,
            AccessPath::FullScan,
        ] {
            let rows = q.execute_via(&store, path);
            prop_assert_eq!(&rows, &expected, "path {:?} disagrees", path);
        }
    }

    #[test]
    fn zone_maps_survive_persist_roundtrip(
        recs in prop::collection::vec(record_strategy(), 0..120),
        case in 0u32..1_000_000,
    ) {
        let mut store = TweetStore::with_segment_bytes(2048);
        for (i, r) in recs.iter().enumerate() {
            let mut r = r.clone();
            r.id = i as u64;
            store.append(&r);
        }
        let dir = std::env::temp_dir().join(format!(
            "stir-zonemap-prop-{}-{}",
            std::process::id(),
            case
        ));
        let _ = std::fs::remove_dir_all(&dir);
        persist::save(&store, &dir).unwrap();
        let loaded = persist::load_with_segment_bytes(&dir, 2048).unwrap();
        prop_assert_eq!(loaded.stats(), store.stats());
        for (a, b) in store.segments().iter().zip(loaded.segments().iter()) {
            prop_assert_eq!(a.zone_map(), b.zone_map());
            // Loaded zone maps equal an independent recompute.
            let rows = b.as_rows().expect("v1 store is all row segments");
            prop_assert_eq!(*b.zone_map(), ZoneMap::compute(rows).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_torn_tail_zone_maps_match_recompute(
        recs in prop::collection::vec(record_strategy(), 1..40),
        cut in 1usize..300,
    ) {
        // After torn-tail recovery, the rebuilt store's zone maps must
        // equal a from-scratch recompute over the surviving records.
        let path = std::env::temp_dir().join(format!(
            "stir-wal-zone-prop-{}-{}.log",
            std::process::id(),
            cut
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            for (i, r) in recs.iter().enumerate() {
                let mut r = r.clone();
                r.id = i as u64;
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        let keep = full_len.saturating_sub(cut as u64).max(8);
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep).unwrap();
        drop(f);
        let (store, recovered) = Wal::recover(&path).unwrap();
        let mut zone_records = 0u64;
        for seg in store.segments() {
            let rows = seg.as_rows().expect("WAL recovery builds row segments");
            prop_assert_eq!(*seg.zone_map(), ZoneMap::compute(rows).unwrap());
            zone_records += seg.zone_map().records as u64;
        }
        prop_assert_eq!(zone_records, recovered);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn columnar_decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        // Arbitrary bytes must decode to Err — never panic, never allocate
        // proportionally to a hostile length field.
        let _ = ColumnSegment::decode(&bytes);
    }

    #[test]
    fn corrupted_frames_error_never_panic_both_formats(
        recs in prop::collection::vec(record_strategy(), 1..40),
        cut in 1usize..5_000,
        flip in 0usize..5_000,
    ) {
        // Build one sealed segment's bytes in both encodings, then attack
        // each with an arbitrary truncation and an arbitrary bit flip:
        // every strict truncation must decode to Err, and no mutation may
        // panic or OOM. (Checksums make a silently-wrong Ok astronomically
        // unlikely; totality is the property pinned here.)
        let mut seg = Segment::new();
        for (i, r) in recs.iter().enumerate() {
            let mut r = r.clone();
            r.id = i as u64;
            seg.append(&r);
        }
        let row_bytes = seg.to_framed_bytes();
        let col_bytes = ColumnSegment::from_rows(&seg).unwrap().encode();
        for bytes in [&row_bytes[..], &col_bytes[..]] {
            let is_rows = std::ptr::eq(bytes.as_ptr(), row_bytes.as_ptr());
            let decode_ok = |b: &[u8]| {
                if is_rows {
                    Segment::from_framed_bytes(b).is_ok()
                } else {
                    ColumnSegment::decode(b).is_ok()
                }
            };
            let keep = cut % bytes.len();
            prop_assert!(!decode_ok(&bytes[..keep]), "truncation to {} must fail", keep);
            let mut flipped = bytes.to_vec();
            let at = flip % flipped.len();
            flipped[at] ^= 0x01;
            let _ = decode_ok(&flipped); // must not panic either way
        }
    }

    #[test]
    fn query_paths_and_geometries_agree_across_formats(
        recs in prop::collection::vec(record_strategy(), 1..60),
        reps in 1usize..20,
        threads in 1usize..8,
        block in 64usize..2048,
        user in 0u64..8,
        t0 in 0u64..86_400u64,
    ) {
        // The same appends into a v1, a v2, and a mixed store (format
        // switched half-way) must answer every query identically: across
        // stores, across all four access paths, and across arbitrary
        // scan thread/block geometries.
        let n = recs.len() * reps;
        let build = |switch_at: Option<usize>, format| {
            let mut store = TweetStore::with_segment_bytes_and_format(2048, format);
            let mut id = 0u64;
            for rep in 0..reps as u64 {
                for r in &recs {
                    if Some(id as usize) == switch_at {
                        store.set_format(StoreFormat::V2);
                    }
                    let mut r = r.clone();
                    r.id = id;
                    r.user %= 8;
                    r.timestamp = (r.timestamp + rep * 3_600) % (200 * 86_400);
                    store.append(&r);
                    id += 1;
                }
            }
            store
        };
        let v1 = build(None, StoreFormat::V1);
        let v2 = build(None, StoreFormat::V2);
        let mixed = build(Some(n / 2), StoreFormat::V1);
        let q = Query::all()
            .user(user)
            .between(t0, t0 + 12 * 3600)
            .within(BBox::new(30.0, 120.0, 30.9, 120.9));
        let expected = q.execute(&v1);
        for (tag, store) in [("v2", &v2), ("mixed", &mixed)] {
            prop_assert_eq!(&q.execute(store), &expected, "{} execute disagrees", tag);
        }
        for store in [&v1, &v2, &mixed] {
            for path in [
                AccessPath::UserIndex,
                AccessPath::GeoIndex,
                AccessPath::TimeIndex,
                AccessPath::FullScan,
            ] {
                prop_assert_eq!(
                    &q.execute_via(store, path),
                    &expected,
                    "path {:?} disagrees (format {:?})",
                    path,
                    store.format()
                );
            }
        }
        // Scan geometry: parallel filtered scans agree with v1 serial.
        let all = Query::all();
        let opts = ScanOptions { threads, block_records: block };
        let (ref_ids, _) = all.scan_filtered(&v1, &ScanOptions::serial(), |v| Some(v.header.id));
        for store in [&v1, &v2, &mixed] {
            let (ids, _) = all.scan_filtered(store, &opts, |v| Some(v.header.id));
            prop_assert_eq!(&ids, &ref_ids, "scan geometry disagrees (format {:?})", store.format());
        }
    }

    #[test]
    fn wal_prefix_durability(recs in prop::collection::vec(record_strategy(), 1..30), cut in 1usize..200) {
        // Whatever prefix of frames survives a tail-chop must recover
        // exactly, in order.
        let path = std::env::temp_dir().join(format!(
            "stir-wal-prop-{}-{}.log",
            std::process::id(),
            cut
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            for (i, r) in recs.iter().enumerate() {
                let mut r = r.clone();
                r.id = i as u64;
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        let keep = full_len.saturating_sub(cut as u64).max(8);
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep).unwrap();
        drop(f);
        let (store, recovered) = Wal::recover(&path).unwrap();
        prop_assert!(recovered <= recs.len() as u64);
        prop_assert_eq!(store.len() as u64, recovered);
        // Recovered records are the exact prefix 0..recovered.
        for i in 0..recovered {
            prop_assert!(store.get_by_id(i).is_some(), "record {} missing", i);
        }
        std::fs::remove_file(&path).ok();
    }
}
