//! Geohash encoding and decoding (base-32, interleaved bit geohash as used by
//! geohash.org). The tweet store uses geohash prefixes as its spatial
//! secondary-index key, so the operations here are encode, decode-to-cell,
//! neighbour lookup and covering-set computation for a bounding box.

use crate::point::{BBox, Point};

/// The geohash base-32 alphabet (no `a`, `i`, `l`, `o`).
const BASE32: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

/// Maximum supported geohash length. 12 characters ≈ 3.7 cm cells, far below
/// anything this workspace needs.
pub const MAX_PRECISION: usize = 12;

fn base32_index(c: u8) -> Option<u32> {
    BASE32
        .iter()
        .position(|&b| b == c.to_ascii_lowercase())
        .map(|i| i as u32)
}

/// Encodes `p` as a geohash string of `precision` characters.
///
/// # Panics
/// Panics if `precision` is zero or greater than [`MAX_PRECISION`].
pub fn encode(p: Point, precision: usize) -> String {
    assert!(
        (1..=MAX_PRECISION).contains(&precision),
        "bad precision {precision}"
    );
    let mut lat_range = (-90.0f64, 90.0f64);
    let mut lon_range = (-180.0f64, 180.0f64);
    let mut out = String::with_capacity(precision);
    let mut bit = 0usize;
    let mut ch = 0u32;
    let mut even = true; // even bits encode longitude
    while out.len() < precision {
        if even {
            let mid = (lon_range.0 + lon_range.1) / 2.0;
            if p.lon >= mid {
                ch = (ch << 1) | 1;
                lon_range.0 = mid;
            } else {
                ch <<= 1;
                lon_range.1 = mid;
            }
        } else {
            let mid = (lat_range.0 + lat_range.1) / 2.0;
            if p.lat >= mid {
                ch = (ch << 1) | 1;
                lat_range.0 = mid;
            } else {
                ch <<= 1;
                lat_range.1 = mid;
            }
        }
        even = !even;
        bit += 1;
        if bit == 5 {
            out.push(BASE32[ch as usize] as char);
            bit = 0;
            ch = 0;
        }
    }
    out
}

/// Decodes a geohash to the bounding box of its cell.
///
/// Returns `None` for an empty string or any character outside the geohash
/// alphabet.
pub fn decode_bbox(hash: &str) -> Option<BBox> {
    if hash.is_empty() || hash.len() > MAX_PRECISION {
        return None;
    }
    let mut lat_range = (-90.0f64, 90.0f64);
    let mut lon_range = (-180.0f64, 180.0f64);
    let mut even = true;
    for c in hash.bytes() {
        let idx = base32_index(c)?;
        for shift in (0..5).rev() {
            let bit = (idx >> shift) & 1;
            if even {
                let mid = (lon_range.0 + lon_range.1) / 2.0;
                if bit == 1 {
                    lon_range.0 = mid;
                } else {
                    lon_range.1 = mid;
                }
            } else {
                let mid = (lat_range.0 + lat_range.1) / 2.0;
                if bit == 1 {
                    lat_range.0 = mid;
                } else {
                    lat_range.1 = mid;
                }
            }
            even = !even;
        }
    }
    Some(BBox::new(
        lat_range.0,
        lon_range.0,
        lat_range.1,
        lon_range.1,
    ))
}

/// Decodes a geohash to its cell centre.
pub fn decode(hash: &str) -> Option<Point> {
    decode_bbox(hash).map(|b| b.center())
}

/// The eight neighbouring cells of `hash` (N, NE, E, SE, S, SW, W, NW),
/// computed by re-encoding points just outside the cell. Cells at the poles
/// may return fewer than eight distinct neighbours.
pub fn neighbors(hash: &str) -> Vec<String> {
    let Some(b) = decode_bbox(hash) else {
        return Vec::new();
    };
    let precision = hash.len();
    let dlat = b.max_lat - b.min_lat;
    let dlon = b.max_lon - b.min_lon;
    let c = b.center();
    let mut out = Vec::with_capacity(8);
    for (dy, dx) in [
        (1, 0),
        (1, 1),
        (0, 1),
        (-1, 1),
        (-1, 0),
        (-1, -1),
        (0, -1),
        (1, -1),
    ] {
        let lat = c.lat + dy as f64 * dlat;
        let lon = c.lon + dx as f64 * dlon;
        if !(-90.0..=90.0).contains(&lat) {
            continue;
        }
        // Wrap longitude across the antimeridian.
        let lon = if lon > 180.0 {
            lon - 360.0
        } else if lon < -180.0 {
            lon + 360.0
        } else {
            lon
        };
        let h = encode(Point::new(lat, lon), precision);
        if h != hash && !out.contains(&h) {
            out.push(h);
        }
    }
    out
}

/// All geohash cells of `precision` characters that intersect `bbox`.
///
/// Walks the cell lattice row by row starting from the box's south-west
/// corner. The result is capped at `limit` cells; `None` is returned when the
/// box would need more (callers then fall back to a coarser precision or a
/// full scan).
pub fn cover_bbox(bbox: &BBox, precision: usize, limit: usize) -> Option<Vec<String>> {
    let sw = encode(Point::new(bbox.min_lat, bbox.min_lon), precision);
    let cell = decode_bbox(&sw)?;
    let dlat = cell.max_lat - cell.min_lat;
    let dlon = cell.max_lon - cell.min_lon;
    let mut out = Vec::new();
    let mut lat = cell.center().lat;
    while lat <= bbox.max_lat + dlat / 2.0 {
        let mut lon = cell.center().lon;
        while lon <= bbox.max_lon + dlon / 2.0 {
            if out.len() >= limit {
                return None;
            }
            let h = encode(
                Point::new(lat.clamp(-90.0, 90.0), lon.clamp(-180.0, 180.0)),
                precision,
            );
            if !out.contains(&h) {
                out.push(h);
            }
            lon += dlon;
        }
        lat += dlat;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_matches_known_values() {
        // Reference hashes from geohash.org.
        let p = Point::new(57.64911, 10.40744);
        assert_eq!(encode(p, 11), "u4pruydqqvj");
        assert_eq!(encode(Point::new(37.5663, 126.9779), 5), "wydm9");
    }

    #[test]
    fn decode_of_encode_contains_original() {
        let p = Point::new(35.1798, 129.0750);
        for precision in 1..=MAX_PRECISION {
            let h = encode(p, precision);
            let b = decode_bbox(&h).unwrap();
            assert!(b.contains(p), "precision {precision}: {b} missing {p}");
        }
    }

    #[test]
    fn cell_size_shrinks_with_precision() {
        let p = Point::new(37.5, 127.0);
        let mut prev = f64::INFINITY;
        for precision in 1..=8 {
            let area = decode_bbox(&encode(p, precision)).unwrap().area_deg2();
            assert!(area < prev);
            prev = area;
        }
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert!(decode_bbox("").is_none());
        assert!(decode_bbox("abc").is_none()); // 'a' not in alphabet
        assert!(decode_bbox("wydm9wydm9wydm9").is_none()); // too long
    }

    #[test]
    fn decode_is_case_insensitive() {
        assert_eq!(decode_bbox("WYDM9"), decode_bbox("wydm9"));
    }

    #[test]
    fn neighbors_are_adjacent_and_distinct() {
        let h = encode(Point::new(37.5663, 126.9779), 6);
        let ns = neighbors(&h);
        assert_eq!(ns.len(), 8);
        let b = decode_bbox(&h).unwrap();
        for n in &ns {
            let nb = decode_bbox(n).unwrap();
            assert!(b.inflate(1e-9).intersects(&nb), "{n} not adjacent to {h}");
        }
    }

    #[test]
    fn cover_bbox_covers_every_corner() {
        let b = BBox::new(37.4, 126.8, 37.7, 127.2);
        let cells = cover_bbox(&b, 5, 256).unwrap();
        assert!(!cells.is_empty());
        for p in [
            Point::new(b.min_lat, b.min_lon),
            Point::new(b.min_lat, b.max_lon),
            Point::new(b.max_lat, b.min_lon),
            Point::new(b.max_lat, b.max_lon),
            b.center(),
        ] {
            let h = encode(p, 5);
            assert!(cells.contains(&h), "cell {h} for {p} missing from cover");
        }
    }

    #[test]
    fn cover_bbox_respects_limit() {
        let b = BBox::new(33.0, 124.0, 39.0, 132.0);
        assert!(cover_bbox(&b, 7, 16).is_none());
    }
}
