//! The O(n) reference index.
//!
//! Answers the same queries as [`crate::RTree`] and [`crate::GridIndex`] by
//! scanning every item. Property tests use it as the oracle; the benchmarks
//! use it as the baseline the real indexes must beat.

use crate::point::{BBox, Point};
use crate::rtree::Spatial;

/// A linear-scan index over items with bounding boxes.
#[derive(Debug, Clone, Default)]
pub struct BruteForceIndex<T: Spatial> {
    items: Vec<T>,
}

impl<T: Spatial> BruteForceIndex<T> {
    /// An empty index.
    pub fn new() -> Self {
        BruteForceIndex { items: Vec::new() }
    }

    /// Wraps an existing item collection.
    pub fn from_items(items: Vec<T>) -> Self {
        BruteForceIndex { items }
    }

    /// Appends an item.
    pub fn insert(&mut self, item: T) {
        self.items.push(item);
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Access an item by the index returned from queries.
    pub fn get(&self, idx: usize) -> &T {
        &self.items[idx]
    }

    /// Indices of items whose bbox intersects `query`.
    pub fn query_bbox(&self, query: &BBox) -> Vec<usize> {
        (0..self.items.len())
            .filter(|&i| self.items[i].bbox().intersects(query))
            .collect()
    }

    /// Indices of items whose representative point lies inside `query`.
    pub fn query_points_in(&self, query: &BBox) -> Vec<usize> {
        (0..self.items.len())
            .filter(|&i| query.contains(self.items[i].center()))
            .collect()
    }

    /// The `k` items nearest to `query` by [`Point::approx_dist2`],
    /// nearest-first.
    pub fn nearest_k(&self, query: Point, k: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> = self
            .items
            .iter()
            .enumerate()
            .map(|(i, item)| (i, query.approx_dist2(item.center())))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        all.truncate(k);
        all
    }

    /// The nearest item to `query`, if any.
    pub fn nearest(&self, query: Point) -> Option<(usize, f64)> {
        self.nearest_k(query, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_queries() {
        let mut ix = BruteForceIndex::new();
        for (lat, lon) in [(37.0, 127.0), (35.0, 129.0), (33.5, 126.5)] {
            ix.insert(Point::new(lat, lon));
        }
        assert_eq!(ix.len(), 3);
        let q = BBox::new(33.0, 125.0, 38.0, 128.0);
        assert_eq!(ix.query_points_in(&q), vec![0, 2]);
        let (i, _) = ix.nearest(Point::new(35.1, 129.1)).unwrap();
        assert_eq!(i, 1);
        assert_eq!(ix.nearest_k(Point::new(37.0, 127.0), 2).len(), 2);
    }
}
