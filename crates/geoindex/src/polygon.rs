//! Simple ring polygons in latitude/longitude space.
//!
//! The gazetteer uses these for synthetic district footprints: containment
//! tests (ray casting), centroids, planar areas and deterministic interior
//! sampling for the tweet generator.

use crate::point::{BBox, Point};

/// A simple (non-self-intersecting) polygon given by its exterior ring.
///
/// The ring is stored *without* a repeated closing vertex; the edge from the
/// last vertex back to the first is implicit. Vertex order may be clockwise
/// or counter-clockwise.
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
    bbox: BBox,
}

impl Polygon {
    /// Builds a polygon from at least three vertices.
    ///
    /// Returns `None` if fewer than three vertices are supplied.
    pub fn new(vertices: Vec<Point>) -> Option<Self> {
        if vertices.len() < 3 {
            return None;
        }
        let bbox = BBox::from_points(vertices.iter().copied())?;
        Some(Polygon { vertices, bbox })
    }

    /// An axis-aligned rectangle polygon.
    pub fn rect(bbox: BBox) -> Self {
        Polygon::new(vec![
            Point::new(bbox.min_lat, bbox.min_lon),
            Point::new(bbox.min_lat, bbox.max_lon),
            Point::new(bbox.max_lat, bbox.max_lon),
            Point::new(bbox.max_lat, bbox.min_lon),
        ])
        .expect("rectangle always has 4 vertices")
    }

    /// A regular `n`-gon approximating a circle of `radius_km` around
    /// `center`. Used to give districts plausible rounded footprints.
    pub fn regular(center: Point, radius_km: f64, n: usize) -> Option<Self> {
        if n < 3 || radius_km <= 0.0 {
            return None;
        }
        let vertices = (0..n)
            .map(|i| center.destination(360.0 * i as f64 / n as f64, radius_km))
            .collect();
        Polygon::new(vertices)
    }

    /// The exterior ring (no repeated closing vertex).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// The polygon's bounding box (precomputed at construction).
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Ray-casting point-in-polygon test. Points exactly on an edge may land
    /// on either side; district borders are fuzzy in reality too, so callers
    /// must not rely on edge behaviour.
    pub fn contains(&self, p: Point) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            // Cast a ray in +lon direction; count crossings in lat.
            if (vi.lat > p.lat) != (vj.lat > p.lat) {
                let lon_at = vj.lon + (p.lat - vj.lat) / (vi.lat - vj.lat) * (vi.lon - vj.lon);
                if p.lon < lon_at {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Planar (shoelace) centroid. For the small, convex-ish district shapes
    /// used here the planar approximation is well inside the polygon.
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let mut cx = 0.0; // lon
        let mut cy = 0.0; // lat
        let mut a2 = 0.0; // twice signed area
        let mut j = n - 1;
        for i in 0..n {
            let (xi, yi) = (self.vertices[i].lon, self.vertices[i].lat);
            let (xj, yj) = (self.vertices[j].lon, self.vertices[j].lat);
            let cross = xj * yi - xi * yj;
            a2 += cross;
            cx += (xj + xi) * cross;
            cy += (yj + yi) * cross;
            j = i;
        }
        if a2.abs() < 1e-12 {
            // Degenerate: fall back to the vertex mean.
            let inv = 1.0 / n as f64;
            let lat = self.vertices.iter().map(|p| p.lat).sum::<f64>() * inv;
            let lon = self.vertices.iter().map(|p| p.lon).sum::<f64>() * inv;
            return Point::new(lat, lon);
        }
        Point::new(cy / (3.0 * a2), cx / (3.0 * a2))
    }

    /// Absolute shoelace area in squared degrees (planar approximation).
    pub fn area_deg2(&self) -> f64 {
        let n = self.vertices.len();
        let mut a2 = 0.0;
        let mut j = n - 1;
        for i in 0..n {
            a2 += self.vertices[j].lon * self.vertices[i].lat
                - self.vertices[i].lon * self.vertices[j].lat;
            j = i;
        }
        (a2 / 2.0).abs()
    }

    /// Approximate area in km², converting the degree area at the centroid
    /// latitude.
    pub fn area_km2(&self) -> f64 {
        let lat = self.centroid().lat.to_radians();
        const KM_PER_DEG: f64 = 111.195; // mean km per degree of latitude
        self.area_deg2() * KM_PER_DEG * KM_PER_DEG * lat.cos()
    }

    /// Draws a uniformly distributed interior point by rejection sampling in
    /// the bounding box, driven entirely by the caller-supplied uniform
    /// source `uniform01` (called repeatedly). Falls back to the centroid
    /// after 256 rejected candidates (possible only for pathologically thin
    /// polygons).
    pub fn sample_interior<F: FnMut() -> f64>(&self, mut uniform01: F) -> Point {
        for _ in 0..256 {
            let lat = self.bbox.min_lat + uniform01() * (self.bbox.max_lat - self.bbox.min_lat);
            let lon = self.bbox.min_lon + uniform01() * (self.bbox.max_lon - self.bbox.min_lon);
            let p = Point::new(lat, lon);
            if self.contains(p) {
                return p;
            }
        }
        self.centroid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rect(BBox::new(0.0, 0.0, 1.0, 1.0))
    }

    #[test]
    fn rejects_degenerate_rings() {
        assert!(Polygon::new(vec![]).is_none());
        assert!(Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_none());
    }

    #[test]
    fn square_containment() {
        let sq = unit_square();
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(!sq.contains(Point::new(1.5, 0.5)));
        assert!(!sq.contains(Point::new(-0.5, 0.5)));
        assert!(!sq.contains(Point::new(0.5, 2.0)));
    }

    #[test]
    fn concave_polygon_containment() {
        // An L-shape: the notch at the top-right must be outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(1.0, 2.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 1.0),
            Point::new(2.0, 0.0),
        ])
        .unwrap();
        assert!(l.contains(Point::new(0.5, 0.5)));
        assert!(l.contains(Point::new(0.5, 1.5)));
        assert!(l.contains(Point::new(1.5, 0.5)));
        assert!(!l.contains(Point::new(1.5, 1.5)), "notch must be outside");
    }

    #[test]
    fn centroid_of_square_is_center() {
        let c = unit_square().centroid();
        assert!((c.lat - 0.5).abs() < 1e-9 && (c.lon - 0.5).abs() < 1e-9);
    }

    #[test]
    fn area_of_square() {
        assert!((unit_square().area_deg2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regular_polygon_roughly_circle_area() {
        let c = Point::new(37.5, 127.0);
        let poly = Polygon::regular(c, 10.0, 64).unwrap();
        let expected = std::f64::consts::PI * 10.0 * 10.0;
        let got = poly.area_km2();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "area {got} vs {expected}"
        );
        assert!(poly.contains(c));
        let cc = poly.centroid();
        assert!(
            c.haversine_km(cc) < 0.5,
            "centroid drifted {} km",
            c.haversine_km(cc)
        );
    }

    #[test]
    fn sample_interior_is_inside() {
        let poly = Polygon::regular(Point::new(36.0, 128.0), 7.5, 12).unwrap();
        // A deterministic low-discrepancy-ish driver.
        let mut state = 0.12345f64;
        let mut next = move || {
            state = (state * 9301.0 + 0.49297).fract();
            state
        };
        for _ in 0..200 {
            let p = poly.sample_interior(&mut next);
            assert!(poly.contains(p) || p == poly.centroid());
        }
    }
}
