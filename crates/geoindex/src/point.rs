//! Geographic points and bounding boxes on the WGS-84 ellipsoid (treated as a
//! sphere; sub-meter accuracy is irrelevant at district granularity).

use std::fmt;

/// Mean Earth radius in kilometres, used by all haversine computations.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A geographic coordinate: latitude and longitude in decimal degrees.
///
/// Latitude is positive north, longitude positive east. The type is `Copy`
/// and 16 bytes; it is passed by value throughout the workspace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Latitude in degrees, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, in `[-180, 180]`.
    pub lon: f64,
}

impl Point {
    /// Creates a point from latitude/longitude degrees.
    ///
    /// # Panics
    /// Panics in debug builds if the coordinates are outside their valid
    /// ranges or not finite.
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!(lat.is_finite() && lon.is_finite(), "non-finite coordinate");
        debug_assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        debug_assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        Point { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn haversine_km(self, other: Point) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Squared equirectangular distance in *degree* units, latitude-corrected
    /// at this point's latitude.
    ///
    /// Monotone in true distance for nearby points, and much cheaper than
    /// haversine — this is the metric the nearest-neighbour searches order
    /// candidates by before a final haversine pass.
    pub fn approx_dist2(self, other: Point) -> f64 {
        let coslat = self.lat.to_radians().cos();
        let dlat = self.lat - other.lat;
        let dlon = (self.lon - other.lon) * coslat;
        dlat * dlat + dlon * dlon
    }

    /// The destination point after travelling `distance_km` along the initial
    /// `bearing_deg` (clockwise from north) on a great circle.
    pub fn destination(self, bearing_deg: f64, distance_km: f64) -> Point {
        let delta = distance_km / EARTH_RADIUS_KM;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        let lat = lat2.to_degrees().clamp(-90.0, 90.0);
        let mut lon = lon2.to_degrees();
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        Point::new(lat, lon)
    }

    /// The midpoint of the straight segment in lat/lon space (adequate for
    /// the sub-degree spans this workspace deals with).
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.lat + other.lat) / 2.0, (self.lon + other.lon) / 2.0)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.5}, {:.5})", self.lat, self.lon)
    }
}

/// An axis-aligned bounding box in latitude/longitude space.
///
/// Boxes never wrap the antimeridian; all data in this workspace lives well
/// inside one hemisphere (Korea), so wrap handling is deliberately omitted
/// and enforced by debug assertions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BBox {
    /// Southern edge (degrees).
    pub min_lat: f64,
    /// Western edge (degrees).
    pub min_lon: f64,
    /// Northern edge (degrees).
    pub max_lat: f64,
    /// Eastern edge (degrees).
    pub max_lon: f64,
}

impl BBox {
    /// Creates a bounding box; min must not exceed max on either axis.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Self {
        debug_assert!(min_lat <= max_lat, "min_lat {min_lat} > max_lat {max_lat}");
        debug_assert!(min_lon <= max_lon, "min_lon {min_lon} > max_lon {max_lon}");
        BBox {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        }
    }

    /// A degenerate box containing exactly `p`.
    pub fn from_point(p: Point) -> Self {
        BBox::new(p.lat, p.lon, p.lat, p.lon)
    }

    /// The smallest box covering every point in the iterator, or `None` if it
    /// is empty.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = BBox::from_point(first);
        for p in it {
            b.expand_point(p);
        }
        Some(b)
    }

    /// True if `p` lies inside the box (inclusive of edges).
    pub fn contains(&self, p: Point) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// True if the two boxes share any point (inclusive of edges).
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
            && self.min_lon <= other.max_lon
            && self.max_lon >= other.min_lon
    }

    /// True if `other` lies entirely inside this box.
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        self.min_lat <= other.min_lat
            && self.max_lat >= other.max_lat
            && self.min_lon <= other.min_lon
            && self.max_lon >= other.max_lon
    }

    /// Grows the box in place so it covers `p`.
    pub fn expand_point(&mut self, p: Point) {
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lat = self.max_lat.max(p.lat);
        self.min_lon = self.min_lon.min(p.lon);
        self.max_lon = self.max_lon.max(p.lon);
    }

    /// Grows the box in place so it covers `other`.
    pub fn expand_bbox(&mut self, other: &BBox) {
        self.min_lat = self.min_lat.min(other.min_lat);
        self.max_lat = self.max_lat.max(other.max_lat);
        self.min_lon = self.min_lon.min(other.min_lon);
        self.max_lon = self.max_lon.max(other.max_lon);
    }

    /// The union of the two boxes, without mutating either.
    pub fn union(&self, other: &BBox) -> BBox {
        let mut b = *self;
        b.expand_bbox(other);
        b
    }

    /// The geometric centre of the box.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Area in squared degrees — a cheap proxy used by the R-tree split
    /// heuristics, *not* a surface area.
    pub fn area_deg2(&self) -> f64 {
        (self.max_lat - self.min_lat) * (self.max_lon - self.min_lon)
    }

    /// Half-perimeter in degrees (the R-tree "margin" metric).
    pub fn margin_deg(&self) -> f64 {
        (self.max_lat - self.min_lat) + (self.max_lon - self.min_lon)
    }

    /// How much `area_deg2` would grow if the box were expanded to cover
    /// `other`.
    pub fn enlargement(&self, other: &BBox) -> f64 {
        self.union(other).area_deg2() - self.area_deg2()
    }

    /// The box expanded by `margin_deg` degrees on every side (clamped to the
    /// valid coordinate ranges).
    pub fn inflate(&self, margin_deg: f64) -> BBox {
        BBox::new(
            (self.min_lat - margin_deg).max(-90.0),
            (self.min_lon - margin_deg).max(-180.0),
            (self.max_lat + margin_deg).min(90.0),
            (self.max_lon + margin_deg).min(180.0),
        )
    }

    /// Minimum squared equirectangular distance (degree units) from `p` to
    /// the box; zero when `p` is inside. Uses the latitude correction of `p`.
    pub fn min_dist2(&self, p: Point) -> f64 {
        let clamped = Point {
            lat: p.lat.clamp(self.min_lat, self.max_lat),
            lon: p.lon.clamp(self.min_lon, self.max_lon),
        };
        p.approx_dist2(clamped)
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.4},{:.4} .. {:.4},{:.4}]",
            self.min_lat, self.min_lon, self.max_lat, self.max_lon
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEOUL_CITY_HALL: Point = Point {
        lat: 37.5663,
        lon: 126.9779,
    };
    const BUSAN_CITY_HALL: Point = Point {
        lat: 35.1798,
        lon: 129.0750,
    };

    #[test]
    fn haversine_seoul_busan_is_about_325km() {
        let d = SEOUL_CITY_HALL.haversine_km(BUSAN_CITY_HALL);
        assert!((315.0..335.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_is_symmetric_and_zero_on_self() {
        let a = SEOUL_CITY_HALL.haversine_km(BUSAN_CITY_HALL);
        let b = BUSAN_CITY_HALL.haversine_km(SEOUL_CITY_HALL);
        assert!((a - b).abs() < 1e-9);
        assert_eq!(SEOUL_CITY_HALL.haversine_km(SEOUL_CITY_HALL), 0.0);
    }

    #[test]
    fn destination_roundtrip() {
        let p = SEOUL_CITY_HALL.destination(90.0, 10.0);
        let d = SEOUL_CITY_HALL.haversine_km(p);
        assert!((d - 10.0).abs() < 1e-6, "distance after travel was {d}");
        assert!(
            p.lon > SEOUL_CITY_HALL.lon,
            "eastward travel must increase longitude"
        );
    }

    #[test]
    fn destination_longitude_normalized() {
        let near_antimeridian = Point::new(0.0, 179.9);
        let p = near_antimeridian.destination(90.0, 100.0);
        assert!((-180.0..=180.0).contains(&p.lon));
    }

    #[test]
    fn approx_dist2_orders_like_haversine_nearby() {
        let a = Point::new(37.50, 127.00);
        let b = Point::new(37.52, 127.05);
        let c = Point::new(37.80, 127.30);
        assert!(SEOUL_CITY_HALL.approx_dist2(a) < SEOUL_CITY_HALL.approx_dist2(c));
        assert!(SEOUL_CITY_HALL.approx_dist2(b) < SEOUL_CITY_HALL.approx_dist2(c));
    }

    #[test]
    fn bbox_contains_and_intersects() {
        let b = BBox::new(37.0, 126.0, 38.0, 128.0);
        assert!(b.contains(SEOUL_CITY_HALL));
        assert!(!b.contains(BUSAN_CITY_HALL));
        assert!(b.intersects(&BBox::new(37.5, 127.5, 39.0, 129.0)));
        assert!(!b.intersects(&BBox::new(34.0, 126.0, 36.0, 130.0)));
        // Edge touching counts as intersecting.
        assert!(b.intersects(&BBox::new(38.0, 128.0, 39.0, 129.0)));
    }

    #[test]
    fn bbox_from_points_covers_all() {
        let pts = [SEOUL_CITY_HALL, BUSAN_CITY_HALL, Point::new(33.5, 126.5)];
        let b = BBox::from_points(pts).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(BBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn bbox_union_and_enlargement() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let c = BBox::new(2.0, 2.0, 3.0, 3.0);
        let u = a.union(&c);
        assert!(u.contains_bbox(&a) && u.contains_bbox(&c));
        assert!((a.enlargement(&c) - (9.0 - 1.0)).abs() < 1e-12);
        assert_eq!(a.enlargement(&BBox::new(0.2, 0.2, 0.8, 0.8)), 0.0);
    }

    #[test]
    fn bbox_min_dist2_zero_inside_positive_outside() {
        let b = BBox::new(37.0, 126.0, 38.0, 128.0);
        assert_eq!(b.min_dist2(SEOUL_CITY_HALL), 0.0);
        assert!(b.min_dist2(BUSAN_CITY_HALL) > 0.0);
    }

    #[test]
    fn bbox_center_and_margin() {
        let b = BBox::new(10.0, 20.0, 12.0, 26.0);
        assert_eq!(b.center(), Point::new(11.0, 23.0));
        assert!((b.margin_deg() - 8.0).abs() < 1e-12);
        assert!((b.area_deg2() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn inflate_clamps_to_valid_ranges() {
        let b = BBox::new(89.0, 179.0, 90.0, 180.0).inflate(5.0);
        assert!(b.max_lat <= 90.0 && b.max_lon <= 180.0);
    }
}
