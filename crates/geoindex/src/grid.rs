//! A uniform grid index over a fixed bounding box.
//!
//! Simpler than the R-tree and very fast when the data distribution is known
//! in advance (the Korean gazetteer covers a fixed extent). Kept both as a
//! production option for the reverse geocoder and as a comparison structure
//! in the benchmarks.

use crate::point::{BBox, Point};
use crate::rtree::Spatial;

/// A uniform grid of `cols × rows` cells covering `extent`. Items are binned
/// by their representative point; items outside the extent are clamped to the
/// border cells.
#[derive(Debug, Clone)]
pub struct GridIndex<T: Spatial> {
    extent: BBox,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<usize>>,
    items: Vec<T>,
}

impl<T: Spatial> GridIndex<T> {
    /// Builds a grid index with the given resolution.
    ///
    /// # Panics
    /// Panics if `cols` or `rows` is zero.
    pub fn new(extent: BBox, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        GridIndex {
            extent,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            items: Vec::new(),
        }
    }

    /// Builds a grid sized so the average cell holds roughly
    /// `target_per_cell` items, then inserts all of `items`.
    pub fn with_items(extent: BBox, items: Vec<T>, target_per_cell: usize) -> Self {
        let n_cells = (items.len() / target_per_cell.max(1)).max(1);
        let side = (n_cells as f64).sqrt().ceil() as usize;
        let mut g = GridIndex::new(extent, side.max(1), side.max(1));
        for item in items {
            g.insert(item);
        }
        g
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let fx = (p.lon - self.extent.min_lon) / (self.extent.max_lon - self.extent.min_lon);
        let fy = (p.lat - self.extent.min_lat) / (self.extent.max_lat - self.extent.min_lat);
        let cx = ((fx * self.cols as f64) as isize).clamp(0, self.cols as isize - 1) as usize;
        let cy = ((fy * self.rows as f64) as isize).clamp(0, self.rows as isize - 1) as usize;
        (cx, cy)
    }

    fn cell_index(&self, cx: usize, cy: usize) -> usize {
        cy * self.cols + cx
    }

    /// Inserts an item, binned by its representative point.
    pub fn insert(&mut self, item: T) {
        let (cx, cy) = self.cell_of(item.center());
        let idx = self.items.len();
        self.items.push(item);
        let cell = self.cell_index(cx, cy);
        self.cells[cell].push(idx);
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Access an item by the index returned from queries.
    pub fn get(&self, idx: usize) -> &T {
        &self.items[idx]
    }

    /// Indices of items whose representative point lies inside `query`.
    pub fn query_points_in(&self, query: &BBox) -> Vec<usize> {
        let mut out = Vec::new();
        if self.items.is_empty() || !query.intersects(&self.extent) {
            return out;
        }
        let (cx0, cy0) = self.cell_of(Point::new(query.min_lat, query.min_lon));
        let (cx1, cy1) = self.cell_of(Point::new(query.max_lat, query.max_lon));
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &i in &self.cells[self.cell_index(cx, cy)] {
                    if query.contains(self.items[i].center()) {
                        out.push(i);
                    }
                }
            }
        }
        out
    }

    /// Nearest item to `query` by [`Point::approx_dist2`], searching cells in
    /// expanding rings around the query cell and stopping once the ring's
    /// minimum possible distance exceeds the best hit.
    pub fn nearest(&self, query: Point) -> Option<(usize, f64)> {
        if self.items.is_empty() {
            return None;
        }
        let (qcx, qcy) = self.cell_of(query);
        let cell_w = (self.extent.max_lon - self.extent.min_lon) / self.cols as f64;
        let cell_h = (self.extent.max_lat - self.extent.min_lat) / self.rows as f64;
        let coslat = query.lat.to_radians().cos();
        // Conservative lower bound for the distance to any cell `ring` steps
        // away: (ring - 1) whole cells on the shorter axis.
        let cell_min = (cell_h).min(cell_w * coslat).max(1e-9);

        let mut best: Option<(usize, f64)> = None;
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            if let Some((_, bd2)) = best {
                let ring_min = (ring.saturating_sub(1)) as f64 * cell_min;
                if ring_min * ring_min > bd2 {
                    break;
                }
            }
            let mut any_cell = false;
            for (cx, cy) in ring_cells(qcx, qcy, ring, self.cols, self.rows) {
                any_cell = true;
                for &i in &self.cells[self.cell_index(cx, cy)] {
                    let d2 = query.approx_dist2(self.items[i].center());
                    if best.is_none_or(|(_, bd2)| d2 < bd2) {
                        best = Some((i, d2));
                    }
                }
            }
            if !any_cell && best.is_some() {
                break;
            }
        }
        best
    }
}

/// Yields the in-bounds cells forming the square ring at Chebyshev distance
/// `ring` around `(cx, cy)`.
fn ring_cells(
    cx: usize,
    cy: usize,
    ring: usize,
    cols: usize,
    rows: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let (cx, cy, r) = (cx as isize, cy as isize, ring as isize);
    let (cols, rows) = (cols as isize, rows as isize);
    let mut cells = Vec::new();
    if ring == 0 {
        cells.push((cx, cy));
    } else {
        for dx in -r..=r {
            cells.push((cx + dx, cy - r));
            cells.push((cx + dx, cy + r));
        }
        for dy in (-r + 1)..r {
            cells.push((cx - r, cy + dy));
            cells.push((cx + r, cy + dy));
        }
    }
    cells
        .into_iter()
        .filter(move |&(x, y)| x >= 0 && y >= 0 && x < cols && y < rows)
        .map(|(x, y)| (x as usize, y as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(33.0, 124.0, 39.0, 132.0)
    }

    fn cloud(n: usize) -> Vec<Point> {
        let mut state: u64 = 0xDEADBEEFCAFE;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(33.0 + next() * 6.0, 124.0 + next() * 8.0))
            .collect()
    }

    #[test]
    fn empty_grid() {
        let g: GridIndex<Point> = GridIndex::new(extent(), 4, 4);
        assert!(g.is_empty());
        assert!(g.nearest(Point::new(36.0, 127.0)).is_none());
        assert!(g.query_points_in(&extent()).is_empty());
    }

    #[test]
    fn query_matches_scan() {
        let pts = cloud(600);
        let g = GridIndex::with_items(extent(), pts.clone(), 8);
        let q = BBox::new(35.0, 126.0, 37.0, 129.0);
        let mut got = g.query_points_in(&q);
        got.sort_unstable();
        let mut expect: Vec<usize> = (0..pts.len()).filter(|&i| q.contains(pts[i])).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = cloud(400);
        let g = GridIndex::with_items(extent(), pts.clone(), 4);
        for &q in &[
            Point::new(36.5, 127.3),
            Point::new(33.0, 124.0),
            Point::new(38.99, 131.99),
            Point::new(40.0, 120.0), // outside the extent
        ] {
            let (gi, _) = g.nearest(q).unwrap();
            let bi = (0..pts.len())
                .min_by(|&a, &b| {
                    q.approx_dist2(pts[a])
                        .partial_cmp(&q.approx_dist2(pts[b]))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(
                q.approx_dist2(pts[gi]),
                q.approx_dist2(pts[bi]),
                "grid nearest disagreed with scan for {q}"
            );
        }
    }

    #[test]
    fn items_outside_extent_are_clamped_but_findable() {
        let mut g: GridIndex<Point> = GridIndex::new(extent(), 8, 8);
        let outside = Point::new(50.0, 100.0);
        g.insert(outside);
        let (i, _) = g.nearest(Point::new(38.0, 125.0)).unwrap();
        assert_eq!(*g.get(i), outside);
    }

    #[test]
    fn ring_cells_cover_square() {
        let cells: Vec<_> = ring_cells(2, 2, 1, 5, 5).collect();
        assert_eq!(cells.len(), 8);
        let cells0: Vec<_> = ring_cells(2, 2, 0, 5, 5).collect();
        assert_eq!(cells0, vec![(2, 2)]);
        // Ring partially off-grid is clipped.
        let clipped: Vec<_> = ring_cells(0, 0, 1, 5, 5).collect();
        assert_eq!(clipped.len(), 3);
    }
}
