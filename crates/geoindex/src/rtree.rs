//! An R-tree over items with bounding boxes.
//!
//! Supports Sort-Tile-Recursive (STR) bulk loading, incremental insertion
//! with quadratic node splitting, bounding-box queries and best-first
//! k-nearest-neighbour search.
//!
//! Nearest-neighbour distances use [`Point::approx_dist2`] — the
//! latitude-corrected equirectangular metric anchored at the query point —
//! which orders candidates identically to true geodesic distance at the
//! sub-degree scales this workspace operates on, and identically to the
//! [`crate::BruteForceIndex`] oracle at any scale.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::point::{BBox, Point};

/// Items indexable by an [`RTree`] expose a bounding box and a representative
/// point (the bbox centre by default) used for nearest-neighbour ranking.
pub trait Spatial {
    /// The item's bounding box.
    fn bbox(&self) -> BBox;
    /// Representative point for distance ranking.
    fn center(&self) -> Point {
        self.bbox().center()
    }
}

impl Spatial for Point {
    fn bbox(&self) -> BBox {
        BBox::from_point(*self)
    }
    fn center(&self) -> Point {
        *self
    }
}

impl Spatial for BBox {
    fn bbox(&self) -> BBox {
        *self
    }
}

impl<T: Spatial> Spatial for (T, usize) {
    fn bbox(&self) -> BBox {
        self.0.bbox()
    }
    fn center(&self) -> Point {
        self.0.center()
    }
}

/// Maximum entries per node.
const MAX_ENTRIES: usize = 16;
/// Minimum entries per node after a split (40% of max).
const MIN_ENTRIES: usize = 6;

#[derive(Debug, Clone)]
struct Entry {
    bbox: BBox,
    /// Child node index for internal nodes, item index for leaves.
    child: usize,
}

#[derive(Debug, Clone)]
struct Node {
    leaf: bool,
    entries: Vec<Entry>,
}

impl Node {
    fn bbox(&self) -> BBox {
        let mut it = self.entries.iter();
        let first = it.next().expect("nodes are never empty").bbox;
        it.fold(first, |acc, e| acc.union(&e.bbox))
    }
}

/// An R-tree spatial index. See the module docs for the feature set.
#[derive(Debug, Clone)]
pub struct RTree<T: Spatial> {
    items: Vec<T>,
    nodes: Vec<Node>,
    root: Option<usize>,
    height: usize,
}

impl<T: Spatial> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Spatial> RTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        RTree {
            items: Vec::new(),
            nodes: Vec::new(),
            root: None,
            height: 0,
        }
    }

    /// Bulk-loads `items` with the STR packing algorithm: sort by longitude,
    /// tile into vertical slices, sort each slice by latitude, pack leaves,
    /// and repeat upward. Produces a well-filled tree in O(n log n).
    pub fn bulk_load(items: Vec<T>) -> Self {
        if items.is_empty() {
            return Self::new();
        }
        let mut tree = RTree {
            items,
            nodes: Vec::new(),
            root: None,
            height: 1,
        };

        // Pack leaves.
        let mut order: Vec<usize> = (0..tree.items.len()).collect();
        order.sort_by(|&a, &b| {
            tree.items[a]
                .center()
                .lon
                .partial_cmp(&tree.items[b].center().lon)
                .unwrap_or(Ordering::Equal)
        });
        let n_leaves = tree.items.len().div_ceil(MAX_ENTRIES);
        let n_slices = (n_leaves as f64).sqrt().ceil() as usize;
        let slice_len = tree.items.len().div_ceil(n_slices.max(1));
        let mut level: Vec<usize> = Vec::with_capacity(n_leaves);
        for slice in order.chunks(slice_len.max(1)) {
            let mut slice: Vec<usize> = slice.to_vec();
            slice.sort_by(|&a, &b| {
                tree.items[a]
                    .center()
                    .lat
                    .partial_cmp(&tree.items[b].center().lat)
                    .unwrap_or(Ordering::Equal)
            });
            for leaf_items in slice.chunks(MAX_ENTRIES) {
                let entries = leaf_items
                    .iter()
                    .map(|&i| Entry {
                        bbox: tree.items[i].bbox(),
                        child: i,
                    })
                    .collect();
                tree.nodes.push(Node {
                    leaf: true,
                    entries,
                });
                level.push(tree.nodes.len() - 1);
            }
        }

        // Pack internal levels until a single root remains.
        while level.len() > 1 {
            let mut parents = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            level.sort_by(|&a, &b| {
                let ca = tree.nodes[a].bbox().center();
                let cb = tree.nodes[b].bbox().center();
                ca.lon.partial_cmp(&cb.lon).unwrap_or(Ordering::Equal)
            });
            for group in level.chunks(MAX_ENTRIES) {
                let entries = group
                    .iter()
                    .map(|&n| Entry {
                        bbox: tree.nodes[n].bbox(),
                        child: n,
                    })
                    .collect();
                tree.nodes.push(Node {
                    leaf: false,
                    entries,
                });
                parents.push(tree.nodes.len() - 1);
            }
            level = parents;
            tree.height += 1;
        }
        tree.root = Some(level[0]);
        tree
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Tree height in levels (0 for an empty tree, 1 for a single leaf root).
    pub fn height(&self) -> usize {
        if self.root.is_some() {
            self.height
        } else {
            0
        }
    }

    /// Access an item by the index returned from queries.
    pub fn get(&self, idx: usize) -> &T {
        &self.items[idx]
    }

    /// Iterates over all items in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Inserts an item, splitting overflowing nodes quadratically.
    pub fn insert(&mut self, item: T) {
        let bbox = item.bbox();
        let item_idx = self.items.len();
        self.items.push(item);

        let Some(root) = self.root else {
            self.nodes.push(Node {
                leaf: true,
                entries: vec![Entry {
                    bbox,
                    child: item_idx,
                }],
            });
            self.root = Some(self.nodes.len() - 1);
            self.height = 1;
            return;
        };

        // Descend to the best leaf, remembering the path.
        let mut path = Vec::with_capacity(self.height);
        let mut node = root;
        while !self.nodes[node].leaf {
            let best = self.nodes[node]
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ea = a.bbox.enlargement(&bbox);
                    let eb = b.bbox.enlargement(&bbox);
                    ea.partial_cmp(&eb)
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| {
                            a.bbox
                                .area_deg2()
                                .partial_cmp(&b.bbox.area_deg2())
                                .unwrap_or(Ordering::Equal)
                        })
                })
                .map(|(i, _)| i)
                .expect("internal nodes are never empty");
            path.push((node, best));
            node = self.nodes[node].entries[best].child;
        }

        self.nodes[node].entries.push(Entry {
            bbox,
            child: item_idx,
        });

        // Split upward as needed, adjusting ancestor bboxes along the way.
        let mut split = if self.nodes[node].entries.len() > MAX_ENTRIES {
            Some(self.split_node(node))
        } else {
            None
        };
        for (parent, entry_idx) in path.into_iter().rev() {
            let child = self.nodes[parent].entries[entry_idx].child;
            self.nodes[parent].entries[entry_idx].bbox = self.nodes[child].bbox();
            if let Some(new_node) = split.take() {
                let nb = self.nodes[new_node].bbox();
                self.nodes[parent].entries.push(Entry {
                    bbox: nb,
                    child: new_node,
                });
                if self.nodes[parent].entries.len() > MAX_ENTRIES {
                    split = Some(self.split_node(parent));
                }
            }
        }
        if let Some(new_node) = split {
            // Root itself split: grow the tree by one level.
            let old_root = self.root.unwrap();
            let entries = vec![
                Entry {
                    bbox: self.nodes[old_root].bbox(),
                    child: old_root,
                },
                Entry {
                    bbox: self.nodes[new_node].bbox(),
                    child: new_node,
                },
            ];
            self.nodes.push(Node {
                leaf: false,
                entries,
            });
            self.root = Some(self.nodes.len() - 1);
            self.height += 1;
        }
    }

    /// Quadratic split of an overflowing node; returns the new sibling's
    /// node index.
    fn split_node(&mut self, node: usize) -> usize {
        let leaf = self.nodes[node].leaf;
        let entries = std::mem::take(&mut self.nodes[node].entries);

        // Pick the two seeds wasting the most area if grouped together.
        let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                let waste = entries[i].bbox.union(&entries[j].bbox).area_deg2()
                    - entries[i].bbox.area_deg2()
                    - entries[j].bbox.area_deg2();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }

        let mut g1: Vec<Entry> = Vec::with_capacity(entries.len());
        let mut g2: Vec<Entry> = Vec::with_capacity(entries.len());
        let mut b1 = entries[s1].bbox;
        let mut b2 = entries[s2].bbox;
        let mut rest: Vec<Entry> = Vec::with_capacity(entries.len());
        for (i, e) in entries.into_iter().enumerate() {
            if i == s1 {
                g1.push(e);
            } else if i == s2 {
                g2.push(e);
            } else {
                rest.push(e);
            }
        }
        let total = rest.len() + 2;
        for e in rest {
            // Honour the minimum fill requirement first.
            if g1.len() + 1 + (total - g1.len() - g2.len() - 1) <= MIN_ENTRIES + 1
                && g1.len() < MIN_ENTRIES
            {
                b1.expand_bbox(&e.bbox);
                g1.push(e);
                continue;
            }
            if g2.len() + 1 + (total - g1.len() - g2.len() - 1) <= MIN_ENTRIES + 1
                && g2.len() < MIN_ENTRIES
            {
                b2.expand_bbox(&e.bbox);
                g2.push(e);
                continue;
            }
            let e1 = b1.enlargement(&e.bbox);
            let e2 = b2.enlargement(&e.bbox);
            if e1 < e2 || (e1 == e2 && g1.len() <= g2.len()) {
                b1.expand_bbox(&e.bbox);
                g1.push(e);
            } else {
                b2.expand_bbox(&e.bbox);
                g2.push(e);
            }
        }

        self.nodes[node].entries = g1;
        self.nodes.push(Node { leaf, entries: g2 });
        self.nodes.len() - 1
    }

    /// Returns the indices of all items whose bbox intersects `query`.
    pub fn query_bbox(&self, query: &BBox) -> Vec<usize> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            for e in &node.entries {
                if e.bbox.intersects(query) {
                    if node.leaf {
                        out.push(e.child);
                    } else {
                        stack.push(e.child);
                    }
                }
            }
        }
        out
    }

    /// Returns the indices of all items whose *center* lies inside `query`.
    pub fn query_points_in(&self, query: &BBox) -> Vec<usize> {
        self.query_bbox(query)
            .into_iter()
            .filter(|&i| query.contains(self.items[i].center()))
            .collect()
    }

    /// Best-first k-nearest-neighbour search by the approximate metric (see
    /// the module docs). Returns up to `k` `(item index, approx_dist2)`
    /// pairs sorted nearest-first.
    pub fn nearest_k(&self, query: Point, k: usize) -> Vec<(usize, f64)> {
        #[derive(PartialEq)]
        struct Cand {
            dist2: f64,
            /// `Some(node)` for nodes, `None` for items.
            node: Option<usize>,
            item: usize,
        }
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reversed: BinaryHeap is a max-heap, we need min-first.
                other
                    .dist2
                    .partial_cmp(&self.dist2)
                    .unwrap_or(Ordering::Equal)
            }
        }

        let mut out = Vec::with_capacity(k);
        let Some(root) = self.root else { return out };
        if k == 0 {
            return out;
        }
        let mut heap = BinaryHeap::new();
        heap.push(Cand {
            dist2: 0.0,
            node: Some(root),
            item: 0,
        });
        while let Some(c) = heap.pop() {
            match c.node {
                Some(n) => {
                    let node = &self.nodes[n];
                    for e in &node.entries {
                        let d = e.bbox.min_dist2(query);
                        if node.leaf {
                            // Rank items by their representative point.
                            let dc = query.approx_dist2(self.items[e.child].center());
                            heap.push(Cand {
                                dist2: dc.max(d),
                                node: None,
                                item: e.child,
                            });
                        } else {
                            heap.push(Cand {
                                dist2: d,
                                node: Some(e.child),
                                item: 0,
                            });
                        }
                    }
                }
                None => {
                    out.push((c.item, c.dist2));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }

    /// The single nearest item to `query`, if any.
    pub fn nearest(&self, query: Point) -> Option<(usize, f64)> {
        self.nearest_k(query, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon)
    }

    /// A deterministic pseudo-random point cloud over Korea-ish bounds.
    fn cloud(n: usize) -> Vec<Point> {
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| pt(33.0 + next() * 6.0, 124.0 + next() * 8.0))
            .collect()
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: RTree<Point> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.query_bbox(&BBox::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.nearest(pt(0.0, 0.0)).is_none());
        let t2: RTree<Point> = RTree::bulk_load(vec![]);
        assert!(t2.is_empty());
    }

    #[test]
    fn bulk_load_indexes_everything() {
        let pts = cloud(1000);
        let t = RTree::bulk_load(pts.clone());
        assert_eq!(t.len(), 1000);
        let all = t.query_bbox(&BBox::new(-90.0, -180.0, 90.0, 180.0));
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn bulk_load_query_matches_scan() {
        let pts = cloud(500);
        let t = RTree::bulk_load(pts.clone());
        let q = BBox::new(35.0, 126.0, 37.0, 129.0);
        let mut got = t.query_points_in(&q);
        got.sort_unstable();
        let mut expect: Vec<usize> = (0..pts.len()).filter(|&i| q.contains(pts[i])).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert!(!expect.is_empty(), "query region should not be empty");
    }

    #[test]
    fn insert_query_matches_scan() {
        let pts = cloud(400);
        let mut t = RTree::new();
        for p in &pts {
            t.insert(*p);
        }
        assert_eq!(t.len(), 400);
        let q = BBox::new(34.0, 125.0, 36.0, 127.5);
        let mut got = t.query_points_in(&q);
        got.sort_unstable();
        let mut expect: Vec<usize> = (0..pts.len()).filter(|&i| q.contains(pts[i])).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn nearest_k_matches_brute_force() {
        let pts = cloud(300);
        let t = RTree::bulk_load(pts.clone());
        for &q in &[pt(37.5, 127.0), pt(33.2, 124.1), pt(38.9, 131.9)] {
            let got = t.nearest_k(q, 10);
            let mut expect: Vec<(usize, f64)> = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, q.approx_dist2(*p)))
                .collect();
            expect.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            expect.truncate(10);
            let got_ids: Vec<usize> = got.iter().map(|&(i, _)| i).collect();
            let exp_ids: Vec<usize> = expect.iter().map(|&(i, _)| i).collect();
            assert_eq!(got_ids, exp_ids);
        }
    }

    #[test]
    fn nearest_k_after_inserts_matches_brute_force() {
        let pts = cloud(250);
        let mut t = RTree::new();
        for p in &pts {
            t.insert(*p);
        }
        let q = pt(36.3, 127.4);
        let got: Vec<usize> = t.nearest_k(q, 5).into_iter().map(|(i, _)| i).collect();
        let mut expect: Vec<(usize, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i, q.approx_dist2(*p)))
            .collect();
        expect.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let exp_ids: Vec<usize> = expect.iter().take(5).map(|&(i, _)| i).collect();
        assert_eq!(got, exp_ids);
    }

    #[test]
    fn nearest_k_truncates_to_len() {
        let t = RTree::bulk_load(cloud(3));
        assert_eq!(t.nearest_k(pt(36.0, 127.0), 10).len(), 3);
        assert!(t.nearest_k(pt(36.0, 127.0), 0).is_empty());
    }

    #[test]
    fn height_grows_logarithmically() {
        let t = RTree::bulk_load(cloud(2000));
        assert!(t.height() >= 2 && t.height() <= 5, "height {}", t.height());
        let mut t2 = RTree::new();
        for p in cloud(2000) {
            t2.insert(p);
        }
        assert!(t2.height() <= 7, "insert-built height {}", t2.height());
    }

    #[test]
    fn duplicate_points_are_all_retained() {
        let p = pt(37.0, 127.0);
        let mut t = RTree::new();
        for _ in 0..50 {
            t.insert(p);
        }
        assert_eq!(
            t.query_points_in(&BBox::from_point(p).inflate(0.001)).len(),
            50
        );
    }
}
