//! A 2-d k-d tree over points.
//!
//! Complements the R-tree (arbitrary bboxed items, incremental insert) and
//! the grid (fixed extent): the k-d tree is the classic static structure
//! for pure point sets — median-split build, O(log n) expected nearest
//! neighbour — and gives the benchmarks a third real competitor.
//!
//! Distances use the same latitude-corrected equirectangular metric as the
//! rest of the crate ([`Point::approx_dist2`]), so all indexes agree with
//! the brute-force oracle.

use crate::point::{BBox, Point};

/// Implicit-layout k-d tree: node `i` has children `2i+1`, `2i+2`.
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Node points in heap order; `None` marks holes past the frontier.
    nodes: Vec<Option<(Point, u32)>>,
    len: usize,
}

impl KdTree {
    /// Builds from a point set; original indices are preserved in results.
    pub fn build(points: Vec<Point>) -> Self {
        let len = points.len();
        if len == 0 {
            return KdTree {
                nodes: Vec::new(),
                len: 0,
            };
        }
        // Heap size: next power of two bound keeps holes manageable.
        let cap = (2 * len.next_power_of_two()).max(1);
        let mut nodes: Vec<Option<(Point, u32)>> = vec![None; cap];
        let mut items: Vec<(Point, u32)> = points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u32))
            .collect();
        Self::build_rec(&mut items, 0, &mut nodes, 0);
        KdTree { nodes, len }
    }

    fn build_rec(
        items: &mut [(Point, u32)],
        depth: usize,
        nodes: &mut Vec<Option<(Point, u32)>>,
        at: usize,
    ) {
        if items.is_empty() {
            return;
        }
        if at >= nodes.len() {
            nodes.resize(at + 1, None);
        }
        let mid = items.len() / 2;
        if depth.is_multiple_of(2) {
            items.select_nth_unstable_by(mid, |a, b| a.0.lat.partial_cmp(&b.0.lat).unwrap());
        } else {
            items.select_nth_unstable_by(mid, |a, b| a.0.lon.partial_cmp(&b.0.lon).unwrap());
        }
        nodes[at] = Some(items[mid]);
        let (left, rest) = items.split_at_mut(mid);
        let right = &mut rest[1..];
        Self::build_rec(left, depth + 1, nodes, 2 * at + 1);
        Self::build_rec(right, depth + 1, nodes, 2 * at + 2);
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indices of points inside `query` (inclusive edges).
    pub fn query_bbox(&self, query: &BBox) -> Vec<usize> {
        let mut out = Vec::new();
        if self.len > 0 {
            self.range_rec(0, 0, query, &mut out);
        }
        out
    }

    fn range_rec(&self, at: usize, depth: usize, query: &BBox, out: &mut Vec<usize>) {
        let Some(Some((p, idx))) = self.nodes.get(at) else {
            return;
        };
        if query.contains(*p) {
            out.push(*idx as usize);
        }
        let (lo, hi, v) = if depth.is_multiple_of(2) {
            (query.min_lat, query.max_lat, p.lat)
        } else {
            (query.min_lon, query.max_lon, p.lon)
        };
        if lo <= v {
            self.range_rec(2 * at + 1, depth + 1, query, out);
        }
        if hi >= v {
            self.range_rec(2 * at + 2, depth + 1, query, out);
        }
    }

    /// The nearest point to `query` by [`Point::approx_dist2`].
    pub fn nearest(&self, query: Point) -> Option<(usize, f64)> {
        if self.len == 0 {
            return None;
        }
        let mut best = (usize::MAX, f64::INFINITY);
        self.nearest_rec(0, 0, query, &mut best);
        (best.0 != usize::MAX).then_some(best)
    }

    fn nearest_rec(&self, at: usize, depth: usize, query: Point, best: &mut (usize, f64)) {
        let Some(Some((p, idx))) = self.nodes.get(at) else {
            return;
        };
        let d2 = query.approx_dist2(*p);
        if d2 < best.1 {
            *best = (*idx as usize, d2);
        }
        let (qv, pv, scale) = if depth.is_multiple_of(2) {
            (query.lat, p.lat, 1.0)
        } else {
            (query.lon, p.lon, query.lat.to_radians().cos())
        };
        let (near, far) = if qv < pv {
            (2 * at + 1, 2 * at + 2)
        } else {
            (2 * at + 2, 2 * at + 1)
        };
        self.nearest_rec(near, depth + 1, query, best);
        // Prune: only descend the far side if the splitting plane is closer
        // than the best hit (in the corrected metric).
        let plane = (qv - pv) * scale;
        if plane * plane < best.1 {
            self.nearest_rec(far, depth + 1, query, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> Vec<Point> {
        let mut state: u64 = 0xABCDEF12345;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(33.0 + next() * 6.0, 124.0 + next() * 8.0))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(vec![]);
        assert!(t.is_empty());
        assert!(t.nearest(Point::new(37.0, 127.0)).is_none());
        assert!(t.query_bbox(&BBox::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn bbox_query_matches_scan() {
        let pts = cloud(700);
        let t = KdTree::build(pts.clone());
        assert_eq!(t.len(), 700);
        let q = BBox::new(35.0, 126.0, 37.0, 129.0);
        let mut got = t.query_bbox(&q);
        got.sort_unstable();
        let mut expect: Vec<usize> = (0..pts.len()).filter(|&i| q.contains(pts[i])).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn nearest_matches_scan() {
        let pts = cloud(500);
        let t = KdTree::build(pts.clone());
        for &q in &[
            Point::new(36.5, 127.3),
            Point::new(33.0, 124.0),
            Point::new(38.99, 131.99),
            Point::new(40.0, 120.0),
        ] {
            let (_, dt) = t.nearest(q).unwrap();
            let db = pts
                .iter()
                .map(|&p| q.approx_dist2(p))
                .fold(f64::INFINITY, f64::min);
            assert!((dt - db).abs() < 1e-12, "kd {dt} vs scan {db} at {q}");
        }
    }

    #[test]
    fn single_point() {
        let p = Point::new(37.0, 127.0);
        let t = KdTree::build(vec![p]);
        assert_eq!(t.nearest(Point::new(35.0, 129.0)).unwrap().0, 0);
        assert_eq!(t.query_bbox(&BBox::from_point(p)), vec![0]);
    }

    #[test]
    fn duplicates_retained() {
        let p = Point::new(36.0, 128.0);
        let t = KdTree::build(vec![p; 9]);
        assert_eq!(t.query_bbox(&BBox::from_point(p).inflate(1e-9)).len(), 9);
    }
}
