//! # stir-geoindex — spatial index substrate
//!
//! Geographic primitives and spatial indexes used by the rest of the STIR
//! workspace:
//!
//! * [`Point`] / [`BBox`] — WGS-84 coordinates, haversine distance, bounding
//!   boxes and the geodesic helpers needed by the geocoder and the event
//!   location estimators.
//! * [`geohash`] — base-32 geohash encode/decode plus neighbour expansion,
//!   used by the tweet store's spatial secondary index.
//! * [`Polygon`] — ring polygons with ray-casting containment, centroids and
//!   deterministic interior sampling, used for synthetic district shapes.
//! * [`RTree`] — an STR bulk-loaded R-tree with incremental insert, bounding
//!   box queries and best-first k-nearest-neighbour search.
//! * [`GridIndex`] — a uniform grid index with ring-expansion nearest search,
//!   kept as a simpler comparison structure for the benchmarks.
//! * [`KdTree`] — a median-split k-d tree for static point sets.
//! * [`BruteForceIndex`] — the O(n) reference oracle the property tests and
//!   benchmarks compare the real indexes against.
//!
//! Everything here is dependency-free and deterministic.

#![warn(missing_docs)]

pub mod bruteforce;
pub mod geohash;
pub mod grid;
pub mod kdtree;
pub mod point;
pub mod polygon;
pub mod rtree;

pub use bruteforce::BruteForceIndex;
pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use point::{BBox, Point, EARTH_RADIUS_KM};
pub use polygon::Polygon;
pub use rtree::{RTree, Spatial};
