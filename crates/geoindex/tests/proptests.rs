//! Property tests: the R-tree and grid index must answer every query
//! identically to the brute-force oracle, and geohash/polygon operations must
//! uphold their geometric invariants on arbitrary inputs.

use proptest::prelude::*;
use stir_geoindex::{geohash, BBox, BruteForceIndex, GridIndex, KdTree, Point, Polygon, RTree};

fn korea_point() -> impl Strategy<Value = Point> {
    (33.0f64..39.0, 124.0f64..132.0).prop_map(|(lat, lon)| Point::new(lat, lon))
}

fn world_point() -> impl Strategy<Value = Point> {
    (-89.0f64..89.0, -179.0f64..179.0).prop_map(|(lat, lon)| Point::new(lat, lon))
}

fn korea_bbox() -> impl Strategy<Value = BBox> {
    (korea_point(), korea_point()).prop_map(|(a, b)| {
        BBox::new(
            a.lat.min(b.lat),
            a.lon.min(b.lon),
            a.lat.max(b.lat),
            a.lon.max(b.lon),
        )
    })
}

proptest! {
    #[test]
    fn rtree_bbox_query_equals_oracle(pts in prop::collection::vec(korea_point(), 0..200), q in korea_bbox()) {
        let tree = RTree::bulk_load(pts.clone());
        let oracle = BruteForceIndex::from_items(pts);
        let mut got = tree.query_points_in(&q);
        let mut expect = oracle.query_points_in(&q);
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn rtree_insert_equals_bulk_load_results(pts in prop::collection::vec(korea_point(), 1..120), q in korea_bbox()) {
        let bulk = RTree::bulk_load(pts.clone());
        let mut incr = RTree::new();
        for p in &pts {
            incr.insert(*p);
        }
        let mut a = bulk.query_points_in(&q);
        let mut b = incr.query_points_in(&q);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rtree_nearest_distance_equals_oracle(pts in prop::collection::vec(korea_point(), 1..150), q in world_point()) {
        let tree = RTree::bulk_load(pts.clone());
        let oracle = BruteForceIndex::from_items(pts);
        let (_, dt) = tree.nearest(q).unwrap();
        let (_, db) = oracle.nearest(q).unwrap();
        // Indices may differ under exact ties; distances must agree.
        prop_assert!((dt - db).abs() < 1e-12, "tree {} vs oracle {}", dt, db);
    }

    #[test]
    fn rtree_nearest_k_distances_sorted_and_match(pts in prop::collection::vec(korea_point(), 1..150), q in korea_point(), k in 1usize..12) {
        let tree = RTree::bulk_load(pts.clone());
        let oracle = BruteForceIndex::from_items(pts);
        let got = tree.nearest_k(q, k);
        let expect = oracle.nearest_k(q, k);
        prop_assert_eq!(got.len(), expect.len());
        for w in got.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "results not sorted");
        }
        for (g, e) in got.iter().zip(expect.iter()) {
            prop_assert!((g.1 - e.1).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_nearest_distance_equals_oracle(pts in prop::collection::vec(korea_point(), 1..150), q in world_point()) {
        let extent = BBox::new(33.0, 124.0, 39.0, 132.0);
        let grid = GridIndex::with_items(extent, pts.clone(), 4);
        let oracle = BruteForceIndex::from_items(pts);
        let (_, dg) = grid.nearest(q).unwrap();
        let (_, db) = oracle.nearest(q).unwrap();
        prop_assert!((dg - db).abs() < 1e-12, "grid {} vs oracle {}", dg, db);
    }

    #[test]
    fn grid_query_equals_oracle(pts in prop::collection::vec(korea_point(), 0..200), q in korea_bbox()) {
        let extent = BBox::new(33.0, 124.0, 39.0, 132.0);
        let grid = GridIndex::with_items(extent, pts.clone(), 4);
        let oracle = BruteForceIndex::from_items(pts);
        let mut got = grid.query_points_in(&q);
        let mut expect = oracle.query_points_in(&q);
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn kdtree_bbox_query_equals_oracle(pts in prop::collection::vec(korea_point(), 0..200), q in korea_bbox()) {
        let tree = KdTree::build(pts.clone());
        let oracle = BruteForceIndex::from_items(pts);
        let mut got = tree.query_bbox(&q);
        let mut expect = oracle.query_points_in(&q);
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn kdtree_nearest_distance_equals_oracle(pts in prop::collection::vec(korea_point(), 1..150), q in world_point()) {
        let tree = KdTree::build(pts.clone());
        let oracle = BruteForceIndex::from_items(pts);
        let (_, dt) = tree.nearest(q).unwrap();
        let (_, db) = oracle.nearest(q).unwrap();
        prop_assert!((dt - db).abs() < 1e-12, "kd {} vs oracle {}", dt, db);
    }

    #[test]
    fn geohash_roundtrip_contains_point(p in world_point(), precision in 1usize..=12) {
        let h = geohash::encode(p, precision);
        prop_assert_eq!(h.len(), precision);
        let b = geohash::decode_bbox(&h).unwrap();
        prop_assert!(b.contains(p), "{} not in {}", p, b);
    }

    #[test]
    fn geohash_prefix_cell_contains_longer_cell(p in world_point()) {
        let long = geohash::encode(p, 8);
        let short = geohash::decode_bbox(&long[..4]).unwrap();
        let inner = geohash::decode_bbox(&long).unwrap();
        prop_assert!(short.contains_bbox(&inner));
    }

    #[test]
    fn polygon_centroid_inside_regular_polygon(c in korea_point(), radius in 1.0f64..50.0, n in 3usize..40) {
        let poly = Polygon::regular(c, radius, n).unwrap();
        prop_assert!(poly.contains(poly.centroid()));
        prop_assert!(poly.contains(c));
    }

    #[test]
    fn haversine_triangle_inequality(a in world_point(), b in world_point(), c in world_point()) {
        let ab = a.haversine_km(b);
        let bc = b.haversine_km(c);
        let ac = a.haversine_km(c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn bbox_union_contains_both(a in korea_bbox(), b in korea_bbox()) {
        let u = a.union(&b);
        prop_assert!(u.contains_bbox(&a));
        prop_assert!(u.contains_bbox(&b));
        prop_assert!(u.area_deg2() >= a.area_deg2().max(b.area_deg2()) - 1e-12);
    }
}
