//! # stir-bench — shared benchmark fixtures
//!
//! The Criterion benches live in `benches/`; this library holds the common
//! fixtures so every bench builds its inputs the same deterministic way.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stir_geoindex::Point;
use stir_geokr::Gazetteer;
use stir_twitter_sim::datasets::{Dataset, DatasetSpec};

/// A deterministic point cloud over Korea.
pub fn korea_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(33.0..38.7), rng.gen_range(124.5..131.0)))
        .collect()
}

/// A deterministic point cloud concentrated on district centroids (the
/// realistic geocoding workload: repeated nearby fixes).
pub fn district_points(gazetteer: &Gazetteer, n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let d = gazetteer.weighted_district(rng.gen::<f64>());
            gazetteer.sample_point_in_scaled(d, 0.6, || rng.gen::<f64>())
        })
        .collect()
}

/// A small Korean dataset for pipeline-shaped benches.
pub fn korean_dataset(gazetteer: &Gazetteer, n_users: usize, seed: u64) -> Dataset {
    Dataset::generate(
        DatasetSpec {
            n_users,
            ..DatasetSpec::korean_paper()
        },
        gazetteer,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(korea_points(10, 1), korea_points(10, 1));
        let g = Gazetteer::load();
        let a = district_points(&g, 10, 2);
        let b = district_points(&g, 10, 2);
        assert_eq!(a, b);
    }
}
