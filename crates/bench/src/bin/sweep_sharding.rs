//! Minimum-time sweep of the user-hash-sharded store against the
//! single-store baseline, answering the questions ROADMAP item 2 asks of
//! the scale-out layer (E24):
//!
//! * `ingest` — durable ingest throughput at each shard count: the wall
//!   time to push the whole corpus through
//!   [`ShardedDurableStore::ingest_parallel`] (one WAL per shard, workers
//!   = the machine's parallelism) plus the final fsync of every log.
//!   `shards = 1` **is** the single-WAL baseline — same code path, one
//!   log file, inline.
//! * `query` — scatter-gather latency: a selective time-window + GPS
//!   query over fully-loaded in-memory shards, per-shard pruned scans
//!   merged in `(timestamp, id)` order.
//! * `pipeline` — a full fused-pipeline run over the sharded store via
//!   the cross-shard morsel source, against the same run at 1 shard.
//!
//! Methodology is E22's: each cell is the **minimum** over `rounds`
//! in-process rounds, cells interleaved round-robin so host-noise drift
//! lands on every cell equally, round 0 is warmup and unrecorded. Prints
//! one JSON object per cell, ready for `BENCH_sharding.json`:
//!
//! ```text
//! cargo run --release -p stir-bench --bin sweep_sharding \
//!     [tweets] [users] [rounds] > BENCH_sharding.json
//! ```
//!
//! Defaults: 1,000,000 tweets over 100,000 users, 25 rounds (E22's
//! round count — on a noisy shared host the per-cell minima need that
//! many samples to converge). The PR-8 acceptance run is
//! `sweep_sharding 10000000 1000000 3`.

use std::time::Instant;

use stir_bench::district_points;
use stir_core::{PipelineBuilder, ProfileRow};
use stir_geokr::Gazetteer;
use stir_tweetstore::{Query, ShardedDurableStore, ShardedStore, TweetRecord};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

const PROFILE_TEXTS: [&str; 4] = [
    "Seoul Yangcheon-gu",
    "Seoul Gangnam-gu",
    "Busan Jung-gu",
    "Gyeonggi-do Bucheon-si",
];

/// Tweets spread over this many days of simulated time.
const DAYS: u64 = 30;

/// Same corpus shape as the other sweeps: `n` tweets over `users`
/// authors, ~70% carrying a district-centroid GPS fix, short texts so
/// WAL volume stays append-bound rather than memcpy-bound.
fn corpus(g: &Gazetteer, n: usize, users: u64) -> Vec<TweetRecord> {
    let points = district_points(g, 256, 42);
    (0..n as u64)
        .map(|i| TweetRecord {
            id: i,
            user: i % users,
            timestamp: (i * 7_919) % (DAYS * 86_400),
            gps: (i % 10 < 7).then(|| points[i as usize % points.len()]),
            text: format!("t{i}"),
        })
        .collect()
}

fn profiles(users: u64) -> Vec<ProfileRow> {
    (0..users)
        .map(|u| ProfileRow {
            user: u,
            location_text: PROFILE_TEXTS[u as usize % PROFILE_TEXTS.len()].to_string(),
        })
        .collect()
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Ingest,
    Query,
    Pipeline,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Ingest => "ingest",
            Kind::Query => "query",
            Kind::Pipeline => "pipeline",
        }
    }
}

struct Cell {
    kind: Kind,
    shards: usize,
    best_nanos: u128,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args
        .first()
        .map(|a| a.parse().expect("tweets must be an integer"))
        .unwrap_or(1_000_000);
    let users: u64 = args
        .get(1)
        .map(|a| a.parse().expect("users must be an integer"))
        .unwrap_or(100_000);
    let rounds: usize = args
        .get(2)
        .map(|a| a.parse().expect("rounds must be an integer"))
        .unwrap_or(25);
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());

    let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
    let recs = corpus(g, n, users);
    let profs = profiles(users);

    // In-memory sharded stores, one per shard count, shared by every
    // `query` and `pipeline` round: those cells measure reads, not loads.
    let loaded: Vec<(usize, ShardedStore)> = SHARD_COUNTS
        .iter()
        .map(|&s| {
            let mut store = ShardedStore::new(s);
            for r in &recs {
                store.append(r);
            }
            (s, store)
        })
        .collect();
    // A selective scatter-gather probe: one day of GPS tweets.
    let probe = Query::all().between(7 * 86_400, 8 * 86_400).gps(true);
    let pipeline = PipelineBuilder::new(g).build().unwrap();
    let bench_dir = std::env::temp_dir().join(format!("stir-sweep-shard-{}", std::process::id()));

    let mut cells: Vec<Cell> = Vec::new();
    for &shards in &SHARD_COUNTS {
        for kind in [Kind::Ingest, Kind::Query, Kind::Pipeline] {
            cells.push(Cell {
                kind,
                shards,
                best_nanos: u128::MAX,
            });
        }
    }

    for round in 0..=rounds {
        for cell in cells.iter_mut() {
            let nanos = match cell.kind {
                Kind::Ingest => {
                    let _ = std::fs::remove_dir_all(&bench_dir);
                    let mut durable = ShardedDurableStore::open(&bench_dir, cell.shards).unwrap();
                    let start = Instant::now();
                    durable.ingest_parallel(&recs, workers).unwrap();
                    durable.sync().unwrap();
                    let nanos = start.elapsed().as_nanos();
                    drop(durable);
                    let _ = std::fs::remove_dir_all(&bench_dir);
                    nanos
                }
                Kind::Query => {
                    let store = &loaded.iter().find(|(s, _)| *s == cell.shards).unwrap().1;
                    let start = Instant::now();
                    let rows = store.query(&probe);
                    let nanos = start.elapsed().as_nanos();
                    assert!(!rows.is_empty(), "probe query must hit");
                    nanos
                }
                Kind::Pipeline => {
                    let store = &loaded.iter().find(|(s, _)| *s == cell.shards).unwrap().1;
                    let p = profs.clone();
                    let start = Instant::now();
                    let result = pipeline.execute(p, store);
                    let nanos = start.elapsed().as_nanos();
                    assert!(result.funnel.users_final > 0, "pipeline must keep users");
                    nanos
                }
            };
            if round > 0 {
                cell.best_nanos = cell.best_nanos.min(nanos.max(1));
            }
        }
    }

    println!("[");
    for (i, cell) in cells.iter().enumerate() {
        let elem_per_s = (n as u128 * 1_000_000_000 / cell.best_nanos) as u64;
        println!(
            "  {{\"bench\": \"{}\", \"shards\": {}, \"tweets\": {}, \"users\": {}, \
             \"min_ms\": {:.3}, \"elem_per_s\": {}}}{}",
            cell.kind.label(),
            cell.shards,
            n,
            users,
            cell.best_nanos as f64 / 1e6,
            elem_per_s,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    println!("]");
}
