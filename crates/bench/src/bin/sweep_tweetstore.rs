//! Minimum-time sweep of the columnar sealed-segment format (`STIRSEG2`)
//! against the row baseline (`STIRSEG1`), answering the questions the
//! columnar-store work asks of the storage layer (E25):
//!
//! * `scan_all` — match-all header-only scan throughput: a full
//!   [`HeaderBlocks`] pass over every segment counting GPS fixes. On a v2
//!   store the sealed segments stream out as [`BlockChunk::Columns`]
//!   slices with no per-record decode; on v1 every header is varint-decoded.
//! * `scan_day` — a selective one-day GPS query through the planner
//!   ([`Query::between`] + `gps(true)`): zone-map pruning plus
//!   point reads, where v2 pays a per-slot column cursor instead of a
//!   frame decode.
//! * `e2e` — the full fused pipeline over the store (the `--from-store`
//!   path), where scan cost is one stage among many.
//! * `disk_bytes` — on-disk footprint of [`persist::save`]: compressed
//!   columns (v2) vs raw row frames (v1). Reported in bytes, not time.
//!
//! Methodology is E22's: each timed cell is the **minimum** over `rounds`
//! in-process rounds, cells interleaved round-robin so host-noise drift
//! lands on every cell equally, round 0 is warmup and unrecorded. Prints
//! one JSON object per cell, recorded as the `cells` of the E25 entry in
//! `BENCH_tweetstore.json` (which also holds E20's scan benchmarks):
//!
//! ```text
//! cargo run --release -p stir-bench --bin sweep_tweetstore [rounds]
//! ```
//!
//! Defaults: 25 rounds over corpora of 50,000 and 200,000 tweets (the
//! acceptance sizes). Segments roll at 256 KiB of row-equivalent payload
//! so both sizes seal several segments — the default 4 MiB threshold
//! would leave a 50k-record store entirely in its row-format open tail
//! and measure nothing.

use std::time::Instant;

use stir_bench::district_points;
use stir_core::{PipelineBuilder, ProfileRow};
use stir_geokr::Gazetteer;
use stir_tweetstore::{
    colseg::NO_GPS_E6, persist, BlockChunk, HeaderBlocks, Query, StoreFormat, TweetRecord,
    TweetStore,
};

const SIZES: [usize; 2] = [50_000, 200_000];
const FORMATS: [StoreFormat; 2] = [StoreFormat::V1, StoreFormat::V2];

/// Row-equivalent payload bytes per segment. Shared by both formats, so
/// segment geometry — and therefore zone-map pruning — is identical.
const SEGMENT_BYTES: usize = 256 * 1024;

const PROFILE_TEXTS: [&str; 4] = [
    "Seoul Yangcheon-gu",
    "Seoul Gangnam-gu",
    "Busan Jung-gu",
    "Gyeonggi-do Bucheon-si",
];

/// Tweets spread over this many days of simulated time.
const DAYS: u64 = 30;

/// Same corpus shape as the other sweeps: `n` tweets over `n / 10`
/// authors, ~70% carrying a district-centroid GPS fix, short texts.
fn corpus(g: &Gazetteer, n: usize) -> Vec<TweetRecord> {
    let users = (n as u64 / 10).max(1);
    let points = district_points(g, 256, 42);
    (0..n as u64)
        .map(|i| TweetRecord {
            id: i,
            user: i % users,
            timestamp: (i * 7_919) % (DAYS * 86_400),
            gps: (i % 10 < 7).then(|| points[i as usize % points.len()]),
            text: format!("t{i}"),
        })
        .collect()
}

fn profiles(n: usize) -> Vec<ProfileRow> {
    let users = (n as u64 / 10).max(1);
    (0..users)
        .map(|u| ProfileRow {
            user: u,
            location_text: PROFILE_TEXTS[u as usize % PROFILE_TEXTS.len()].to_string(),
        })
        .collect()
}

fn build(recs: &[TweetRecord], format: StoreFormat) -> TweetStore {
    let mut store = TweetStore::with_segment_bytes_and_format(SEGMENT_BYTES, format);
    for r in recs {
        store.append(r);
    }
    store
}

/// Match-all header-only scan: stream every segment through the mixed
/// block API and count GPS fixes. This is exactly what the fused
/// pipeline's morsel source does, minus the pipeline.
fn scan_all(store: &TweetStore) -> u64 {
    let blocks = HeaderBlocks::new(store, 4096);
    let mut gps = 0u64;
    while blocks
        .next_block_mixed(|chunk| match chunk {
            BlockChunk::Columns(c) => {
                gps += c.lats_e6.iter().filter(|&&lat| lat != NO_GPS_E6).count() as u64;
            }
            BlockChunk::Header(h) => gps += u64::from(h.gps.is_some()),
        })
        .is_some()
    {}
    gps
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    ScanAll,
    ScanDay,
    E2e,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::ScanAll => "scan_all",
            Kind::ScanDay => "scan_day",
            Kind::E2e => "e2e",
        }
    }
}

struct Cell {
    kind: Kind,
    size_idx: usize,
    format: StoreFormat,
    best_nanos: u128,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rounds: usize = args
        .first()
        .map(|a| a.parse().expect("rounds must be an integer"))
        .unwrap_or(25);

    let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));

    // One loaded store per (size, format); every timed cell measures
    // reads over these, not loads.
    let loaded: Vec<Vec<TweetStore>> = SIZES
        .iter()
        .map(|&n| {
            let recs = corpus(g, n);
            FORMATS.iter().map(|&f| build(&recs, f)).collect()
        })
        .collect();
    let profs: Vec<Vec<ProfileRow>> = SIZES.iter().map(|&n| profiles(n)).collect();
    // A selective probe: one day of GPS tweets (1/30th of the corpus).
    let probe = Query::all().between(7 * 86_400, 8 * 86_400).gps(true);
    let pipeline = PipelineBuilder::new(g).build().unwrap();

    let mut cells: Vec<Cell> = Vec::new();
    for size_idx in 0..SIZES.len() {
        for &format in &FORMATS {
            for kind in [Kind::ScanAll, Kind::ScanDay, Kind::E2e] {
                cells.push(Cell {
                    kind,
                    size_idx,
                    format,
                    best_nanos: u128::MAX,
                });
            }
        }
    }

    for round in 0..=rounds {
        for cell in cells.iter_mut() {
            let fmt_idx = FORMATS.iter().position(|&f| f == cell.format).unwrap();
            let store = &loaded[cell.size_idx][fmt_idx];
            let nanos = match cell.kind {
                Kind::ScanAll => {
                    let start = Instant::now();
                    let gps = scan_all(store);
                    let nanos = start.elapsed().as_nanos();
                    assert!(gps > 0, "match-all scan must see GPS fixes");
                    nanos
                }
                Kind::ScanDay => {
                    let start = Instant::now();
                    let rows = probe.execute(store);
                    let nanos = start.elapsed().as_nanos();
                    assert!(!rows.is_empty(), "probe query must hit");
                    nanos
                }
                Kind::E2e => {
                    let p = profs[cell.size_idx].clone();
                    let start = Instant::now();
                    let result = pipeline.execute(p, store);
                    let nanos = start.elapsed().as_nanos();
                    assert!(result.funnel.users_final > 0, "pipeline must keep users");
                    nanos
                }
            };
            if round > 0 {
                cell.best_nanos = cell.best_nanos.min(nanos.max(1));
            }
        }
    }

    // On-disk footprint: save each store once and sum the directory.
    // Bytes are deterministic, so no rounds needed.
    let save_dir =
        std::env::temp_dir().join(format!("stir-sweep-tweetstore-{}", std::process::id()));
    let disk: Vec<Vec<u64>> = loaded
        .iter()
        .map(|row| {
            row.iter()
                .map(|store| {
                    let _ = std::fs::remove_dir_all(&save_dir);
                    persist::save(store, &save_dir).expect("save store");
                    let bytes = std::fs::read_dir(&save_dir)
                        .expect("read save dir")
                        .map(|e| e.expect("dir entry").metadata().expect("metadata").len())
                        .sum();
                    let _ = std::fs::remove_dir_all(&save_dir);
                    bytes
                })
                .collect()
        })
        .collect();

    println!("[");
    for cell in cells.iter() {
        let n = SIZES[cell.size_idx];
        let elem_per_s = (n as u128 * 1_000_000_000 / cell.best_nanos) as u64;
        println!(
            "  {{\"bench\": \"{}\", \"format\": \"{}\", \"tweets\": {}, \
             \"min_ms\": {:.3}, \"elem_per_s\": {}}},",
            cell.kind.label(),
            cell.format.as_str(),
            n,
            cell.best_nanos as f64 / 1e6,
            elem_per_s,
        );
    }
    for (size_idx, row) in disk.iter().enumerate() {
        for (fmt_idx, &bytes) in row.iter().enumerate() {
            let last = size_idx + 1 == disk.len() && fmt_idx + 1 == row.len();
            println!(
                "  {{\"bench\": \"disk_bytes\", \"format\": \"{}\", \"tweets\": {}, \
                 \"bytes\": {}}}{}",
                FORMATS[fmt_idx].as_str(),
                SIZES[size_idx],
                bytes,
                if last { "" } else { "," }
            );
        }
    }
    println!("]");
}
