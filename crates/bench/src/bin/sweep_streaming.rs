//! Minimum-time sweep of the streaming service against batch recompute.
//!
//! Three measurements per corpus size, answering the questions ROADMAP
//! item 1 asks of the always-on engine:
//!
//! * `ingest` — sustained ingest throughput: the wall time to push the
//!   whole corpus through [`AnalysisSession::ingest`] one tweet at a time
//!   (session construction, i.e. the one-off stage-1 profile pass, is
//!   outside the timer), reported as steady-state tweets/sec;
//! * `query` — incremental-query latency: one unmodified
//!   `session.query().execute()` over fully-ingested live state;
//! * `batch-recompute` — what the same answer costs without the service:
//!   a full fused-pipeline run over the corpus.
//!
//! Methodology is E22's: each cell is the **minimum** over `ROUNDS`
//! in-process rounds, cells interleaved round-robin so host-noise drift
//! lands on every cell equally, round 0 is warmup and unrecorded. Prints
//! one JSON object per cell, ready for `BENCH_streaming.json`:
//!
//! ```text
//! cargo run --release -p stir-bench --bin sweep_streaming > BENCH_streaming.json
//! ```

use std::time::Instant;

use stir_bench::district_points;
use stir_core::{AnalysisSession, PipelineBuilder, ProfileRow, TweetRow};
use stir_geokr::Gazetteer;

const PROFILE_TEXTS: [&str; 4] = [
    "Seoul Yangcheon-gu",
    "Seoul Gangnam-gu",
    "Busan Jung-gu",
    "Gyeonggi-do Bucheon-si",
];

const ROUNDS: usize = 25;

/// Tweets spread over this many days of simulated time (inside the
/// session's default windowed-query horizon).
const DAYS: u64 = 30;

struct Corpus {
    profiles: Vec<ProfileRow>,
    tweets: Vec<TweetRow>,
    timestamps: Vec<u64>,
}

/// Same corpus shape as `sweep_pipeline.rs`: `n` tweets over `n / 50`
/// users, ~70% carrying a district-centroid GPS fix.
fn corpus(g: &Gazetteer, n: usize) -> Corpus {
    let users = (n / 50).max(1) as u64;
    let points = district_points(g, 256, 42);
    let profiles = (0..users)
        .map(|u| ProfileRow {
            user: u,
            location_text: PROFILE_TEXTS[u as usize % PROFILE_TEXTS.len()].to_string(),
        })
        .collect();
    let tweets = (0..n as u64)
        .map(|i| {
            let user = i % users;
            if i % 10 < 7 {
                let p = points[i as usize % points.len()];
                TweetRow::tagged(user, i, p.lat, p.lon)
            } else {
                TweetRow::plain(user, i)
            }
        })
        .collect();
    let timestamps = (0..n as u64)
        .map(|i| (i * 7_919) % (DAYS * 86_400))
        .collect();
    Corpus {
        profiles,
        tweets,
        timestamps,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Ingest,
    Query,
    BatchRecompute,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Ingest => "ingest",
            Kind::Query => "query",
            Kind::BatchRecompute => "batch-recompute",
        }
    }
}

struct Cell {
    kind: Kind,
    n: usize,
    best_nanos: u128,
    users_final: u64,
}

fn ingest_all(session: &mut AnalysisSession<'_>, c: &Corpus) {
    for (t, &ts) in c.tweets.iter().zip(&c.timestamps) {
        session.ingest(t.user, ts, t.gps);
    }
}

fn main() {
    let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
    let corpora: Vec<(usize, Corpus)> = [50_000usize, 200_000]
        .iter()
        .map(|&n| (n, corpus(g, n)))
        .collect();

    // One fully-ingested session per corpus serves every `query` round:
    // query latency must not depend on how the state got there.
    let live: Vec<(usize, AnalysisSession<'static>)> = corpora
        .iter()
        .map(|(n, c)| {
            let pipe = PipelineBuilder::new(g).build().unwrap();
            let mut s = AnalysisSession::new(pipe, c.profiles.clone());
            ingest_all(&mut s, c);
            (*n, s)
        })
        .collect();

    let mut cells: Vec<Cell> = Vec::new();
    for &(n, _) in &corpora {
        for kind in [Kind::Ingest, Kind::Query, Kind::BatchRecompute] {
            cells.push(Cell {
                kind,
                n,
                best_nanos: u128::MAX,
                users_final: 0,
            });
        }
    }

    for round in 0..=ROUNDS {
        for cell in cells.iter_mut() {
            let c = &corpora.iter().find(|&&(n, _)| n == cell.n).unwrap().1;
            let (nanos, users_final) = match cell.kind {
                Kind::Ingest => {
                    let pipe = PipelineBuilder::new(g).build().unwrap();
                    let mut session = AnalysisSession::new(pipe, c.profiles.clone());
                    let start = Instant::now();
                    ingest_all(&mut session, c);
                    (start.elapsed().as_nanos(), session.users_live() as u64)
                }
                Kind::Query => {
                    let session = &live.iter().find(|&&(n, _)| n == cell.n).unwrap().1;
                    let start = Instant::now();
                    let result = session.query().execute();
                    (start.elapsed().as_nanos(), result.funnel.users_final)
                }
                Kind::BatchRecompute => {
                    let pipe = PipelineBuilder::new(g).build().unwrap();
                    let p = c.profiles.clone();
                    let t = c.tweets.clone();
                    let start = Instant::now();
                    let result = pipe.execute(p, t);
                    (start.elapsed().as_nanos(), result.funnel.users_final)
                }
            };
            if round > 0 {
                cell.best_nanos = cell.best_nanos.min(nanos.max(1));
            }
            cell.users_final = users_final;
        }
    }

    println!("[");
    for (i, cell) in cells.iter().enumerate() {
        let elem_per_s = (cell.n as u128 * 1_000_000_000 / cell.best_nanos) as u64;
        println!(
            "  {{\"bench\": \"{}\", \"tweets\": {}, \"min_ms\": {:.3}, \
             \"elem_per_s\": {}, \"users_final\": {}}}{}",
            cell.kind.label(),
            cell.n,
            cell.best_nanos as f64 / 1e6,
            elem_per_s,
            cell.users_final,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    println!("]");
}
