//! Minimum-time sweep of the seal-time group-sketch pushdown (E26): the
//! fig7-shaped grouping query over a fully sealed columnar store, answered
//! by the sketch delta merge versus the fused scan baseline.
//!
//! * `e2e_scan` — the fused pipeline scanning every record (the PR-9
//!   baseline path, sketches off).
//! * `e2e_sketch_warm` — the same query with sketches on and every sealed
//!   segment's sketch already materialized (the steady state of a store
//!   whose segments sketch themselves at seal time): a k-way merge of
//!   per-segment partials, no record decode, no geocoding.
//! * `e2e_sketch_cold` — first query against a store persisted *without*
//!   sidecars: the sketcher is (re)installed each round, so the timing
//!   includes lazily building every segment's sketch before merging.
//! * `window_scan` / `window_sketch` — day-aligned windowed queries over
//!   1, 7 and 30 of the corpus's 30 days: the scan path touches every
//!   record regardless of the window, the sketch path only the day
//!   buckets (and segments) the window covers, so its cost should scale
//!   with the days touched.
//!
//! Methodology is E22's: each timed cell is the **minimum** over `rounds`
//! in-process rounds, cells interleaved round-robin so host-noise drift
//! lands on every cell equally, round 0 is warmup and unrecorded. Prints
//! one JSON object per cell, recorded as the E26 entry in
//! `BENCH_tweetstore.json`:
//!
//! ```text
//! cargo run --release -p stir-bench --bin sweep_sketches [rounds]
//! ```
//!
//! Unlike `sweep_tweetstore`, timestamps here are **monotonic** over the
//! 30 simulated days — the modular shuffle the other sweep uses would
//! smear every day across every segment, leaving zone maps and day
//! buckets nothing to prune. Stores round-trip through `persist` so every
//! segment is sealed (the in-memory tail is empty) and the warm store's
//! sketches ride in from their sidecars.

use std::sync::Arc;
use std::time::Instant;

use stir_bench::district_points;
use stir_core::{GazetteerSketcher, PipelineBuilder, ProfileRow, TimeWindow};
use stir_geokr::Gazetteer;
use stir_tweetstore::{persist, SketchResolver, StoreFormat, TweetRecord, TweetStore};

const SIZES: [usize; 2] = [50_000, 200_000];

/// Row-equivalent payload bytes per segment — sized so the 30-day corpus
/// seals into a handful of segments (5 at 200k records), each spanning a
/// contiguous run of days. That makes the warm cell a real k-way merge
/// and gives windowed queries whole segments to prune; the store default
/// (4 MiB) would leave just one or two segments here.
const SEGMENT_BYTES: usize = 1 << 20;

const PROFILE_TEXTS: [&str; 4] = [
    "Seoul Yangcheon-gu",
    "Seoul Gangnam-gu",
    "Busan Jung-gu",
    "Gyeonggi-do Bucheon-si",
];

/// Ill-defined profile texts — the paper's funnel drops most users at the
/// select stage, and the sketch merge skips their pre-grouped entries
/// wholesale where the scan path still decodes their every record.
const JUNK_TEXTS: [&str; 4] = ["my home", "somewhere on earth", "", "wonderland"];

/// Tweets per author — ~3 a day over the simulated month, the rate of the
/// paper's crawled timelines. Several fixes per author per day is what
/// gives the seal-time sketch real (user, day, district) aggregation to
/// collapse; a sparser corpus degenerates to one entry per record.
const TWEETS_PER_USER: u64 = 100;

/// One author in ten has a well-defined profile location.
const KEPT_EVERY: u64 = 10;

/// Tweets spread over this many days of simulated time.
const DAYS: u64 = 30;

/// Day-aligned window widths swept for the scaling cells.
const WINDOW_DAYS: [u64; 3] = [1, 7, 30];

/// A fig7-shaped corpus: n tweets over n/100 authors, ~70% GPS fixes on
/// district centroids, each author anchored to a home district (most
/// fixes there, the rest from a handful of neighbours). Timestamps climb
/// monotonically through the 30 days, as an ingest stream's would — the
/// modular shuffle `sweep_tweetstore` uses would smear every day across
/// every segment and leave day buckets nothing to prune.
fn corpus(g: &Gazetteer, n: usize) -> Vec<TweetRecord> {
    let users = (n as u64 / TWEETS_PER_USER).max(1);
    let points = district_points(g, 256, 42);
    (0..n as u64)
        .map(|i| {
            let user = i % users;
            let home = (user * 7) % points.len() as u64;
            let district = if i % 7 < 5 {
                home
            } else {
                (home + 1 + (i / users) % 5) % points.len() as u64
            };
            TweetRecord {
                id: i,
                user,
                timestamp: i * DAYS * 86_400 / n as u64,
                gps: (i % 10 < 7).then(|| points[district as usize]),
                text: format!("t{i}"),
            }
        })
        .collect()
}

/// One author in [`KEPT_EVERY`] carries a well-defined location text (the
/// four district names cycled); the rest are the junk strings the select
/// stage rejects — the paper's funnel shape.
fn profiles(n: usize) -> Vec<ProfileRow> {
    let users = (n as u64 / TWEETS_PER_USER).max(1);
    (0..users)
        .map(|u| ProfileRow {
            user: u,
            location_text: if u % KEPT_EVERY == 0 {
                PROFILE_TEXTS[(u / KEPT_EVERY) as usize % PROFILE_TEXTS.len()].to_string()
            } else {
                JUNK_TEXTS[u as usize % JUNK_TEXTS.len()].to_string()
            },
        })
        .collect()
}

/// Builds a fully sealed store: ingest (optionally sketching at seal
/// time), force-seal the tail, persist, reload. Every reloaded segment is
/// columnar and sealed — the open tail comes back empty — and the sketch
/// sidecars ride along when the ingest store cached them.
fn sealed_store(recs: &[TweetRecord], sketcher: Option<Arc<dyn SketchResolver>>) -> TweetStore {
    let mut store = TweetStore::with_segment_bytes_and_format(SEGMENT_BYTES, StoreFormat::V2);
    if let Some(s) = sketcher {
        store.set_sketcher(s);
    }
    for r in recs {
        store.append(r);
    }
    store.seal_active();
    let dir = std::env::temp_dir().join(format!("stir-sweep-sketches-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    persist::save(&store, &dir).expect("save store");
    let loaded = persist::load_with_segment_bytes(&dir, SEGMENT_BYTES).expect("reload store");
    let _ = std::fs::remove_dir_all(&dir);
    loaded
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    E2eScan,
    E2eSketchWarm,
    E2eSketchCold,
    WindowScan(u64),
    WindowSketch(u64),
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::E2eScan => "e2e_scan",
            Kind::E2eSketchWarm => "e2e_sketch_warm",
            Kind::E2eSketchCold => "e2e_sketch_cold",
            Kind::WindowScan(_) => "window_scan",
            Kind::WindowSketch(_) => "window_sketch",
        }
    }

    fn days(self) -> Option<u64> {
        match self {
            Kind::WindowScan(d) | Kind::WindowSketch(d) => Some(d),
            _ => None,
        }
    }
}

struct Cell {
    kind: Kind,
    size_idx: usize,
    best_nanos: u128,
}

/// A day-aligned window of `d` days ending mid-corpus (clamped to it).
fn window(d: u64) -> TimeWindow {
    let hi = (10 + d).min(DAYS);
    TimeWindow::days(hi - d, hi)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rounds: usize = args
        .first()
        .map(|a| a.parse().expect("rounds must be an integer"))
        .unwrap_or(25);

    let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
    let sketcher: Arc<dyn SketchResolver> = Arc::new(GazetteerSketcher::new());

    // Per size: a warm store (sketches sealed in, sidecars reloaded) and a
    // cold one (no sidecars; re-sketched lazily each cold round).
    let warm: Vec<TweetStore> = SIZES
        .iter()
        .map(|&n| sealed_store(&corpus(g, n), Some(sketcher.clone())))
        .collect();
    let mut cold: Vec<TweetStore> = SIZES
        .iter()
        .map(|&n| sealed_store(&corpus(g, n), None))
        .collect();
    let profs: Vec<Vec<ProfileRow>> = SIZES.iter().map(|&n| profiles(n)).collect();

    let scan = PipelineBuilder::new(g).build().unwrap();
    let sketch = PipelineBuilder::new(g).sketches(true).build().unwrap();

    // The pushdown must change nothing but the cost: pin byte-identity
    // (and that the sketch path actually engages) before timing anything.
    for (i, store) in warm.iter().enumerate() {
        let a = scan.execute(profs[i].clone(), store);
        let b = sketch.execute(profs[i].clone(), store);
        assert_eq!(a.funnel, b.funnel, "sketch path diverged");
        assert_eq!(a.users, b.users, "sketch path diverged");
        let sm = b
            .metrics
            .scan
            .as_ref()
            .expect("store run fills scan metrics");
        assert!(sm.sketch_segments > 0, "sketch path must engage");
        assert_eq!(sm.records_scanned_residual, 0, "sealed store has no tail");
        if std::env::var_os("SWEEP_DEBUG").is_some() {
            eprintln!(
                "--- scan metrics (n={}) ---\n{}",
                SIZES[i],
                a.metrics.render()
            );
            eprintln!(
                "--- sketch metrics (n={}) ---\n{}",
                SIZES[i],
                b.metrics.render()
            );
        }
    }

    let mut cells: Vec<Cell> = Vec::new();
    for size_idx in 0..SIZES.len() {
        let mut kinds = vec![Kind::E2eScan, Kind::E2eSketchWarm, Kind::E2eSketchCold];
        for &d in &WINDOW_DAYS {
            kinds.push(Kind::WindowScan(d));
            kinds.push(Kind::WindowSketch(d));
        }
        for kind in kinds {
            cells.push(Cell {
                kind,
                size_idx,
                best_nanos: u128::MAX,
            });
        }
    }

    for round in 0..=rounds {
        for cell in cells.iter_mut() {
            let p = profs[cell.size_idx].clone();
            let nanos = match cell.kind {
                Kind::E2eScan => {
                    let store = &warm[cell.size_idx];
                    let start = Instant::now();
                    let r = scan.execute(p, store);
                    let nanos = start.elapsed().as_nanos();
                    assert!(r.funnel.users_final > 0);
                    nanos
                }
                Kind::E2eSketchWarm => {
                    let store = &warm[cell.size_idx];
                    let start = Instant::now();
                    let r = sketch.execute(p, store);
                    let nanos = start.elapsed().as_nanos();
                    assert!(r.funnel.users_final > 0);
                    nanos
                }
                Kind::E2eSketchCold => {
                    // Re-installing the sketcher drops every lazily built
                    // sketch, so each round pays the full rebuild.
                    let store = &mut cold[cell.size_idx];
                    store.set_sketcher(sketcher.clone());
                    let start = Instant::now();
                    let r = sketch.execute(p, &*store);
                    let nanos = start.elapsed().as_nanos();
                    assert!(r.funnel.users_final > 0);
                    nanos
                }
                Kind::WindowScan(d) => {
                    let store = &warm[cell.size_idx];
                    let start = Instant::now();
                    let r = scan.execute_windowed(p, store, window(d));
                    let nanos = start.elapsed().as_nanos();
                    assert!(r.funnel.tweets_total > 0);
                    nanos
                }
                Kind::WindowSketch(d) => {
                    let store = &warm[cell.size_idx];
                    let start = Instant::now();
                    let r = sketch.execute_windowed(p, store, window(d));
                    let nanos = start.elapsed().as_nanos();
                    assert!(r.funnel.tweets_total > 0);
                    nanos
                }
            };
            if round > 0 {
                cell.best_nanos = cell.best_nanos.min(nanos.max(1));
            }
        }
    }

    println!("[");
    for (i, cell) in cells.iter().enumerate() {
        let n = SIZES[cell.size_idx];
        let elem_per_s = (n as u128 * 1_000_000_000 / cell.best_nanos) as u64;
        let days = cell
            .kind
            .days()
            .map(|d| format!("\"days\": {d}, "))
            .unwrap_or_default();
        println!(
            "  {{\"bench\": \"{}\", {}\"tweets\": {}, \"min_ms\": {:.3}, \"elem_per_s\": {}}}{}",
            cell.kind.label(),
            days,
            n,
            cell.best_nanos as f64 / 1e6,
            elem_per_s,
            if i + 1 == cells.len() { "" } else { "," },
        );
    }
    println!("]");
}
