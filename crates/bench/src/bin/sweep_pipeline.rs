//! Minimum-time sweep of the staged/fused pipeline matrix.
//!
//! Criterion's mean-based estimates are unusable on a shared container:
//! CPU-steal spikes inflate a 7 ms run to 70 ms and the means flip
//! randomly between cells that execute identical code. This harness
//! measures each (corpus × threads × engine) cell as the **minimum** wall
//! time over `ROUNDS` in-process runs, with the cells interleaved
//! round-robin so slow drift in the host's steal rate lands on every cell
//! equally, and prints one JSON object per cell, ready for
//! `BENCH_pipeline.json`.
//!
//! ```text
//! cargo run --release -p stir-bench --bin sweep_pipeline
//! ```

use std::time::Instant;

use stir_bench::district_points;
use stir_core::{PipelineBuilder, ProfileRow, RefinementPipeline, TweetRow};
use stir_geokr::Gazetteer;

const PROFILE_TEXTS: [&str; 4] = [
    "Seoul Yangcheon-gu",
    "Seoul Gangnam-gu",
    "Busan Jung-gu",
    "Gyeonggi-do Bucheon-si",
];

const ROUNDS: usize = 25;

type Corpus = (Vec<ProfileRow>, Vec<TweetRow>);

/// Same corpus shape as `benches/pipeline.rs`: `n` tweets over `n / 50`
/// users, ~70% carrying a district-centroid GPS fix.
fn corpus(g: &Gazetteer, n: usize) -> Corpus {
    let users = (n / 50).max(1) as u64;
    let points = district_points(g, 256, 42);
    let profiles = (0..users)
        .map(|u| ProfileRow {
            user: u,
            location_text: PROFILE_TEXTS[u as usize % PROFILE_TEXTS.len()].to_string(),
        })
        .collect();
    let tweets = (0..n as u64)
        .map(|i| {
            let user = i % users;
            if i % 10 < 7 {
                let p = points[i as usize % points.len()];
                TweetRow::tagged(user, i, p.lat, p.lon)
            } else {
                TweetRow::plain(user, i)
            }
        })
        .collect();
    (profiles, tweets)
}

struct Cell {
    label: &'static str,
    threads: usize,
    n: usize,
    pipeline: RefinementPipeline<'static>,
    best_nanos: u128,
    users_final: u64,
}

fn main() {
    let g: &'static Gazetteer = Box::leak(Box::new(Gazetteer::load()));
    let corpora: Vec<(usize, Corpus)> = [50_000usize, 200_000]
        .iter()
        .map(|&n| (n, corpus(g, n)))
        .collect();

    let mut cells: Vec<Cell> = Vec::new();
    for &(n, _) in &corpora {
        for &threads in &[1usize, 8] {
            for (label, fused, exact) in [
                ("staged", false, false),
                ("fused", true, false),
                ("fused-exact", true, true),
            ] {
                if exact && threads == 1 {
                    // Identical to plain `fused` at one thread.
                    continue;
                }
                cells.push(Cell {
                    label,
                    threads,
                    n,
                    pipeline: PipelineBuilder::new(g)
                        .threads(threads)
                        .threads_exact(exact)
                        .fused(fused)
                        .build()
                        .unwrap(),
                    best_nanos: u128::MAX,
                    users_final: 0,
                });
            }
        }
    }

    // Round-robin: one run of every cell per round (round 0 is warmup and
    // is not recorded), so a slow patch of host noise cannot single out
    // one cell's whole sample.
    for round in 0..=ROUNDS {
        for cell in cells.iter_mut() {
            let (profiles, tweets) = &corpora.iter().find(|&&(n, _)| n == cell.n).unwrap().1;
            let p = profiles.clone();
            let t = tweets.clone();
            let start = Instant::now();
            let result = cell.pipeline.execute(p, t);
            let nanos = start.elapsed().as_nanos();
            if round > 0 {
                cell.best_nanos = cell.best_nanos.min(nanos.max(1));
            }
            cell.users_final = result.funnel.users_final;
        }
    }

    println!("[");
    for (i, cell) in cells.iter().enumerate() {
        let elem_per_s = (cell.n as u128 * 1_000_000_000 / cell.best_nanos) as u64;
        println!(
            "  {{\"bench\": \"{}/t{}\", \"tweets\": {}, \"min_ms\": {:.3}, \
             \"elem_per_s\": {}, \"users_final\": {}}}{}",
            cell.label,
            cell.threads,
            cell.n,
            cell.best_nanos as f64 / 1e6,
            elem_per_s,
            cell.users_final,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    println!("]");
}
