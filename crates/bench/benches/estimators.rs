//! Event-location estimator benchmarks: Kalman vs particle filter vs the
//! closed-form baselines, and the cost of the weighted path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use stir_eventdet::{
    KalmanEstimator, LocationEstimator, MeanEstimator, MedianEstimator, Observation,
    ParticleEstimator,
};
use stir_geoindex::Point;

fn observations(n: usize, seed: u64) -> Vec<Observation> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|t| Observation {
            point: Point::new(
                37.5 + rng.gen_range(-0.3..0.3),
                127.0 + rng.gen_range(-0.3..0.3),
            ),
            weight: if rng.gen_bool(0.3) {
                1.0
            } else {
                rng.gen_range(0.02..0.6)
            },
            timestamp: t as u64,
        })
        .collect()
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimators");
    for &n in &[50usize, 500, 5_000] {
        let obs = observations(n, 1);
        group.throughput(Throughput::Elements(n as u64));
        let mean = MeanEstimator;
        let median = MedianEstimator;
        let kalman = KalmanEstimator::default();
        let particle = ParticleEstimator::default();
        let all: [(&str, &dyn LocationEstimator); 4] = [
            ("mean", &mean),
            ("median", &median),
            ("kalman", &kalman),
            ("particle", &particle),
        ];
        for (name, est) in all {
            group.bench_with_input(BenchmarkId::new(name, n), &obs, |b, obs| {
                b.iter(|| est.estimate(black_box(obs)))
            });
        }
    }
    group.finish();
}

fn bench_particle_counts(c: &mut Criterion) {
    let obs = observations(500, 2);
    let mut group = c.benchmark_group("estimators/particle_count");
    for &particles in &[128usize, 512, 2_048] {
        let est = ParticleEstimator {
            particles,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(particles), &obs, |b, obs| {
            b.iter(|| est.estimate(black_box(obs)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_estimators, bench_particle_counts
}
criterion_main!(benches);
