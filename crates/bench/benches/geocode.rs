//! Geocoder benchmarks: the per-GPS-tweet cost the paper paid 2xx,xxx
//! times — direct, cached, and through the Yahoo XML round trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use stir_bench::district_points;
use stir_geokr::yahoo::YahooPlaceFinder;
use stir_geokr::{BackendChoice, FaultPlan, ForwardGeocoder, Gazetteer, ReverseGeocoder};

fn bench_reverse(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let points = district_points(&gazetteer, 10_000, 1);
    let mut group = c.benchmark_group("geocode/reverse");
    group.throughput(Throughput::Elements(points.len() as u64));
    group.bench_function("uncached", |b| {
        b.iter(|| {
            // A fresh geocoder per iteration: every lookup misses.
            let geo = ReverseGeocoder::builder(&gazetteer)
                .capacity(1)
                .build_reverse();
            points
                .iter()
                .filter_map(|&p| geo.resolve(black_box(p)))
                .count()
        })
    });
    group.bench_function("cached", |b| {
        let geo = ReverseGeocoder::builder(&gazetteer).build_reverse();
        // Warm the quantized cells once.
        for &p in &points {
            geo.resolve(p);
        }
        b.iter(|| {
            points
                .iter()
                .filter_map(|&p| geo.resolve(black_box(p)))
                .count()
        })
    });
    group.bench_function("via_yahoo_xml", |b| {
        let api = YahooPlaceFinder::with_limits(&gazetteer, u64::MAX, 0);
        b.iter(|| {
            points
                .iter()
                .filter_map(|&p| api.lookup(black_box(p)).ok().flatten())
                .count()
        })
    });
    group.finish();
}

/// Lock-contention benchmark: N threads hammering ONE warmed geocoder.
/// `single_shard` reproduces the seed's layout (one mutex around the whole
/// cache — `with_shards(.., 1)`); `sharded` is the default power-of-two
/// shard array. On multi-core hardware the single mutex serialises the hit
/// path and throughput flat-lines as threads grow, while the sharded cache
/// scales; on a single core the two converge (no parallel hit paths exist
/// to collide).
fn bench_contention(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let points = district_points(&gazetteer, 4_000, 2);
    let mut group = c.benchmark_group("geocode/contention");
    for &threads in &[1usize, 2, 4, 8, 16] {
        group.throughput(Throughput::Elements((points.len() * threads) as u64));
        for (label, shards) in [("single_shard", 1usize), ("sharded", 64)] {
            group.bench_function(BenchmarkId::new(label, threads), |b| {
                let geo = ReverseGeocoder::builder(&gazetteer)
                    .capacity(1 << 20)
                    .shards(shards)
                    .build_reverse();
                // Warm every quantized cell: the benchmark measures the
                // hit path, where the seed design took the global lock.
                for &p in &points {
                    geo.resolve(p);
                }
                b.iter(|| {
                    std::thread::scope(|s| {
                        let handles: Vec<_> = (0..threads)
                            .map(|t| {
                                let geo = &geo;
                                let points = &points;
                                s.spawn(move || {
                                    // Offset walks so threads collide on
                                    // shards in every order.
                                    (0..points.len())
                                        .filter_map(|i| {
                                            let p = points[(i + t * 101) % points.len()];
                                            geo.resolve(black_box(p))
                                        })
                                        .count()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().unwrap())
                            .sum::<usize>()
                    })
                })
            });
        }
    }
    group.finish();
}

/// Overhead of the service layer itself: the same warmed lookups through the
/// bare gazetteer backend, the resilient decorator over a quiet endpoint, and
/// the resilient decorator riding out a 10% drop schedule. The first two
/// should be indistinguishable from `geocode/reverse/cached` modulo the trait
/// dispatch; the faulted run shows what retries + fallbacks cost.
fn bench_resilience(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let points = district_points(&gazetteer, 10_000, 3);
    let mut group = c.benchmark_group("geocode/resilience");
    group.throughput(Throughput::Elements(points.len() as u64));
    let cases = [
        ("gazetteer", BackendChoice::Gazetteer, FaultPlan::default()),
        (
            "resilient_quiet",
            BackendChoice::Resilient,
            FaultPlan::default(),
        ),
        (
            "resilient_drop10",
            BackendChoice::Resilient,
            FaultPlan::parse("drop:0.1,seed:42").unwrap(),
        ),
    ];
    for (label, backend, faults) in cases {
        group.bench_function(label, |b| {
            let geo = ReverseGeocoder::builder(&gazetteer)
                .backend(backend)
                .fault_plan(faults)
                .yahoo_limits(u64::MAX, 0)
                .build();
            for &p in &points {
                let _ = geo.lookup(p);
            }
            b.iter(|| {
                points
                    .iter()
                    .filter_map(|&p| geo.lookup(black_box(p)).ok().flatten())
                    .count()
            })
        });
    }
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let forward = ForwardGeocoder::new(&gazetteer);
    let names: Vec<&str> = gazetteer.districts().iter().map(|d| d.name_en).collect();
    let mut group = c.benchmark_group("geocode/forward");
    group.throughput(Throughput::Elements(names.len() as u64));
    group.bench_function("exact_names", |b| {
        b.iter(|| {
            names
                .iter()
                .filter(|n| {
                    forward
                        .resolve_district(black_box(n), None)
                        .unique()
                        .is_some()
                })
                .count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reverse, bench_contention, bench_resilience, bench_forward
}
criterion_main!(benches);
