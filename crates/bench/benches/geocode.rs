//! Geocoder benchmarks: the per-GPS-tweet cost the paper paid 2xx,xxx
//! times — direct, cached, and through the Yahoo XML round trip.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use stir_bench::district_points;
use stir_geokr::yahoo::YahooPlaceFinder;
use stir_geokr::{ForwardGeocoder, Gazetteer, ReverseGeocoder};

fn bench_reverse(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let points = district_points(&gazetteer, 10_000, 1);
    let mut group = c.benchmark_group("geocode/reverse");
    group.throughput(Throughput::Elements(points.len() as u64));
    group.bench_function("uncached", |b| {
        b.iter(|| {
            // A fresh geocoder per iteration: every lookup misses.
            let geo = ReverseGeocoder::with_capacity(&gazetteer, 1);
            points
                .iter()
                .filter_map(|&p| geo.resolve(black_box(p)))
                .count()
        })
    });
    group.bench_function("cached", |b| {
        let geo = ReverseGeocoder::new(&gazetteer);
        // Warm the quantized cells once.
        for &p in &points {
            geo.resolve(p);
        }
        b.iter(|| {
            points
                .iter()
                .filter_map(|&p| geo.resolve(black_box(p)))
                .count()
        })
    });
    group.bench_function("via_yahoo_xml", |b| {
        let api = YahooPlaceFinder::with_limits(&gazetteer, u64::MAX, 0);
        b.iter(|| {
            points
                .iter()
                .filter_map(|&p| api.lookup(black_box(p)).ok().flatten())
                .count()
        })
    });
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let forward = ForwardGeocoder::new(&gazetteer);
    let names: Vec<&str> = gazetteer.districts().iter().map(|d| d.name_en).collect();
    let mut group = c.benchmark_group("geocode/forward");
    group.throughput(Throughput::Elements(names.len() as u64));
    group.bench_function("exact_names", |b| {
        b.iter(|| {
            names
                .iter()
                .filter(|n| {
                    forward
                        .resolve_district(black_box(n), None)
                        .unique()
                        .is_some()
                })
                .count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reverse, bench_forward
}
criterion_main!(benches);
