//! Geocoder benchmarks: the per-GPS-tweet cost the paper paid 2xx,xxx
//! times — direct, cached, and through the Yahoo XML round trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use stir_bench::district_points;
use stir_geokr::yahoo::YahooPlaceFinder;
use stir_geokr::{ForwardGeocoder, Gazetteer, ReverseGeocoder};

fn bench_reverse(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let points = district_points(&gazetteer, 10_000, 1);
    let mut group = c.benchmark_group("geocode/reverse");
    group.throughput(Throughput::Elements(points.len() as u64));
    group.bench_function("uncached", |b| {
        b.iter(|| {
            // A fresh geocoder per iteration: every lookup misses.
            let geo = ReverseGeocoder::with_capacity(&gazetteer, 1);
            points
                .iter()
                .filter_map(|&p| geo.resolve(black_box(p)))
                .count()
        })
    });
    group.bench_function("cached", |b| {
        let geo = ReverseGeocoder::new(&gazetteer);
        // Warm the quantized cells once.
        for &p in &points {
            geo.resolve(p);
        }
        b.iter(|| {
            points
                .iter()
                .filter_map(|&p| geo.resolve(black_box(p)))
                .count()
        })
    });
    group.bench_function("via_yahoo_xml", |b| {
        let api = YahooPlaceFinder::with_limits(&gazetteer, u64::MAX, 0);
        b.iter(|| {
            points
                .iter()
                .filter_map(|&p| api.lookup(black_box(p)).ok().flatten())
                .count()
        })
    });
    group.finish();
}

/// Lock-contention benchmark: N threads hammering ONE warmed geocoder.
/// `single_shard` reproduces the seed's layout (one mutex around the whole
/// cache — `with_shards(.., 1)`); `sharded` is the default power-of-two
/// shard array. On multi-core hardware the single mutex serialises the hit
/// path and throughput flat-lines as threads grow, while the sharded cache
/// scales; on a single core the two converge (no parallel hit paths exist
/// to collide).
fn bench_contention(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let points = district_points(&gazetteer, 4_000, 2);
    let mut group = c.benchmark_group("geocode/contention");
    for &threads in &[1usize, 2, 4, 8, 16] {
        group.throughput(Throughput::Elements((points.len() * threads) as u64));
        for (label, shards) in [("single_shard", 1usize), ("sharded", 64)] {
            group.bench_function(BenchmarkId::new(label, threads), |b| {
                let geo = ReverseGeocoder::with_shards(&gazetteer, 1 << 20, shards);
                // Warm every quantized cell: the benchmark measures the
                // hit path, where the seed design took the global lock.
                for &p in &points {
                    geo.resolve(p);
                }
                b.iter(|| {
                    std::thread::scope(|s| {
                        let handles: Vec<_> = (0..threads)
                            .map(|t| {
                                let geo = &geo;
                                let points = &points;
                                s.spawn(move || {
                                    // Offset walks so threads collide on
                                    // shards in every order.
                                    (0..points.len())
                                        .filter_map(|i| {
                                            let p = points[(i + t * 101) % points.len()];
                                            geo.resolve(black_box(p))
                                        })
                                        .count()
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
                    })
                })
            });
        }
    }
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let forward = ForwardGeocoder::new(&gazetteer);
    let names: Vec<&str> = gazetteer.districts().iter().map(|d| d.name_en).collect();
    let mut group = c.benchmark_group("geocode/forward");
    group.throughput(Throughput::Elements(names.len() as u64));
    group.bench_function("exact_names", |b| {
        b.iter(|| {
            names
                .iter()
                .filter(|n| {
                    forward
                        .resolve_district(black_box(n), None)
                        .unique()
                        .is_some()
                })
                .count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reverse, bench_contention, bench_forward
}
criterion_main!(benches);
