//! End-to-end pipeline benchmarks: the staged reference path against the
//! fused morsel-driven engine on the same corpus, across the thread range.
//! The corpus is the realistic shape — district-centroid GPS fixes with a
//! GPS-less remainder, profiles cycling the classifier branches — so the
//! numbers measure the engine, not a cache-friendly toy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use stir_bench::district_points;
use stir_core::{PipelineConfig, ProfileRow, RefinementPipeline, TweetRow};
use stir_geokr::Gazetteer;

const PROFILE_TEXTS: [&str; 4] = [
    "Seoul Yangcheon-gu",
    "Seoul Gangnam-gu",
    "Busan Jung-gu",
    "Gyeonggi-do Bucheon-si",
];

/// `n` tweets over `n / 50` users: ~70% carry a district-centroid GPS fix,
/// the rest are GPS-less, mirroring the funnel's real mix after the
/// crawler (the paper's corpus is GPS-sparse; post-filter it is GPS-only).
fn corpus(g: &Gazetteer, n: usize) -> (Vec<ProfileRow>, Vec<TweetRow>) {
    let users = (n / 50).max(1) as u64;
    let points = district_points(g, 256, 42);
    let profiles = (0..users)
        .map(|u| ProfileRow {
            user: u,
            location_text: PROFILE_TEXTS[u as usize % PROFILE_TEXTS.len()].to_string(),
        })
        .collect();
    let tweets = (0..n as u64)
        .map(|i| {
            let user = i % users;
            if i % 10 < 7 {
                let p = points[i as usize % points.len()];
                TweetRow::tagged(user, i, p.lat, p.lon)
            } else {
                TweetRow::plain(user, i)
            }
        })
        .collect();
    (profiles, tweets)
}

fn bench_e2e(c: &mut Criterion) {
    let g = Gazetteer::load();
    let mut group = c.benchmark_group("pipeline/e2e");
    group.sample_size(10);
    for &n in &[50_000usize, 200_000] {
        let (profiles, tweets) = corpus(&g, n);
        group.throughput(Throughput::Elements(n as u64));
        for &threads in &[1usize, 8] {
            for (label, fused) in [("staged", false), ("fused", true)] {
                let pipeline = RefinementPipeline::new(
                    &g,
                    PipelineConfig {
                        threads,
                        fused,
                        ..Default::default()
                    },
                );
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/t{threads}"), n),
                    &(&profiles, &tweets),
                    |b, (profiles, tweets)| {
                        b.iter(|| {
                            let result = pipeline
                                .run(black_box((*profiles).clone()), black_box((*tweets).clone()));
                            black_box(result.funnel.users_final)
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
