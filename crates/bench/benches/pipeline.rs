//! End-to-end pipeline benchmarks: the staged reference path against the
//! fused morsel-driven engine on the same corpus, across the thread range.
//! The corpus is the realistic shape — district-centroid GPS fixes with a
//! GPS-less remainder, profiles cycling the classifier branches — so the
//! numbers measure the engine, not a cache-friendly toy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use stir_bench::district_points;
use stir_core::{ColumnBatch, PipelineBuilder, ProfileRow, TweetRow, NO_GPS_E6};
use stir_geokr::gazetteer::KOREA_BBOX;
use stir_geokr::Gazetteer;

const PROFILE_TEXTS: [&str; 4] = [
    "Seoul Yangcheon-gu",
    "Seoul Gangnam-gu",
    "Busan Jung-gu",
    "Gyeonggi-do Bucheon-si",
];

/// `n` tweets over `n / 50` users: ~70% carry a district-centroid GPS fix,
/// the rest are GPS-less, mirroring the funnel's real mix after the
/// crawler (the paper's corpus is GPS-sparse; post-filter it is GPS-only).
fn corpus(g: &Gazetteer, n: usize) -> (Vec<ProfileRow>, Vec<TweetRow>) {
    let users = (n / 50).max(1) as u64;
    let points = district_points(g, 256, 42);
    let profiles = (0..users)
        .map(|u| ProfileRow {
            user: u,
            location_text: PROFILE_TEXTS[u as usize % PROFILE_TEXTS.len()].to_string(),
        })
        .collect();
    let tweets = (0..n as u64)
        .map(|i| {
            let user = i % users;
            if i % 10 < 7 {
                let p = points[i as usize % points.len()];
                TweetRow::tagged(user, i, p.lat, p.lon)
            } else {
                TweetRow::plain(user, i)
            }
        })
        .collect();
    (profiles, tweets)
}

fn bench_e2e(c: &mut Criterion) {
    let g = Gazetteer::load();
    let mut group = c.benchmark_group("pipeline/e2e");
    group.sample_size(20);
    for &n in &[50_000usize, 200_000] {
        let (profiles, tweets) = corpus(&g, n);
        group.throughput(Throughput::Elements(n as u64));
        for &threads in &[1usize, 8] {
            // `fused` adapts its worker count to the machine; `fused-exact`
            // pins the configured thread count (`--threads-exact`), showing
            // what the E21 oversubscription regression cost before the
            // adaptive scheduler.
            for (label, fused, exact) in [
                ("staged", false, false),
                ("fused", true, false),
                ("fused-exact", true, true),
            ] {
                if exact && threads == 1 {
                    // Identical to plain `fused` at one thread.
                    continue;
                }
                let pipeline = PipelineBuilder::new(&g)
                    .threads(threads)
                    .threads_exact(exact)
                    .fused(fused)
                    .build()
                    .unwrap();
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/t{threads}"), n),
                    &(&profiles, &tweets),
                    |b, (profiles, tweets)| {
                        b.iter(|| {
                            let result = pipeline.execute(
                                black_box((*profiles).clone()),
                                black_box((*tweets).clone()),
                            );
                            black_box(result.funnel.users_final)
                        })
                    },
                );
            }
        }
    }
    // The columnar filter in isolation: GPS-presence + Korea-coverage
    // prescreen over a ColumnBatch's e6 grid (four i32 compares per row,
    // no `Option` discriminant) against the same predicate over row
    // structs. This is the per-morsel hot loop the fused engine runs.
    {
        const N: usize = 200_000;
        let (_, tweets) = corpus(&g, N);
        let mut batch = ColumnBatch::with_capacity(N);
        for t in &tweets {
            batch.push(t.user, t.tweet_id as i64, t.gps);
        }
        let (min_lat, max_lat) = (
            (KOREA_BBOX.min_lat * 1e6).floor() as i32,
            (KOREA_BBOX.max_lat * 1e6).ceil() as i32,
        );
        let (min_lon, max_lon) = (
            (KOREA_BBOX.min_lon * 1e6).floor() as i32,
            (KOREA_BBOX.max_lon * 1e6).ceil() as i32,
        );
        group.throughput(Throughput::Elements(N as u64));
        group.bench_function(BenchmarkId::new("columnar_filter", N), |b| {
            b.iter(|| {
                let mut kept = 0u64;
                let lats = black_box(&batch.lats_e6);
                let lons = black_box(&batch.lons_e6);
                for (&lat, &lon) in lats.iter().zip(lons) {
                    let has_gps = lat != NO_GPS_E6;
                    let inside =
                        lat >= min_lat && lat <= max_lat && lon >= min_lon && lon <= max_lon;
                    kept += (has_gps && inside) as u64;
                }
                black_box(kept)
            })
        });
        group.bench_function(BenchmarkId::new("row_filter", N), |b| {
            b.iter(|| {
                let mut kept = 0u64;
                for t in black_box(&tweets) {
                    if let Some(p) = t.gps {
                        if KOREA_BBOX.contains(p) {
                            kept += 1;
                        }
                    }
                }
                black_box(kept)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
