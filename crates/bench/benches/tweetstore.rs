//! Tweet store benchmarks: ingest and the three index paths vs full scan.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use stir_geoindex::{BBox, Point};
use stir_tweetstore::{Query, TweetRecord, TweetStore};

fn records(n: usize, seed: u64) -> Vec<TweetRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| TweetRecord {
            id: i as u64,
            user: rng.gen_range(0..1_000),
            timestamp: rng.gen_range(0..90 * 86_400),
            gps: rng
                .gen_bool(0.05)
                .then(|| Point::new(rng.gen_range(33.0..38.7), rng.gen_range(124.5..131.0))),
            text: if rng.gen_bool(0.05) {
                "just arrived in Jung-gu".into()
            } else {
                String::new()
            },
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let recs = records(100_000, 1);
    let mut group = c.benchmark_group("tweetstore/ingest");
    group.throughput(Throughput::Elements(recs.len() as u64));
    group.bench_function("append_100k", |b| {
        b.iter(|| {
            let mut store = TweetStore::new();
            for r in &recs {
                store.append(black_box(r));
            }
            store.len()
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let recs = records(200_000, 2);
    let mut store = TweetStore::new();
    for r in &recs {
        store.append(r);
    }
    let seoul = BBox::new(37.0, 126.5, 38.0, 127.5);
    let mut group = c.benchmark_group("tweetstore/query");
    group.bench_function("by_user", |b| {
        b.iter(|| Query::all().user(black_box(42)).execute(&store).len())
    });
    group.bench_function("by_time_day", |b| {
        b.iter(|| {
            Query::all()
                .between(black_box(86_400), 2 * 86_400)
                .execute(&store)
                .len()
        })
    });
    group.bench_function("by_bbox_geoindex", |b| {
        b.iter(|| Query::all().within(black_box(seoul)).execute(&store).len())
    });
    group.bench_function("bbox_via_full_scan", |b| {
        // The same predicate answered by scanning, for comparison.
        b.iter(|| {
            store
                .scan()
                .filter_map(|r| r.ok())
                .filter(|r| r.gps.is_some_and(|p| seoul.contains(p)))
                .count()
        })
    });
    group.bench_function("point_lookup", |b| {
        b.iter(|| store.get_by_id(black_box(123_456)).map(|r| r.user))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest, bench_queries
}
criterion_main!(benches);
