//! Tweet store benchmarks: ingest, the three index paths vs full scan, and
//! the pruned zero-copy scan engine vs naive full decode (E20).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use stir_geoindex::{BBox, Point};
use stir_tweetstore::{Query, ScanOptions, TweetRecord, TweetStore};

fn records(n: usize, seed: u64) -> Vec<TweetRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| TweetRecord {
            id: i as u64,
            user: rng.gen_range(0..1_000),
            timestamp: rng.gen_range(0..90 * 86_400),
            gps: rng
                .gen_bool(0.05)
                .then(|| Point::new(rng.gen_range(33.0..38.7), rng.gen_range(124.5..131.0))),
            text: if rng.gen_bool(0.05) {
                "just arrived in Jung-gu".into()
            } else {
                String::new()
            },
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let recs = records(100_000, 1);
    let mut group = c.benchmark_group("tweetstore/ingest");
    group.throughput(Throughput::Elements(recs.len() as u64));
    group.bench_function("append_100k", |b| {
        b.iter(|| {
            let mut store = TweetStore::new();
            for r in &recs {
                store.append(black_box(r));
            }
            store.len()
        })
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let recs = records(200_000, 2);
    let mut store = TweetStore::new();
    for r in &recs {
        store.append(r);
    }
    let seoul = BBox::new(37.0, 126.5, 38.0, 127.5);
    let mut group = c.benchmark_group("tweetstore/query");
    group.bench_function("by_user", |b| {
        b.iter(|| Query::all().user(black_box(42)).execute(&store).len())
    });
    group.bench_function("by_time_day", |b| {
        b.iter(|| {
            Query::all()
                .between(black_box(86_400), 2 * 86_400)
                .execute(&store)
                .len()
        })
    });
    group.bench_function("by_bbox_geoindex", |b| {
        b.iter(|| Query::all().within(black_box(seoul)).execute(&store).len())
    });
    group.bench_function("bbox_via_full_scan", |b| {
        // The same predicate answered by scanning, for comparison.
        b.iter(|| {
            store
                .scan()
                .filter_map(|r| r.ok())
                .filter(|r| r.gps.is_some_and(|p| seoul.contains(p)))
                .count()
        })
    });
    group.bench_function("point_lookup", |b| {
        b.iter(|| store.get_by_id(black_box(123_456)).map(|r| r.user))
    });
    group.finish();
}

/// A corpus shaped like real ingest: timestamps mostly increase with append
/// order (so segment zone maps carve the time axis into disjoint ranges) and
/// every record carries realistic text (so a full decode pays the String
/// allocation and UTF-8 validation the header scan skips).
fn scan_corpus(n: usize, gps_density: f64, seed: u64) -> Vec<TweetRecord> {
    const DAYS: u64 = 90;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| TweetRecord {
            id: i as u64,
            user: rng.gen_range(0..1_000),
            timestamp: (i as u64 * DAYS * 86_400) / n as u64 + rng.gen_range(0..1_800),
            gps: rng
                .gen_bool(gps_density)
                .then(|| Point::new(rng.gen_range(33.0..38.7), rng.gen_range(124.5..131.0))),
            text: format!(
                "tweet number {i} passing through Jung-gu station on the way to \
                 work, thinking about lunch near city hall"
            ),
        })
        .collect()
}

fn scan_store(recs: &[TweetRecord]) -> TweetStore {
    // Small segments give the zone maps fine pruning granularity.
    let mut store = TweetStore::with_segment_bytes(16 * 1024);
    for r in recs {
        store.append(r);
    }
    store
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("tweetstore/scan");
    for &(n, density, label) in &[
        (50_000usize, 0.05, "50k_gps5"),
        (200_000, 0.05, "200k_gps5"),
        (200_000, 0.5, "200k_gps50"),
    ] {
        let recs = scan_corpus(n, density, 3);
        let store = scan_store(&recs);
        group.throughput(Throughput::Elements(n as u64));

        // Selective query: one mid-corpus day out of 90. Zone maps skip
        // every segment outside that day without touching a byte.
        let day = Query::all().between(45 * 86_400, 46 * 86_400);
        group.bench_with_input(BenchmarkId::new("pruned_selective", label), &day, |b, q| {
            b.iter(|| {
                let (ids, _) =
                    q.scan_filtered(&store, &ScanOptions::serial(), |v| Some(v.header.id));
                black_box(ids.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_selective", label), &day, |b, q| {
            // Same predicate, answered by decoding every record in full.
            b.iter(|| {
                store
                    .scan()
                    .filter_map(|r| r.ok())
                    .filter(|r| q.matches(r))
                    .fold(0usize, |n, r| {
                        black_box(r.id);
                        n + 1
                    })
            })
        });

        // Unselective scan: every record matches, so the only difference is
        // header-only decode vs full decode (text alloc + UTF-8 check).
        let all = Query::all();
        group.bench_with_input(BenchmarkId::new("header_only_full", label), &all, |b, q| {
            b.iter(|| {
                let mut seen = 0u64;
                q.for_each(&store, |v| {
                    seen += v.header.user;
                });
                black_box(seen)
            })
        });
        group.bench_function(BenchmarkId::new("full_decode_full", label), |b| {
            b.iter(|| {
                store
                    .scan()
                    .filter_map(|r| r.ok())
                    .map(|r| black_box(r.user))
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest, bench_queries, bench_scan
}
criterion_main!(benches);
