//! Spatial index benchmarks: R-tree vs grid vs brute force on build,
//! bounding-box query and nearest-neighbour workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stir_bench::korea_points;
use stir_geoindex::{BBox, BruteForceIndex, GridIndex, KdTree, Point, RTree};

const KOREA: BBox = BBox {
    min_lat: 33.0,
    min_lon: 124.5,
    max_lat: 38.7,
    max_lon: 131.0,
};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("geoindex/build");
    for &n in &[1_000usize, 10_000, 100_000] {
        let pts = korea_points(n, 1);
        group.bench_with_input(BenchmarkId::new("rtree_bulk", n), &pts, |b, pts| {
            b.iter(|| RTree::bulk_load(black_box(pts.clone())))
        });
        group.bench_with_input(BenchmarkId::new("rtree_insert", n), &pts, |b, pts| {
            b.iter(|| {
                let mut t = RTree::new();
                for &p in pts {
                    t.insert(p);
                }
                t
            })
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &pts, |b, pts| {
            b.iter(|| GridIndex::with_items(KOREA, black_box(pts.clone()), 8))
        });
        group.bench_with_input(BenchmarkId::new("kdtree", n), &pts, |b, pts| {
            b.iter(|| KdTree::build(black_box(pts.clone())))
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("geoindex/bbox_query");
    let n = 100_000;
    let pts = korea_points(n, 2);
    let rtree = RTree::bulk_load(pts.clone());
    let grid = GridIndex::with_items(KOREA, pts.clone(), 8);
    let kdtree = KdTree::build(pts.clone());
    let brute = BruteForceIndex::from_items(pts);
    let queries: Vec<BBox> = korea_points(100, 3)
        .into_iter()
        .map(|p| {
            BBox::new(
                p.lat,
                p.lon,
                (p.lat + 0.3).min(38.7),
                (p.lon + 0.3).min(131.0),
            )
        })
        .collect();
    group.bench_function("rtree", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += rtree.query_points_in(q).len();
            }
            black_box(total)
        })
    });
    group.bench_function("grid", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += grid.query_points_in(q).len();
            }
            black_box(total)
        })
    });
    group.bench_function("kdtree", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += kdtree.query_bbox(q).len();
            }
            black_box(total)
        })
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += brute.query_points_in(q).len();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_nearest(c: &mut Criterion) {
    let mut group = c.benchmark_group("geoindex/nearest");
    let pts = korea_points(100_000, 4);
    let rtree = RTree::bulk_load(pts.clone());
    let grid = GridIndex::with_items(KOREA, pts.clone(), 8);
    let kdtree = KdTree::build(pts.clone());
    let brute = BruteForceIndex::from_items(pts);
    let queries: Vec<Point> = korea_points(256, 5);
    group.bench_function("rtree", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&q| rtree.nearest(q).unwrap().0)
                .sum::<usize>()
        })
    });
    group.bench_function("grid", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&q| grid.nearest(q).unwrap().0)
                .sum::<usize>()
        })
    });
    group.bench_function("kdtree", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&q| kdtree.nearest(q).unwrap().0)
                .sum::<usize>()
        })
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&q| brute.nearest(q).unwrap().0)
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_query, bench_nearest
}
criterion_main!(benches);
