//! Figure-scale benchmarks: the cost of regenerating each paper artifact.
//!
//! One group per experiment family:
//! * `figures/fig6_fig7` — the Korean analysis behind Figs. 6–7 and the
//!   tweets-per-group slide, at growing fractions of paper scale.
//! * `figures/compare` — the Lady Gaga streaming analysis (slides 4–5).
//! * `figures/ablation` — district vs city grouping grain (§III-B).
//! * `figures/eventloc` — the E8 weighted-estimation experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stir_bench::korean_dataset;
use stir_core::{
    Granularity, GroupTable, PipelineBuilder, PipelineInput, ProfileRow, RefinementPipeline,
    ReliabilityWeights, TweetRow,
};
use stir_eventdet::weighted::RawReport;
use stir_eventdet::{LocationEstimator, MeanEstimator, ObservationBuilder};
use stir_geoindex::Point;
use stir_geokr::Gazetteer;
use stir_twitter_sim::datasets::{Dataset, DatasetSpec};
use stir_twitter_sim::event::{inject, EventScenario};

fn run_pipeline(gazetteer: &Gazetteer, dataset: &Dataset, granularity: Granularity) -> GroupTable {
    let pipeline = PipelineBuilder::new(gazetteer)
        .granularity(granularity)
        .build()
        .unwrap();
    let result = pipeline.execute(
        dataset.users.iter().map(|u| ProfileRow {
            user: u.id.0,
            location_text: u.location_text.clone(),
        }),
        PipelineInput::rows(dataset.users.iter().flat_map(|u| {
            dataset
                .user_tweets(gazetteer, u.id)
                .into_iter()
                .map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
        })),
    );
    GroupTable::compute(&result.users)
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let mut group = c.benchmark_group("figures/fig6_fig7");
    group.sample_size(10);
    for &users in &[1_000usize, 5_220] {
        let dataset = korean_dataset(&gazetteer, users, 2012);
        group.bench_with_input(BenchmarkId::from_parameter(users), &dataset, |b, d| {
            b.iter(|| run_pipeline(&gazetteer, black_box(d), Granularity::District).total_users)
        });
    }
    group.finish();
}

/// Thread sweep over the pipeline's geocode stage: the dynamic block
/// scheduler at 1/2/4/8 workers on the same dataset. With one core the
/// curve is flat (plus scheduling overhead); on real hardware it tracks
/// the contention benchmark's scaling.
fn bench_thread_sweep(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let dataset = korean_dataset(&gazetteer, 2_000, 2012);
    let mut group = c.benchmark_group("figures/thread_sweep");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &dataset, |b, d| {
            let pipeline = PipelineBuilder::new(&gazetteer)
                .threads(threads)
                .build()
                .unwrap();
            b.iter(|| {
                let result = pipeline.execute(
                    d.users.iter().map(|u| ProfileRow {
                        user: u.id.0,
                        location_text: u.location_text.clone(),
                    }),
                    PipelineInput::rows(d.users.iter().flat_map(|u| {
                        d.user_tweets(&gazetteer, u.id)
                            .into_iter()
                            .map(|t| TweetRow {
                                user: t.user.0,
                                tweet_id: t.id.0,
                                gps: t.gps,
                            })
                    })),
                );
                black_box(result.metrics.geocode.fixes)
            })
        });
    }
    group.finish();
}

fn bench_compare(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let dataset = Dataset::generate(
        DatasetSpec {
            n_users: 20_000,
            ..DatasetSpec::lady_gaga_paper()
        },
        &gazetteer,
        2012,
    );
    let mut group = c.benchmark_group("figures/compare");
    group.sample_size(10);
    group.bench_function("lady_gaga_20k", |b| {
        b.iter(|| run_pipeline(&gazetteer, black_box(&dataset), Granularity::District).total_users)
    });
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let dataset = korean_dataset(&gazetteer, 2_000, 2012);
    let mut group = c.benchmark_group("figures/ablation");
    group.sample_size(10);
    group.bench_function("district_grain", |b| {
        b.iter(|| run_pipeline(&gazetteer, black_box(&dataset), Granularity::District).total_users)
    });
    group.bench_function("city_grain", |b| {
        b.iter(|| run_pipeline(&gazetteer, black_box(&dataset), Granularity::City).total_users)
    });
    group.finish();
}

fn bench_eventloc(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let dataset = korean_dataset(&gazetteer, 3_000, 2012);
    let pipeline = RefinementPipeline::with_defaults(&gazetteer);
    let result = pipeline.execute(
        dataset.users.iter().map(|u| ProfileRow {
            user: u.id.0,
            location_text: u.location_text.clone(),
        }),
        PipelineInput::rows(dataset.users.iter().flat_map(|u| {
            dataset
                .user_tweets(&gazetteer, u.id)
                .into_iter()
                .map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
        })),
    );
    let scenario = EventScenario::earthquake(Point::new(37.5, 127.0), 10_000);
    let reports = inject(&scenario, &dataset, &gazetteer, 1);
    let raw: Vec<RawReport> = reports
        .iter()
        .map(|r| RawReport {
            user: r.tweet.user.0,
            timestamp: r.tweet.timestamp,
            gps: r.tweet.gps,
        })
        .collect();
    let weighted = ObservationBuilder::from_analysis(&gazetteer, &result, 0.02);
    let uniform = ObservationBuilder::from_analysis(&gazetteer, &result, 0.02)
        .with_weight_profile(ReliabilityWeights::uniform());

    let mut group = c.benchmark_group("figures/eventloc");
    group.sample_size(20);
    group.bench_function("build_weighted_observations", |b| {
        b.iter(|| weighted.build(black_box(&raw)).len())
    });
    group.bench_function("build_uniform_observations", |b| {
        b.iter(|| uniform.build(black_box(&raw)).len())
    });
    let obs = weighted.build(&raw);
    group.bench_function("estimate_mean", |b| {
        b.iter(|| MeanEstimator.estimate(black_box(&obs)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_fig6_fig7, bench_thread_sweep, bench_compare, bench_ablation, bench_eventloc
}
criterion_main!(benches);
