//! Profile-text classification benchmark: the cost of the paper's
//! refinement decision per crawled user (52,200 of them at paper scale).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use stir_geokr::Gazetteer;
use stir_textgeo::ProfileClassifier;
use stir_twitter_sim::profiles::{render_location, StyleMix};

fn bench_classify(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let classifier = ProfileClassifier::new(&gazetteer);
    // A realistic text mix straight from the generator's noise model.
    let mix = StyleMix::korean();
    let mut rng = StdRng::seed_from_u64(9);
    let texts: Vec<String> = (0..5_000)
        .map(|_| {
            let home = gazetteer.weighted_district(rng.gen::<f64>());
            render_location(mix.sample(&mut rng), home, &gazetteer, &mut rng)
        })
        .collect();

    let mut group = c.benchmark_group("textgeo/classify");
    group.throughput(Throughput::Elements(texts.len() as u64));
    group.bench_function("korean_mix", |b| {
        b.iter(|| {
            texts
                .iter()
                .filter(|t| classifier.classify(black_box(t)).is_well_defined())
                .count()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("textgeo/classify_worst_case");
    // Fuzzy-match-heavy inputs: long unknown ASCII tokens.
    let hard: Vec<String> = (0..2_000)
        .map(|i| format!("somwhere unknownville-{i} gangnm-gu"))
        .collect();
    group.throughput(Throughput::Elements(hard.len() as u64));
    group.bench_function("fuzzy_heavy", |b| {
        b.iter(|| {
            for t in &hard {
                black_box(classifier.classify(black_box(t)));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classify
}
criterion_main!(benches);
