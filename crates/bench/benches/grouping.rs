//! Grouping-method benchmarks: the paper's merge/order/classify step as a
//! function of tweets per user and cohort size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use stir_core::{
    group_cohort_with_block, group_user_keys, group_user_strings, DistrictInterner, GroupTable,
    LocationKey, LocationString, ReliabilityWeights, TieBreak,
};

fn user_strings(user: u64, n_tweets: usize, n_spots: usize, seed: u64) -> Vec<LocationString> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spots: Vec<String> = (0..n_spots).map(|i| format!("District-{i}")).collect();
    (0..n_tweets)
        .map(|_| {
            // Zipf-ish skew toward the first spots.
            let r: f64 = rng.gen::<f64>();
            let idx = ((r * r) * n_spots as f64) as usize;
            LocationString {
                user,
                state_profile: "Seoul".into(),
                county_profile: "District-0".into(),
                state_tweet: "Seoul".into(),
                county_tweet: spots[idx.min(n_spots - 1)].clone(),
            }
        })
        .collect()
}

fn bench_group_user(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping/per_user");
    for &n in &[10usize, 100, 1_000, 10_000] {
        let strings = user_strings(1, n, 8, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &strings, |b, s| {
            b.iter(|| group_user_strings(black_box(s)).unwrap().matched_rank)
        });
    }
    group.finish();
}

/// The tentpole sweep: the published string merge against the interned
/// id merge, same workload. The string path hashes and clones `(String,
/// String)` keys per tweet; the interned path compares `u32`s into a
/// small vector — the sweep measures exactly that gap.
fn bench_interned_vs_string(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping/interned_vs_string");
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let strings = user_strings(1, n, 8, 7);
        let mut interner = DistrictInterner::new();
        let keys: Vec<LocationKey> = strings.iter().map(|s| s.to_key(&mut interner)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("string", n), &strings, |b, s| {
            b.iter(|| group_user_strings(black_box(s)).unwrap().matched_rank)
        });
        group.bench_with_input(BenchmarkId::new("interned", n), &keys, |b, k| {
            b.iter(|| {
                group_user_keys(black_box(k), &interner)
                    .unwrap()
                    .matched_rank
            })
        });
    }
    group.finish();
}

/// Whole-cohort grouping through the block scheduler at 1/2/4/8 threads.
/// On a 1-CPU container every count measures the same serial walk (parity
/// is the honest result there); on multi-core hardware the per-user merges
/// interleave and the sweep shows the fan-out.
fn bench_cohort_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping/cohort_threads");
    let users = 4_096usize;
    let mut interner = DistrictInterner::new();
    let cohort: Vec<(u64, Vec<LocationKey>)> = (0..users)
        .map(|u| {
            let strings = user_strings(u as u64, 40, 6, u as u64);
            let keys: Vec<LocationKey> = strings.iter().map(|s| s.to_key(&mut interner)).collect();
            (u as u64, keys)
        })
        .collect();
    let tweets = (users * 40) as u64;
    for &threads in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(tweets));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    group_cohort_with_block(
                        black_box(&cohort),
                        &interner,
                        TieBreak::FirstSeen,
                        threads,
                        256,
                    )
                    .0
                    .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_cohort(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping/cohort_stats");
    for &users in &[100usize, 1_000, 10_000] {
        let cohort: Vec<_> = (0..users)
            .map(|u| group_user_strings(&user_strings(u as u64, 40, 6, u as u64)).unwrap())
            .collect();
        group.throughput(Throughput::Elements(users as u64));
        group.bench_with_input(BenchmarkId::new("table", users), &cohort, |b, cohort| {
            b.iter(|| GroupTable::compute(black_box(cohort)).total_users)
        });
        group.bench_with_input(BenchmarkId::new("weights", users), &cohort, |b, cohort| {
            b.iter(|| ReliabilityWeights::from_cohort(black_box(cohort), 0.02).as_array())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_group_user, bench_interned_vs_string, bench_cohort_threads, bench_cohort
}
criterion_main!(benches);
