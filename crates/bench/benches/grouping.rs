//! Grouping-method benchmarks: the paper's merge/order/classify step as a
//! function of tweets per user and cohort size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use stir_core::{group_user_strings, GroupTable, LocationString, ReliabilityWeights};

fn user_strings(user: u64, n_tweets: usize, n_spots: usize, seed: u64) -> Vec<LocationString> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spots: Vec<String> = (0..n_spots).map(|i| format!("District-{i}")).collect();
    (0..n_tweets)
        .map(|_| {
            // Zipf-ish skew toward the first spots.
            let r: f64 = rng.gen::<f64>();
            let idx = ((r * r) * n_spots as f64) as usize;
            LocationString {
                user,
                state_profile: "Seoul".into(),
                county_profile: "District-0".into(),
                state_tweet: "Seoul".into(),
                county_tweet: spots[idx.min(n_spots - 1)].clone(),
            }
        })
        .collect()
}

fn bench_group_user(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping/per_user");
    for &n in &[10usize, 100, 1_000, 10_000] {
        let strings = user_strings(1, n, 8, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &strings, |b, s| {
            b.iter(|| group_user_strings(black_box(s)).unwrap().matched_rank)
        });
    }
    group.finish();
}

fn bench_cohort(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping/cohort_stats");
    for &users in &[100usize, 1_000, 10_000] {
        let cohort: Vec<_> = (0..users)
            .map(|u| group_user_strings(&user_strings(u as u64, 40, 6, u as u64)).unwrap())
            .collect();
        group.throughput(Throughput::Elements(users as u64));
        group.bench_with_input(BenchmarkId::new("table", users), &cohort, |b, cohort| {
            b.iter(|| GroupTable::compute(black_box(cohort)).total_users)
        });
        group.bench_with_input(BenchmarkId::new("weights", users), &cohort, |b, cohort| {
            b.iter(|| ReliabilityWeights::from_cohort(black_box(cohort), 0.02).as_array())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_group_user, bench_cohort
}
criterion_main!(benches);
