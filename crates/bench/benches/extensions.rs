//! Benchmarks for the extension modules: WAL durability, store compaction,
//! hangul romanization, mention extraction and online grouping.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use stir_core::{LocationString, OnlineGrouping};
use stir_geoindex::Point;
use stir_geokr::Gazetteer;
use stir_textgeo::hangul::romanize;
use stir_textgeo::MentionExtractor;
use stir_tweetstore::wal::Wal;
use stir_tweetstore::{gps_only, TweetRecord, TweetStore};

fn records(n: usize, gps_rate: f64, seed: u64) -> Vec<TweetRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| TweetRecord {
            id: i as u64,
            user: rng.gen_range(0..500),
            timestamp: rng.gen_range(0..86_400 * 90),
            gps: rng
                .gen_bool(gps_rate)
                .then(|| Point::new(rng.gen_range(33.0..38.7), rng.gen_range(124.5..131.0))),
            text: String::new(),
        })
        .collect()
}

fn bench_wal(c: &mut Criterion) {
    let recs = records(10_000, 0.05, 1);
    let mut group = c.benchmark_group("extensions/wal");
    group.throughput(Throughput::Elements(recs.len() as u64));
    group.sample_size(10);
    group.bench_function("append_10k_single_sync", |b| {
        b.iter(|| {
            let path =
                std::env::temp_dir().join(format!("stir-bench-wal-{}.log", std::process::id()));
            let _ = std::fs::remove_file(&path);
            let mut wal = Wal::open(&path).unwrap();
            for r in &recs {
                wal.append(black_box(r)).unwrap();
            }
            wal.sync().unwrap();
            std::fs::remove_file(&path).ok();
        })
    });
    group.bench_function("recover_10k", |b| {
        let path =
            std::env::temp_dir().join(format!("stir-bench-walrec-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        for r in &recs {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        b.iter(|| Wal::recover(black_box(&path)).unwrap().1);
        std::fs::remove_file(&path).ok();
    });
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let recs = records(100_000, 0.02, 2);
    let mut store = TweetStore::new();
    for r in &recs {
        store.append(r);
    }
    let mut group = c.benchmark_group("extensions/compaction");
    group.sample_size(10);
    group.throughput(Throughput::Elements(recs.len() as u64));
    group.bench_function("gps_only_100k", |b| {
        b.iter(|| gps_only(black_box(&store)).1.kept)
    });
    group.finish();
}

fn bench_hangul(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let names: Vec<&str> = gazetteer.districts().iter().map(|d| d.name_ko).collect();
    let mut group = c.benchmark_group("extensions/hangul");
    group.throughput(Throughput::Elements(names.len() as u64));
    group.bench_function("romanize_229_districts", |b| {
        b.iter(|| {
            names
                .iter()
                .map(|n| romanize(black_box(n)).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_mentions(c: &mut Criterion) {
    let gazetteer = Gazetteer::load();
    let extractor = MentionExtractor::new(&gazetteer);
    let texts: Vec<String> = (0..2_000)
        .map(|i| match i % 4 {
            0 => "just arrived in Yangcheon-gu haha".to_string(),
            1 => "coffee time at work ㅋㅋ".to_string(),
            2 => format!("meeting friends downtown {i}"),
            _ => "오늘 강남구 날씨 좋다".to_string(),
        })
        .collect();
    let mut group = c.benchmark_group("extensions/mentions");
    group.throughput(Throughput::Elements(texts.len() as u64));
    group.bench_function("extract_mixed_2k", |b| {
        b.iter(|| {
            texts
                .iter()
                .map(|t| extractor.districts(black_box(t)).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_online_grouping(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let counties = ["Guro-gu", "Mapo-gu", "Jung-gu", "Gangnam-gu", "Songpa-gu"];
    let strings: Vec<LocationString> = (0..50_000)
        .map(|i| LocationString {
            user: i % 500,
            state_profile: "Seoul".into(),
            county_profile: "Guro-gu".into(),
            state_tweet: "Seoul".into(),
            county_tweet: counties[rng.gen_range(0..counties.len())].into(),
        })
        .collect();
    let mut group = c.benchmark_group("extensions/online_grouping");
    group.sample_size(10);
    group.throughput(Throughput::Elements(strings.len() as u64));
    // The deprecated string shim: four string-hash interns per push.
    #[allow(deprecated)]
    group.bench_function("push_50k_strings_500_users", |b| {
        b.iter(|| {
            let mut og = OnlineGrouping::new();
            for s in &strings {
                og.push(black_box(s));
            }
            og.len()
        })
    });
    // The keyed path: intern each district once up front, then push plain
    // `Copy` keys — what the shim's deprecation note tells callers to do.
    group.bench_function("push_key_50k_strings_500_users", |b| {
        b.iter(|| {
            let mut og = OnlineGrouping::new();
            let profile = og.intern_district("Seoul", "Guro-gu");
            let county_ids: Vec<_> = counties
                .iter()
                .map(|c| og.intern_district("Seoul", c))
                .collect();
            for s in &strings {
                let tweet = county_ids[counties.iter().position(|&c| c == s.county_tweet).unwrap()];
                let key = og.key(black_box(s.user), profile, tweet);
                og.push_key(key);
            }
            og.len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_wal, bench_compaction, bench_hangul, bench_mentions, bench_online_grouping
}
criterion_main!(benches);
