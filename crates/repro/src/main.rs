//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--seed N] [--scale F] [--paper-scale] [--threads N]
//!                    [--threads-exact] [--backend gazetteer|yahoo|resilient]
//!                    [--faults SPEC] [--from-store] [--shards N]
//!                    [--store-format v1|v2] [--sketches on|off] [--staged]
//!                    [--verbose]
//!
//! experiments:
//!   table1    Table I   example location strings
//!   table2    Table II  merged & ordered strings with matched ranks
//!   fig3      Fig. 3    raw profile-location samples with classifications
//!   fig4      Fig. 4    GPS tweets whose text mentions a place (precision)
//!   fig5      Fig. 5    Yahoo XML response round trip
//!   funnel    §III-B    data refinement funnel
//!   fig6      Fig. 6    average number of tweet locations per group
//!   fig7      Fig. 7    number of users per group
//!   tweets    slides    number of tweets per group
//!   compare   slides    Korean vs Lady Gaga dataset comparison
//!   eventloc  §V / E8   reliability-weighted event location estimation
//!   ablation  §III-B    metropolitan-split vs city-grain grouping
//!   regional  extension reliability by profile region (metro vs provincial)
//!   export              write group/funnel/cohort/regional CSVs (--out DIR)
//!   detect    extension detection-quality benchmark (rate/false-alarm/latency/error)
//!   nonegroup extension diagnose the None group (commuters vs relocated)
//!   diurnal   extension hour-of-day posting profiles per group
//!   report              write a full markdown report (--out DIR)
//!   sensitivity extension tie-break policies + GPS-adoption sweep
//!   stream    E23      Fig. 7 from the incremental streaming session
//!                      (--restore-midway checkpoints + resumes halfway)
//!   all                 everything above, in order
//! ```
//!
//! Default scale is 1/10 of the paper (5,220 users); `--paper-scale` runs
//! the full 52,200. Everything is deterministic in `--seed`.

mod context;
mod experiments;

use std::path::PathBuf;

use context::Options;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, opts, out_dir) = match parse(&args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `repro help` for usage");
            std::process::exit(2);
        }
    };
    match cmd.as_str() {
        "table1" => experiments::table12::run_table1(&opts),
        "table2" => experiments::table12::run_table2(&opts),
        "fig3" => experiments::fig3::run(&opts),
        "fig4" => experiments::fig4::run(&opts),
        "fig5" => experiments::fig5::run(&opts),
        "funnel" => experiments::funnel::run(&opts),
        "fig6" => experiments::fig6::run(&opts),
        "fig7" => experiments::fig7::run(&opts),
        "tweets" => experiments::tweets::run(&opts),
        "compare" => experiments::compare::run(&opts),
        "eventloc" => experiments::eventloc::run(&opts),
        "ablation" => experiments::ablation::run(&opts),
        "regional" => experiments::regional::run(&opts),
        "export" => experiments::export::run(&opts, &out_dir),
        "detect" => experiments::detect::run(&opts),
        "nonegroup" => experiments::nonegroup::run(&opts),
        "diurnal" => experiments::diurnal::run(&opts),
        "report" => experiments::report_md::run(&opts, &out_dir),
        "sensitivity" => experiments::sensitivity::run(&opts),
        "stream" => experiments::stream::run(&opts),
        "all" => experiments::all::run(&opts),
        "help" | "--help" | "-h" => print_help(),
        other => {
            eprintln!("error: unknown experiment {other:?}");
            print_help();
            std::process::exit(2);
        }
    }
}

fn parse(args: &[String]) -> Result<(String, Options, PathBuf), String> {
    let mut opts = Options::default();
    let mut out_dir = PathBuf::from("repro-out");
    let mut cmd = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?;
            }
            "--scale" => {
                opts.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|_| "--scale must be a number")?;
            }
            "--paper-scale" => opts.scale = 1.0,
            "--threads" => {
                opts.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be an integer")?;
            }
            "--threads-exact" => opts.threads_exact = true,
            "--via-yahoo-xml" => opts.via_yahoo_xml = true,
            "--backend" => {
                opts.backend = it
                    .next()
                    .ok_or("--backend needs a value (gazetteer, yahoo or resilient)")?
                    .parse()
                    .map_err(|e| format!("--backend: {e}"))?;
            }
            "--faults" => {
                let spec = it
                    .next()
                    .ok_or("--faults needs a spec, e.g. drop:0.1,malformed:0.01,seed:42")?;
                opts.faults =
                    stir_core::FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))?;
            }
            "--verbose" | "-v" => opts.verbose = true,
            "--from-store" => opts.from_store = true,
            "--shards" => {
                opts.shards = it
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "--shards must be an integer")?;
                if opts.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--store-format" => {
                let spec = it.next().ok_or("--store-format needs a value (v1 or v2)")?;
                opts.store_format = stir_tweetstore::StoreFormat::parse(spec)
                    .ok_or_else(|| format!("--store-format must be v1 or v2, got {spec:?}"))?;
            }
            "--staged" => opts.staged = true,
            "--sketches" => {
                let spec = it.next().ok_or("--sketches needs a value (on or off)")?;
                opts.sketches = match spec.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--sketches must be on or off, got {other:?}")),
                };
            }
            "--restore-midway" => opts.restore_midway = true,
            "--out" => {
                out_dir = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            name => {
                if cmd.is_some() {
                    return Err(format!("unexpected argument {name:?}"));
                }
                cmd = Some(name.to_string());
            }
        }
    }
    Ok((cmd.unwrap_or_else(|| "help".to_string()), opts, out_dir))
}

fn print_help() {
    println!(
        "repro — regenerate the paper's tables and figures\n\n\
         usage: repro <experiment> [--seed N] [--scale F] [--paper-scale] [--threads N]\n\
         \x20                        [--threads-exact] [--backend gazetteer|yahoo|resilient]\n\
         \x20                        [--faults SPEC] [--via-yahoo-xml] [--from-store] [--shards N]\n\
         \x20                        [--store-format v1|v2] [--sketches on|off] [--staged] [--verbose]\n\n\
         --threads is a ceiling: the scheduler caps it at the machine's cores and falls\n\
         back to serial when a warmup sample shows workers time-slicing; --threads-exact\n\
         makes it a command again (bench escape hatch);\n\
         --backend selects the geocoding service (default gazetteer); --faults injects a\n\
         seeded fault schedule at the yahoo endpoint, e.g. drop:0.1,delay:0.05@250,malformed:0.01,seed:42\n\
         (the resilient backend rides faults out without changing any figure output);\n\
         --from-store routes tweets through a TweetStore and the zero-copy header scan\n\
         instead of feeding rows directly (figure output is byte-identical either way);\n\
         --shards N (with --from-store) splits the store into N user-hash shards and runs\n\
         the scatter-gather scan over them — output stays byte-identical to one store;\n\
         --store-format v2 (with --from-store) seals columnar STIRSEG2 segments instead of\n\
         row frames and scans them through the direct column path — again byte-identical;\n\
         --sketches on (with --from-store) materializes a group sketch per sealed segment\n\
         and answers the grouping from the sketch delta merge plus an open-tail scan\n\
         instead of scanning every record — again byte-identical, only faster;\n\
         --staged runs the staged reference pipeline instead of the fused morsel-driven\n\
         engine (again byte-identical — the flag exists to prove it);\n\
         --restore-midway (stream only) checkpoints the durable session halfway through\n\
         the firehose, drops it, and resumes from disk — output stays byte-identical\n\n\
         experiments: table1 table2 fig3 fig4 fig5 funnel fig6 fig7 tweets compare eventloc ablation regional export detect nonegroup diurnal report sensitivity stream all"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let (cmd, opts, out) = parse(&args(&["fig7"])).unwrap();
        assert_eq!(cmd, "fig7");
        assert_eq!(opts.seed, 2012);
        assert!((opts.scale - 0.1).abs() < 1e-12);
        assert!(!opts.via_yahoo_xml);
        assert_eq!(out, PathBuf::from("repro-out"));
    }

    #[test]
    fn parse_all_flags() {
        let (cmd, opts, out) = parse(&args(&[
            "export",
            "--seed",
            "7",
            "--scale",
            "0.5",
            "--threads",
            "2",
            "--via-yahoo-xml",
            "--from-store",
            "--verbose",
            "--out",
            "/tmp/x",
        ]))
        .unwrap();
        assert_eq!(cmd, "export");
        assert_eq!(opts.seed, 7);
        assert!((opts.scale - 0.5).abs() < 1e-12);
        assert_eq!(opts.threads, 2);
        assert!(opts.via_yahoo_xml);
        assert!(opts.from_store);
        assert!(opts.verbose);
        assert_eq!(out, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn parse_backend_and_faults() {
        use stir_core::BackendChoice;
        let (_, opts, _) = parse(&args(&["fig7"])).unwrap();
        assert_eq!(opts.backend, BackendChoice::Gazetteer);
        assert!(opts.faults.is_quiet());

        let (_, opts, _) = parse(&args(&[
            "fig7",
            "--backend",
            "resilient",
            "--faults",
            "drop:0.1,seed:42",
        ]))
        .unwrap();
        assert_eq!(opts.backend, BackendChoice::Resilient);
        assert!((opts.faults.drop_rate - 0.1).abs() < 1e-12);
        assert_eq!(opts.faults.seed, 42);

        let (_, opts, _) = parse(&args(&["fig7", "--backend", "yahoo"])).unwrap();
        assert_eq!(opts.backend, BackendChoice::Yahoo);

        assert!(parse(&args(&["fig7", "--backend"])).is_err());
        assert!(parse(&args(&["fig7", "--backend", "google"])).is_err());
        assert!(parse(&args(&["fig7", "--faults"])).is_err());
        assert!(parse(&args(&["fig7", "--faults", "drop:9"])).is_err());
    }

    #[test]
    fn parse_verbose_defaults_off() {
        let (_, opts, _) = parse(&args(&["funnel"])).unwrap();
        assert!(!opts.verbose);
        let (_, opts, _) = parse(&args(&["funnel", "-v"])).unwrap();
        assert!(opts.verbose);
    }

    #[test]
    fn parse_from_store_defaults_off() {
        let (_, opts, _) = parse(&args(&["fig7"])).unwrap();
        assert!(!opts.from_store);
        let (_, opts, _) = parse(&args(&["fig7", "--from-store"])).unwrap();
        assert!(opts.from_store);
    }

    #[test]
    fn parse_shards() {
        let (_, opts, _) = parse(&args(&["fig7", "--from-store"])).unwrap();
        assert_eq!(opts.shards, 1);
        let (_, opts, _) = parse(&args(&["fig7", "--from-store", "--shards", "8"])).unwrap();
        assert_eq!(opts.shards, 8);
        assert!(parse(&args(&["fig7", "--shards"])).is_err());
        assert!(parse(&args(&["fig7", "--shards", "0"])).is_err());
        assert!(parse(&args(&["fig7", "--shards", "x"])).is_err());
    }

    #[test]
    fn parse_store_format() {
        use stir_tweetstore::StoreFormat;
        let (_, opts, _) = parse(&args(&["fig7", "--from-store"])).unwrap();
        assert_eq!(opts.store_format, StoreFormat::V1);
        let (_, opts, _) = parse(&args(&["fig7", "--from-store", "--store-format", "v2"])).unwrap();
        assert_eq!(opts.store_format, StoreFormat::V2);
        let (_, opts, _) = parse(&args(&[
            "fig7",
            "--from-store",
            "--shards",
            "8",
            "--store-format",
            "v2",
        ]))
        .unwrap();
        assert_eq!(opts.store_format, StoreFormat::V2);
        assert_eq!(opts.shards, 8);
        assert!(parse(&args(&["fig7", "--store-format"])).is_err());
        assert!(parse(&args(&["fig7", "--store-format", "v3"])).is_err());
    }

    #[test]
    fn parse_sketches() {
        let (_, opts, _) = parse(&args(&["fig7", "--from-store"])).unwrap();
        assert!(!opts.sketches);
        let (_, opts, _) = parse(&args(&["fig7", "--from-store", "--sketches", "on"])).unwrap();
        assert!(opts.sketches);
        let (_, opts, _) = parse(&args(&["fig7", "--from-store", "--sketches", "off"])).unwrap();
        assert!(!opts.sketches);
        assert!(parse(&args(&["fig7", "--sketches"])).is_err());
        assert!(parse(&args(&["fig7", "--sketches", "maybe"])).is_err());
    }

    #[test]
    fn parse_staged_defaults_off() {
        let (_, opts, _) = parse(&args(&["fig7"])).unwrap();
        assert!(!opts.staged);
        let (_, opts, _) = parse(&args(&["fig7", "--staged", "--from-store"])).unwrap();
        assert!(opts.staged);
        assert!(opts.from_store);
    }

    #[test]
    fn parse_restore_midway_defaults_off() {
        let (_, opts, _) = parse(&args(&["stream"])).unwrap();
        assert!(!opts.restore_midway);
        let (cmd, opts, _) = parse(&args(&["stream", "--restore-midway"])).unwrap();
        assert_eq!(cmd, "stream");
        assert!(opts.restore_midway);
    }

    #[test]
    fn parse_threads_exact_defaults_off() {
        let (_, opts, _) = parse(&args(&["fig7", "--threads", "8"])).unwrap();
        assert!(!opts.threads_exact);
        assert_eq!(opts.threads, 8);
        let (_, opts, _) = parse(&args(&["fig7", "--threads", "8", "--threads-exact"])).unwrap();
        assert!(opts.threads_exact);
    }

    #[test]
    fn parse_paper_scale() {
        let (_, opts, _) = parse(&args(&["funnel", "--paper-scale"])).unwrap();
        assert!((opts.scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&args(&["--seed"])).is_err());
        assert!(parse(&args(&["--seed", "abc"])).is_err());
        assert!(parse(&args(&["--bogus-flag"])).is_err());
        assert!(parse(&args(&["fig7", "extra"])).is_err());
    }

    #[test]
    fn parse_no_command_is_help() {
        let (cmd, _, _) = parse(&[]).unwrap();
        assert_eq!(cmd, "help");
    }
}
