//! Shared experiment context: options, dataset generation, pipeline runs.

use stir_core::{
    AnalysisResult, BackendChoice, FaultPlan, PipelineBuilder, PipelineInput, ProfileRow,
    RefinementPipeline, TweetRow,
};
use stir_geokr::Gazetteer;
use stir_tweetstore::StoreFormat;
use stir_twitter_sim::datasets::{Dataset, DatasetSpec};

/// Command-line options shared by every experiment.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Master seed.
    pub seed: u64,
    /// Dataset scale relative to the paper (1.0 = paper scale).
    pub scale: f64,
    /// Geocoding thread ceiling — the scheduler adapts downward to the
    /// machine unless `--threads-exact`.
    pub threads: usize,
    /// Obey `--threads` exactly (`--threads-exact`): skip the adaptive
    /// availability cap and warmup collapse. Bench escape hatch.
    pub threads_exact: bool,
    /// Route geocoding through the mock Yahoo XML endpoint (legacy spelling
    /// of `--backend yahoo`).
    pub via_yahoo_xml: bool,
    /// Geocoding backend (`--backend {gazetteer,yahoo,resilient}`).
    pub backend: BackendChoice,
    /// Fault schedule injected at the Yahoo endpoint (`--faults <spec>`).
    pub faults: FaultPlan,
    /// Print pipeline stage timings / geocode throughput after each run.
    pub verbose: bool,
    /// Route tweets through a `TweetStore` and the zero-copy store scan
    /// instead of feeding rows directly (`--from-store`).
    pub from_store: bool,
    /// With `--from-store`: split the store into this many user-hash
    /// shards and run the scatter-gather scan over them (`--shards N`).
    /// Figure output is byte-identical to a single store at any count.
    pub shards: usize,
    /// With `--from-store`: sealed-segment encoding
    /// (`--store-format {v1,v2}`). `v1` keeps row frames; `v2` seals
    /// columnar `STIRSEG2` segments and scans them through the direct
    /// column path. Figure output is byte-identical either way.
    pub store_format: StoreFormat,
    /// Run the staged reference pipeline instead of the fused
    /// morsel-driven engine (`--staged`). Figure output is byte-identical
    /// either way; the flag exists to prove exactly that.
    pub staged: bool,
    /// With `--from-store`: install the gazetteer sketcher on the store so
    /// every sealed segment materializes a group sketch, and let the
    /// pipeline answer from the sketch delta merge plus a tail scan
    /// (`--sketches {on,off}`, default off). Figure output is
    /// byte-identical either way — the pushdown only skips work.
    pub sketches: bool,
    /// `stream` only: checkpoint the durable session halfway through the
    /// stream, drop it, and resume from disk before ingesting the rest
    /// (`--restore-midway`). Figure output is byte-identical either way.
    pub restore_midway: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 2012,
            scale: 0.1,
            threads: 8,
            threads_exact: false,
            via_yahoo_xml: false,
            backend: BackendChoice::default(),
            faults: FaultPlan::default(),
            verbose: false,
            from_store: false,
            shards: 1,
            store_format: StoreFormat::V1,
            staged: false,
            sketches: false,
            restore_midway: false,
        }
    }
}

/// A fully analysed dataset.
pub struct Analysed {
    /// The generated dataset.
    pub dataset: Dataset,
    /// The pipeline output.
    pub result: AnalysisResult,
}

/// Loads the gazetteer (leaked: experiments are one-shot processes).
pub fn gazetteer() -> &'static Gazetteer {
    Box::leak(Box::new(Gazetteer::load()))
}

/// The Korean dataset spec at the requested scale.
pub fn korean_spec(opts: &Options) -> DatasetSpec {
    DatasetSpec::korean_paper().scaled(opts.scale)
}

/// The Lady Gaga dataset spec at the requested scale.
pub fn lady_gaga_spec(opts: &Options) -> DatasetSpec {
    DatasetSpec::lady_gaga_paper().scaled(opts.scale)
}

/// Builds the refinement pipeline every experiment shares, from the CLI
/// options (backend, faults, threading, fused/staged engine).
pub fn pipeline(gazetteer: &'static Gazetteer, opts: &Options) -> RefinementPipeline<'static> {
    PipelineBuilder::new(gazetteer)
        .via_yahoo_xml(opts.via_yahoo_xml)
        .backend(opts.backend)
        .faults(opts.faults)
        .threads(opts.threads)
        .threads_exact(opts.threads_exact)
        .fused(!opts.staged)
        .sketches(opts.sketches)
        .build()
        .expect("experiment options form a valid pipeline config")
}

/// Generates a dataset and runs the full refinement pipeline on it.
pub fn analyse(spec: DatasetSpec, gazetteer: &'static Gazetteer, opts: &Options) -> Analysed {
    let label = spec.name;
    eprintln!(
        "[{}] generating {} users (seed {}, scale {:.2}) …",
        label, spec.n_users, opts.seed, opts.scale
    );
    let dataset = Dataset::generate(spec, gazetteer, opts.seed);
    eprintln!(
        "[{}] {} users, ~{} tweets; running refinement pipeline …",
        label,
        dataset.len(),
        dataset.total_tweets()
    );
    let pipeline = pipeline(gazetteer, opts);
    let profiles = dataset.users.iter().map(|u| ProfileRow {
        user: u.id.0,
        location_text: u.location_text.clone(),
    });
    let result = if opts.from_store && opts.shards > 1 {
        // Sharded store path: same ingest, but records land in
        // `--shards` user-hash shards and the pipeline consumes the
        // cross-shard scatter-gather scan. Every user's records stay in
        // one shard in append order, so figure output is byte-identical
        // to the single-store (and direct) path.
        let mut store = stir_tweetstore::ShardedStore::new(opts.shards);
        store.set_format(opts.store_format);
        if opts.sketches {
            // Installed before ingest, so every seal sketches itself.
            store.set_sketcher(std::sync::Arc::new(stir_core::GazetteerSketcher::new()));
        }
        dataset.for_each_tweet(gazetteer, |t| {
            store.append(&stir_tweetstore::TweetRecord {
                id: t.id.0,
                user: t.user.0,
                timestamp: t.timestamp,
                gps: t.gps,
                text: t.text.clone(),
            });
        });
        let stats = store.stats();
        eprintln!(
            "[{}] store: {} records across {} shard(s), {} segment(s), {} payload bytes, format {}",
            label,
            store.len(),
            store.shard_count(),
            stats.segments,
            stats.payload_bytes,
            store.format().as_str()
        );
        pipeline.execute(profiles, &store)
    } else if opts.from_store {
        // Store-backed path: ingest the corpus into a TweetStore, then
        // stream it back out through the zero-copy header scan. Append
        // order equals the row-based iteration order, so figure output is
        // byte-identical to the direct path.
        let mut store = stir_tweetstore::TweetStore::with_format(opts.store_format);
        if opts.sketches {
            store.set_sketcher(std::sync::Arc::new(stir_core::GazetteerSketcher::new()));
        }
        dataset.for_each_tweet(gazetteer, |t| {
            store.append(&stir_tweetstore::TweetRecord {
                id: t.id.0,
                user: t.user.0,
                timestamp: t.timestamp,
                gps: t.gps,
                text: t.text.clone(),
            });
        });
        eprintln!(
            "[{}] store: {} records in {} segment(s), {} payload bytes, format {}",
            label,
            store.len(),
            store.stats().segments,
            store.stats().payload_bytes,
            store.format().as_str()
        );
        pipeline.execute(profiles, &store)
    } else {
        let tweets = dataset.users.iter().flat_map(|u| {
            dataset
                .user_tweets(gazetteer, u.id)
                .into_iter()
                .map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
        });
        pipeline.execute(profiles, PipelineInput::rows(tweets))
    };
    eprintln!(
        "[{}] final cohort {} users / {} strings",
        label, result.funnel.users_final, result.funnel.strings_built
    );
    if opts.verbose {
        // Stage timings go to stderr so experiment stdout stays
        // byte-deterministic across invocations.
        eprintln!("[{label}] pipeline metrics:");
        eprint!("{}", result.metrics.render());
    }
    Analysed { dataset, result }
}
