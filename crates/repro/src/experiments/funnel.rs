//! E3 — the data refinement funnel (§III-B prose + the slides' "Dataset"
//! page).
//!
//! Paper targets (full scale): 52,2xx users crawled → ≈ 30k well-defined →
//! 11.1M tweets with only a few percent GPS-tagged → ≈ 1,1xx final users.
//! The funnel also reports the simulated crawl cost the paper alludes to
//! ("due to the changed policy of Twitter").

use stir_core::report;
use stir_twitter_sim::{Crawler, TwitterApi};

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs the experiment.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);

    // Crawl-cost accounting over the same dataset's follower graph.
    let api = TwitterApi::new(&analysed.dataset, g);
    let crawl = Crawler::new(&api).run(analysed.dataset.graph.best_seed(), usize::MAX);

    println!("\n=== E3 — data refinement funnel ===\n");
    println!(
        "crawl: {} users discovered in {} API requests, {} rate-limit stalls, {:.1} simulated days\n",
        crawl.users.len(),
        crawl.requests,
        crawl.rate_limit_stalls,
        crawl.simulated_days()
    );
    println!("{}", report::render_funnel(&analysed.result.funnel));
    let f = &analysed.result.funnel;
    println!("paper shape checks:");
    println!(
        "  well-defined rate {:.1}% (paper: ≈ 58% — 3x,xxx of 5x,xxx)",
        100.0 * f.well_defined_rate()
    );
    println!(
        "  GPS rate {:.2}% (paper: a few percent — 'we faced the lack of GPS coordinates')",
        100.0 * f.gps_rate()
    );
    println!(
        "  survival {:.2}% (paper: ≈ 2% — 1,1xx of 52,2xx)",
        100.0 * f.survival_rate()
    );
}
