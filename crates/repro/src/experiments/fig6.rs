//! E4 / Fig. 6 — the average number of tweet locations (distinct
//! districts) in each Top-k group.
//!
//! Paper shapes: Top-1 averages ≈ 3–4 districts; the average *increases*
//! with k ("the correlation between the profile location and the posting
//! location for tweets is decreased as the user has more places"); the
//! None group sits *low* (≈ 2.5) — narrow-mobility commuters; and the
//! user-weighted overall average is ≈ 4.

use stir_core::{report, GroupTable, TopKGroup};

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs the experiment and prints the chart.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);
    let table = GroupTable::compute(&analysed.result.users);
    print(&table);
}

/// Prints Fig. 6 from a computed table.
pub fn print(table: &GroupTable) {
    println!("\n=== Fig. 6 — average number of tweet locations in each group ===\n");
    let labels: Vec<&str> = TopKGroup::ALL.iter().map(|g| g.label()).collect();
    let values: Vec<f64> = table.rows.iter().map(|r| r.avg_locations).collect();
    println!(
        "{}",
        report::render_bar_chart("avg distinct districts per user", &labels, &values, 40)
    );
    println!(
        "Top-1 avg = {:.2} (paper: ≈ 3–4); None avg = {:.2} (paper: ≈ 2.5, the narrow-mobility group)",
        table.row(TopKGroup::Top1).avg_locations,
        table.row(TopKGroup::None).avg_locations,
    );
    println!(
        "overall user-weighted average = {:.2} districts (paper §IV closing statistic)",
        table.overall_avg_locations
    );
}
