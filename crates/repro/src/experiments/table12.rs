//! E1–E2 / Tables I & II — the text-based grouping method on display.
//!
//! Table I: the raw `user#state#county#state#county` strings for a handful
//! of users. Table II: the same strings merged, counted, ordered, with the
//! matched string and its rank marked.

use stir_core::{group_user_strings, LocationString, PipelineBuilder, ProfileRow};
use stir_geokr::ReverseGeocoder;

use crate::context::{gazetteer, korean_spec, Options};
use stir_twitter_sim::datasets::Dataset;

/// Builds a few users' worth of location strings from the simulator.
fn sample_strings(opts: &Options, max_users: usize) -> Vec<Vec<LocationString>> {
    let g = gazetteer();
    let spec = {
        let mut s = korean_spec(opts);
        s.n_users = s.n_users.min(3000);
        s
    };
    let dataset = Dataset::generate(spec, g, opts.seed);
    let pipeline = PipelineBuilder::new(g)
        .via_yahoo_xml(opts.via_yahoo_xml)
        .backend(opts.backend)
        .faults(opts.faults)
        .threads(opts.threads)
        .build()
        .expect("experiment options form a valid pipeline config");
    // Classify profiles, then walk users until we have enough with several
    // GPS tweets.
    let mut funnel = Default::default();
    let kept = pipeline.select_users(
        dataset.users.iter().map(|u| ProfileRow {
            user: u.id.0,
            location_text: u.location_text.clone(),
        }),
        &mut funnel,
    );
    let reverse = ReverseGeocoder::builder(g).build_reverse();
    let mut out = Vec::new();
    for u in &dataset.users {
        if out.len() >= max_users {
            break;
        }
        let Some(&profile_id) = kept.get(&u.id.0) else {
            continue;
        };
        // select_users hands back interned ids; the published string form
        // comes out of the pipeline's symbol table.
        let (state_p, county_p) = pipeline.interner().resolve(profile_id);
        let tweets = dataset.user_tweets(g, u.id);
        let strings: Vec<LocationString> = tweets
            .iter()
            .filter_map(|t| {
                let p = t.gps?;
                let rec = reverse.lookup(p)?;
                Some(LocationString {
                    user: u.id.0,
                    state_profile: state_p.to_string(),
                    county_profile: county_p.to_string(),
                    state_tweet: rec.state,
                    county_tweet: rec.county,
                })
            })
            .collect();
        if strings.len() >= 4 {
            out.push(strings);
        }
    }
    out
}

/// Prints Table I.
pub fn run_table1(opts: &Options) {
    let users = sample_strings(opts, 3);
    println!("\n=== Table I — example strings for location information ===\n");
    println!("User id#state in profile#county in profile#state in tweet#county in tweet");
    for strings in &users {
        for s in strings.iter().take(4) {
            println!("{s}");
        }
    }
}

/// Prints Table II.
pub fn run_table2(opts: &Options) {
    let users = sample_strings(opts, 3);
    println!("\n=== Table II — merged and ordered strings ===\n");
    println!("User id#state#county#state#county (n)   [ordered by count]");
    for strings in &users {
        let grouped = group_user_strings(strings).expect("non-empty");
        print!("{}", grouped.render_table2());
        match grouped.matched_rank {
            Some(r) => println!(
                "  → matched string at rank {r}: {} group\n",
                grouped.group()
            ),
            None => println!("  → no matched string: None group\n"),
        }
    }
}
