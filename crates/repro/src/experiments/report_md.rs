//! `repro report` — a complete markdown write-up of one analysis run:
//! funnel, group table with bootstrap CIs, reliability weights, regional
//! breakdown. One file a reader can diff across runs or commits.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use stir_core::regional::by_region;
use stir_core::{user_share_cis, GroupTable, ReliabilityWeights, TopKGroup};

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs the report generation into `out_dir/REPORT.md`.
pub fn run(opts: &Options, out_dir: &Path) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);
    let table = GroupTable::compute(&analysed.result.users);
    let cis = user_share_cis(&analysed.result.users, 500, 0.95, opts.seed);
    let weights = ReliabilityWeights::from_cohort(&analysed.result.users, 0.02);
    let regional = by_region(&analysed.result.users);
    let f = &analysed.result.funnel;

    let mut md = String::with_capacity(8 * 1024);
    let _ = writeln!(md, "# STIR analysis report\n");
    let _ = writeln!(
        md,
        "Korean dataset at scale {:.2} (seed {}): {} users generated, cohort {}.\n",
        opts.scale, opts.seed, f.users_collected, table.total_users
    );

    let _ = writeln!(md, "## Refinement funnel\n");
    let _ = writeln!(md, "| stage | count |");
    let _ = writeln!(md, "|---|---|");
    for (label, v) in [
        ("users collected", f.users_collected),
        ("well-defined profiles", f.users_well_defined),
        ("removed: vague", f.users_vague),
        ("removed: insufficient", f.users_insufficient),
        ("removed: ambiguous/multi", f.users_ambiguous),
        ("removed: foreign", f.users_foreign),
        ("removed: empty", f.users_empty),
        ("tweets examined", f.tweets_total),
        ("tweets with GPS", f.tweets_with_gps),
        ("location strings built", f.strings_built),
        ("final cohort", f.users_final),
    ] {
        let _ = writeln!(md, "| {label} | {v} |");
    }

    let _ = writeln!(md, "\n## Top-k groups (Figs. 6–7)\n");
    let _ = writeln!(
        md,
        "| group | users | users % | 95% CI | tweets % | avg districts | reliability w |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|");
    for grp in TopKGroup::ALL {
        let r = table.row(grp);
        let ci = cis.get(grp);
        let _ = writeln!(
            md,
            "| {} | {} | {:.1}% | [{:.1}, {:.1}] | {:.1}% | {:.2} | {:.3} |",
            grp.label(),
            r.users,
            r.user_pct,
            ci.lo,
            ci.hi,
            r.tweet_pct,
            r.avg_locations,
            weights.weight(grp)
        );
    }
    let _ = writeln!(
        md,
        "\nTop-1 ∪ Top-2 = **{:.1}%** (paper: \"nearly half\"); None = **{:.1}%** \
         (paper: ≈ 30%); overall average {:.2} districts per user.",
        table.top1_top2_pct(),
        table.row(TopKGroup::None).user_pct,
        table.overall_avg_locations
    );

    let _ = writeln!(md, "\n## Reliability by profile region\n");
    let _ = writeln!(
        md,
        "| profile state | users | mean P(home) | Top-1 % | None % |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|");
    for r in regional.iter().filter(|r| r.users >= 5) {
        let _ = writeln!(
            md,
            "| {} | {} | {:.3} | {:.1}% | {:.1}% |",
            r.state,
            r.users,
            r.mean_matched_fraction,
            100.0 * r.top1_share,
            100.0 * r.none_share
        );
    }

    fs::create_dir_all(out_dir).expect("create output directory");
    let path = out_dir.join("REPORT.md");
    fs::write(&path, md).expect("write report");
    println!("wrote {}", path.display());
}
