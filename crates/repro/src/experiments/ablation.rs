//! Ablation — the §III-B metropolitan-split design choice.
//!
//! The paper splits metropolitan cities into their gu "because these cities
//! are too large and the populations are extremely high". This ablation
//! re-runs the grouping at city grain (metros as single units) and shows
//! what the split buys: at city grain, matching inside a metro is almost
//! free (any tweet anywhere in Seoul matches a Seoul profile), so Top-1
//! inflates and the None group deflates — the analysis stops measuring
//! intra-city mobility at all.

use stir_core::{
    Granularity, GroupTable, PipelineBuilder, PipelineInput, ProfileRow, TopKGroup, TweetRow,
};
use stir_twitter_sim::datasets::Dataset;

use crate::context::{gazetteer, korean_spec, Options};

/// Runs the ablation.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let dataset = Dataset::generate(korean_spec(opts), g, opts.seed);
    let tables: Vec<(Granularity, GroupTable)> = [Granularity::District, Granularity::City]
        .into_iter()
        .map(|grain| {
            let pipeline = PipelineBuilder::new(g)
                .via_yahoo_xml(opts.via_yahoo_xml)
                .backend(opts.backend)
                .faults(opts.faults)
                .threads(opts.threads)
                .granularity(grain)
                .build()
                .expect("experiment options form a valid pipeline config");
            let profiles = dataset.users.iter().map(|u| ProfileRow {
                user: u.id.0,
                location_text: u.location_text.clone(),
            });
            let tweets = dataset.users.iter().flat_map(|u| {
                dataset.user_tweets(g, u.id).into_iter().map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
            });
            let result = pipeline.execute(profiles, PipelineInput::rows(tweets));
            (grain, GroupTable::compute(&result.users))
        })
        .collect();

    println!("\n=== ablation — metropolitan split (paper) vs city grain ===\n");
    println!(
        "{:<8} {:>16} {:>16}    {:>14} {:>14}",
        "group", "district users %", "city users %", "district locs", "city locs"
    );
    println!("{}", "-".repeat(76));
    let (_, district) = &tables[0];
    let (_, city) = &tables[1];
    for grp in TopKGroup::ALL {
        println!(
            "{:<8} {:>15.2}% {:>15.2}%    {:>14.2} {:>14.2}",
            grp.label(),
            district.row(grp).user_pct,
            city.row(grp).user_pct,
            district.row(grp).avg_locations,
            city.row(grp).avg_locations
        );
    }
    println!("{}", "-".repeat(76));
    println!(
        "\nTop-1: {:.1}% → {:.1}% when metros collapse; None: {:.1}% → {:.1}%",
        district.row(TopKGroup::Top1).user_pct,
        city.row(TopKGroup::Top1).user_pct,
        district.row(TopKGroup::None).user_pct,
        city.row(TopKGroup::None).user_pct
    );
    println!(
        "overall avg locations: {:.2} → {:.2} (coarser grain sees less mobility)",
        district.overall_avg_locations, city.overall_avg_locations
    );
    let cmp = stir_core::compare(district, city);
    println!(
        "total variation distance between the two user distributions: {:.3}",
        cmp.user_share_tvd
    );
}
