//! E13 / extension — regional reliability breakdown.
//!
//! The paper proposes one weight factor per Top-k group; this extension
//! asks whether the factor should also depend on *where* the profile
//! points. Metropolitan profiles name one gu among dozens of neighbours —
//! easy to be near, hard to be in — while a provincial profile names a
//! whole si/gun.

use stir_core::regional::by_region;
use stir_geokr::Province;

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs the experiment.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);
    let rows = by_region(&analysed.result.users);

    println!("\n=== extension — reliability by profile region ===\n");
    println!(
        "{:<20} {:>6} {:>12} {:>10} {:>10}",
        "profile state", "users", "mean P(home)", "Top-1 %", "None %"
    );
    println!("{}", "-".repeat(64));
    for r in rows.iter().filter(|r| r.users >= 5) {
        println!(
            "{:<20} {:>6} {:>12.3} {:>9.1}% {:>9.1}%",
            r.state,
            r.users,
            r.mean_matched_fraction,
            100.0 * r.top1_share,
            100.0 * r.none_share
        );
    }
    println!("{}", "-".repeat(64));

    // Metro vs non-metro aggregate.
    let is_metro = |state: &str| {
        Province::ALL
            .iter()
            .any(|p| p.is_metropolitan() && p.name_en() == state)
    };
    let (mut mu, mut mf, mut pu, mut pf) = (0u64, 0.0f64, 0u64, 0.0f64);
    for r in &rows {
        if is_metro(&r.state) {
            mu += r.users;
            mf += r.mean_matched_fraction * r.users as f64;
        } else {
            pu += r.users;
            pf += r.mean_matched_fraction * r.users as f64;
        }
    }
    if mu > 0 && pu > 0 {
        println!(
            "\nmetropolitan profiles: {} users, mean P(tweet from profile district) = {:.3}",
            mu,
            mf / mu as f64
        );
        println!(
            "provincial profiles:   {} users, mean P(tweet from profile district) = {:.3}",
            pu,
            pf / pu as f64
        );
        println!(
            "\n(district grain makes metro matching strictly harder — the same effect the\n\
             §III-B ablation shows from the other direction.)"
        );
    }
}
