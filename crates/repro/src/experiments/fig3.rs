//! E9 / Fig. 3 — a sample of raw profile-location strings with the
//! classifier's verdicts, mirroring the paper's screenshot of messy
//! profiles ("darangland :)", "Earth", two-location entries, exact
//! coordinates …).

use stir_textgeo::{ProfileClass, ProfileClassifier};
use stir_twitter_sim::datasets::Dataset;

use crate::context::{gazetteer, korean_spec, Options};

/// Runs the experiment.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let spec = {
        let mut s = korean_spec(opts);
        s.n_users = s.n_users.min(400);
        s
    };
    let dataset = Dataset::generate(spec, g, opts.seed);
    let classifier = ProfileClassifier::new(g);

    println!("\n=== Fig. 3 — locations in user profiles (sample + verdicts) ===\n");
    println!("{:<34} classification", "profile location text");
    println!("{}", "-".repeat(70));
    // Show a diverse sample: walk users, print one per distinct verdict
    // kind first, then fill up to 24 rows.
    let mut shown = 0;
    let mut seen_kinds: Vec<&'static str> = Vec::new();
    for u in &dataset.users {
        if shown >= 24 {
            break;
        }
        let class = classifier.classify(&u.location_text);
        let kind = kind_label(&class);
        let fresh = !seen_kinds.contains(&kind);
        if fresh || shown >= 12 {
            seen_kinds.push(kind);
            let text = if u.location_text.is_empty() {
                "(empty)"
            } else {
                &u.location_text
            };
            println!("{:<34} {}", truncate(text, 32), describe(g, &class));
            shown += 1;
        }
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let t: String = s.chars().take(n - 1).collect();
        format!("{t}…")
    }
}

fn kind_label(c: &ProfileClass) -> &'static str {
    match c {
        ProfileClass::WellDefined(_) => "well-defined",
        ProfileClass::Coordinates(_) => "coordinates",
        ProfileClass::Insufficient(_) => "insufficient",
        ProfileClass::Vague => "vague",
        ProfileClass::Ambiguous(_) => "ambiguous",
        ProfileClass::Foreign => "foreign",
        ProfileClass::Empty => "empty",
    }
}

fn describe(g: &stir_geokr::Gazetteer, c: &ProfileClass) -> String {
    match c {
        ProfileClass::WellDefined(id) => {
            let d = g.district(*id);
            format!("well-defined → {} {}", d.province.name_en(), d.name_en)
        }
        ProfileClass::Coordinates(p) => format!("coordinates → {p}"),
        ProfileClass::Insufficient(level) => format!("insufficient ({level:?}) — removed"),
        ProfileClass::Vague => "vague — removed".to_string(),
        ProfileClass::Ambiguous(ids) => format!("ambiguous ({} candidates) — removed", ids.len()),
        ProfileClass::Foreign => "foreign — removed".to_string(),
        ProfileClass::Empty => "empty — removed".to_string(),
    }
}
