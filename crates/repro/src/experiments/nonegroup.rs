//! E15 / extension — diagnosing the None group.
//!
//! §IV speculates about the ~30% of users who never tweet from their
//! profile district: "the users may provide their hometown location for
//! the profile, but they usually stay outside for work and return home
//! late only for sleep. Also they may stick in a specific place for a long
//! time, and their mobility range may not be wide." Two populations:
//! *commuters* (top tweet district near home) and *relocated* users (top
//! tweet district far away). This experiment separates them from the data
//! alone — top-tweet-district distance and adjacency to the profile
//! district — and checks the split against the generator's hidden
//! archetypes.

use stir_core::TopKGroup;
use stir_geokr::DistrictId;
use stir_twitter_sim::Archetype;

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs the experiment.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);

    let resolve = |state: &str, county: &str| -> Option<DistrictId> {
        g.find_by_name_en(county)
            .iter()
            .copied()
            .find(|&id| g.district(id).province.name_en() == state)
    };

    let mut near = 0u64; // top district adjacent to / same as profile's neighbourhood
    let mut far = 0u64;
    let mut distances: Vec<f64> = Vec::new();
    let mut truth_commuter_near = 0u64;
    let mut truth_relocated_far = 0u64;
    let mut truth_checked = 0u64;

    for u in analysed
        .result
        .users
        .iter()
        .filter(|u| u.group() == TopKGroup::None)
    {
        let Some(profile) = resolve(&u.state_profile, &u.county_profile) else {
            continue;
        };
        let top = &u.entries[0];
        let Some(top_d) = resolve(&top.state, &top.county) else {
            continue;
        };
        let dist = g
            .district(profile)
            .centroid
            .haversine_km(g.district(top_d).centroid);
        distances.push(dist);
        let adjacent = g.adjacent_districts(profile).contains(&top_d);
        let is_near = adjacent || dist < 25.0;
        if is_near {
            near += 1;
        } else {
            far += 1;
        }
        // Validate against the generator's hidden archetype.
        let truth = &analysed.dataset.truth[u.user as usize];
        match truth.archetype {
            Archetype::Commuter => {
                truth_checked += 1;
                if is_near {
                    truth_commuter_near += 1;
                }
            }
            Archetype::Relocated => {
                truth_checked += 1;
                if !is_near {
                    truth_relocated_far += 1;
                }
            }
            _ => {}
        }
    }

    distances.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |q: f64| distances[((distances.len() - 1) as f64 * q) as usize];

    println!("\n=== extension — diagnosing the None group (§IV's two scenarios) ===\n");
    println!("None-group users analysed: {}", near + far);
    println!(
        "  top tweet district NEAR the profile district (adjacent or < 25 km): {} ({:.0}%) → commuters",
        near,
        100.0 * near as f64 / (near + far).max(1) as f64
    );
    println!(
        "  top tweet district FAR from the profile district:                  {} ({:.0}%) → relocated",
        far,
        100.0 * far as f64 / (near + far).max(1) as f64
    );
    if !distances.is_empty() {
        println!(
            "\n  distance profile (profile district → top tweet district):\n\
             \x20   p25 {:.0} km · median {:.0} km · p75 {:.0} km · max {:.0} km",
            pct(0.25),
            pct(0.5),
            pct(0.75),
            distances[distances.len() - 1]
        );
    }
    if truth_checked > 0 {
        println!(
            "\nground-truth check ({} commuter/relocated users in the None group):\n\
             \x20 commuters classified near: {} · relocated classified far: {} → {:.0}% diagnostic accuracy",
            truth_checked,
            truth_commuter_near,
            truth_relocated_far,
            100.0 * (truth_commuter_near + truth_relocated_far) as f64 / truth_checked as f64
        );
    }
    println!(
        "\n(the paper could only speculate about these users; with distance + adjacency the\n\
         two §IV scenarios separate cleanly.)"
    );
}
