//! E7 / slides 4–5 — Korean vs Lady Gaga dataset comparison.
//!
//! The slides compare users-per-group percentages and average tweet
//! locations per group across the two collections. Expected shape: the
//! streaming sample's global, event-driven audience is less home-anchored
//! (smaller Top-1∪Top-2, larger None) and — with only a tweet or two
//! visible per user — shows far fewer distinct districts per user.

use stir_core::{GroupTable, TopKGroup};

use crate::context::{analyse, gazetteer, korean_spec, lady_gaga_spec, Options};

/// Runs the experiment.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let korean = GroupTable::compute(&analyse(korean_spec(opts), g, opts).result.users);
    let gaga = GroupTable::compute(&analyse(lady_gaga_spec(opts), g, opts).result.users);
    print(&korean, &gaga);
}

/// Prints the two slide charts side by side.
pub fn print(korean: &GroupTable, gaga: &GroupTable) {
    println!("\n=== slides 4–5 — Korean vs Lady Gaga datasets ===\n");
    println!(
        "{:<8} {:>14} {:>14}    {:>14} {:>14}",
        "group", "KR users %", "LG users %", "KR avg.locs", "LG avg.locs"
    );
    println!("{}", "-".repeat(72));
    for g in TopKGroup::ALL {
        let k = korean.row(g);
        let l = gaga.row(g);
        println!(
            "{:<8} {:>13.2}% {:>13.2}%    {:>14.2} {:>14.2}",
            g.label(),
            k.user_pct,
            l.user_pct,
            k.avg_locations,
            l.avg_locations
        );
    }
    println!("{}", "-".repeat(72));
    println!(
        "{:<8} {:>14} {:>14}",
        "cohort", korean.total_users, gaga.total_users
    );
    println!(
        "\nTop-1+Top-2: KR {:.1}% vs LG {:.1}%   |   None: KR {:.1}% vs LG {:.1}%",
        korean.top1_top2_pct(),
        gaga.top1_top2_pct(),
        korean.row(TopKGroup::None).user_pct,
        gaga.row(TopKGroup::None).user_pct
    );
    println!(
        "overall avg districts: KR {:.2} vs LG {:.2}",
        korean.overall_avg_locations, gaga.overall_avg_locations
    );
    let cmp = stir_core::compare(korean, gaga);
    println!(
        "total variation distance between the two user distributions: {:.3}",
        cmp.user_share_tvd
    );
}
