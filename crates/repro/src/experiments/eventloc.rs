//! E8 / §V future work — reliability-weighted event location estimation.
//!
//! The paper's conclusion: "we can use the analysis result of this paper to
//! determine the weight factor for the location information, and it might
//! be helpful to improve the performance for the event location
//! estimation." We run it: inject ground-truth earthquakes, feed the mixed
//! observation set (GPS fixes + profile-derived positions) to every
//! estimator twice — once with uniform weights (the Toretter/Twitris
//! baseline behaviour) and once with the Top-k reliability weights — and
//! compare the error in km.

use stir_core::{GroupTable, ReliabilityWeights};
use stir_eventdet::eval::{evaluate, mean_error};
use stir_eventdet::weighted::RawReport;
use stir_eventdet::{
    KalmanEstimator, LocationEstimator, MeanEstimator, MedianEstimator, Observation,
    ObservationBuilder, ParticleEstimator,
};
use stir_geoindex::Point;
use stir_textgeo::MentionExtractor;
use stir_twitter_sim::event::{inject, EventScenario};

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Epicenters for the trials: dense metro, secondary metro, provincial.
const EPICENTERS: [(f64, f64, &str); 3] = [
    (37.50, 127.00, "Seoul"),
    (35.17, 129.00, "Busan"),
    (36.55, 128.15, "Gyeongbuk inland"),
];

/// Runs the experiment.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);
    let table = GroupTable::compute(&analysed.result.users);
    let weights = ReliabilityWeights::from_cohort(&analysed.result.users, 0.02);
    println!("\n=== E8 — reliability-weighted event location estimation ===\n");
    println!("learned weights from the cohort (w = P(tweet from profile district)):");
    for (grp, w) in stir_core::TopKGroup::ALL.iter().zip(weights.as_array()) {
        println!(
            "  {:<8} {:.3}  ({} users)",
            grp.label(),
            w,
            table.row(*grp).users
        );
    }

    let weighted = ObservationBuilder::from_analysis(g, &analysed.result, 0.02);
    let mean = MeanEstimator;
    let median = MedianEstimator;
    let kalman = KalmanEstimator::default();
    let particle = ParticleEstimator::default();
    let estimators: [&dyn LocationEstimator; 4] = [&mean, &median, &kalman, &particle];

    let extractor = MentionExtractor::new(g);
    let mut uw_errors: Vec<Vec<f64>> = vec![Vec::new(); estimators.len()];
    let mut w_errors: Vec<Vec<f64>> = vec![Vec::new(); estimators.len()];
    let mut m_errors: Vec<Vec<f64>> = vec![Vec::new(); estimators.len()];

    println!(
        "\n{:<18} {:<16} {:>12} {:>12} {:>12}",
        "epicenter", "estimator", "unweighted", "weighted", "+mentions"
    );
    println!("{}", "-".repeat(76));
    for (trial, &(lat, lon, label)) in EPICENTERS.iter().enumerate() {
        let truth = Point::new(lat, lon);
        let scenario = EventScenario::earthquake(truth, 10_000);
        let reports = inject(&scenario, &analysed.dataset, g, opts.seed + trial as u64);
        let raw: Vec<RawReport> = reports
            .iter()
            .map(|r| RawReport {
                user: r.tweet.user.0,
                timestamp: r.tweet.timestamp,
                gps: r.tweet.gps,
            })
            .collect();

        let obs_weighted = weighted.build(&raw);
        // The unweighted baseline is what Twitris/Toretter did: trust every
        // profile location fully, grouped or not.
        let mut uniform = ObservationBuilder::from_analysis(g, &analysed.result, 0.02)
            .with_weight_profile(ReliabilityWeights::uniform());
        uniform.unknown_user_weight = 1.0;
        let obs_uniform = uniform.build(&raw);

        // Third arm: the paper's *third* spatial attribute. GPS-less
        // reports whose text names an unambiguous district contribute that
        // district's centroid at the measured Fig. 4 mention precision.
        let mut obs_mentions = obs_weighted.clone();
        for r in &reports {
            if r.tweet.gps.is_some() {
                continue;
            }
            if let Some(&d) = extractor.districts(&r.tweet.text).first() {
                obs_mentions.push(Observation {
                    point: g.district(d).centroid,
                    weight: 0.8,
                    timestamp: r.tweet.timestamp,
                });
            }
        }

        let rows_u = evaluate(&estimators, &obs_uniform, truth);
        let rows_w = evaluate(&estimators, &obs_weighted, truth);
        let rows_m = evaluate(&estimators, &obs_mentions, truth);
        for (i, ((u, w), m)) in rows_u.iter().zip(&rows_w).zip(&rows_m).enumerate() {
            uw_errors[i].push(u.error_km);
            w_errors[i].push(w.error_km);
            m_errors[i].push(m.error_km);
            println!(
                "{:<18} {:<16} {:>9.2} km {:>9.2} km {:>9.2} km",
                label, u.estimator, u.error_km, w.error_km, m.error_km
            );
        }
        println!(
            "{:<18} ({} reports: {} GPS, {} profile-only, {} mention observations)",
            "",
            raw.len(),
            raw.iter().filter(|r| r.gps.is_some()).count(),
            obs_weighted.len() - raw.iter().filter(|r| r.gps.is_some()).count(),
            obs_mentions.len() - obs_weighted.len(),
        );
    }

    println!("{}", "-".repeat(76));
    println!("\nmean error across epicenters:");
    for (i, e) in estimators.iter().enumerate() {
        let mu = mean_error(&uw_errors[i]).unwrap_or(f64::NAN);
        let mw = mean_error(&w_errors[i]).unwrap_or(f64::NAN);
        let mm = mean_error(&m_errors[i]).unwrap_or(f64::NAN);
        println!(
            "  {:<16} unweighted {:>7.2} km   weighted {:>7.2} km ({:+.1}%)   +mentions {:>7.2} km ({:+.1}%)",
            e.name(),
            mu,
            mw,
            100.0 * (mw - mu) / mu.max(1e-9),
            mm,
            100.0 * (mm - mu) / mu.max(1e-9)
        );
    }
    println!(
        "\npaper's claim to verify: weighting by Top-k reliability reduces estimation error;\n\
         adding the third spatial attribute (text mentions at Fig. 4 precision) helps where\n\
         GPS is sparse."
    );
}
