//! `repro export` — write the analysis artifacts as CSV files for external
//! plotting (group table, funnel, per-user cohort, regional breakdown).

use std::fs;
use std::path::Path;

use stir_core::export::{cohort_csv, funnel_csv, group_table_csv, regional_csv};
use stir_core::regional::by_region;
use stir_core::GroupTable;

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs the export into `out_dir`.
pub fn run(opts: &Options, out_dir: &Path) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);
    let table = GroupTable::compute(&analysed.result.users);
    let regional = by_region(&analysed.result.users);

    fs::create_dir_all(out_dir).expect("create output directory");
    let write = |name: &str, content: String| {
        let path = out_dir.join(name);
        fs::write(&path, content).expect("write CSV");
        println!("wrote {}", path.display());
    };
    write("group_table.csv", group_table_csv(&table));
    write("funnel.csv", funnel_csv(&analysed.result.funnel));
    write("cohort.csv", cohort_csv(&analysed.result.users));
    write("regional.csv", regional_csv(&regional));

    // GeoJSON: district footprints coloured by cohort density (users whose
    // profile resolves to the district), droppable into any map viewer.
    let mut counts: std::collections::HashMap<stir_geokr::DistrictId, f64> =
        std::collections::HashMap::new();
    for u in &analysed.result.users {
        let hit = g
            .find_by_name_en(&u.county_profile)
            .iter()
            .copied()
            .find(|&id| g.district(id).province.name_en() == u.state_profile);
        if let Some(id) = hit {
            *counts.entry(id).or_insert(0.0) += 1.0;
        }
    }
    let values = |id: stir_geokr::DistrictId| counts.get(&id).copied();
    write(
        "districts.geojson",
        stir_geokr::geojson::districts_geojson(g, Some(&values)),
    );
    println!(
        "\n5 files for a {}-user cohort (seed {}, scale {:.2})",
        table.total_users, opts.seed, opts.scale
    );
}
