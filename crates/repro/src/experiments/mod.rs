//! One module per experiment; see the crate docs for the index.

pub mod ablation;
pub mod all;
pub mod compare;
pub mod detect;
pub mod diurnal;
pub mod eventloc;
pub mod export;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod funnel;
pub mod nonegroup;
pub mod regional;
pub mod report_md;
pub mod sensitivity;
pub mod stream;
pub mod table12;
pub mod tweets;
