//! E10 / Fig. 5 — the Yahoo API XML response, rendered and parsed back.
//!
//! The paper's Fig. 5 shows the XML returned for the query
//! `latitude 37.xxxx, longitude 126.xxxx` with `<country>`, `<state>`,
//! `<county>`, `<town>` under `<location>`. We issue the same style of
//! request against the mock endpoint and show the round trip.

use stir_geoindex::Point;
use stir_geokr::yahoo::{parse_response, YahooPlaceFinder};

use crate::context::{gazetteer, Options};

/// Runs the experiment.
pub fn run(_opts: &Options) {
    let g = gazetteer();
    let api = YahooPlaceFinder::new(g);
    // A query point in Yangcheon-gu — the district the paper's Table I
    // examples revolve around.
    let query = Point::new(37.517, 126.866);
    let xml = api.request_xml(query).expect("within quota");

    println!("\n=== Fig. 5 — Yahoo API XML response (mock endpoint) ===\n");
    println!("request: reverse geocode {query}");
    println!("\n{xml}");
    let parsed = parse_response(&xml)
        .expect("well-formed")
        .expect("resolvable");
    println!(
        "parsed back: country={} state={} county={} town={}",
        parsed.country, parsed.state, parsed.county, parsed.town
    );
    println!(
        "\nendpoint accounting: {} request(s), {} ms simulated latency",
        api.requests(),
        api.simulated_ms()
    );
}
