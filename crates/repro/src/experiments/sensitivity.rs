//! E17 / sensitivity — how robust are the paper's numbers to the two
//! under-specified knobs?
//!
//! 1. **Tie-breaking** (§III-B never says how equal counts are ordered):
//!    re-rank every cohort user under four policies, including the two
//!    extremes that bound the matched string's rank, and count group
//!    reassignments.
//! 2. **GPS adoption** (the paper laments "the lack of GPS coordinates"):
//!    sweep the device-ownership rate and check whether the headline
//!    shapes (Top-1∪Top-2, None) hold as the cohort grows.

use std::collections::HashMap;

use stir_core::{
    group_user_strings_with, GroupTable, LocationString, PipelineBuilder, PipelineInput,
    ProfileRow, TieBreak, TopKGroup, TweetRow,
};
use stir_geokr::ReverseGeocoder;
use stir_twitter_sim::datasets::{Dataset, DatasetSpec};

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs both sensitivity analyses.
pub fn run(opts: &Options) {
    tie_break_sensitivity(opts);
    gps_adoption_sweep(opts);
}

fn tie_break_sensitivity(opts: &Options) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);

    // Rebuild each cohort user's strings (deterministically) so they can be
    // re-grouped under each policy.
    let reverse = ReverseGeocoder::builder(g).build_reverse();
    let mut per_user: HashMap<u64, Vec<LocationString>> = HashMap::new();
    for u in &analysed.dataset.users {
        let Some((state_p, county_p)) = analysed.result.kept_profiles.get(&u.id.0) else {
            continue;
        };
        for t in analysed.dataset.user_tweets(g, u.id) {
            let Some(p) = t.gps else { continue };
            let Some(rec) = reverse.lookup(p) else {
                continue;
            };
            per_user.entry(u.id.0).or_default().push(LocationString {
                user: u.id.0,
                state_profile: state_p.clone(),
                county_profile: county_p.clone(),
                state_tweet: rec.state,
                county_tweet: rec.county,
            });
        }
    }

    println!("\n=== sensitivity 1 — the unspecified tie-break (§III-B) ===\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "policy", "Top-1 %", "None %", "moved users"
    );
    println!("{}", "-".repeat(50));
    let baseline: HashMap<u64, TopKGroup> = per_user
        .iter()
        .filter_map(|(&user, strings)| {
            group_user_strings_with(strings, TieBreak::FirstSeen).map(|g| (user, g.group()))
        })
        .collect();
    for tb in [
        TieBreak::FirstSeen,
        TieBreak::Alphabetical,
        TieBreak::MatchedFirst,
        TieBreak::MatchedLast,
    ] {
        let mut users = Vec::new();
        let mut moved = 0u64;
        for (user, strings) in &per_user {
            if let Some(gu) = group_user_strings_with(strings, tb) {
                if baseline.get(user) != Some(&gu.group()) {
                    moved += 1;
                }
                users.push(gu);
            }
        }
        let table = GroupTable::compute(&users);
        println!(
            "{:<14} {:>9.1}% {:>9.1}% {:>12}",
            format!("{tb:?}"),
            table.row(TopKGroup::Top1).user_pct,
            table.row(TopKGroup::None).user_pct,
            moved
        );
    }
    println!(
        "\n(MatchedFirst/MatchedLast bound what any tie policy could do; the None group is\n\
         untouched by construction — ties only shuffle ranks of matched users.)"
    );
}

fn gps_adoption_sweep(opts: &Options) {
    let g = gazetteer();
    println!("\n=== sensitivity 2 — GPS adoption sweep ===\n");
    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>10}",
        "device rate", "cohort", "Top-1+2 %", "None %", "avg.locs"
    );
    println!("{}", "-".repeat(58));
    for rate in [0.03, 0.06, 0.12, 0.24] {
        let spec = DatasetSpec {
            gps_device_rate: rate,
            ..korean_spec(opts)
        };
        let dataset = Dataset::generate(spec, g, opts.seed);
        let pipeline = PipelineBuilder::new(g)
            .threads(opts.threads)
            .build()
            .expect("experiment options form a valid pipeline config");
        let result = pipeline.execute(
            dataset.users.iter().map(|u| ProfileRow {
                user: u.id.0,
                location_text: u.location_text.clone(),
            }),
            PipelineInput::rows(dataset.users.iter().flat_map(|u| {
                dataset.user_tweets(g, u.id).into_iter().map(|t| TweetRow {
                    user: t.user.0,
                    tweet_id: t.id.0,
                    gps: t.gps,
                })
            })),
        );
        let table = GroupTable::compute(&result.users);
        println!(
            "{:<14} {:>8} {:>9.1}% {:>11.1}% {:>10.2}",
            format!("{:.0}%", rate * 100.0),
            table.total_users,
            table.top1_top2_pct(),
            table.row(TopKGroup::None).user_pct,
            table.overall_avg_locations
        );
    }
    println!(
        "\n(the headline shapes are stable in the adoption rate: GPS scarcity sizes the\n\
         cohort, not the conclusion — the paper's funnel bottleneck was benign.)"
    );
}
