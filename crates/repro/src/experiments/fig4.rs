//! E12 / Fig. 4 — tweets with GPS coordinates whose text names a place.
//!
//! The paper shows a sample of GPS tweets and observes that "some tweets
//! mentioned about their current locations and those are the same places of
//! the GPS coordinates". This experiment quantifies the observation: among
//! GPS tweets whose text contains an unambiguous district mention, how
//! often does the mention match the reverse-geocoded GPS district? The
//! generator's ground truth has people naming their actual district ~85% of
//! mention-bearing tweets (the rest talk *about* somewhere else), so the
//! measured precision validates text mentions as a usable-but-weaker third
//! spatial attribute.

use stir_geokr::ReverseGeocoder;
use stir_textgeo::MentionExtractor;
use stir_twitter_sim::datasets::Dataset;

use crate::context::{gazetteer, korean_spec, Options};

/// Runs the experiment.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let dataset = Dataset::generate(korean_spec(opts), g, opts.seed);
    let extractor = MentionExtractor::new(g);
    let reverse = ReverseGeocoder::builder(g).build_reverse();

    let mut gps_tweets = 0u64;
    let mut with_mention = 0u64;
    let mut matching = 0u64;
    let mut samples: Vec<(String, &'static str, &'static str, bool)> = Vec::new();

    for u in &dataset.users {
        if !u.gps_device {
            continue;
        }
        for t in dataset.user_tweets(g, u.id) {
            let Some(p) = t.gps else { continue };
            gps_tweets += 1;
            let mentions = extractor.districts(&t.text);
            let Some(&mentioned) = mentions.first() else {
                continue;
            };
            let Some(actual) = reverse.resolve(p) else {
                continue;
            };
            with_mention += 1;
            let hit = mentioned == actual;
            if hit {
                matching += 1;
            }
            if samples.len() < 10 {
                samples.push((
                    t.text.clone(),
                    g.district(mentioned).name_en,
                    g.district(actual).name_en,
                    hit,
                ));
            }
        }
    }

    println!("\n=== Fig. 4 — tweets with GPS coordinates mentioning places ===\n");
    println!(
        "{:<46} {:<16} {:<16} match",
        "tweet text", "mentioned", "GPS district"
    );
    println!("{}", "-".repeat(88));
    for (text, mentioned, actual, hit) in &samples {
        let short: String = text.chars().take(44).collect();
        println!(
            "{short:<46} {mentioned:<16} {actual:<16} {}",
            if *hit { "yes" } else { "NO" }
        );
    }
    println!("{}", "-".repeat(88));
    println!(
        "\nGPS tweets scanned: {gps_tweets}; with an unambiguous place mention: {with_mention} \
         ({:.1}%)",
        100.0 * with_mention as f64 / gps_tweets.max(1) as f64
    );
    println!(
        "mention == GPS district: {matching} ({:.1}% precision; ground truth plants ≈ 85%)",
        100.0 * matching as f64 / with_mention.max(1) as f64
    );
    println!(
        "\npaper (§III-A): text mentions are the third spatial attribute; Fig. 4 observes they\n\
         often name the posting place — measured here, they do, at well below GPS reliability."
    );
}
