//! E6 / slide chart — the number of tweets in each group.
//!
//! The slides add a tweets-per-group breakdown to the camera-ready's
//! users-per-group chart: Top-1 users dominate tweet volume even more than
//! user counts (home-anchored users both match and tweet a lot from one
//! place), while None users contribute a disproportionately small share
//! per capita at their profile location (none, by definition).

use stir_core::{report, GroupTable, TopKGroup};

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs the experiment.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);
    let table = GroupTable::compute(&analysed.result.users);
    print(&table);
}

/// Prints the tweets-per-group chart from a computed table.
pub fn print(table: &GroupTable) {
    println!("\n=== slide chart — number of tweets in each group ===\n");
    let labels: Vec<&str> = TopKGroup::ALL.iter().map(|g| g.label()).collect();
    let values: Vec<f64> = table.rows.iter().map(|r| r.tweet_pct).collect();
    println!(
        "{}",
        report::render_bar_chart("GPS tweets per group (%)", &labels, &values, 40)
    );
    println!("total GPS tweets in cohort: {}", table.total_tweets);
    println!(
        "\nfull group table:\n\n{}",
        report::render_group_table(table)
    );
}
