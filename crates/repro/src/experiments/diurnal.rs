//! E16 / extension — when each group tweets.
//!
//! §IV's commuter scenario has a temporal signature: users who "stay
//! outside for work" tweet on the move — morning/evening commutes — while
//! home-anchored users skew to evenings at home. Comparing hour-of-day
//! histograms of GPS tweets across Top-k groups tests the scenario from
//! the time axis, independent of the spatial diagnosis (`nonegroup`).

use std::collections::HashMap;

use stir_core::temporal::per_group_histograms;
use stir_core::{report, TopKGroup};

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs the experiment.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);
    let groups: HashMap<u64, TopKGroup> = analysed
        .result
        .users
        .iter()
        .map(|u| (u.user, u.group()))
        .collect();

    // GPS tweets of cohort users, as (user, timestamp) rows.
    let mut rows: Vec<(u64, u64)> = Vec::new();
    for u in &analysed.dataset.users {
        if !groups.contains_key(&u.id.0) {
            continue;
        }
        for t in analysed.dataset.user_tweets(g, u.id) {
            if t.gps.is_some() {
                rows.push((t.user.0, t.timestamp));
            }
        }
    }
    let hists = per_group_histograms(rows, &groups);

    println!("\n=== extension — hour-of-day posting profiles per group ===\n");
    println!(
        "{:<8} {:>8} {:>10} {:>15}",
        "group", "tweets", "peak hour", "commute index"
    );
    println!("{}", "-".repeat(46));
    for grp in TopKGroup::ALL {
        let h = &hists[grp.index()];
        if h.total() == 0 {
            continue;
        }
        println!(
            "{:<8} {:>8} {:>8}:00 {:>14.1}%",
            grp.label(),
            h.total(),
            h.peak_hour(),
            100.0 * h.commute_index()
        );
    }
    println!("{}", "-".repeat(46));

    // Overall shape as a small chart.
    let mut overall = stir_core::temporal::HourHistogram::default();
    for h in &hists {
        for (hour, &c) in h.counts.iter().enumerate() {
            overall.counts[hour] += c;
        }
    }
    let labels: Vec<String> = (0..24).map(|h| format!("{h:02}:00")).collect();
    let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let values: Vec<f64> = (0..24).map(|h| 100.0 * overall.share(h)).collect();
    println!(
        "\n{}",
        report::render_bar_chart(
            "all cohort GPS tweets by hour (%)",
            &label_refs,
            &values,
            36
        )
    );
    let none_ci = hists[TopKGroup::None.index()].commute_index();
    let top1_ci = hists[TopKGroup::Top1.index()].commute_index();
    println!(
        "commute index: None {:.1}% vs Top-1 {:.1}% — the None group tweets \
         disproportionately in commute hours, the temporal fingerprint of §IV's commuters.",
        100.0 * none_ci,
        100.0 * top1_ci
    );
}
