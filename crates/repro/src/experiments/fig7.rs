//! E5 / Fig. 7 — the number of users in each Top-k group.
//!
//! Paper shapes to reproduce: Top-1 ∪ Top-2 hold more than 40% of users
//! ("nearly half of all users post tweets in their hometown"); the None
//! group holds about 30%; the middle groups (Top-3 … Top-5) are small and
//! decreasing.

use stir_core::{report, user_share_cis, GroupTable, GroupedUser, TopKGroup};

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs the experiment and prints the chart with bootstrap error bars.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);
    let table = GroupTable::compute(&analysed.result.users);
    print(&table);
    print_cis(&analysed.result.users, opts.seed);
}

/// Prints 95% bootstrap intervals for the user shares — error bars the
/// paper does not report, sized for this run's cohort.
pub fn print_cis(users: &[GroupedUser], seed: u64) {
    let cis = user_share_cis(users, 500, 0.95, seed);
    println!(
        "\n95% bootstrap CIs ({} users, 500 resamples):",
        users.len()
    );
    for g in TopKGroup::ALL {
        let ci = cis.get(g);
        println!(
            "  {:<8} {:5.1}%  [{:5.1}, {:5.1}]",
            g.label(),
            ci.point,
            ci.lo,
            ci.hi
        );
    }
}

/// Prints Fig. 7 from a computed table (shared with `all`/`compare`).
pub fn print(table: &GroupTable) {
    println!("\n=== Fig. 7 — number of users in each group ===\n");
    let labels: Vec<&str> = TopKGroup::ALL.iter().map(|g| g.label()).collect();
    let values: Vec<f64> = table.rows.iter().map(|r| r.user_pct).collect();
    println!(
        "{}",
        report::render_bar_chart("users per group (%)", &labels, &values, 40)
    );
    println!("cohort: {} users", table.total_users);
    println!(
        "Top-1 + Top-2 = {:.1}% (paper: > 40%, 'nearly half')",
        table.top1_top2_pct()
    );
    println!(
        "None          = {:.1}% (paper: about 30%)",
        table.row(TopKGroup::None).user_pct
    );
}
