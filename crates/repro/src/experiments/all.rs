//! `repro all` — every experiment in paper order, sharing one analysed
//! dataset where possible (the Korean pipeline run is the expensive step).

use stir_core::GroupTable;

use crate::context::{analyse, gazetteer, korean_spec, lady_gaga_spec, Options};
use crate::experiments;
use stir_core::report;
use stir_twitter_sim::{Crawler, TwitterApi};

/// Runs everything.
pub fn run(opts: &Options) {
    experiments::table12::run_table1(opts);
    experiments::table12::run_table2(opts);
    experiments::fig3::run(opts);
    experiments::fig4::run(opts);
    experiments::fig5::run(opts);

    // One Korean analysis serves funnel, fig6, fig7 and the tweet chart.
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);
    let api = TwitterApi::new(&analysed.dataset, g);
    let crawl = Crawler::new(&api).run(analysed.dataset.graph.best_seed(), usize::MAX);
    println!("\n=== E3 — data refinement funnel ===\n");
    println!(
        "crawl: {} users in {} requests, {} stalls, {:.1} simulated days\n",
        crawl.users.len(),
        crawl.requests,
        crawl.rate_limit_stalls,
        crawl.simulated_days()
    );
    println!("{}", report::render_funnel(&analysed.result.funnel));

    let table = GroupTable::compute(&analysed.result.users);
    experiments::fig6::print(&table);
    experiments::fig7::print(&table);
    experiments::tweets::print(&table);

    let gaga = GroupTable::compute(&analyse(lady_gaga_spec(opts), g, opts).result.users);
    experiments::compare::print(&table, &gaga);

    experiments::eventloc::run(opts);
    experiments::ablation::run(opts);
    experiments::regional::run(opts);
    experiments::detect::run(opts);
    experiments::nonegroup::run(opts);
    experiments::diurnal::run(opts);
    experiments::sensitivity::run(opts);
    experiments::stream::run(opts);
}
