//! `repro stream` — E23: the paper's figures from the streaming service.
//!
//! The 2011 dataset was gathered over a streaming connection, so this
//! experiment replays that collection path: the full corpus is delivered
//! in arrival order (`StreamSpec::firehose()`), ingested chunk by chunk
//! through the incremental [`AnalysisSession`], and the final live state
//! is queried for Fig. 7. The stdout is byte-identical to `repro fig7`
//! over the same seed and scale — CI diffs the two by checksum.
//!
//! `--restore-midway` swaps in the durable service shell: the session
//! runs WAL-first, checkpoints halfway through the stream, is dropped,
//! and resumes from disk (checkpoint + WAL tail replay) before ingesting
//! the rest. Output is still byte-identical — the flag exists to prove
//! that a service restart is invisible in every figure.

use stir_core::{AnalysisResult, AnalysisSession, DurableSession, GroupTable, ProfileRow};
use stir_tweetstore::TweetRecord;
use stir_twitter_sim::datasets::Dataset;
use stir_twitter_sim::stream::{collect, StreamCollection, StreamSpec};

use crate::context::{gazetteer, korean_spec, pipeline, Options};
use crate::experiments::fig7;

/// Tweets per delivery batch — a plausible socket-drain granularity; any
/// value yields the same figures (pinned by the session proptests).
const CHUNK: usize = 4_096;

/// Runs the experiment and prints Fig. 7 from live session state.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let spec = korean_spec(opts);
    eprintln!(
        "[{}] generating {} users (seed {}, scale {:.2}) …",
        spec.name, spec.n_users, opts.seed, opts.scale
    );
    let dataset = Dataset::generate(spec, g, opts.seed);
    let stream = collect(&dataset, g, &StreamSpec::firehose());
    eprintln!(
        "[stream] firehose delivered {} tweets from {} authors, in {CHUNK}-tweet chunks …",
        stream.tweets.len(),
        stream.users.len()
    );
    let profiles: Vec<ProfileRow> = dataset
        .users
        .iter()
        .map(|u| ProfileRow {
            user: u.id.0,
            location_text: u.location_text.clone(),
        })
        .collect();

    let result = if opts.restore_midway {
        durable_run(opts, &stream, &profiles)
    } else {
        let mut session = AnalysisSession::new(pipeline(g, opts), profiles);
        for batch in stream.deliveries(CHUNK) {
            for t in batch {
                session.ingest(t.user.0, t.timestamp, t.gps);
            }
        }
        eprintln!(
            "[stream] session ingested {} tweets, {} users live",
            session.ingested(),
            session.users_live()
        );
        session.query().execute()
    };

    let table = GroupTable::compute(&result.users);
    fig7::print(&table);
    fig7::print_cis(&result.users, opts.seed);
}

/// The `--restore-midway` path: WAL-first ingest through the durable
/// shell, a checkpoint at the halfway mark, a full teardown, and a
/// resume-from-disk before the second half of the stream.
fn durable_run(
    opts: &Options,
    stream: &StreamCollection,
    profiles: &[ProfileRow],
) -> AnalysisResult {
    let g = gazetteer();
    let dir = std::env::temp_dir().join(format!(
        "stir-repro-stream-{}-{}",
        std::process::id(),
        opts.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create stream scratch dir");
    let wal_path = dir.join("session.wal");
    let snap_path = dir.join("session.snap");
    let rec = |t: &stir_twitter_sim::tweetgen::Tweet| TweetRecord {
        id: t.id.0,
        user: t.user.0,
        timestamp: t.timestamp,
        gps: t.gps,
        text: String::new(),
    };

    let half = stream.tweets.len() / 2;
    {
        let mut svc =
            DurableSession::open(&wal_path, &snap_path, pipeline(g, opts), profiles.to_vec())
                .expect("open durable session");
        for t in &stream.tweets[..half] {
            svc.ingest(&rec(t)).expect("WAL append");
        }
        svc.checkpoint().expect("checkpoint");
        eprintln!(
            "[stream] checkpointed at ordinal {}; dropping the service …",
            svc.session().ingested()
        );
    }

    let mut svc = DurableSession::open(&wal_path, &snap_path, pipeline(g, opts), profiles.to_vec())
        .expect("resume durable session");
    eprintln!(
        "[stream] resumed from disk at ordinal {}; ingesting the remaining {} tweets …",
        svc.session().ingested(),
        stream.tweets.len() - half
    );
    for t in &stream.tweets[half..] {
        svc.ingest(&rec(t)).expect("WAL append");
    }
    svc.sync().expect("WAL sync");
    let result = svc.query().execute();
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    result
}
