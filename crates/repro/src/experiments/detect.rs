//! E14 / extension — detection-quality benchmark.
//!
//! Turns Toretter's Fig. 2 anecdote into a protocol: several injected
//! earthquakes (positive trials) plus quiet control windows (negative
//! trials), scored for detection rate, false alarms, latency and location
//! error — unweighted vs reliability-weighted observations.

use stir::detection_bench::{run_detection_benchmark, uniform_builder};
use stir::eventdet::{MeanEstimator, ObservationBuilder};
use stir::geoindex::Point;

use crate::context::{analyse, gazetteer, korean_spec, Options};

/// Runs the experiment.
pub fn run(opts: &Options) {
    let g = gazetteer();
    let analysed = analyse(korean_spec(opts), g, opts);

    let epicenters: Vec<(Point, u64)> = vec![
        (Point::new(37.50, 127.00), 20_000),
        (Point::new(35.18, 129.05), 35_000),
        (Point::new(35.87, 128.60), 50_000),
        (Point::new(36.35, 127.38), 65_000),
        (Point::new(37.46, 126.70), 80_000),
    ];
    let quiet_trials = 5;
    let background = 600;
    let est = MeanEstimator;

    let weighted_builder = ObservationBuilder::from_analysis(g, &analysed.result, 0.02);
    let uniform = uniform_builder(g, &analysed.result);

    println!("\n=== extension — detection-quality benchmark ===\n");
    println!(
        "{} event trials (metro epicenters) + {} quiet controls, {} background users\n",
        epicenters.len(),
        quiet_trials,
        background
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12}",
        "observations", "detected", "false-alarm", "latency", "error"
    );
    println!("{}", "-".repeat(72));
    for (label, builder) in [
        ("unweighted", &uniform),
        ("reliability-weighted", &weighted_builder),
    ] {
        let report = run_detection_benchmark(
            &analysed.dataset,
            g,
            &epicenters,
            quiet_trials,
            background,
            &est,
            builder,
            opts.seed,
        );
        println!(
            "{:<22} {:>9.0}% {:>11.0}% {:>10.0} s {:>9.1} km",
            label,
            100.0 * report.detection_rate(),
            100.0 * report.false_alarm_rate(),
            report.mean_latency_secs().unwrap_or(f64::NAN),
            report.mean_error_km().unwrap_or(f64::NAN)
        );
    }
    println!("{}", "-".repeat(72));
    println!(
        "\ndetection and latency depend on the *term trend* (identical for both rows);\n\
         the reliability weights act on the location estimate — the error column."
    );
}
