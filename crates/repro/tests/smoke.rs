//! End-to-end smoke tests: run the actual `repro` binary and check that
//! every experiment produces its key output markers and exits cleanly.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn all_experiments_run_at_tiny_scale() {
    let (stdout, stderr, code) = run(&["all", "--scale", "0.02", "--seed", "1"]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    for marker in [
        "Table I",
        "Table II",
        "Fig. 3",
        "Fig. 4",
        "Fig. 5",
        "data refinement funnel",
        "Fig. 6",
        "Fig. 7",
        "number of tweets in each group",
        "Lady Gaga",
        "reliability-weighted event location estimation",
        "metropolitan split",
        "reliability by profile region",
        "detection-quality benchmark",
        "diagnosing the None group",
        "hour-of-day posting profiles",
        "tie-break",
        "GPS adoption sweep",
    ] {
        assert!(stdout.contains(marker), "missing {marker:?} in output");
    }
}

#[test]
fn help_lists_every_experiment() {
    let (stdout, _, code) = run(&["help"]);
    assert_eq!(code, Some(0));
    for cmd in [
        "table1",
        "table2",
        "fig3",
        "fig4",
        "fig5",
        "funnel",
        "fig6",
        "fig7",
        "tweets",
        "compare",
        "eventloc",
        "ablation",
        "regional",
        "export",
        "detect",
        "nonegroup",
        "diurnal",
        "report",
        "sensitivity",
        "all",
    ] {
        assert!(stdout.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn bad_arguments_exit_nonzero() {
    let (_, stderr, code) = run(&["no-such-experiment"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown experiment"));
    let (_, stderr, code) = run(&["fig7", "--seed"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--seed needs a value"));
}

#[test]
fn export_writes_files() {
    let dir = std::env::temp_dir().join(format!("stir-smoke-export-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_, stderr, code) = run(&[
        "export",
        "--scale",
        "0.02",
        "--seed",
        "1",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    for f in [
        "group_table.csv",
        "funnel.csv",
        "cohort.csv",
        "regional.csv",
        "districts.geojson",
    ] {
        assert!(dir.join(f).exists(), "missing {f}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn verbose_prints_stage_metrics() {
    let (_, stderr, code) = run(&["funnel", "--scale", "0.02", "--seed", "1", "--verbose"]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    for marker in [
        "pipeline stage timings:",
        "select users",
        "tweet intake",
        "fixes/sec",
        "cache hit ratio",
        "grouping stage:",
        "strings/sec",
        "merge ratio",
        "interned districts",
        "fused exec:",
        "memory: peak intermediate",
    ] {
        assert!(
            stderr.contains(marker),
            "missing {marker:?} in stderr:\n{stderr}"
        );
    }
    // The staged reference path renders no fused-engine section.
    let (_, stderr, code) = run(&[
        "funnel",
        "--scale",
        "0.02",
        "--seed",
        "1",
        "--verbose",
        "--staged",
    ]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(
        !stderr.contains("fused exec:"),
        "staged run rendered the fused section:\n{stderr}"
    );
    // Without --verbose the timing block stays out of both streams, keeping
    // stdout deterministic and stderr limited to progress lines.
    let (stdout, stderr, code) = run(&["funnel", "--scale", "0.02", "--seed", "1"]);
    assert_eq!(code, Some(0));
    assert!(!stdout.contains("pipeline stage timings:"));
    assert!(!stderr.contains("pipeline stage timings:"));
}

#[test]
fn resilient_backend_rides_out_faults_without_changing_figures() {
    // The acceptance bar for the service layer: a seeded fault schedule at
    // the endpoint must not perturb a single byte of figure output when the
    // resilient backend is in front of it.
    let clean = run(&["fig7", "--scale", "0.02", "--seed", "1"]);
    assert_eq!(clean.2, Some(0), "stderr:\n{}", clean.1);
    let faulted = run(&[
        "fig7",
        "--scale",
        "0.02",
        "--seed",
        "1",
        "--backend",
        "resilient",
        "--faults",
        "drop:0.1",
    ]);
    assert_eq!(faulted.2, Some(0), "stderr:\n{}", faulted.1);
    assert_eq!(
        clean.0, faulted.0,
        "fault injection leaked into figure output"
    );
}

#[test]
fn figures_are_invariant_across_threads_and_backends() {
    // The interned, parallel grouping engine must not move a byte of
    // figure or table output: fig7 and table2 are pinned across every
    // thread-count × backend combination the acceptance criteria name.
    let fig7_base = run(&[
        "fig7",
        "--scale",
        "0.05",
        "--seed",
        "2012",
        "--threads",
        "1",
    ]);
    assert_eq!(fig7_base.2, Some(0), "stderr:\n{}", fig7_base.1);
    let table2_base = run(&[
        "table2",
        "--scale",
        "0.05",
        "--seed",
        "2012",
        "--threads",
        "1",
    ]);
    assert_eq!(table2_base.2, Some(0), "stderr:\n{}", table2_base.1);
    for threads in ["1", "8"] {
        for backend in ["gazetteer", "resilient"] {
            let fig7 = run(&[
                "fig7",
                "--scale",
                "0.05",
                "--seed",
                "2012",
                "--threads",
                threads,
                "--backend",
                backend,
            ]);
            assert_eq!(fig7.2, Some(0), "stderr:\n{}", fig7.1);
            assert_eq!(
                fig7_base.0, fig7.0,
                "fig7 drifted at threads={threads} backend={backend}"
            );
            let table2 = run(&[
                "table2",
                "--scale",
                "0.05",
                "--seed",
                "2012",
                "--threads",
                threads,
                "--backend",
                backend,
            ]);
            assert_eq!(table2.2, Some(0), "stderr:\n{}", table2.1);
            assert_eq!(
                table2_base.0, table2.0,
                "table2 drifted at threads={threads} backend={backend}"
            );
        }
    }
}

#[test]
fn store_backed_run_is_byte_identical_to_row_based() {
    // S6 acceptance bar: routing the corpus through a TweetStore and the
    // zero-copy header scan (`--from-store`) must not move a byte of
    // figure output relative to the direct row-fed path.
    let rows = run(&["fig7", "--scale", "0.05", "--seed", "2012"]);
    assert_eq!(rows.2, Some(0), "stderr:\n{}", rows.1);
    let store = run(&["fig7", "--scale", "0.05", "--seed", "2012", "--from-store"]);
    assert_eq!(store.2, Some(0), "stderr:\n{}", store.1);
    assert_eq!(
        rows.0, store.0,
        "--from-store drifted from the row-based run"
    );
    // The store path announces itself on stderr (segment/byte counts).
    assert!(
        store.1.contains("store:"),
        "store path left no trace in stderr:\n{}",
        store.1
    );
}

#[test]
fn sharded_store_run_is_byte_identical_to_single_store() {
    // PR-8 acceptance bar: splitting the store into user-hash shards and
    // running the scatter-gather scan (`--from-store --shards N`) must
    // not move a byte of figure output — fused or staged — relative to
    // the single-store run.
    let single = run(&["fig7", "--scale", "0.05", "--seed", "2012", "--from-store"]);
    assert_eq!(single.2, Some(0), "stderr:\n{}", single.1);
    for extra in [
        &["--shards", "8"][..],
        &["--shards", "3"][..],
        &["--shards", "8", "--staged"][..],
    ] {
        let mut args = vec!["fig7", "--scale", "0.05", "--seed", "2012", "--from-store"];
        args.extend_from_slice(extra);
        let sharded = run(&args);
        assert_eq!(sharded.2, Some(0), "stderr:\n{}", sharded.1);
        assert_eq!(single.0, sharded.0, "fig7 drifted with {extra:?}");
    }
    // The sharded path announces itself on stderr.
    let sharded = run(&[
        "fig7",
        "--scale",
        "0.05",
        "--seed",
        "2012",
        "--from-store",
        "--shards",
        "8",
    ]);
    assert!(
        sharded.1.contains("8 shard(s)"),
        "sharded path left no trace in stderr:\n{}",
        sharded.1
    );
}

#[test]
fn fused_engine_is_byte_identical_to_the_staged_reference() {
    // The fused morsel engine's acceptance bar: the staged reference
    // pipeline (--staged, row-fed) pins the output, and the fused engine
    // must reproduce it byte-for-byte — row-fed, store-fed, and store-fed
    // staged, at both ends of the thread range.
    let reference = run(&[
        "fig7",
        "--scale",
        "0.05",
        "--seed",
        "2012",
        "--staged",
        "--threads",
        "1",
    ]);
    assert_eq!(reference.2, Some(0), "stderr:\n{}", reference.1);
    let table2_ref = run(&[
        "table2",
        "--scale",
        "0.05",
        "--seed",
        "2012",
        "--staged",
        "--threads",
        "1",
    ]);
    assert_eq!(table2_ref.2, Some(0), "stderr:\n{}", table2_ref.1);
    for extra in [
        &[][..],
        &["--from-store"][..],
        &["--from-store", "--staged"][..],
        &["--threads", "1"][..],
        &["--from-store", "--threads", "1"][..],
    ] {
        let mut args = vec!["fig7", "--scale", "0.05", "--seed", "2012"];
        args.extend_from_slice(extra);
        let fig7 = run(&args);
        assert_eq!(fig7.2, Some(0), "stderr:\n{}", fig7.1);
        assert_eq!(reference.0, fig7.0, "fig7 drifted with {extra:?}");
        let mut args = vec!["table2", "--scale", "0.05", "--seed", "2012"];
        args.extend_from_slice(extra);
        let table2 = run(&args);
        assert_eq!(table2.2, Some(0), "stderr:\n{}", table2.1);
        assert_eq!(table2_ref.0, table2.0, "table2 drifted with {extra:?}");
    }
}

#[test]
fn deterministic_across_invocations() {
    let a = run(&["fig7", "--scale", "0.02", "--seed", "9"]);
    let b = run(&["fig7", "--scale", "0.02", "--seed", "9"]);
    assert_eq!(a.0, b.0, "same seed must print identical results");
    let c = run(&["fig7", "--scale", "0.02", "--seed", "10"]);
    assert_ne!(a.0, c.0, "different seeds should differ");
}
