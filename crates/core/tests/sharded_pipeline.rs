//! End-to-end pins for the sharded store as a pipeline input: the full
//! refinement pipeline over a user-hash-sharded store — fused or staged,
//! fresh or rebuilt from torn-tail WAL recovery on every shard — must
//! produce exactly the result the single-store (and row-fed) runs do.

use stir_core::{PipelineBuilder, ProfileRow};
use stir_geoindex::Point;
use stir_geokr::Gazetteer;
use stir_tweetstore::{shard, ShardedDurableStore, ShardedStore, TweetRecord, TweetStore};

const YANGCHEON: (f64, f64) = (37.517, 126.866);
const GANGNAM: (f64, f64) = (37.517, 127.047);

fn gaz() -> &'static Gazetteer {
    Box::leak(Box::new(Gazetteer::load()))
}

/// A deterministic mixed corpus: 40 users, ~600 tweets, GPS tweets split
/// between two Seoul districts, plus GPS-less noise.
fn corpus() -> Vec<TweetRecord> {
    (0..600u64)
        .map(|i| {
            let user = (i * 7 + 3) % 40;
            let gps = match i % 5 {
                0 => Some(Point::new(YANGCHEON.0 + 1e-4 * (i % 9) as f64, YANGCHEON.1)),
                1 | 2 => Some(Point::new(GANGNAM.0, GANGNAM.1 + 1e-4 * (i % 7) as f64)),
                _ => None,
            };
            TweetRecord {
                id: i,
                user,
                timestamp: i * 97 % (30 * 86_400),
                gps,
                text: format!("tweet {i}"),
            }
        })
        .collect()
}

fn profiles() -> Vec<ProfileRow> {
    (0..40u64)
        .map(|u| ProfileRow {
            user: u,
            location_text: match u % 3 {
                0 => "Yangcheon-gu, Seoul".into(),
                1 => "Korea".into(),
                _ => "Gangnam-gu, Seoul".into(),
            },
        })
        .collect()
}

fn assert_identical(a: &stir_core::AnalysisResult, b: &stir_core::AnalysisResult, what: &str) {
    assert_eq!(a.funnel, b.funnel, "{what}: funnel diverged");
    assert_eq!(a.users, b.users, "{what}: grouped users diverged");
    assert_eq!(a.kept_profiles, b.kept_profiles, "{what}: cohort diverged");
}

#[test]
fn sharded_store_pipeline_matches_single_store() {
    let g = gaz();
    let recs = corpus();
    let mut single = TweetStore::new();
    for r in &recs {
        single.append(r);
    }
    for fused in [true, false] {
        let pipeline = PipelineBuilder::new(g).fused(fused).build().unwrap();
        let reference = pipeline.execute(profiles(), &single);
        for shards in [1usize, 2, 7, 16] {
            let mut sharded = ShardedStore::new(shards);
            for r in &recs {
                sharded.append(r);
            }
            let got = pipeline.execute(profiles(), &sharded);
            assert_identical(&got, &reference, &format!("shards={shards} fused={fused}"));
            let scan = got.metrics.scan.expect("sharded run reports scan metrics");
            assert_eq!(scan.per_shard.len(), shards, "one metrics row per shard");
            assert_eq!(
                scan.per_shard.iter().map(|s| s.records_stored).sum::<u64>(),
                recs.len() as u64
            );
        }
    }
}

#[test]
fn pipeline_over_recovered_sharded_store_matches_single_store() {
    const SHARDS: usize = 5;
    let g = gaz();
    let recs = corpus();
    let dir = std::env::temp_dir().join(format!("stir-shard-pipe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut durable = ShardedDurableStore::open(&dir, SHARDS).unwrap();
        for r in &recs {
            durable.append(r).unwrap();
        }
        durable.sync().unwrap();
    }
    // Tear every shard's log tail mid-frame, then recover.
    for i in 0..SHARDS {
        let path = shard::wal_path(&dir, i);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        use std::io::Write;
        f.write_all(&[0x99, 0x00, 0x00, 0x00, 0x01]).unwrap();
        f.sync_all().unwrap();
    }
    let durable = ShardedDurableStore::open(&dir, SHARDS).unwrap();
    let store = durable.store();
    assert!(
        store
            .recovery()
            .iter()
            .all(|r| r.is_some_and(|r| r.truncated_bytes == 5)),
        "every shard should report its truncated tail: {:?}",
        store.recovery()
    );
    let mut single = TweetStore::new();
    for r in &recs {
        single.append(r);
    }
    let pipeline = PipelineBuilder::new(g).build().unwrap();
    let reference = pipeline.execute(profiles(), &single);
    let got = pipeline.execute(profiles(), store);
    assert_identical(&got, &reference, "recovered sharded store");
    // The per-shard metrics carry each shard's WAL recovery outcome.
    let scan = got.metrics.scan.expect("scan metrics present");
    assert!(
        scan.per_shard
            .iter()
            .all(|s| s.wal.is_some_and(|w| w.truncated_bytes == 5)),
        "per-shard rows should surface WAL recovery: {:?}",
        scan.per_shard
    );
    std::fs::remove_dir_all(&dir).ok();
}
