//! Proves the fused engine's peak-memory claim with a byte-counting
//! global allocator: on the same corpus, the staged reference path must
//! hold at least 2× the intermediate bytes the fused path holds at its
//! peak. The staged path materializes a fix record per kept GPS tweet,
//! a resolution per fix, and a per-user key map; the fused path's only
//! tweet-proportional intermediate is the `(ordinal, key)` partition
//! buffers. Lives in its own test binary so no other test's allocations
//! pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stir_core::{
    CollectionFunnel, PipelineBuilder, PipelineMetrics, ProfileRow, RowSource, TweetRow,
};
use stir_geokr::Gazetteer;

struct TrackingAllocator;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(bytes: u64) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count the grown size before the old block frees — that is the
        // worst-case residency a reallocating `Vec` actually touches.
        on_alloc(new_size as u64);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: TrackingAllocator = TrackingAllocator;

/// Serializes the measuring sections: the harness runs tests on parallel
/// threads, and a concurrent test's allocations would land in our window.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` and returns its result plus the peak heap growth *above the
/// entry baseline* observed while it ran.
fn peak_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let _guard = MEASURE.lock().unwrap();
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (out, peak.saturating_sub(base))
}

/// ~50k GPS tweets over a 400-user kept cohort, every fix resolvable, so
/// the staged path materializes the full fix/resolution/key chain.
fn corpus() -> (Vec<ProfileRow>, Vec<TweetRow>) {
    const YANGCHEON: (f64, f64) = (37.517, 126.866);
    const GANGNAM: (f64, f64) = (37.517, 127.047);
    let profiles = (1..=400u64)
        .map(|u| ProfileRow {
            user: u,
            location_text: "Seoul Yangcheon-gu".to_string(),
        })
        .collect();
    let tweets = (0..50_000u64)
        .map(|i| {
            let (lat, lon) = if i % 2 == 0 { YANGCHEON } else { GANGNAM };
            TweetRow::tagged(1 + i % 400, i, lat, lon)
        })
        .collect();
    (profiles, tweets)
}

#[test]
fn fused_peak_intermediate_is_at_least_half_the_staged_peak() {
    let g = Gazetteer::load();
    let pipe = PipelineBuilder::new(&g).threads(1).build().unwrap();
    let (profiles, tweets) = corpus();
    let mut funnel = CollectionFunnel::default();
    let kept = pipe.select_users(profiles, &mut funnel);

    // Warm up both paths once so lazily-initialized runtime structures
    // don't bill their one-time allocations to the measured runs.
    {
        let mut m = PipelineMetrics::default();
        let mut f = funnel;
        let _ = pipe.process_tweets(&kept, tweets.clone(), &mut f, &mut m);
        let mut f = funnel;
        let src = RowSource::new(tweets.clone().into_iter(), 2048);
        let _ = pipe.process_tweets_fused(&kept, &src, &mut f, &mut m);
    }

    let mut staged_funnel = funnel;
    let mut staged_metrics = PipelineMetrics::default();
    let (staged_users, staged_peak) = peak_during(|| {
        pipe.process_tweets(
            &kept,
            tweets.clone(),
            &mut staged_funnel,
            &mut staged_metrics,
        )
    });

    let mut fused_funnel = funnel;
    let mut fused_metrics = PipelineMetrics::default();
    let src = RowSource::new(tweets.into_iter(), 2048);
    let (fused_users, fused_peak) = peak_during(|| {
        pipe.process_tweets_fused(&kept, &src, &mut fused_funnel, &mut fused_metrics)
    });

    // Identical output first — a smaller footprint means nothing if the
    // answer changed.
    assert_eq!(staged_funnel, fused_funnel);
    assert_eq!(staged_users.len(), fused_users.len());
    for (a, b) in staged_users.iter().zip(&fused_users) {
        assert_eq!(a.user, b.user);
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.matched_rank, b.matched_rank);
    }

    // The headline claim: ≥2× peak intermediate reduction.
    assert!(fused_peak > 0, "tracking allocator not live");
    let ratio = staged_peak as f64 / fused_peak as f64;
    eprintln!("staged peak {staged_peak} B, fused peak {fused_peak} B ({ratio:.2}x)");
    assert!(
        ratio >= 2.0,
        "staged peak {staged_peak} B vs fused peak {fused_peak} B — only {ratio:.2}×"
    );

    // The engine's own counter-based estimate must be honest: within the
    // same order of magnitude as the measured peak, and on the same side
    // of the staged estimate.
    let exec = fused_metrics.exec.as_ref().expect("fused fills exec");
    assert!(exec.peak_bytes_estimate > 0);
    assert!(
        exec.staged_bytes_estimate >= 2 * exec.peak_bytes_estimate,
        "estimates disagree with the measurement: staged est {} fused est {}",
        exec.staged_bytes_estimate,
        exec.peak_bytes_estimate
    );
}
