//! Proves the interned merge loop allocates nothing per tweet.
//!
//! A counting global allocator wraps the system one; the test groups the
//! same district mix at two tweet volumes two orders of magnitude apart and
//! asserts the allocation count is identical — every allocation the stage
//! makes is per *distinct district* (the merge vector, the boundary
//! strings), never per key. Lives in its own integration-test binary so no
//! other test's allocations pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use stir_core::intern::{DistrictInterner, LocationKey};
use stir_core::{group_user_keys_with, TieBreak};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// `n` keys for one user cycling over `districts` tweet districts.
fn keys(interner: &mut DistrictInterner, n: usize, districts: usize) -> Vec<LocationKey> {
    let profile = interner.intern("Seoul", "District-0");
    let tweet_ids: Vec<_> = (0..districts)
        .map(|d| interner.intern("Seoul", &format!("District-{d}")))
        .collect();
    (0..n)
        .map(|i| LocationKey {
            user: 1,
            profile,
            tweet: tweet_ids[i % districts],
        })
        .collect()
}

/// Serializes the measuring sections: the harness runs tests on parallel
/// threads, and a concurrent test's allocations would land in our window.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocations_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let _guard = MEASURE.lock().unwrap();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

#[test]
fn merge_loop_allocation_count_is_independent_of_tweet_count() {
    let mut interner = DistrictInterner::new();
    let small = keys(&mut interner, 1_000, 8);
    let large = keys(&mut interner, 100_000, 8);

    // Warm up once so lazily-initialized runtime structures don't bill
    // their one-time allocations to the first measured run.
    let _ = group_user_keys_with(&small, TieBreak::FirstSeen, &interner);

    let (a, small_allocs) =
        allocations_during(|| group_user_keys_with(&small, TieBreak::FirstSeen, &interner));
    let (b, large_allocs) =
        allocations_during(|| group_user_keys_with(&large, TieBreak::FirstSeen, &interner));

    let a = a.expect("non-empty");
    let b = b.expect("non-empty");
    assert_eq!(a.entries.len(), 8);
    assert_eq!(b.entries.len(), 8);
    assert_eq!(b.total_tweets(), 100_000);

    // 100× the tweets, identical allocation count: every allocation is per
    // distinct district, zero are per tweet.
    assert_eq!(
        small_allocs, large_allocs,
        "merge loop allocated per tweet: {small_allocs} allocs at 1k keys \
         vs {large_allocs} at 100k keys"
    );
    // Sanity: the stage does allocate *something* (the merge vector and the
    // boundary strings), so the counter is actually live.
    assert!(small_allocs > 0);
}

#[test]
fn warm_online_push_key_and_rank_queries_are_allocation_free() {
    use stir_core::{OnlineGrouping, TieBreak as Tb};

    let mut og = OnlineGrouping::with_tie_break(Tb::FirstSeen);
    let profile = og.intern_district("Seoul", "District-0");
    let districts: Vec<_> = (0..8)
        .map(|d| og.intern_district("Seoul", &format!("District-{d}")))
        .collect();
    // Warm-up: visit every district once so each user's merged list has
    // reached its final length (and the HashMap its final capacity).
    for user in 0..16u64 {
        for &d in &districts {
            og.push_key(og.key(user, profile, d));
        }
    }

    // Steady state: 50k pushes + a rank query each, zero heap traffic.
    // This is the regression the deprecated string shim motivated — the
    // old path cloned `(String, String)` per matched-rank lookup.
    let (_, allocs) = allocations_during(|| {
        let mut last = None;
        for i in 0..50_000u64 {
            let user = i % 16;
            let d = districts[(i % districts.len() as u64) as usize];
            og.push_key(og.key(user, profile, d));
            last = og.group_of(user);
        }
        last
    });
    assert_eq!(
        allocs, 0,
        "warm push_key/group_of allocated {allocs} times over 50k updates"
    );
}

#[test]
fn merge_loop_allocations_scale_with_district_count_only() {
    let mut interner = DistrictInterner::new();
    let narrow = keys(&mut interner, 50_000, 4);
    let wide = keys(&mut interner, 50_000, 64);
    let _ = group_user_keys_with(&narrow, TieBreak::FirstSeen, &interner);
    let (_, narrow_allocs) =
        allocations_during(|| group_user_keys_with(&narrow, TieBreak::FirstSeen, &interner));
    let (_, wide_allocs) =
        allocations_during(|| group_user_keys_with(&wide, TieBreak::FirstSeen, &interner));
    assert!(
        wide_allocs > narrow_allocs,
        "a wider district vocabulary must cost more ({narrow_allocs} vs {wide_allocs})"
    );
    // But still bounded by the vocabulary, not the 50k tweets: even at 64
    // districts the whole stage stays under ~6 allocations per district
    // (merge vector growth + two strings and a Vec per merged entry).
    assert!(
        wide_allocs < 6 * 64,
        "{wide_allocs} allocations for 64 districts"
    );
}
