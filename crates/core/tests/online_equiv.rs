//! Property tests pinning the incremental engine to the batch grouper:
//! for arbitrary key streams and every tie-break policy, pushing keys one
//! at a time through [`OnlineGrouping`] must end in exactly the state the
//! batch method computes from the whole stream at once — same entries,
//! same matched ranks, same groups, at every prefix.

use proptest::prelude::*;
use stir_core::intern::LocationKey;
use stir_core::{group_user_keys_with, OnlineGrouping, TieBreak};

const POLICIES: [TieBreak; 4] = [
    TieBreak::FirstSeen,
    TieBreak::Alphabetical,
    TieBreak::MatchedFirst,
    TieBreak::MatchedLast,
];

/// District vocabulary: index 0 is every user's profile district; the rest
/// include a same-county-name-different-state pair so Alphabetical ordering
/// is exercised across states.
const DISTRICTS: [(&str, &str); 6] = [
    ("Seoul", "Guro-gu"),
    ("Seoul", "Mapo-gu"),
    ("Seoul", "Jung-gu"),
    ("Busan", "Jung-gu"),
    ("Gyeonggi-do", "Bucheon-si"),
    ("Seoul", "Gangnam-gu"),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn online_equals_batch_under_every_tie_break(
        stream in prop::collection::vec((0u64..5, 0usize..6), 1..160),
        policy_idx in 0usize..4,
    ) {
        let tie_break = POLICIES[policy_idx];
        let mut og = OnlineGrouping::with_tie_break(tie_break);
        let ids: Vec<_> = DISTRICTS
            .iter()
            .map(|(s, c)| og.intern_district(s, c))
            .collect();
        let profile = ids[0];

        // Push the stream one key at a time, checking the *live* answer
        // against a batch re-grouping of the prefix at every step.
        let mut seen: Vec<LocationKey> = Vec::new();
        for &(user, d) in &stream {
            let key = og.key(user, profile, ids[d % ids.len()]);
            let live = og.push_key(key);
            seen.push(key);
            let prefix: Vec<LocationKey> =
                seen.iter().filter(|k| k.user == user).copied().collect();
            let batch = group_user_keys_with(&prefix, tie_break, og.interner())
                .expect("prefix contains this user");
            prop_assert_eq!(
                live,
                batch.group(),
                "policy {:?}: live group diverged mid-stream",
                tie_break
            );
            prop_assert_eq!(og.group_of(user), Some(batch.group()));
        }

        // Final state: the snapshot is the batch output, field for field.
        let snapshot = og.snapshot();
        let mut users: Vec<u64> = stream.iter().map(|&(u, _)| u).collect();
        users.sort_unstable();
        users.dedup();
        prop_assert_eq!(snapshot.len(), users.len());
        for (gu, &user) in snapshot.iter().zip(&users) {
            let keys: Vec<LocationKey> =
                seen.iter().filter(|k| k.user == user).copied().collect();
            let batch = group_user_keys_with(&keys, tie_break, og.interner()).unwrap();
            prop_assert_eq!(gu.user, user);
            prop_assert_eq!(&gu.entries, &batch.entries, "policy {:?}", tie_break);
            prop_assert_eq!(gu.matched_rank, batch.matched_rank, "policy {:?}", tie_break);
            prop_assert_eq!(&gu.state_profile, &batch.state_profile);
            prop_assert_eq!(&gu.county_profile, &batch.county_profile);
        }
    }
}
