//! Temporal posting analysis.
//!
//! The grouping method uses only *where* tweets come from; the follow-up
//! question — pursued in the first author's later work on posting-behaviour
//! temporality — is *when* each group tweets. If the None group really is
//! commuters (§IV's scenario), their GPS tweets should cluster in commute
//! hours; home-anchored Top-1 users should skew to evenings. This module
//! computes per-group hour-of-day histograms and a commute index.

use std::collections::HashMap;

use crate::topk::TopKGroup;

/// Hour-of-day histogram (24 bins).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HourHistogram {
    /// Tweet counts per hour.
    pub counts: [u64; 24],
}

impl HourHistogram {
    /// Records a timestamp (window seconds).
    pub fn add(&mut self, timestamp: u64) {
        self.counts[((timestamp / 3600) % 24) as usize] += 1;
    }

    /// Total tweets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Share of tweets in a given hour, in `[0, 1]`.
    pub fn share(&self, hour: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[hour] as f64 / total as f64
        }
    }

    /// The busiest hour (lowest index on ties).
    pub fn peak_hour(&self) -> usize {
        let mut best = 0;
        for h in 1..24 {
            if self.counts[h] > self.counts[best] {
                best = h;
            }
        }
        best
    }

    /// Share of tweets in commute hours (7–9 and 18–20, KST).
    pub fn commute_index(&self) -> f64 {
        [7, 8, 9, 18, 19, 20].iter().map(|&h| self.share(h)).sum()
    }
}

/// Per-group histograms from `(user, timestamp)` rows and a user→group map.
/// Rows of unknown users are ignored.
pub fn per_group_histograms<I: IntoIterator<Item = (u64, u64)>>(
    rows: I,
    groups: &HashMap<u64, TopKGroup>,
) -> [HourHistogram; 7] {
    let mut out = [HourHistogram::default(); 7];
    for (user, timestamp) in rows {
        if let Some(g) = groups.get(&user) {
            out[g.index()].add(timestamp);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_shares() {
        let mut h = HourHistogram::default();
        h.add(0); // hour 0
        h.add(3_600); // hour 1
        h.add(3_600 * 25); // day 2, hour 1
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts[1], 2);
        assert!((h.share(1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.peak_hour(), 1);
    }

    #[test]
    fn commute_index_sums_six_hours() {
        let mut h = HourHistogram::default();
        for hour in [7u64, 8, 9, 18, 19, 20] {
            h.add(hour * 3600);
        }
        h.add(12 * 3600);
        h.add(13 * 3600);
        assert!((h.commute_index() - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn per_group_routing() {
        let mut groups = HashMap::new();
        groups.insert(1, TopKGroup::Top1);
        groups.insert(2, TopKGroup::None);
        let rows = vec![(1u64, 8 * 3600u64), (2, 8 * 3600), (2, 19 * 3600), (99, 0)];
        let hists = per_group_histograms(rows, &groups);
        assert_eq!(hists[TopKGroup::Top1.index()].total(), 1);
        assert_eq!(hists[TopKGroup::None.index()].total(), 2);
        assert_eq!(hists[TopKGroup::Top2.index()].total(), 0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = HourHistogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.share(3), 0.0);
        assert_eq!(h.commute_index(), 0.0);
        assert_eq!(h.peak_hour(), 0);
    }
}
