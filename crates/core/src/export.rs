//! CSV export of analysis artifacts.
//!
//! The text reports in [`crate::report`] are for terminals; these writers
//! produce the machine-readable series a plotting pipeline (or a referee
//! re-checking the reproduction) wants. Hand-rolled CSV with RFC-4180
//! quoting — no serde needed for four fixed schemas.

use std::fmt::Write as _;

use crate::funnel::CollectionFunnel;
use crate::grouping::GroupedUser;
use crate::regional::RegionRow;
use crate::stats::GroupTable;

/// Quotes a CSV field when needed (commas, quotes, newlines).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The group table (Figs. 6–7 + tweet shares) as CSV.
pub fn group_table_csv(table: &GroupTable) -> String {
    let mut out = String::from("group,users,user_pct,tweets,tweet_pct,avg_locations\n");
    for r in &table.rows {
        let _ = writeln!(
            out,
            "{},{},{:.4},{},{:.4},{:.4}",
            r.group.label(),
            r.users,
            r.user_pct,
            r.tweets,
            r.tweet_pct,
            r.avg_locations
        );
    }
    let _ = writeln!(
        out,
        "total,{},100.0,{},100.0,{:.4}",
        table.total_users, table.total_tweets, table.overall_avg_locations
    );
    out
}

/// The refinement funnel as CSV (`stage,count`).
pub fn funnel_csv(f: &CollectionFunnel) -> String {
    let rows: [(&str, u64); 13] = [
        ("users_collected", f.users_collected),
        ("users_well_defined", f.users_well_defined),
        ("users_vague", f.users_vague),
        ("users_insufficient", f.users_insufficient),
        ("users_ambiguous", f.users_ambiguous),
        ("users_foreign", f.users_foreign),
        ("users_empty", f.users_empty),
        ("users_profile_coordinates", f.users_profile_coordinates),
        ("tweets_total", f.tweets_total),
        ("tweets_with_gps", f.tweets_with_gps),
        ("tweets_gps_unresolvable", f.tweets_gps_unresolvable),
        ("strings_built", f.strings_built),
        ("users_final", f.users_final),
    ];
    let mut out = String::from("stage,count\n");
    for (stage, count) in rows {
        let _ = writeln!(out, "{stage},{count}");
    }
    out
}

/// Per-user cohort rows (one line per grouped user) as CSV.
pub fn cohort_csv(users: &[GroupedUser]) -> String {
    let mut out = String::from(
        "user,state_profile,county_profile,group,matched_rank,distinct_locations,total_tweets,matched_tweets\n",
    );
    for u in users {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            u.user,
            field(&u.state_profile),
            field(&u.county_profile),
            u.group().label(),
            u.matched_rank.map_or(String::from(""), |r| r.to_string()),
            u.distinct_locations(),
            u.total_tweets(),
            u.matched_tweets()
        );
    }
    out
}

/// The regional reliability table as CSV.
pub fn regional_csv(rows: &[RegionRow]) -> String {
    let mut out = String::from("state,users,mean_matched_fraction,top1_share,none_share\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.6},{:.6}",
            field(&r.state),
            r.users,
            r.mean_matched_fraction,
            r.top1_share,
            r.none_share
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::group_user_strings;
    use crate::string::LocationString;

    fn cohort() -> Vec<GroupedUser> {
        vec![group_user_strings(&[LocationString {
            user: 7,
            state_profile: "Seoul".into(),
            county_profile: "Guro-gu".into(),
            state_tweet: "Seoul".into(),
            county_tweet: "Guro-gu".into(),
        }])
        .unwrap()]
    }

    #[test]
    fn group_table_csv_has_all_rows() {
        let csv = group_table_csv(&GroupTable::compute(&cohort()));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 9); // header + 7 groups + total
        assert!(lines[0].starts_with("group,users"));
        assert!(lines[1].starts_with("Top-1,1,100.0000"));
        assert!(lines[8].starts_with("total,1"));
    }

    #[test]
    fn funnel_csv_covers_every_stage() {
        let csv = funnel_csv(&CollectionFunnel {
            users_collected: 10,
            ..Default::default()
        });
        assert_eq!(csv.lines().count(), 14);
        assert!(csv.contains("users_collected,10"));
        assert!(csv.contains("users_final,0"));
    }

    #[test]
    fn cohort_csv_rows() {
        let csv = cohort_csv(&cohort());
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("7,Seoul,Guro-gu,Top-1,1,1,1,1"));
    }

    #[test]
    fn quoting_is_rfc4180() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn regional_csv_rows() {
        let rows = vec![RegionRow {
            state: "Seoul".into(),
            users: 3,
            mean_matched_fraction: 0.5,
            none_share: 0.25,
            top1_share: 0.5,
        }];
        let csv = regional_csv(&rows);
        assert!(csv.contains("Seoul,3,0.500000,0.500000,0.250000"));
    }
}
