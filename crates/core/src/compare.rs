//! Comparing two group tables — the machinery behind the dataset
//! comparison (slides 4–5) and the granularity ablation, as a library.

use crate::stats::GroupTable;
use crate::topk::TopKGroup;

/// Per-group deltas between two tables (`b − a`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupDelta {
    /// The group.
    pub group: TopKGroup,
    /// Change in user percentage points.
    pub user_pct_delta: f64,
    /// Change in tweet percentage points.
    pub tweet_pct_delta: f64,
    /// Change in average distinct districts.
    pub avg_locations_delta: f64,
}

/// A full table-vs-table comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct TableComparison {
    /// Deltas in [`TopKGroup::ALL`] order.
    pub deltas: [GroupDelta; 7],
    /// Change in Top-1∪Top-2 percentage points.
    pub top1_top2_delta: f64,
    /// Change in the overall average district count.
    pub overall_avg_delta: f64,
    /// Total variation distance between the two user-share distributions,
    /// in `[0, 1]`: half the sum of absolute share differences. 0 ⇒
    /// identical distributions, 1 ⇒ disjoint.
    pub user_share_tvd: f64,
}

/// Compares two tables (`b` relative to `a`).
pub fn compare(a: &GroupTable, b: &GroupTable) -> TableComparison {
    let deltas = std::array::from_fn(|i| {
        let g = TopKGroup::ALL[i];
        GroupDelta {
            group: g,
            user_pct_delta: b.row(g).user_pct - a.row(g).user_pct,
            tweet_pct_delta: b.row(g).tweet_pct - a.row(g).tweet_pct,
            avg_locations_delta: b.row(g).avg_locations - a.row(g).avg_locations,
        }
    });
    let user_share_tvd = TopKGroup::ALL
        .iter()
        .map(|&g| (b.row(g).user_pct - a.row(g).user_pct).abs())
        .sum::<f64>()
        / 200.0;
    TableComparison {
        deltas,
        top1_top2_delta: b.top1_top2_pct() - a.top1_top2_pct(),
        overall_avg_delta: b.overall_avg_locations - a.overall_avg_locations,
        user_share_tvd,
    }
}

impl TableComparison {
    /// The delta for a group.
    pub fn delta(&self, group: TopKGroup) -> &GroupDelta {
        &self.deltas[group.index()]
    }

    /// True when the two tables' user distributions differ by less than
    /// `tolerance_pct` percentage points in every group.
    pub fn within(&self, tolerance_pct: f64) -> bool {
        self.deltas
            .iter()
            .all(|d| d.user_pct_delta.abs() <= tolerance_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::group_user_strings;
    use crate::string::LocationString;

    fn table(top1: usize, none: usize) -> GroupTable {
        let mut users = Vec::new();
        for u in 0..top1 {
            users.push(
                group_user_strings(&[LocationString {
                    user: u as u64,
                    state_profile: "Seoul".into(),
                    county_profile: "Guro-gu".into(),
                    state_tweet: "Seoul".into(),
                    county_tweet: "Guro-gu".into(),
                }])
                .unwrap(),
            );
        }
        for u in 0..none {
            users.push(
                group_user_strings(&[LocationString {
                    user: (top1 + u) as u64,
                    state_profile: "Seoul".into(),
                    county_profile: "Guro-gu".into(),
                    state_tweet: "Seoul".into(),
                    county_tweet: "Mapo-gu".into(),
                }])
                .unwrap(),
            );
        }
        GroupTable::compute(&users)
    }

    #[test]
    fn identical_tables_compare_to_zero() {
        let t = table(60, 40);
        let c = compare(&t, &t);
        assert_eq!(c.user_share_tvd, 0.0);
        assert!(c.within(0.0));
        assert_eq!(c.top1_top2_delta, 0.0);
    }

    #[test]
    fn deltas_are_signed_b_minus_a() {
        let a = table(60, 40);
        let b = table(40, 60);
        let c = compare(&a, &b);
        assert!((c.delta(TopKGroup::Top1).user_pct_delta - -20.0).abs() < 1e-9);
        assert!((c.delta(TopKGroup::None).user_pct_delta - 20.0).abs() < 1e-9);
        assert!((c.user_share_tvd - 0.2).abs() < 1e-9);
        assert!(!c.within(10.0));
        assert!(c.within(20.0));
    }

    #[test]
    fn tvd_is_symmetric() {
        let a = table(70, 30);
        let b = table(55, 45);
        assert!((compare(&a, &b).user_share_tvd - compare(&b, &a).user_share_tvd).abs() < 1e-12);
    }
}
