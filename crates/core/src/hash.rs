//! A minimal FNV-1a [`Hasher`] for hot in-crate hash maps.
//!
//! The standard library's default hasher (SipHash) is DoS-resistant but
//! costs tens of nanoseconds per short key — measurable when a per-query
//! stage probes a map once per profile row. The maps switched to FNV are
//! all query-local and keyed by data the process generated or already
//! admitted, so collision-flooding is not a concern; determinism across
//! runs is a bonus (SipHash is randomly seeded, FNV is not).

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit.
#[derive(Default)]
pub struct FnvHasher(u64);

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        if self.0 == 0 {
            OFFSET
        } else {
            self.0
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { OFFSET } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into `HashMap`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn fnv_map_roundtrips_and_is_deterministic() {
        let mut m: HashMap<String, u32, FnvBuildHasher> = HashMap::default();
        for i in 0..100u32 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
        let mut h1 = FnvHasher::default();
        let mut h2 = FnvHasher::default();
        h1.write(b"abc");
        h2.write(b"abc");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FnvHasher::default();
        h3.write(b"abd");
        assert_ne!(h1.finish(), h3.finish());
    }
}
