//! Per-group statistics — the numbers behind the paper's Figs. 6 and 7 and
//! the slides' tweets-per-group chart.

use crate::grouping::GroupedUser;
use crate::topk::TopKGroup;

/// One row of the group table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupRow {
    /// The group.
    pub group: TopKGroup,
    /// Users in the group.
    pub users: u64,
    /// Users as a percentage of the cohort.
    pub user_pct: f64,
    /// GPS tweets by users in the group.
    pub tweets: u64,
    /// Tweets as a percentage of all cohort GPS tweets.
    pub tweet_pct: f64,
    /// Average number of distinct tweet districts (Fig. 6's quantity).
    pub avg_locations: f64,
}

/// The full 7-row table plus cohort-level aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupTable {
    /// Rows in [`TopKGroup::ALL`] order.
    pub rows: [GroupRow; 7],
    /// Cohort size.
    pub total_users: u64,
    /// Total GPS tweets in the cohort.
    pub total_tweets: u64,
    /// User-weighted average of distinct tweet districts across the cohort
    /// (the paper's closing §IV statistic).
    pub overall_avg_locations: f64,
}

impl GroupTable {
    /// Computes the table from grouped users.
    pub fn compute(users: &[GroupedUser]) -> Self {
        let mut user_counts = [0u64; 7];
        let mut tweet_counts = [0u64; 7];
        let mut loc_sums = [0u64; 7];
        for u in users {
            let idx = u.group().index();
            user_counts[idx] += 1;
            tweet_counts[idx] += u.total_tweets();
            loc_sums[idx] += u.distinct_locations() as u64;
        }
        let total_users: u64 = user_counts.iter().sum();
        let total_tweets: u64 = tweet_counts.iter().sum();
        let rows = std::array::from_fn(|i| GroupRow {
            group: TopKGroup::ALL[i],
            users: user_counts[i],
            user_pct: pct(user_counts[i], total_users),
            tweets: tweet_counts[i],
            tweet_pct: pct(tweet_counts[i], total_tweets),
            avg_locations: if user_counts[i] == 0 {
                0.0
            } else {
                loc_sums[i] as f64 / user_counts[i] as f64
            },
        });
        let overall_avg_locations = if total_users == 0 {
            0.0
        } else {
            loc_sums.iter().sum::<u64>() as f64 / total_users as f64
        };
        GroupTable {
            rows,
            total_users,
            total_tweets,
            overall_avg_locations,
        }
    }

    /// The row for a group.
    pub fn row(&self, group: TopKGroup) -> &GroupRow {
        &self.rows[group.index()]
    }

    /// Combined user percentage of Top-1 and Top-2 — the paper's headline
    /// ("more than 4x% of all users are in the Top-1 group and Top-2
    /// group … nearly half of all users post tweets in their hometown").
    pub fn top1_top2_pct(&self) -> f64 {
        self.row(TopKGroup::Top1).user_pct + self.row(TopKGroup::Top2).user_pct
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::group_user_strings;
    use crate::string::LocationString;

    fn user_with(user: u64, tweets: &[(&str, usize)], profile_county: &str) -> GroupedUser {
        let strings: Vec<LocationString> = tweets
            .iter()
            .flat_map(|&(county, n)| {
                std::iter::repeat_with(move || LocationString {
                    user,
                    state_profile: "Seoul".into(),
                    county_profile: profile_county.into(),
                    state_tweet: "Seoul".into(),
                    county_tweet: county.into(),
                })
                .take(n)
            })
            .collect();
        group_user_strings(&strings).unwrap()
    }

    fn cohort() -> Vec<GroupedUser> {
        vec![
            // Top-1: 4 home, 1 elsewhere → 2 districts
            user_with(1, &[("Guro-gu", 4), ("Mapo-gu", 1)], "Guro-gu"),
            // Top-1: all home → 1 district
            user_with(2, &[("Guro-gu", 3)], "Guro-gu"),
            // Top-2: elsewhere dominates
            user_with(
                3,
                &[("Mapo-gu", 5), ("Guro-gu", 2), ("Jung-gu", 1)],
                "Guro-gu",
            ),
            // None
            user_with(4, &[("Mapo-gu", 2), ("Jung-gu", 2)], "Guro-gu"),
        ]
    }

    #[test]
    fn table_counts() {
        let t = GroupTable::compute(&cohort());
        assert_eq!(t.total_users, 4);
        assert_eq!(t.total_tweets, 5 + 3 + 8 + 4);
        assert_eq!(t.row(TopKGroup::Top1).users, 2);
        assert_eq!(t.row(TopKGroup::Top2).users, 1);
        assert_eq!(t.row(TopKGroup::None).users, 1);
        assert_eq!(t.row(TopKGroup::Top3).users, 0);
        assert!((t.row(TopKGroup::Top1).user_pct - 50.0).abs() < 1e-12);
        assert!((t.top1_top2_pct() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn avg_locations_per_group() {
        let t = GroupTable::compute(&cohort());
        assert!((t.row(TopKGroup::Top1).avg_locations - 1.5).abs() < 1e-12); // (2+1)/2
        assert!((t.row(TopKGroup::Top2).avg_locations - 3.0).abs() < 1e-12);
        assert!((t.row(TopKGroup::None).avg_locations - 2.0).abs() < 1e-12);
        assert_eq!(t.row(TopKGroup::Top5).avg_locations, 0.0);
        // Overall: (2 + 1 + 3 + 2) / 4 = 2.0
        assert!((t.overall_avg_locations - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tweet_percentages_sum_to_100() {
        let t = GroupTable::compute(&cohort());
        let sum: f64 = t.rows.iter().map(|r| r.tweet_pct).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        let usum: f64 = t.rows.iter().map(|r| r.user_pct).sum();
        assert!((usum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cohort() {
        let t = GroupTable::compute(&[]);
        assert_eq!(t.total_users, 0);
        assert_eq!(t.overall_avg_locations, 0.0);
        assert_eq!(t.top1_top2_pct(), 0.0);
    }
}
