//! The analysis side of seal-time group sketches (§III-B pushdown).
//!
//! The store layer materializes a [`GroupSketch`] per sealed segment but
//! stays vocabulary-agnostic; this module supplies the two halves the
//! pipeline needs to exploit them:
//!
//! * [`GazetteerSketcher`] — the [`SketchResolver`] that maps a GPS fix to
//!   a gazetteer district id with *exactly* the scan path's semantics
//!   (e6 coverage prescreen, then [`Gazetteer::resolve_point`]), plus
//!   [`gazetteer_fingerprint`], the vocabulary hash embedded in every
//!   sketch so a sketch built under one district table is never merged
//!   under another.
//! * The delta-merge query engine ([`SketchPlan`] / [`execute_plan`]) —
//!   k-way merges per-segment sketches for the kept cohort, scans only
//!   the open tail (and, for non-day-aligned windows, the boundary
//!   buckets' records), and reassembles per-user merged
//!   `(district, count, first_seen)` state byte-identical to the batch
//!   engines. Ordinals are reconstructed as `segment base + first_slot`,
//!   so first-seen tie-breaks agree with the scan order by construction.

use std::collections::HashMap;
use std::sync::Arc;

use stir_geoindex::Point;
use stir_geokr::Gazetteer;
use stir_tweetstore::{GroupSketch, SegmentRef, ShardedStore, SketchResolver, TweetStore, ZoneMap};

use crate::grouping::{materialize_user, merged_cmp, GroupedUser, MergedId, TieBreak};
use crate::intern::{DistrictId, DistrictInterner};
use crate::pipeline::exec::{quant_e6, CoverE6};
use crate::pipeline::TimeWindow;

/// Seconds per sketch day bucket (mirrors the store layer's constant).
const SECONDS_PER_DAY: u64 = stir_tweetstore::sketch::SECONDS_PER_DAY;

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// Hashes a gazetteer's district vocabulary — the value a
/// [`GazetteerSketcher`] reports as its [`SketchResolver::fingerprint`]
/// and the pipeline demands of every sketch it merges. Two independently
/// loaded gazetteers over the same district table fingerprint identically,
/// so sketches persisted by one process validate in another.
pub fn gazetteer_fingerprint(gazetteer: &Gazetteer) -> u64 {
    let districts = gazetteer.districts();
    let mut h = fnv64(FNV64_OFFSET, &(districts.len() as u64).to_le_bytes());
    for d in districts {
        h = fnv64(h, d.province.name_en().as_bytes());
        h = fnv64(h, &[0]);
        h = fnv64(h, d.name_en.as_bytes());
        h = fnv64(h, &[0]);
    }
    h
}

enum GazRef<'g> {
    Owned(Box<Gazetteer>),
    Borrowed(&'g Gazetteer),
}

/// The gazetteer as a [`SketchResolver`]: install on a [`TweetStore`] (or
/// every shard) so segments sketch themselves at seal time and rebuild
/// lazily for pre-existing seals.
///
/// Resolution reproduces the scan path bit for bit: the coordinate is
/// quantized onto the e6 grid and prescreened against the widened Korea
/// cover box (a reject counts as unresolvable, exactly as the fused
/// engine counts it), then resolved through [`Gazetteer::resolve_point`].
pub struct GazetteerSketcher<'g> {
    gaz: GazRef<'g>,
    cover: CoverE6,
    fingerprint: u64,
}

impl GazetteerSketcher<'static> {
    /// A self-contained sketcher over its own freshly loaded gazetteer —
    /// the shape to wrap in an `Arc` and hand to
    /// [`TweetStore::set_sketcher`].
    pub fn new() -> Self {
        Self::from_ref(GazRef::Owned(Box::new(Gazetteer::load())))
    }
}

impl Default for GazetteerSketcher<'static> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'g> GazetteerSketcher<'g> {
    /// A sketcher borrowing an existing gazetteer (what the pipeline uses
    /// for its residual tail scans, so query-time resolution shares the
    /// pipeline's own district table).
    pub fn for_gazetteer(gazetteer: &'g Gazetteer) -> Self {
        Self::from_ref(GazRef::Borrowed(gazetteer))
    }

    fn from_ref(gaz: GazRef<'g>) -> Self {
        let fingerprint = gazetteer_fingerprint(match &gaz {
            GazRef::Owned(g) => g,
            GazRef::Borrowed(g) => g,
        });
        GazetteerSketcher {
            gaz,
            cover: CoverE6::korea(),
            fingerprint,
        }
    }

    fn gazetteer(&self) -> &Gazetteer {
        match &self.gaz {
            GazRef::Owned(g) => g,
            GazRef::Borrowed(g) => g,
        }
    }
}

impl SketchResolver for GazetteerSketcher<'_> {
    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn resolve(&self, lat: f64, lon: f64) -> Option<u32> {
        if self.cover.rejects(quant_e6(lat), quant_e6(lon)) {
            return None;
        }
        self.gazetteer()
            .resolve_point(Point::new(lat, lon))
            .map(|d| d.0 as u32)
    }
}

/// Everything a sketch-complete query reads: every sealed segment's sketch
/// with its global ordinal base (and the segment itself, for boundary-day
/// scans), plus the unsketched tail segments scanned record-wise. Bases
/// accumulate in scan order — segments within a store, stores in shard
/// order — matching the block sources' ordinal layout, so first-seen
/// tie-breaks reconstructed from `base + first_slot` agree with a scan.
pub(crate) struct SketchPlan<'s> {
    pub(crate) sketched: Vec<(Arc<GroupSketch>, u64, SegmentRef<'s>)>,
    pub(crate) tails: Vec<(SegmentRef<'s>, u64)>,
}

/// Plans a sketch-complete query over one store: `Some` only when *every*
/// sealed segment yields a sketch under `fingerprint` (persisted sidecar
/// or lazily built); any gap means the whole query falls back to the scan
/// engines.
pub(crate) fn plan_store(store: &TweetStore, fingerprint: u64) -> Option<SketchPlan<'_>> {
    let mut plan = SketchPlan {
        sketched: Vec::new(),
        tails: Vec::new(),
    };
    let mut base = 0u64;
    extend_plan(&mut plan, store, fingerprint, &mut base)?;
    Some(plan)
}

/// [`plan_store`] over every shard, shard order, cumulative ordinal bases.
pub(crate) fn plan_shards(store: &ShardedStore, fingerprint: u64) -> Option<SketchPlan<'_>> {
    let mut plan = SketchPlan {
        sketched: Vec::new(),
        tails: Vec::new(),
    };
    let mut base = 0u64;
    for shard in store.shards() {
        extend_plan(&mut plan, shard, fingerprint, &mut base)?;
    }
    Some(plan)
}

fn extend_plan<'s>(
    plan: &mut SketchPlan<'s>,
    store: &'s TweetStore,
    fingerprint: u64,
    base: &mut u64,
) -> Option<()> {
    let segments = store.segments();
    let last = segments.len() - 1;
    for (i, seg) in segments.into_iter().enumerate() {
        if i == last {
            // The active tail is mutable and never sketched.
            plan.tails.push((seg, *base));
        } else {
            plan.sketched
                .push((store.sketch_for(i, fingerprint)?, *base, seg));
        }
        *base += seg.len() as u64;
    }
    Some(())
}

/// A [`TimeWindow`] decomposed into whole day buckets (answered from
/// sketches) plus the partial boundary second-ranges (scanned record-wise
/// in the segments whose zone map overlaps them).
pub(crate) enum SketchWindow {
    /// No window: every bucket merges, the tail scans in full.
    All,
    /// A bounded window: days in `full` (`[lo, hi)` day ordinals) merge
    /// from sketches; `partials` are the `[start, end)` second-ranges not
    /// covered by a full day (at most two, one per boundary).
    Days {
        full: (u64, u64),
        partials: Vec<(u64, u64)>,
        bounds: (u64, u64),
    },
}

impl SketchWindow {
    pub(crate) fn for_window(w: TimeWindow) -> SketchWindow {
        if w.start >= w.end {
            return SketchWindow::Days {
                full: (0, 0),
                partials: Vec::new(),
                bounds: (w.start, w.start),
            };
        }
        let lo_aligned = w.start.is_multiple_of(SECONDS_PER_DAY);
        let hi_aligned = w.end.is_multiple_of(SECONDS_PER_DAY);
        let full_lo = w.start / SECONDS_PER_DAY + u64::from(!lo_aligned);
        // Day d is fully covered iff (d+1)·86400 ≤ end, i.e. d < end/86400.
        let full_hi = w.end / SECONDS_PER_DAY;
        let mut partials = Vec::new();
        if full_lo >= full_hi {
            // The window never covers a whole day: one partial range.
            partials.push((w.start, w.end));
            return SketchWindow::Days {
                full: (full_lo, full_lo),
                partials,
                bounds: (w.start, w.end),
            };
        }
        if !lo_aligned {
            partials.push((w.start, full_lo * SECONDS_PER_DAY));
        }
        if !hi_aligned {
            partials.push((full_hi * SECONDS_PER_DAY, w.end));
        }
        SketchWindow::Days {
            full: (full_lo, full_hi),
            partials,
            bounds: (w.start, w.end),
        }
    }

    fn includes_day(&self, day: u64) -> bool {
        match self {
            SketchWindow::All => true,
            SketchWindow::Days { full, .. } => full.0 <= day && day < full.1,
        }
    }

    /// Whether any day in the inclusive range `[lo, hi]` is a full window
    /// day — the segment-level prune: a sketched segment whose day span
    /// misses the window entirely is skipped without touching its users.
    fn overlaps_days(&self, lo: u64, hi: u64) -> bool {
        match self {
            SketchWindow::All => true,
            SketchWindow::Days { full, .. } => full.0 < full.1 && lo < full.1 && hi >= full.0,
        }
    }

    fn in_partials(&self, ts: u64) -> bool {
        match self {
            SketchWindow::All => false,
            SketchWindow::Days { partials, .. } => partials.iter().any(|&(s, e)| ts >= s && ts < e),
        }
    }

    fn in_bounds(&self, ts: u64) -> bool {
        match self {
            SketchWindow::All => true,
            SketchWindow::Days { bounds, .. } => ts >= bounds.0 && ts < bounds.1,
        }
    }

    fn partials_overlap(&self, zm: &ZoneMap) -> bool {
        match self {
            SketchWindow::All => false,
            SketchWindow::Days { partials, .. } => partials
                .iter()
                .any(|&(s, e)| zm.records > 0 && zm.min_ts < e && zm.max_ts >= s),
        }
    }
}

/// What the merge layer hands back: the grouped cohort plus the funnel
/// and observability counters the pipeline folds into its metrics.
#[derive(Default)]
pub(crate) struct SketchOutcome {
    pub(crate) users: Vec<GroupedUser>,
    pub(crate) tweets_total: u64,
    pub(crate) tweets_with_gps: u64,
    pub(crate) unresolvable: u64,
    pub(crate) strings_built: u64,
    /// Sketch entries folded into the per-user accumulators.
    pub(crate) entries_merged: u64,
    /// Distinct per-user districts after the merge.
    pub(crate) merged_entries: u64,
    /// Headers decoded during residual (tail / boundary) scans.
    pub(crate) residual_scanned: u64,
    /// GPS fixes of kept users resolved during residual scans.
    pub(crate) residual_fixes: u64,
    pub(crate) sketch_segments: u64,
    pub(crate) sketch_bytes: u64,
}

/// Shared pipeline state the merge borrows for one query.
pub(crate) struct MergeParams<'a> {
    pub(crate) kept: &'a HashMap<u64, DistrictId>,
    pub(crate) gaz_to_interned: &'a [DistrictId],
    pub(crate) interner: &'a DistrictInterner,
    pub(crate) resolver: &'a dyn SketchResolver,
    pub(crate) tie_break: TieBreak,
}

/// One kept user's in-flight merge state. Districts accumulate in a small
/// vector probed linearly — per-user district counts are bounded by the
/// gazetteer vocabulary and in practice tiny, so a scan beats hashing.
struct UserAcc {
    unresolvable: u64,
    /// `(interned district, count, min global ordinal)`.
    districts: Vec<(DistrictId, u64, u64)>,
}

impl UserAcc {
    fn bump(&mut self, district: DistrictId, count: u64, ordinal: u64) {
        for d in &mut self.districts {
            if d.0 == district {
                d.1 += count;
                d.2 = d.2.min(ordinal);
                return;
            }
        }
        self.districts.push((district, count, ordinal));
    }
}

/// The kept users laid out for merging: ids sorted (the same order
/// `GroupSketch::users` is stored in, so each segment joins with one
/// two-pointer sweep and zero hashing), profiles and accumulators
/// parallel to them.
struct Cohort {
    ids: Vec<u64>,
    profiles: Vec<DistrictId>,
    accs: Vec<UserAcc>,
}

impl Cohort {
    fn new(kept: &HashMap<u64, DistrictId>) -> Cohort {
        let mut rows: Vec<(u64, DistrictId)> = kept.iter().map(|(&u, &p)| (u, p)).collect();
        rows.sort_unstable_by_key(|r| r.0);
        let mut c = Cohort {
            ids: Vec::with_capacity(rows.len()),
            profiles: Vec::with_capacity(rows.len()),
            accs: Vec::with_capacity(rows.len()),
        };
        for (user, profile) in rows {
            c.ids.push(user);
            c.profiles.push(profile);
            c.accs.push(UserAcc {
                unresolvable: 0,
                districts: Vec::new(),
            });
        }
        c
    }

    fn index_of(&self, user: u64) -> Option<usize> {
        self.ids.binary_search(&user).ok()
    }
}

/// Runs a sketch-complete query: merges every in-window sketch bucket,
/// scans the residue (open tails; boundary ranges of sealed segments
/// whose zone map overlaps them), and materializes the cohort in user-id
/// order — byte-identical to the scan engines over the same window.
pub(crate) fn execute_plan(
    plan: &SketchPlan<'_>,
    window: &SketchWindow,
    p: &MergeParams<'_>,
) -> SketchOutcome {
    let mut cohort = Cohort::new(p.kept);
    let mut out = SketchOutcome::default();
    for (sketch, base, seg) in &plan.sketched {
        out.sketch_segments += 1;
        out.sketch_bytes += sketch.mem_bytes();
        // Segment-level prune: day_totals are sorted, so the first/last
        // day bound the segment's span. A windowed merge only walks the
        // segments the window can reach — cost scales with touched
        // buckets, not corpus size. (Boundary partials are handled by the
        // residual scan below, which has its own zone-map overlap check.)
        let span = match (sketch.day_totals.first(), sketch.day_totals.last()) {
            (Some(first), Some(last)) => window.overlaps_days(first.day, last.day),
            _ => false,
        };
        if !span {
            if window.partials_overlap(seg.zone_map()) {
                scan_residual(seg, *base, window, true, p, &mut cohort, &mut out);
            }
            continue;
        }
        for t in &sketch.day_totals {
            if window.includes_day(t.day) {
                out.tweets_total += t.records;
                out.tweets_with_gps += t.gps_records;
            }
        }
        // Two-pointer join: both sides are sorted by user id, so skipping
        // the (typically vast) non-kept majority costs one comparison per
        // sketched user, not a hash probe.
        let mut ci = 0usize;
        for u in &sketch.users {
            while cohort.ids.get(ci).is_some_and(|&id| id < u.user) {
                ci += 1;
            }
            let Some(&id) = cohort.ids.get(ci) else { break };
            if id != u.user {
                continue;
            }
            let acc = &mut cohort.accs[ci];
            for d in sketch.days_of(u) {
                if !window.includes_day(d.day) {
                    continue;
                }
                acc.unresolvable += d.unresolvable;
                for e in sketch.entries_of(d) {
                    // Defensive: a fingerprint-matched sketch can't hold an
                    // out-of-vocabulary district; skip rather than panic.
                    let Some(&interned) = p.gaz_to_interned.get(e.district as usize) else {
                        continue;
                    };
                    acc.bump(interned, e.count, *base + u64::from(e.first_slot));
                    out.entries_merged += 1;
                }
            }
        }
        if window.partials_overlap(seg.zone_map()) {
            scan_residual(seg, *base, window, true, p, &mut cohort, &mut out);
        }
    }
    for (seg, base) in &plan.tails {
        scan_residual(seg, *base, window, false, p, &mut cohort, &mut out);
    }
    finalize(cohort, p, out)
}

/// Record-wise pass over one unsketched region, reproducing the scan
/// engines' per-row semantics (corrupt slots skipped, one kept probe per
/// GPS row, resolver misses counted as unresolvable). `boundary_only` keeps
/// only records in the window's partial day ranges (sealed boundary
/// segments); otherwise the window bounds apply (open tails).
fn scan_residual(
    seg: &SegmentRef<'_>,
    base: u64,
    window: &SketchWindow,
    boundary_only: bool,
    p: &MergeParams<'_>,
    cohort: &mut Cohort,
    out: &mut SketchOutcome,
) {
    for slot in 0..seg.len() as u32 {
        let Ok(h) = seg.header(slot) else { continue };
        out.residual_scanned += 1;
        let included = if boundary_only {
            window.in_partials(h.timestamp)
        } else {
            window.in_bounds(h.timestamp)
        };
        if !included {
            continue;
        }
        out.tweets_total += 1;
        let Some(gps) = h.gps else { continue };
        out.tweets_with_gps += 1;
        let Some(ci) = cohort.index_of(h.user) else {
            continue;
        };
        out.residual_fixes += 1;
        let acc = &mut cohort.accs[ci];
        match p.resolver.resolve(gps.lat, gps.lon) {
            None => acc.unresolvable += 1,
            Some(district) => match p.gaz_to_interned.get(district as usize) {
                Some(&interned) => acc.bump(interned, 1, base + u64::from(slot)),
                None => acc.unresolvable += 1,
            },
        }
    }
}

/// Orders each user's districts by first global ordinal (re-deriving the
/// batch kernel's dense first-seen ids), sorts with the shared grouping
/// comparator, and materializes — user-id order, like every engine (the
/// cohort is already id-sorted; untouched users simply have no districts).
fn finalize(cohort: Cohort, p: &MergeParams<'_>, mut out: SketchOutcome) -> SketchOutcome {
    let Cohort {
        ids,
        profiles,
        accs,
    } = cohort;
    for ((user, profile), acc) in ids.into_iter().zip(profiles).zip(accs) {
        out.unresolvable += acc.unresolvable;
        if acc.districts.is_empty() {
            continue;
        }
        let mut ents = acc.districts;
        out.strings_built += ents.iter().map(|e| e.1).sum::<u64>();
        out.merged_entries += ents.len() as u64;
        ents.sort_unstable_by_key(|&(_, _, ord)| ord);
        let mut merged: Vec<MergedId> = ents
            .iter()
            .enumerate()
            .map(|(i, &(d, count, _))| (d, count, i as u32))
            .collect();
        merged.sort_by(|a, b| merged_cmp(a, b, p.tie_break, profile, p.interner));
        out.users
            .push(materialize_user(user, profile, &merged, p.interner));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_across_loads_and_sensitive_to_vocabulary() {
        let a = Gazetteer::load();
        let b = Gazetteer::load();
        assert_eq!(gazetteer_fingerprint(&a), gazetteer_fingerprint(&b));
        let sketcher = GazetteerSketcher::new();
        assert_eq!(sketcher.fingerprint(), gazetteer_fingerprint(&a));
        assert_eq!(
            GazetteerSketcher::for_gazetteer(&a).fingerprint(),
            sketcher.fingerprint()
        );
    }

    #[test]
    fn resolver_matches_gazetteer_semantics() {
        let gaz = Gazetteer::load();
        let s = GazetteerSketcher::for_gazetteer(&gaz);
        // In coverage: same district the gazetteer answers.
        let d = gaz.resolve_point(Point::new(37.517, 127.047)).unwrap();
        assert_eq!(s.resolve(37.517, 127.047), Some(d.0 as u32));
        // Far outside the cover box: prescreen rejects.
        assert_eq!(s.resolve(48.85, 2.35), None);
        assert_eq!(s.resolve(f64::NAN, 127.0), None);
    }

    #[test]
    fn window_decomposition_covers_exactly_once() {
        let day = SECONDS_PER_DAY;
        // Aligned: whole days, no partials.
        let w = SketchWindow::for_window(TimeWindow {
            start: day,
            end: 3 * day,
        });
        match &w {
            SketchWindow::Days { full, partials, .. } => {
                assert_eq!(*full, (1, 3));
                assert!(partials.is_empty());
            }
            SketchWindow::All => panic!("bounded window"),
        }
        // Straddling: one full day, two boundary ranges.
        let w = SketchWindow::for_window(TimeWindow {
            start: day - 10,
            end: 2 * day + 7,
        });
        match &w {
            SketchWindow::Days { full, partials, .. } => {
                assert_eq!(*full, (1, 2));
                assert_eq!(
                    partials.as_slice(),
                    &[(day - 10, day), (2 * day, 2 * day + 7)]
                );
            }
            SketchWindow::All => panic!("bounded window"),
        }
        // Sub-day: a single partial, no full days.
        let w = SketchWindow::for_window(TimeWindow { start: 5, end: 99 });
        match &w {
            SketchWindow::Days { full, partials, .. } => {
                assert_eq!(full.0, full.1);
                assert_eq!(partials.as_slice(), &[(5, 99)]);
            }
            SketchWindow::All => panic!("bounded window"),
        }
        // Every second of a straddling window is in exactly one bucket.
        let w = SketchWindow::for_window(TimeWindow {
            start: day - 3,
            end: 2 * day + 3,
        });
        for ts in (day - 5)..(2 * day + 5) {
            let in_window = ts >= day - 3 && ts < 2 * day + 3;
            let covered = u32::from(w.includes_day(ts / day)) + u32::from(w.in_partials(ts));
            assert!(covered <= 1, "ts {ts} double-covered");
            assert_eq!(covered == 1, in_window, "ts {ts}");
        }
    }
}
