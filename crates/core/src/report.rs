//! Plain-text rendering of the paper's figures and tables.

use crate::funnel::CollectionFunnel;
use crate::stats::GroupTable;

/// Renders the full group table (Figs. 6–7 + slide tweet chart in one).
pub fn render_group_table(table: &GroupTable) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>8} {:>8} {:>10} {:>8} {:>10}\n",
        "group", "users", "user%", "tweets", "tweet%", "avg.locs"
    ));
    out.push_str(&"-".repeat(58));
    out.push('\n');
    for r in &table.rows {
        out.push_str(&format!(
            "{:<8} {:>8} {:>7.2}% {:>10} {:>7.2}% {:>10.2}\n",
            r.group.label(),
            r.users,
            r.user_pct,
            r.tweets,
            r.tweet_pct,
            r.avg_locations
        ));
    }
    out.push_str(&"-".repeat(58));
    out.push('\n');
    out.push_str(&format!(
        "{:<8} {:>8} {:>8} {:>10}          avg {:>6.2}\n",
        "total", table.total_users, "", table.total_tweets, table.overall_avg_locations
    ));
    out
}

/// Renders a horizontal ASCII bar chart. `values` pair with `labels`;
/// bars scale to `width` characters at the maximum value.
pub fn render_bar_chart(title: &str, labels: &[&str], values: &[f64], width: usize) -> String {
    assert_eq!(labels.len(), values.len(), "labels/values length mismatch");
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    let mut out = format!("{title}\n");
    for (label, &v) in labels.iter().zip(values) {
        let bar_len = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<8} {:<width$} {v:.2}\n",
            "█".repeat(bar_len)
        ));
    }
    out
}

/// Renders the refinement funnel (§III-B's narrative as numbers).
pub fn render_funnel(f: &CollectionFunnel) -> String {
    let mut out = String::new();
    out.push_str("data refinement funnel\n");
    out.push_str(&format!(
        "  users collected            {:>10}\n",
        f.users_collected
    ));
    out.push_str(&format!(
        "  well-defined profiles      {:>10}  ({:.1}%)\n",
        f.users_well_defined,
        100.0 * f.well_defined_rate()
    ));
    out.push_str(&format!(
        "    removed: vague           {:>10}\n",
        f.users_vague
    ));
    out.push_str(&format!(
        "    removed: insufficient    {:>10}\n",
        f.users_insufficient
    ));
    out.push_str(&format!(
        "    removed: ambiguous/multi {:>10}\n",
        f.users_ambiguous
    ));
    out.push_str(&format!(
        "    removed: foreign         {:>10}\n",
        f.users_foreign
    ));
    out.push_str(&format!(
        "    removed: empty           {:>10}\n",
        f.users_empty
    ));
    out.push_str(&format!(
        "  tweets examined            {:>10}\n",
        f.tweets_total
    ));
    out.push_str(&format!(
        "  tweets with GPS            {:>10}  ({:.2}%)\n",
        f.tweets_with_gps,
        100.0 * f.gps_rate()
    ));
    out.push_str(&format!(
        "    unresolvable GPS         {:>10}\n",
        f.tweets_gps_unresolvable
    ));
    out.push_str(&format!(
        "  location strings built     {:>10}\n",
        f.strings_built
    ));
    if f.yahoo_quota_days > 0 {
        out.push_str(&format!(
            "  Yahoo quota days           {:>10}  (50k requests/day)\n",
            f.yahoo_quota_days
        ));
    }
    out.push_str(&format!(
        "  FINAL cohort               {:>10}  ({:.2}% of collected)\n",
        f.users_final,
        100.0 * f.survival_rate()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::group_user_strings;
    use crate::string::LocationString;

    #[test]
    fn group_table_renders_all_rows() {
        let strings = vec![LocationString {
            user: 1,
            state_profile: "Seoul".into(),
            county_profile: "Guro-gu".into(),
            state_tweet: "Seoul".into(),
            county_tweet: "Guro-gu".into(),
        }];
        let users = vec![group_user_strings(&strings).unwrap()];
        let table = crate::stats::GroupTable::compute(&users);
        let rendered = render_group_table(&table);
        for label in ["Top-1", "Top-2", "Top-6+", "None", "total"] {
            assert!(rendered.contains(label), "missing {label}:\n{rendered}");
        }
        assert!(rendered.contains("100.00%"));
    }

    #[test]
    fn bar_chart_scales() {
        let chart = render_bar_chart("t", &["a", "b"], &[2.0, 4.0], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        let bars_a = lines[1].matches('█').count();
        let bars_b = lines[2].matches('█').count();
        assert_eq!(bars_b, 10);
        assert_eq!(bars_a, 5);
    }

    #[test]
    fn bar_chart_handles_zero() {
        let chart = render_bar_chart("t", &["a"], &[0.0], 10);
        assert!(!chart.contains('█'));
    }

    #[test]
    fn funnel_renders_counts() {
        let f = CollectionFunnel {
            users_collected: 52_000,
            users_well_defined: 30_000,
            tweets_total: 11_000_000,
            tweets_with_gps: 220_000,
            users_final: 1_100,
            ..Default::default()
        };
        let r = render_funnel(&f);
        assert!(r.contains("52000"));
        assert!(r.contains("FINAL cohort"));
        assert!(r.contains("1100"));
    }
}
