//! The text-based grouping method (§III-B, Table II).
//!
//! Per user: merge identical location strings and count them, order by
//! count descending, find the *matched string* (profile district == tweet
//! district), and record its rank.
//!
//! The paper leaves tie-breaking unspecified; we order equal counts by
//! first appearance in the tweet stream, which is deterministic and favours
//! the user's earlier-established haunts.

use std::collections::HashMap;

use crate::string::LocationString;
use crate::topk::TopKGroup;

/// One merged entry of a user's ordered list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergedEntry {
    /// Tweet-side state.
    pub state: String,
    /// Tweet-side county.
    pub county: String,
    /// Number of merged strings (tweets) at this location.
    pub count: u64,
    /// Whether this is the matched string.
    pub matched: bool,
}

/// A user after grouping: the ordered, merged list plus the matched rank.
#[derive(Clone, Debug)]
pub struct GroupedUser {
    /// User id.
    pub user: u64,
    /// Profile-side state.
    pub state_profile: String,
    /// Profile-side county.
    pub county_profile: String,
    /// Merged entries, ordered by (count desc, first-seen asc).
    pub entries: Vec<MergedEntry>,
    /// 1-based rank of the matched string, if any.
    pub matched_rank: Option<usize>,
}

impl GroupedUser {
    /// The Top-k group this user falls into.
    pub fn group(&self) -> TopKGroup {
        TopKGroup::from_rank(self.matched_rank)
    }

    /// Number of distinct tweet districts — the quantity behind the
    /// paper's Fig. 6 ("the average number of tweet locations").
    pub fn distinct_locations(&self) -> usize {
        self.entries.len()
    }

    /// Total GPS tweets for this user.
    pub fn total_tweets(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Tweets posted at the profile location.
    pub fn matched_tweets(&self) -> u64 {
        self.entries
            .iter()
            .find(|e| e.matched)
            .map_or(0, |e| e.count)
    }

    /// Fraction of tweets posted at the profile location, in `[0, 1]`.
    pub fn matched_fraction(&self) -> f64 {
        let total = self.total_tweets();
        if total == 0 {
            0.0
        } else {
            self.matched_tweets() as f64 / total as f64
        }
    }

    /// Renders the user's Table-II block: one merged string per line with
    /// its count, matched line marked.
    pub fn render_table2(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{}#{}#{}#{}#{} ({}){}\n",
                self.user,
                self.state_profile,
                self.county_profile,
                e.state,
                e.county,
                e.count,
                if e.matched { "  <- matched" } else { "" }
            ));
        }
        out
    }
}

/// How entries with equal counts are ordered — the detail §III-B leaves
/// unspecified. [`TieBreak::FirstSeen`] is this implementation's default;
/// the two `Matched*` policies bound the ambiguity from above and below
/// (best/worst rank the matched string could get under any tie policy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Earlier first appearance in the tweet stream wins (default).
    #[default]
    FirstSeen,
    /// Alphabetical by (state, county).
    Alphabetical,
    /// The matched string wins every tie (upper bound on its rank).
    MatchedFirst,
    /// The matched string loses every tie (lower bound on its rank).
    MatchedLast,
}

/// Groups one user's location strings (all strings must share the user and
/// profile fields — the pipeline guarantees this; violations panic in debug
/// builds).
pub fn group_user_strings(strings: &[LocationString]) -> Option<GroupedUser> {
    group_user_strings_with(strings, TieBreak::FirstSeen)
}

/// [`group_user_strings`] with an explicit tie-break policy.
pub fn group_user_strings_with(
    strings: &[LocationString],
    tie_break: TieBreak,
) -> Option<GroupedUser> {
    let first = strings.first()?;
    let user = first.user;
    let state_profile = first.state_profile.clone();
    let county_profile = first.county_profile.clone();

    // Merge, remembering first-seen order for tie-breaking.
    let mut order: Vec<(String, String)> = Vec::new();
    let mut counts: HashMap<(String, String), u64> = HashMap::new();
    for s in strings {
        debug_assert_eq!(s.user, user, "mixed users in one grouping call");
        debug_assert_eq!(s.state_profile, state_profile);
        debug_assert_eq!(s.county_profile, county_profile);
        let key = (s.state_tweet.clone(), s.county_tweet.clone());
        match counts.get_mut(&key) {
            Some(c) => *c += 1,
            None => {
                counts.insert(key.clone(), 1);
                order.push(key);
            }
        }
    }

    // Order: count desc, then the tie-break policy.
    let matched_key = (state_profile.clone(), county_profile.clone());
    let mut keys: Vec<(usize, (String, String))> = order.into_iter().enumerate().collect();
    keys.sort_by(|(ia, ka), (ib, kb)| {
        counts[kb].cmp(&counts[ka]).then_with(|| match tie_break {
            TieBreak::FirstSeen => ia.cmp(ib),
            TieBreak::Alphabetical => ka.cmp(kb),
            TieBreak::MatchedFirst => (kb == &matched_key)
                .cmp(&(ka == &matched_key))
                .then_with(|| ia.cmp(ib)),
            TieBreak::MatchedLast => (ka == &matched_key)
                .cmp(&(kb == &matched_key))
                .then_with(|| ia.cmp(ib)),
        })
    });

    let mut entries = Vec::with_capacity(keys.len());
    let mut matched_rank = None;
    for (rank0, (_, key)) in keys.into_iter().enumerate() {
        let count = counts[&key];
        let matched = key.0 == state_profile && key.1 == county_profile;
        if matched {
            matched_rank = Some(rank0 + 1);
        }
        entries.push(MergedEntry {
            state: key.0,
            county: key.1,
            count,
            matched,
        });
    }

    Some(GroupedUser {
        user,
        state_profile,
        county_profile,
        entries,
        matched_rank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(user: u64, cp: &str, ct: &str) -> LocationString {
        LocationString {
            user,
            state_profile: "Seoul".into(),
            county_profile: cp.into(),
            state_tweet: "Seoul".into(),
            county_tweet: ct.into(),
        }
    }

    #[test]
    fn paper_table2_user_100() {
        // User posts 4 from Yangchun-gu (sic), 3... reproducing Table II's
        // shape: 4 matched, 2 Jung-gu, 1 Seodaemun-gu.
        let strings: Vec<LocationString> =
            std::iter::repeat_with(|| s(100, "Yangchun-gu", "Yangchun-gu"))
                .take(4)
                .chain(std::iter::repeat_with(|| s(100, "Yangchun-gu", "Jung-gu")).take(2))
                .chain(std::iter::once(s(100, "Yangchun-gu", "Seodaemun-gu")))
                .collect();
        let g = group_user_strings(&strings).unwrap();
        assert_eq!(g.entries.len(), 3);
        assert_eq!(g.entries[0].count, 4);
        assert!(g.entries[0].matched);
        assert_eq!(g.matched_rank, Some(1));
        assert_eq!(g.group(), TopKGroup::Top1);
        assert_eq!(g.total_tweets(), 7);
        assert_eq!(g.matched_tweets(), 4);
        assert!((g.matched_fraction() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn paper_table2_user_71_is_top2() {
        // Uiwang-si profile; 2 matched, 2 Uiwang... wait — Table II: user 71
        // has Uiwang-si (2) ranked SECOND behind another Uiwang entry? The
        // table shows 71#…#Uiwang-si (2) then 71#…#Seongnam-si (1), with the
        // matched string second after a 3-count entry elsewhere. We model
        // the described outcome: matched rank 2.
        let strings: Vec<LocationString> = std::iter::repeat_with(|| LocationString {
            user: 71,
            state_profile: "Gyeonggi-do".into(),
            county_profile: "Uiwang-si".into(),
            state_tweet: "Seoul".into(),
            county_tweet: "Gangnam-gu".into(),
        })
        .take(3)
        .chain(
            std::iter::repeat_with(|| LocationString {
                user: 71,
                state_profile: "Gyeonggi-do".into(),
                county_profile: "Uiwang-si".into(),
                state_tweet: "Gyeonggi-do".into(),
                county_tweet: "Uiwang-si".into(),
            })
            .take(2),
        )
        .chain(std::iter::once(LocationString {
            user: 71,
            state_profile: "Gyeonggi-do".into(),
            county_profile: "Uiwang-si".into(),
            state_tweet: "Gyeonggi-do".into(),
            county_tweet: "Seongnam-si".into(),
        }))
        .collect();
        let g = group_user_strings(&strings).unwrap();
        assert_eq!(g.matched_rank, Some(2));
        assert_eq!(g.group(), TopKGroup::Top2);
    }

    #[test]
    fn no_match_is_none_group() {
        let strings = vec![
            s(5, "Yangcheon-gu", "Jung-gu"),
            s(5, "Yangcheon-gu", "Mapo-gu"),
        ];
        let g = group_user_strings(&strings).unwrap();
        assert_eq!(g.matched_rank, None);
        assert_eq!(g.group(), TopKGroup::None);
        assert_eq!(g.matched_tweets(), 0);
        assert_eq!(g.matched_fraction(), 0.0);
    }

    #[test]
    fn county_match_requires_state_match() {
        // Profile Seoul/Jung-gu; tweets from Busan/Jung-gu must NOT match.
        let strings = vec![LocationString {
            user: 9,
            state_profile: "Seoul".into(),
            county_profile: "Jung-gu".into(),
            state_tweet: "Busan".into(),
            county_tweet: "Jung-gu".into(),
        }];
        let g = group_user_strings(&strings).unwrap();
        assert_eq!(g.group(), TopKGroup::None);
    }

    #[test]
    fn ties_break_by_first_seen() {
        let strings = vec![
            s(7, "Yangcheon-gu", "Mapo-gu"),
            s(7, "Yangcheon-gu", "Yangcheon-gu"),
            s(7, "Yangcheon-gu", "Mapo-gu"),
            s(7, "Yangcheon-gu", "Yangcheon-gu"),
        ];
        let g = group_user_strings(&strings).unwrap();
        // 2–2 tie; Mapo-gu appeared first → rank 1, matched rank 2.
        assert_eq!(g.entries[0].county, "Mapo-gu");
        assert_eq!(g.matched_rank, Some(2));
    }

    #[test]
    fn empty_input_is_none() {
        assert!(group_user_strings(&[]).is_none());
    }

    #[test]
    fn tie_break_policies_bound_the_rank() {
        // 2–2 tie between Mapo-gu (seen first) and the matched district.
        let strings = vec![
            s(7, "Yangcheon-gu", "Mapo-gu"),
            s(7, "Yangcheon-gu", "Yangcheon-gu"),
            s(7, "Yangcheon-gu", "Mapo-gu"),
            s(7, "Yangcheon-gu", "Yangcheon-gu"),
        ];
        let first_seen = group_user_strings_with(&strings, TieBreak::FirstSeen).unwrap();
        assert_eq!(first_seen.matched_rank, Some(2));
        let best = group_user_strings_with(&strings, TieBreak::MatchedFirst).unwrap();
        assert_eq!(best.matched_rank, Some(1));
        let worst = group_user_strings_with(&strings, TieBreak::MatchedLast).unwrap();
        assert_eq!(worst.matched_rank, Some(2));
        // Alphabetical: Mapo-gu < Yangcheon-gu → matched second.
        let alpha = group_user_strings_with(&strings, TieBreak::Alphabetical).unwrap();
        assert_eq!(alpha.matched_rank, Some(2));
        // Counts are policy-independent.
        for g in [&first_seen, &best, &worst, &alpha] {
            assert_eq!(g.total_tweets(), 4);
            assert_eq!(g.matched_tweets(), 2);
        }
    }

    #[test]
    fn tie_break_is_noop_without_ties() {
        let strings = vec![
            s(1, "Guro-gu", "Guro-gu"),
            s(1, "Guro-gu", "Guro-gu"),
            s(1, "Guro-gu", "Mapo-gu"),
        ];
        for tb in [
            TieBreak::FirstSeen,
            TieBreak::Alphabetical,
            TieBreak::MatchedFirst,
            TieBreak::MatchedLast,
        ] {
            let g = group_user_strings_with(&strings, tb).unwrap();
            assert_eq!(g.matched_rank, Some(1), "{tb:?}");
        }
    }

    #[test]
    fn single_matched_tweet_is_top1() {
        let g = group_user_strings(&[s(1, "Guro-gu", "Guro-gu")]).unwrap();
        assert_eq!(g.group(), TopKGroup::Top1);
        assert_eq!(g.distinct_locations(), 1);
    }

    #[test]
    fn render_table2_marks_match() {
        let g = group_user_strings(&[
            s(100, "Yangchun-gu", "Yangchun-gu"),
            s(100, "Yangchun-gu", "Jung-gu"),
        ])
        .unwrap();
        let rendered = g.render_table2();
        assert!(rendered.contains("100#Seoul#Yangchun-gu#Seoul#Yangchun-gu (1)  <- matched"));
        assert!(rendered.contains("100#Seoul#Yangchun-gu#Seoul#Jung-gu (1)"));
    }
}
