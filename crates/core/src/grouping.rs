//! The text-based grouping method (§III-B, Table II).
//!
//! Per user: merge identical location strings and count them, order by
//! count descending, find the *matched string* (profile district == tweet
//! district), and record its rank.
//!
//! The paper leaves tie-breaking unspecified; we order equal counts by
//! first appearance in the tweet stream, which is deterministic and favours
//! the user's earlier-established haunts.
//!
//! Two carriers, one method: [`group_user_strings`] merges the published
//! string form directly, while [`group_user_keys`] runs the identical
//! algorithm over interned [`LocationKey`]s — the merge test is a single
//! `u32` compare and the loop allocates nothing per tweet (the per-user
//! merge buffer grows with *distinct districts*, bounded by the tiny
//! vocabulary). A property test pins the two paths to identical output
//! under every [`TieBreak`] policy. [`group_cohort`] fans the per-user
//! loop out over the same work-stealing block scheduler the geocode stage
//! uses, stitching results in input order so parallel output is
//! byte-identical to serial.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::intern::{DistrictId, DistrictInterner, LocationKey};
use crate::string::LocationString;
use crate::topk::TopKGroup;

/// One merged entry of a user's ordered list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergedEntry {
    /// Tweet-side state.
    pub state: String,
    /// Tweet-side county.
    pub county: String,
    /// Number of merged strings (tweets) at this location.
    pub count: u64,
    /// Whether this is the matched string.
    pub matched: bool,
}

/// A user after grouping: the ordered, merged list plus the matched rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupedUser {
    /// User id.
    pub user: u64,
    /// Profile-side state.
    pub state_profile: String,
    /// Profile-side county.
    pub county_profile: String,
    /// Merged entries, ordered by (count desc, first-seen asc).
    pub entries: Vec<MergedEntry>,
    /// 1-based rank of the matched string, if any.
    pub matched_rank: Option<usize>,
}

impl GroupedUser {
    /// The Top-k group this user falls into.
    pub fn group(&self) -> TopKGroup {
        TopKGroup::from_rank(self.matched_rank)
    }

    /// Number of distinct tweet districts — the quantity behind the
    /// paper's Fig. 6 ("the average number of tweet locations").
    pub fn distinct_locations(&self) -> usize {
        self.entries.len()
    }

    /// Total GPS tweets for this user.
    pub fn total_tweets(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Tweets posted at the profile location.
    pub fn matched_tweets(&self) -> u64 {
        self.entries
            .iter()
            .find(|e| e.matched)
            .map_or(0, |e| e.count)
    }

    /// Fraction of tweets posted at the profile location, in `[0, 1]`.
    pub fn matched_fraction(&self) -> f64 {
        let total = self.total_tweets();
        if total == 0 {
            0.0
        } else {
            self.matched_tweets() as f64 / total as f64
        }
    }

    /// Renders the user's Table-II block: one merged string per line with
    /// its count, matched line marked. Formats straight into one output
    /// buffer — no intermediate `String` per row.
    pub fn render_table2(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            // Writing into a String is infallible.
            let _ = writeln!(
                out,
                "{}#{}#{}#{}#{} ({}){}",
                self.user,
                self.state_profile,
                self.county_profile,
                e.state,
                e.county,
                e.count,
                if e.matched { "  <- matched" } else { "" }
            );
        }
        out
    }
}

/// How entries with equal counts are ordered — the detail §III-B leaves
/// unspecified. [`TieBreak::FirstSeen`] is this implementation's default;
/// the two `Matched*` policies bound the ambiguity from above and below
/// (best/worst rank the matched string could get under any tie policy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Earlier first appearance in the tweet stream wins (default).
    #[default]
    FirstSeen,
    /// Alphabetical by (state, county).
    Alphabetical,
    /// The matched string wins every tie (upper bound on its rank).
    MatchedFirst,
    /// The matched string loses every tie (lower bound on its rank).
    MatchedLast,
}

/// Groups one user's location strings (all strings must share the user and
/// profile fields — the pipeline guarantees this; violations panic in debug
/// builds).
pub fn group_user_strings(strings: &[LocationString]) -> Option<GroupedUser> {
    group_user_strings_with(strings, TieBreak::FirstSeen)
}

/// [`group_user_strings`] with an explicit tie-break policy.
pub fn group_user_strings_with(
    strings: &[LocationString],
    tie_break: TieBreak,
) -> Option<GroupedUser> {
    let first = strings.first()?;
    let user = first.user;
    let state_profile = first.state_profile.clone();
    let county_profile = first.county_profile.clone();

    // Merge, remembering first-seen order for tie-breaking.
    let mut order: Vec<(String, String)> = Vec::new();
    let mut counts: HashMap<(String, String), u64> = HashMap::new();
    for s in strings {
        debug_assert_eq!(s.user, user, "mixed users in one grouping call");
        debug_assert_eq!(s.state_profile, state_profile);
        debug_assert_eq!(s.county_profile, county_profile);
        let key = (s.state_tweet.clone(), s.county_tweet.clone());
        match counts.get_mut(&key) {
            Some(c) => *c += 1,
            None => {
                counts.insert(key.clone(), 1);
                order.push(key);
            }
        }
    }

    // Order: count desc, then the tie-break policy.
    let matched_key = (state_profile.clone(), county_profile.clone());
    let mut keys: Vec<(usize, (String, String))> = order.into_iter().enumerate().collect();
    keys.sort_by(|(ia, ka), (ib, kb)| {
        counts[kb].cmp(&counts[ka]).then_with(|| match tie_break {
            TieBreak::FirstSeen => ia.cmp(ib),
            TieBreak::Alphabetical => ka.cmp(kb),
            TieBreak::MatchedFirst => (kb == &matched_key)
                .cmp(&(ka == &matched_key))
                .then_with(|| ia.cmp(ib)),
            TieBreak::MatchedLast => (ka == &matched_key)
                .cmp(&(kb == &matched_key))
                .then_with(|| ia.cmp(ib)),
        })
    });

    let mut entries = Vec::with_capacity(keys.len());
    let mut matched_rank = None;
    for (rank0, (_, key)) in keys.into_iter().enumerate() {
        let count = counts[&key];
        let matched = key.0 == state_profile && key.1 == county_profile;
        if matched {
            matched_rank = Some(rank0 + 1);
        }
        entries.push(MergedEntry {
            state: key.0,
            county: key.1,
            count,
            matched,
        });
    }

    Some(GroupedUser {
        user,
        state_profile,
        county_profile,
        entries,
        matched_rank,
    })
}

/// Groups one user's interned location keys with the default
/// [`TieBreak::FirstSeen`] policy — the allocation-free twin of
/// [`group_user_strings`]. All keys must share the user and profile fields
/// (the pipeline guarantees this; violations panic in debug builds).
pub fn group_user_keys(keys: &[LocationKey], interner: &DistrictInterner) -> Option<GroupedUser> {
    group_user_keys_with(keys, TieBreak::FirstSeen, interner)
}

/// [`group_user_keys`] with an explicit tie-break policy.
///
/// The merge loop touches no heap memory per tweet: identity is a `u32`
/// compare against a small `(district, count, first-seen)` buffer whose
/// length is the user's *distinct* district count (bounded by the
/// vocabulary, ~229). District strings materialize only at the
/// [`GroupedUser`] boundary, once per distinct district.
pub fn group_user_keys_with(
    keys: &[LocationKey],
    tie_break: TieBreak,
    interner: &DistrictInterner,
) -> Option<GroupedUser> {
    group_user_iter(keys.iter(), tie_break, interner)
}

/// The merge kernel behind [`group_user_keys_with`] and
/// [`group_partition`], generic over how the caller stores the keys so a
/// partition run groups straight out of its `(ordinal, key)` pairs with
/// no per-run copy.
fn group_user_iter<'a>(
    mut keys: impl Iterator<Item = &'a LocationKey>,
    tie_break: TieBreak,
    interner: &DistrictInterner,
) -> Option<GroupedUser> {
    let first = keys.next()?;
    let user = first.user;
    let profile = first.profile;

    // Merge: (district, count, first-seen index among distinct districts).
    // Linear scan beats hashing at vocabulary scale, and — unlike a map
    // keyed by owned strings — never allocates on the per-tweet path.
    let mut merged: Vec<(DistrictId, u64, u32)> = Vec::new();
    for k in std::iter::once(first).chain(keys) {
        debug_assert_eq!(k.user, user, "mixed users in one grouping call");
        debug_assert_eq!(k.profile, profile, "mixed profiles in one grouping call");
        match merged.iter_mut().find(|(d, _, _)| *d == k.tweet) {
            Some(entry) => entry.1 += 1,
            None => {
                let first_seen = merged.len() as u32;
                merged.push((k.tweet, 1, first_seen));
            }
        }
    }

    // Order: count desc, then the tie-break policy — the same total order
    // the string path computes, so `sort_unstable` (no allocation) is safe.
    merged.sort_unstable_by(|a, b| merged_cmp(a, b, tie_break, profile, interner));

    Some(materialize_user(user, profile, &merged, interner))
}

/// One merged per-user entry before boundary resolution: `(district,
/// count, first-seen index among the user's distinct districts)`. The
/// batch kernel builds these transiently; the incremental engines
/// ([`crate::online`], [`crate::service`]) keep them as live state.
pub(crate) type MergedId = (DistrictId, u64, u32);

/// The grouping total order over merged entries: count desc, then the
/// tie-break policy. One definition shared by the batch kernel and the
/// incremental engines, so their orders can never drift.
pub(crate) fn merged_cmp(
    a: &MergedId,
    b: &MergedId,
    tie_break: TieBreak,
    profile: DistrictId,
    interner: &DistrictInterner,
) -> std::cmp::Ordering {
    b.1.cmp(&a.1).then_with(|| match tie_break {
        TieBreak::FirstSeen => a.2.cmp(&b.2),
        TieBreak::Alphabetical => interner.resolve(a.0).cmp(&interner.resolve(b.0)),
        TieBreak::MatchedFirst => (b.0 == profile)
            .cmp(&(a.0 == profile))
            .then_with(|| a.2.cmp(&b.2)),
        TieBreak::MatchedLast => (a.0 == profile)
            .cmp(&(b.0 == profile))
            .then_with(|| a.2.cmp(&b.2)),
    })
}

/// Resolves a sorted merged list back to the published-string
/// [`GroupedUser`] — the boundary where ids become strings, shared by the
/// batch kernel and the incremental engines.
pub(crate) fn materialize_user(
    user: u64,
    profile: DistrictId,
    merged: &[MergedId],
    interner: &DistrictInterner,
) -> GroupedUser {
    let (state_profile, county_profile) = interner.resolve(profile);
    let mut entries = Vec::with_capacity(merged.len());
    let mut matched_rank = None;
    for (rank0, &(district, count, _)) in merged.iter().enumerate() {
        let matched = district == profile;
        if matched {
            matched_rank = Some(rank0 + 1);
        }
        let (state, county) = interner.resolve(district);
        entries.push(MergedEntry {
            state: state.to_string(),
            county: county.to_string(),
            count,
            matched,
        });
    }

    GroupedUser {
        user,
        state_profile: state_profile.to_string(),
        county_profile: county_profile.to_string(),
        entries,
        matched_rank,
    }
}

/// Groups one hash partition of ordinal-tagged keys, as emitted by the
/// fused morsel engine. `pairs` must hold each user's keys as one
/// contiguous run with ordinals ascending inside the run — the ordinal is
/// each key's global input position, so every run is that user's keys *in
/// tweet input order*, exactly the per-user sequence the staged path hands
/// [`group_user_keys_with`]. Run order across users is free (a full
/// `(user, ordinal)` sort is one valid arrangement, a bucket scatter is
/// another); each run feeds the shared merge kernel straight from the pair
/// slice (no per-run copy), so the per-user output is byte-identical to
/// the staged path's. Output follows run order — callers wanting a global
/// order sort the grouped users afterwards.
pub fn group_partition(
    pairs: &[(u64, LocationKey)],
    interner: &DistrictInterner,
    tie_break: TieBreak,
) -> Vec<GroupedUser> {
    debug_assert!(
        pairs
            .windows(2)
            .all(|w| w[0].1.user != w[1].1.user || w[0].0 < w[1].0),
        "ordinals not ascending within a user run"
    );
    #[cfg(debug_assertions)]
    {
        let mut seen = std::collections::HashSet::new();
        for w in pairs.windows(2) {
            if w[0].1.user != w[1].1.user {
                assert!(seen.insert(w[0].1.user), "user split across runs");
            }
        }
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let user = pairs[i].1.user;
        let run_start = i;
        while i < pairs.len() && pairs[i].1.user == user {
            i += 1;
        }
        let run = &pairs[run_start..i];
        if let Some(g) = group_user_iter(run.iter().map(|(_, k)| k), tie_break, interner) {
            out.push(g);
        }
    }
    out
}

/// Users handed to a grouping worker per scheduler draw (auto-sized down
/// for small cohorts, like the geocode stage's blocks).
const GROUP_BLOCK: usize = 256;

/// Below this many users the thread-spawn overhead outweighs the fan-out.
const PARALLEL_GROUP_THRESHOLD: usize = 512;

/// Groups a whole cohort — `(user, keys)` pairs, typically sorted by user
/// id — fanning the per-user loop over `threads` workers with the
/// work-stealing block scheduler. Results are stitched in input order, so
/// the output is byte-identical to the serial path regardless of thread
/// interleaving. Users whose key list is empty are dropped, exactly as the
/// serial `filter_map` would.
///
/// Returns the grouped users plus the per-thread block counts (the
/// scheduler-balance signal surfaced in grouping metrics; a single `[1]`
/// on the serial path).
pub fn group_cohort(
    users: &[(u64, Vec<LocationKey>)],
    interner: &DistrictInterner,
    tie_break: TieBreak,
    threads: usize,
) -> (Vec<GroupedUser>, Vec<u64>) {
    let threads = threads.max(1);
    if threads == 1 || users.len() < PARALLEL_GROUP_THRESHOLD {
        let grouped = users
            .iter()
            .filter_map(|(_, keys)| group_user_keys_with(keys, tie_break, interner))
            .collect();
        return (grouped, vec![1]);
    }
    let block = (users.len().div_ceil(threads * 4)).clamp(16, GROUP_BLOCK);
    group_cohort_with_block(users, interner, tie_break, threads, block)
}

/// [`group_cohort`] with an explicit block size and no serial shortcut —
/// the property tests sweep arbitrary thread/block counts through this to
/// pin parallel ≡ serial.
pub fn group_cohort_with_block(
    users: &[(u64, Vec<LocationKey>)],
    interner: &DistrictInterner,
    tie_break: TieBreak,
    threads: usize,
    block: usize,
) -> (Vec<GroupedUser>, Vec<u64>) {
    let threads = threads.max(1);
    let block = block.max(1);
    let cursor = AtomicUsize::new(0);
    let mut per_thread_blocks = vec![0u64; threads];
    let mut slots: Vec<Option<GroupedUser>> = (0..users.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            workers.push(s.spawn(move || {
                let mut parts: Vec<(usize, Vec<Option<GroupedUser>>)> = Vec::new();
                let mut blocks = 0u64;
                loop {
                    let start = cursor.fetch_add(block, Ordering::Relaxed);
                    if start >= users.len() {
                        break;
                    }
                    let end = (start + block).min(users.len());
                    let grouped = users[start..end]
                        .iter()
                        .map(|(_, keys)| group_user_keys_with(keys, tie_break, interner))
                        .collect();
                    blocks += 1;
                    parts.push((start, grouped));
                }
                (parts, blocks)
            }));
        }
        for (t, worker) in workers.into_iter().enumerate() {
            let (parts, blocks) = worker.join().expect("grouping worker panicked");
            per_thread_blocks[t] = blocks;
            for (start, grouped) in parts {
                for (slot, value) in slots[start..start + grouped.len()].iter_mut().zip(grouped) {
                    *slot = value;
                }
            }
        }
    });
    (slots.into_iter().flatten().collect(), per_thread_blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(user: u64, cp: &str, ct: &str) -> LocationString {
        LocationString {
            user,
            state_profile: "Seoul".into(),
            county_profile: cp.into(),
            state_tweet: "Seoul".into(),
            county_tweet: ct.into(),
        }
    }

    #[test]
    fn paper_table2_user_100() {
        // User posts 4 from Yangchun-gu (sic), 3... reproducing Table II's
        // shape: 4 matched, 2 Jung-gu, 1 Seodaemun-gu.
        let strings: Vec<LocationString> =
            std::iter::repeat_with(|| s(100, "Yangchun-gu", "Yangchun-gu"))
                .take(4)
                .chain(std::iter::repeat_with(|| s(100, "Yangchun-gu", "Jung-gu")).take(2))
                .chain(std::iter::once(s(100, "Yangchun-gu", "Seodaemun-gu")))
                .collect();
        let g = group_user_strings(&strings).unwrap();
        assert_eq!(g.entries.len(), 3);
        assert_eq!(g.entries[0].count, 4);
        assert!(g.entries[0].matched);
        assert_eq!(g.matched_rank, Some(1));
        assert_eq!(g.group(), TopKGroup::Top1);
        assert_eq!(g.total_tweets(), 7);
        assert_eq!(g.matched_tweets(), 4);
        assert!((g.matched_fraction() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn paper_table2_user_71_is_top2() {
        // Uiwang-si profile; 2 matched, 2 Uiwang... wait — Table II: user 71
        // has Uiwang-si (2) ranked SECOND behind another Uiwang entry? The
        // table shows 71#…#Uiwang-si (2) then 71#…#Seongnam-si (1), with the
        // matched string second after a 3-count entry elsewhere. We model
        // the described outcome: matched rank 2.
        let strings: Vec<LocationString> = std::iter::repeat_with(|| LocationString {
            user: 71,
            state_profile: "Gyeonggi-do".into(),
            county_profile: "Uiwang-si".into(),
            state_tweet: "Seoul".into(),
            county_tweet: "Gangnam-gu".into(),
        })
        .take(3)
        .chain(
            std::iter::repeat_with(|| LocationString {
                user: 71,
                state_profile: "Gyeonggi-do".into(),
                county_profile: "Uiwang-si".into(),
                state_tweet: "Gyeonggi-do".into(),
                county_tweet: "Uiwang-si".into(),
            })
            .take(2),
        )
        .chain(std::iter::once(LocationString {
            user: 71,
            state_profile: "Gyeonggi-do".into(),
            county_profile: "Uiwang-si".into(),
            state_tweet: "Gyeonggi-do".into(),
            county_tweet: "Seongnam-si".into(),
        }))
        .collect();
        let g = group_user_strings(&strings).unwrap();
        assert_eq!(g.matched_rank, Some(2));
        assert_eq!(g.group(), TopKGroup::Top2);
    }

    #[test]
    fn no_match_is_none_group() {
        let strings = vec![
            s(5, "Yangcheon-gu", "Jung-gu"),
            s(5, "Yangcheon-gu", "Mapo-gu"),
        ];
        let g = group_user_strings(&strings).unwrap();
        assert_eq!(g.matched_rank, None);
        assert_eq!(g.group(), TopKGroup::None);
        assert_eq!(g.matched_tweets(), 0);
        assert_eq!(g.matched_fraction(), 0.0);
    }

    #[test]
    fn county_match_requires_state_match() {
        // Profile Seoul/Jung-gu; tweets from Busan/Jung-gu must NOT match.
        let strings = vec![LocationString {
            user: 9,
            state_profile: "Seoul".into(),
            county_profile: "Jung-gu".into(),
            state_tweet: "Busan".into(),
            county_tweet: "Jung-gu".into(),
        }];
        let g = group_user_strings(&strings).unwrap();
        assert_eq!(g.group(), TopKGroup::None);
    }

    #[test]
    fn ties_break_by_first_seen() {
        let strings = vec![
            s(7, "Yangcheon-gu", "Mapo-gu"),
            s(7, "Yangcheon-gu", "Yangcheon-gu"),
            s(7, "Yangcheon-gu", "Mapo-gu"),
            s(7, "Yangcheon-gu", "Yangcheon-gu"),
        ];
        let g = group_user_strings(&strings).unwrap();
        // 2–2 tie; Mapo-gu appeared first → rank 1, matched rank 2.
        assert_eq!(g.entries[0].county, "Mapo-gu");
        assert_eq!(g.matched_rank, Some(2));
    }

    #[test]
    fn empty_input_is_none() {
        assert!(group_user_strings(&[]).is_none());
    }

    #[test]
    fn tie_break_policies_bound_the_rank() {
        // 2–2 tie between Mapo-gu (seen first) and the matched district.
        let strings = vec![
            s(7, "Yangcheon-gu", "Mapo-gu"),
            s(7, "Yangcheon-gu", "Yangcheon-gu"),
            s(7, "Yangcheon-gu", "Mapo-gu"),
            s(7, "Yangcheon-gu", "Yangcheon-gu"),
        ];
        let first_seen = group_user_strings_with(&strings, TieBreak::FirstSeen).unwrap();
        assert_eq!(first_seen.matched_rank, Some(2));
        let best = group_user_strings_with(&strings, TieBreak::MatchedFirst).unwrap();
        assert_eq!(best.matched_rank, Some(1));
        let worst = group_user_strings_with(&strings, TieBreak::MatchedLast).unwrap();
        assert_eq!(worst.matched_rank, Some(2));
        // Alphabetical: Mapo-gu < Yangcheon-gu → matched second.
        let alpha = group_user_strings_with(&strings, TieBreak::Alphabetical).unwrap();
        assert_eq!(alpha.matched_rank, Some(2));
        // Counts are policy-independent.
        for g in [&first_seen, &best, &worst, &alpha] {
            assert_eq!(g.total_tweets(), 4);
            assert_eq!(g.matched_tweets(), 2);
        }
    }

    #[test]
    fn tie_break_is_noop_without_ties() {
        let strings = vec![
            s(1, "Guro-gu", "Guro-gu"),
            s(1, "Guro-gu", "Guro-gu"),
            s(1, "Guro-gu", "Mapo-gu"),
        ];
        for tb in [
            TieBreak::FirstSeen,
            TieBreak::Alphabetical,
            TieBreak::MatchedFirst,
            TieBreak::MatchedLast,
        ] {
            let g = group_user_strings_with(&strings, tb).unwrap();
            assert_eq!(g.matched_rank, Some(1), "{tb:?}");
        }
    }

    #[test]
    fn single_matched_tweet_is_top1() {
        let g = group_user_strings(&[s(1, "Guro-gu", "Guro-gu")]).unwrap();
        assert_eq!(g.group(), TopKGroup::Top1);
        assert_eq!(g.distinct_locations(), 1);
    }

    /// Interns a string batch and groups it through the packed path.
    fn group_interned(strings: &[LocationString], tb: TieBreak) -> Option<GroupedUser> {
        let mut interner = DistrictInterner::new();
        let keys: Vec<LocationKey> = strings.iter().map(|s| s.to_key(&mut interner)).collect();
        group_user_keys_with(&keys, tb, &interner)
    }

    #[test]
    fn interned_path_matches_string_path() {
        let strings: Vec<LocationString> =
            std::iter::repeat_with(|| s(100, "Yangchun-gu", "Yangchun-gu"))
                .take(4)
                .chain(std::iter::repeat_with(|| s(100, "Yangchun-gu", "Jung-gu")).take(2))
                .chain(std::iter::once(s(100, "Yangchun-gu", "Seodaemun-gu")))
                .collect();
        for tb in [
            TieBreak::FirstSeen,
            TieBreak::Alphabetical,
            TieBreak::MatchedFirst,
            TieBreak::MatchedLast,
        ] {
            let via_strings = group_user_strings_with(&strings, tb).unwrap();
            let via_keys = group_interned(&strings, tb).unwrap();
            assert_eq!(via_keys.user, via_strings.user, "{tb:?}");
            assert_eq!(via_keys.state_profile, via_strings.state_profile, "{tb:?}");
            assert_eq!(
                via_keys.county_profile, via_strings.county_profile,
                "{tb:?}"
            );
            assert_eq!(via_keys.entries, via_strings.entries, "{tb:?}");
            assert_eq!(via_keys.matched_rank, via_strings.matched_rank, "{tb:?}");
        }
    }

    #[test]
    fn interned_path_distinguishes_same_county_across_states() {
        // Busan/Jung-gu must not merge with (or match) Seoul/Jung-gu.
        let strings = vec![
            LocationString {
                user: 9,
                state_profile: "Seoul".into(),
                county_profile: "Jung-gu".into(),
                state_tweet: "Busan".into(),
                county_tweet: "Jung-gu".into(),
            },
            LocationString {
                user: 9,
                state_profile: "Seoul".into(),
                county_profile: "Jung-gu".into(),
                state_tweet: "Seoul".into(),
                county_tweet: "Jung-gu".into(),
            },
        ];
        let g = group_interned(&strings, TieBreak::FirstSeen).unwrap();
        assert_eq!(g.entries.len(), 2);
        assert_eq!(g.matched_rank, Some(2));
        assert_eq!(g.matched_tweets(), 1);
    }

    #[test]
    fn empty_keys_are_none() {
        let interner = DistrictInterner::new();
        assert!(group_user_keys(&[], &interner).is_none());
    }

    #[test]
    fn cohort_parallel_equals_serial_at_any_block_size() {
        let mut interner = DistrictInterner::new();
        let mut cohort: Vec<(u64, Vec<LocationKey>)> = Vec::new();
        for u in 0..40u64 {
            let strings: Vec<LocationString> = (0..(u % 7 + 1))
                .map(|i| {
                    s(
                        u,
                        "Yangchun-gu",
                        if i % 3 == 0 { "Yangchun-gu" } else { "Jung-gu" },
                    )
                })
                .collect();
            cohort.push((u, strings.iter().map(|x| x.to_key(&mut interner)).collect()));
        }
        // One user with no keys: dropped on both paths.
        cohort.insert(17, (1000, Vec::new()));
        let (serial, serial_blocks) = group_cohort(&cohort, &interner, TieBreak::FirstSeen, 1);
        assert_eq!(serial_blocks, vec![1]);
        for threads in [2, 3, 8] {
            for block in [1, 3, 16, 64] {
                let (parallel, blocks) = group_cohort_with_block(
                    &cohort,
                    &interner,
                    TieBreak::FirstSeen,
                    threads,
                    block,
                );
                assert_eq!(parallel.len(), serial.len(), "t={threads} b={block}");
                for (a, b) in serial.iter().zip(&parallel) {
                    assert_eq!(a.user, b.user, "t={threads} b={block}");
                    assert_eq!(a.entries, b.entries, "t={threads} b={block}");
                    assert_eq!(a.matched_rank, b.matched_rank, "t={threads} b={block}");
                }
                assert_eq!(blocks.len(), threads);
                let total: u64 = blocks.iter().sum();
                assert_eq!(total as usize, cohort.len().div_ceil(block));
            }
        }
    }

    #[test]
    fn partition_grouping_matches_the_cohort_engine() {
        let mut interner = DistrictInterner::new();
        let home = interner.intern("Seoul", "Yangchun-gu");
        let away = interner.intern("Seoul", "Jung-gu");
        let far = interner.intern("Busan", "Jung-gu");
        // Three users, keys in a deliberately interleaved global order.
        let emitted: Vec<(u64, LocationKey)> = vec![
            (0, key(7, home, away)),
            (1, key(3, home, home)),
            (2, key(7, home, home)),
            (3, key(9, away, far)),
            (4, key(3, home, away)),
            (5, key(7, home, home)),
        ];
        let mut pairs = emitted.clone();
        pairs.sort_unstable_by_key(|&(ord, k)| (k.user, ord));
        let grouped = group_partition(&pairs, &interner, TieBreak::FirstSeen);
        // Reference: the staged path's per-user vectors in input order.
        let cohort: Vec<(u64, Vec<LocationKey>)> = [3u64, 7, 9]
            .iter()
            .map(|&u| {
                (
                    u,
                    emitted
                        .iter()
                        .filter(|(_, k)| k.user == u)
                        .map(|&(_, k)| k)
                        .collect(),
                )
            })
            .collect();
        let (reference, _) = group_cohort(&cohort, &interner, TieBreak::FirstSeen, 1);
        assert_eq!(grouped.len(), reference.len());
        for (a, b) in grouped.iter().zip(&reference) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.entries, b.entries);
            assert_eq!(a.matched_rank, b.matched_rank);
        }
    }

    fn key(user: u64, profile: DistrictId, tweet: DistrictId) -> LocationKey {
        LocationKey {
            user,
            profile,
            tweet,
        }
    }

    #[test]
    fn render_table2_marks_match() {
        let g = group_user_strings(&[
            s(100, "Yangchun-gu", "Yangchun-gu"),
            s(100, "Yangchun-gu", "Jung-gu"),
        ])
        .unwrap();
        let rendered = g.render_table2();
        assert!(rendered.contains("100#Seoul#Yangchun-gu#Seoul#Yangchun-gu (1)  <- matched"));
        assert!(rendered.contains("100#Seoul#Yangchun-gu#Seoul#Jung-gu (1)"));
    }
}
