//! Reliability weights — the paper's proposed application (§V: "we can use
//! the analysis result of this paper to determine the weight factor for the
//! location information").
//!
//! For each Top-k group we estimate *how trustworthy a profile location is
//! as a proxy for where the user actually is*: the empirical probability
//! that a tweet by a group member is posted from the profile district.
//! Event-location estimators multiply profile-derived observations by this
//! weight (see `stir-eventdet::weighted`).

use crate::grouping::GroupedUser;
use crate::topk::TopKGroup;

/// Per-group reliability weights in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReliabilityWeights {
    by_group: [f64; 7],
}

impl ReliabilityWeights {
    /// Estimates weights from an analysed cohort: for each group, the mean
    /// over members of (tweets at profile location / total tweets). Groups
    /// with no members get `floor`.
    pub fn from_cohort(users: &[GroupedUser], floor: f64) -> Self {
        let mut sums = [0.0f64; 7];
        let mut counts = [0u64; 7];
        for u in users {
            let idx = u.group().index();
            sums[idx] += u.matched_fraction();
            counts[idx] += 1;
        }
        let by_group = std::array::from_fn(|i| {
            if counts[i] == 0 {
                floor
            } else {
                (sums[i] / counts[i] as f64).max(floor)
            }
        });
        ReliabilityWeights { by_group }
    }

    /// A fixed profile of weights (for tests and ablations).
    pub fn fixed(by_group: [f64; 7]) -> Self {
        ReliabilityWeights { by_group }
    }

    /// The degenerate weights an *unweighted* system implicitly uses: every
    /// group fully trusted.
    pub fn uniform() -> Self {
        ReliabilityWeights { by_group: [1.0; 7] }
    }

    /// The weight for a group.
    pub fn weight(&self, group: TopKGroup) -> f64 {
        self.by_group[group.index()]
    }

    /// Weights in [`TopKGroup::ALL`] order.
    pub fn as_array(&self) -> [f64; 7] {
        self.by_group
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{GroupedUser, MergedEntry};

    fn grouped(user: u64, matched_rank: Option<usize>, matched: u64, other: u64) -> GroupedUser {
        let mut entries = Vec::new();
        if matched > 0 {
            entries.push(MergedEntry {
                state: "Seoul".into(),
                county: "Guro-gu".into(),
                count: matched,
                matched: true,
            });
        }
        if other > 0 {
            entries.push(MergedEntry {
                state: "Seoul".into(),
                county: "Mapo-gu".into(),
                count: other,
                matched: false,
            });
        }
        entries.sort_by_key(|e| std::cmp::Reverse(e.count));
        GroupedUser {
            user,
            state_profile: "Seoul".into(),
            county_profile: "Guro-gu".into(),
            entries,
            matched_rank,
        }
    }

    #[test]
    fn weights_reflect_matched_fractions() {
        let cohort = vec![
            grouped(1, Some(1), 8, 2), // Top-1, 0.8
            grouped(2, Some(1), 6, 4), // Top-1, 0.6
            grouped(3, None, 0, 10),   // None, 0.0
        ];
        let w = ReliabilityWeights::from_cohort(&cohort, 0.01);
        assert!((w.weight(TopKGroup::Top1) - 0.7).abs() < 1e-12);
        assert!((w.weight(TopKGroup::None) - 0.01).abs() < 1e-12); // floored
        assert!((w.weight(TopKGroup::Top3) - 0.01).abs() < 1e-12); // empty → floor
    }

    #[test]
    fn top1_weight_exceeds_lower_groups_on_plausible_cohorts() {
        let cohort = vec![
            grouped(1, Some(1), 9, 1),
            grouped(2, Some(2), 3, 7),
            grouped(3, None, 0, 5),
        ];
        let w = ReliabilityWeights::from_cohort(&cohort, 0.0);
        assert!(w.weight(TopKGroup::Top1) > w.weight(TopKGroup::Top2));
        assert!(w.weight(TopKGroup::Top2) > w.weight(TopKGroup::None));
    }

    #[test]
    fn uniform_is_all_ones() {
        let w = ReliabilityWeights::uniform();
        for g in TopKGroup::ALL {
            assert_eq!(w.weight(g), 1.0);
        }
    }

    #[test]
    fn fixed_roundtrips() {
        let arr = [0.7, 0.5, 0.3, 0.2, 0.1, 0.05, 0.01];
        assert_eq!(ReliabilityWeights::fixed(arr).as_array(), arr);
    }
}
