//! The fused, morsel-driven execution engine (stages 2–3 in one pass).
//!
//! The staged reference path runs the paper's §III pipeline as four
//! barrier-separated stages, materializing a fix vector, a resolved
//! vector, and a per-user key map between them — two of those stages
//! serial. This engine fuses them: tweet rows stream in fixed-size
//! **morsels** handed out by a work-stealing source, and each worker runs
//! filter → GPS check → kept-user probe → batched geocode → intern →
//! [`LocationKey`] emission in one pass. Nothing row-shaped survives a
//! morsel: the only growing intermediate is the emitted key itself.
//!
//! **Determinism.** Every emitted key is tagged with its row's global
//! *ordinal* (input position, assigned by the source under its cursor
//! lock). Keys hash-partition by user — SplitMix64 of the user id modulo
//! `P`, so one user's keys land wholly in one partition — into
//! `Mutex<Vec<_>>` buffers, appended per morsel from thread-local
//! staging (the lock is touched once per morsel per partition, never per
//! row). Each partition then sorts by `(user, ordinal)`: ordinals are
//! unique, so the sort key is a strict total order and the result is
//! independent of worker interleaving; within a user the keys come out in
//! tweet input order, which is exactly the sequence the staged path feeds
//! the grouping kernel. Partitions group in parallel through
//! [`group_partition`] (the PR-3 merge engine) and concatenate +
//! user-id-sort at the end — users are unique across partitions, so the
//! final order is deterministic too. Funnel counters are order-independent
//! sums. The output is therefore byte-identical to the staged path at
//! every thread/morsel/partition geometry, which the property tests pin.
//!
//! **Fallback.** Below [`FUSED_PARALLEL_THRESHOLD`] buffered rows (or at
//! `threads = 1`) the pass runs inline on the calling thread — the
//! prefetched morsels are replayed first, so no row is lost or reordered.

use std::collections::HashMap;
use std::mem::size_of;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use stir_geoindex::Point;
use stir_geokr::service::{BackendChoice, Geocoder};
use stir_geokr::{DistrictId as GazDistrictId, GeocodeError};

use crate::funnel::CollectionFunnel;
use crate::grouping::{group_partition, GroupedUser, TieBreak};
use crate::input::TweetRow;
use crate::intern::{DistrictId, DistrictInterner, LocationKey};
use crate::metrics::{ExecMetrics, GeocodeMode, PipelineMetrics};

/// Below this many prefetched rows the fused pass stays on the calling
/// thread — same rationale (and value) as the staged geocode stage's
/// spawn threshold.
pub const FUSED_PARALLEL_THRESHOLD: usize = 1024;

/// A source of tweet-row morsels that many workers can drain concurrently.
///
/// `next_morsel` clears `buf`, fills it with the next batch of rows, and
/// returns the global **ordinal** (0-based input position) of the batch's
/// first row, or `None` when the source is exhausted. Ordinals must be
/// strictly increasing across successive batches and row `i` of a batch
/// must rank at `first + i`: the engine tags every emitted key with them
/// to reconstruct input order after the parallel free-for-all. A source
/// may skip rows (e.g. corrupt store records) — gaps only waste ordinals,
/// which need to be unique and monotone, not dense.
pub trait MorselSource: Sync {
    /// Fills `buf` with the next morsel; returns its first row's ordinal.
    fn next_morsel(&self, buf: &mut Vec<TweetRow>) -> Option<u64>;

    /// Rows a full morsel carries (buffer-capacity hint and metrics label).
    fn morsel_rows(&self) -> usize;
}

/// Adapts any row iterator into a [`MorselSource`]: a mutex around the
/// iterator hands out `morsel_rows`-sized batches with a running ordinal.
/// The lock is held once per morsel, not per row.
pub struct RowSource<I> {
    state: Mutex<(I, u64)>,
    morsel_rows: usize,
}

impl<I: Iterator<Item = TweetRow> + Send> RowSource<I> {
    /// Wraps `rows`, batching `morsel_rows` rows per draw (min 1).
    pub fn new(rows: I, morsel_rows: usize) -> Self {
        RowSource {
            state: Mutex::new((rows, 0)),
            morsel_rows: morsel_rows.max(1),
        }
    }
}

impl<I: Iterator<Item = TweetRow> + Send> MorselSource for RowSource<I> {
    fn next_morsel(&self, buf: &mut Vec<TweetRow>) -> Option<u64> {
        buf.clear();
        let mut state = self.state.lock().expect("row source poisoned");
        let (rows, next_ordinal) = &mut *state;
        let first = *next_ordinal;
        buf.extend(rows.take(self.morsel_rows));
        *next_ordinal += buf.len() as u64;
        if buf.is_empty() {
            None
        } else {
            Some(first)
        }
    }

    fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }
}

/// Everything a fused pass needs from the pipeline, borrowed.
pub(crate) struct FusedParams<'a> {
    /// The assembled geocoding backend (shared by all workers).
    pub backend: &'a dyn Geocoder,
    /// Which backend `backend` is — drives the mode label only.
    pub choice: BackendChoice,
    /// Kept users → interned profile district (stage-1 output).
    pub kept: &'a HashMap<u64, DistrictId>,
    /// Gazetteer district id → interned grouping id.
    pub gaz_to_interned: &'a [DistrictId],
    /// The district symbol table (grouping boundary).
    pub interner: &'a DistrictInterner,
    /// Grouping tie-break policy.
    pub tie_break: TieBreak,
    /// Configured worker budget (≥ 1; the threshold may shrink it to 1).
    pub threads: usize,
    /// Hash partitions for emitted keys (≥ 1).
    pub partitions: usize,
}

/// A row that survived filter + probe, waiting on its morsel's geocode:
/// `(ordinal, user, profile district)`.
type Pending = (u64, u64, DistrictId);

/// One batched-geocode answer (per-point, like the staged path's).
type Resolved = Result<Option<GazDistrictId>, GeocodeError>;

/// The staged path's fix record — referenced here only to estimate, from
/// the fused pass's counters, what the reference path would have held.
type StagedFix = (u64, u64, Point, DistrictId);

/// Counters one worker accumulates over its morsels.
#[derive(Default)]
struct WorkerStats {
    morsels: u64,
    rows_in: u64,
    gps_rows: u64,
    kept_probes: u64,
    fixes: u64,
    keys: u64,
    unresolved: u64,
    filter_wall: Duration,
    geocode_wall: Duration,
    partition_wall: Duration,
    /// Final capacity of the worker's reusable morsel buffers, in bytes —
    /// its contribution to the peak-intermediate estimate.
    buffer_bytes: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The partition a user's keys land in — a pure function of the user id
/// and the partition count, so the layout never depends on threads.
fn partition_of(user: u64, partitions: usize) -> usize {
    (splitmix64(user) % partitions as u64) as usize
}

/// Replays prefetched morsels before draining the underlying source —
/// how the engine peeks at the input size without losing rows.
struct PrefetchSource<'a> {
    buffered: Mutex<std::vec::IntoIter<(u64, Vec<TweetRow>)>>,
    rest: &'a dyn MorselSource,
}

impl MorselSource for PrefetchSource<'_> {
    fn next_morsel(&self, buf: &mut Vec<TweetRow>) -> Option<u64> {
        let next = self.buffered.lock().expect("prefetch poisoned").next();
        if let Some((first, rows)) = next {
            buf.clear();
            buf.extend_from_slice(&rows);
            Some(first)
        } else {
            self.rest.next_morsel(buf)
        }
    }

    fn morsel_rows(&self) -> usize {
        self.rest.morsel_rows()
    }
}

/// One worker's whole pass: drain morsels until the source is dry.
fn worker_pass(
    source: &dyn MorselSource,
    p: &FusedParams<'_>,
    partitions: &[Mutex<Vec<(u64, LocationKey)>>],
) -> WorkerStats {
    let morsel_rows = source.morsel_rows();
    let mut stats = WorkerStats::default();
    let mut buf: Vec<TweetRow> = Vec::with_capacity(morsel_rows);
    let mut points: Vec<Point> = Vec::new();
    let mut pending: Vec<Pending> = Vec::new();
    let mut resolved: Vec<Resolved> = Vec::new();
    let mut staging: Vec<Vec<(u64, LocationKey)>> =
        (0..partitions.len()).map(|_| Vec::new()).collect();
    while let Some(first) = source.next_morsel(&mut buf) {
        stats.morsels += 1;
        // Filter: GPS check + one kept-cohort probe per GPS row. The
        // profile district rides in the pending record, so the key build
        // below never re-hashes the user.
        let filter_start = Instant::now();
        points.clear();
        pending.clear();
        for (i, t) in buf.iter().enumerate() {
            stats.rows_in += 1;
            let Some(point) = t.gps else { continue };
            stats.gps_rows += 1;
            stats.kept_probes += 1;
            if let Some(&profile) = p.kept.get(&t.user) {
                pending.push((first + i as u64, t.user, profile));
                points.push(point);
            }
        }
        stats.fixes += pending.len() as u64;
        stats.filter_wall += filter_start.elapsed();

        // Geocode the whole morsel in one backend call (per-point results,
        // identical semantics and traffic to point-at-a-time).
        let geocode_start = Instant::now();
        p.backend.resolve_id_batch(&points, &mut resolved);
        stats.geocode_wall += geocode_start.elapsed();

        // Intern + emit: tag with the ordinal, stage by partition, flush
        // each partition's staging once per morsel.
        let partition_start = Instant::now();
        for (&(ordinal, user, profile), rec) in pending.iter().zip(&resolved) {
            match rec {
                Ok(Some(gaz_id)) => {
                    stats.keys += 1;
                    let key = LocationKey {
                        user,
                        profile,
                        tweet: p.gaz_to_interned[gaz_id.0 as usize],
                    };
                    staging[partition_of(user, partitions.len())].push((ordinal, key));
                }
                _ => stats.unresolved += 1,
            }
        }
        for (stage, partition) in staging.iter_mut().zip(partitions) {
            if !stage.is_empty() {
                partition.lock().expect("partition poisoned").append(stage);
            }
        }
        stats.partition_wall += partition_start.elapsed();
    }
    stats.buffer_bytes = (buf.capacity() * size_of::<TweetRow>()
        + points.capacity() * size_of::<Point>()
        + pending.capacity() * size_of::<Pending>()
        + resolved.capacity() * size_of::<Resolved>()) as u64;
    stats
}

/// Runs stages 2–3 fused: one morsel-driven pass from `source` to grouped
/// users. Fills the funnel's tweet counters, the geocode/grouping metric
/// slots (so staged-path consumers see the same fields filled), and the
/// [`ExecMetrics`] slot.
pub(crate) fn run_fused(
    source: &dyn MorselSource,
    p: &FusedParams<'_>,
    funnel: &mut CollectionFunnel,
    metrics: &mut PipelineMetrics,
) -> Vec<GroupedUser> {
    let threads = p.threads.max(1);
    let partition_count = p.partitions.max(1);
    let partitions: Vec<Mutex<Vec<(u64, LocationKey)>>> = (0..partition_count)
        .map(|_| Mutex::new(Vec::new()))
        .collect();

    // Peek at the input: buffer morsels until the parallel threshold is
    // reached or the source runs dry, then decide the worker count.
    let mut prefetched: Vec<(u64, Vec<TweetRow>)> = Vec::new();
    let mut workers = 1;
    if threads > 1 {
        let mut buffered_rows = 0usize;
        let mut buf = Vec::new();
        while buffered_rows < FUSED_PARALLEL_THRESHOLD {
            match source.next_morsel(&mut buf) {
                Some(first) => {
                    buffered_rows += buf.len();
                    prefetched.push((first, std::mem::take(&mut buf)));
                }
                None => break,
            }
        }
        if buffered_rows >= FUSED_PARALLEL_THRESHOLD {
            workers = threads;
        }
    }
    let replay = PrefetchSource {
        buffered: Mutex::new(prefetched.into_iter()),
        rest: source,
    };

    // Phase 1: the fused filter→geocode→partition pass.
    let phase1_start = Instant::now();
    let stats: Vec<WorkerStats> = if workers == 1 {
        vec![worker_pass(&replay, p, &partitions)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| s.spawn(|| worker_pass(&replay, p, &partitions)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fused worker panicked"))
                .collect()
        })
    };
    let phase1_wall = phase1_start.elapsed();

    // Phase 2: partitions sort + group in parallel, then merge in user-id
    // order (users are unique, so concatenate-and-sort is deterministic).
    let phase2_start = Instant::now();
    let partition_keys: Vec<u64> = partitions
        .iter()
        .map(|m| m.lock().expect("partition poisoned").len() as u64)
        .collect();
    let group_workers = if workers > 1 && partition_count > 1 {
        workers.min(partition_count)
    } else {
        1
    };
    let cursor = AtomicUsize::new(0);
    let group_one = |draws: &mut u64, group_wall: &mut Duration| {
        let mut parts: Vec<(usize, Vec<GroupedUser>)> = Vec::new();
        loop {
            let idx = cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= partition_count {
                break;
            }
            *draws += 1;
            let start = Instant::now();
            let mut pairs =
                std::mem::take(&mut *partitions[idx].lock().expect("partition poisoned"));
            if pairs.is_empty() {
                continue;
            }
            pairs.sort_unstable_by_key(|&(ordinal, k)| (k.user, ordinal));
            parts.push((idx, group_partition(&pairs, p.interner, p.tie_break)));
            *group_wall += start.elapsed();
        }
        parts
    };
    let mut draws_per_thread = vec![0u64; group_workers];
    let mut group_wall = Duration::ZERO;
    let mut by_partition: Vec<Vec<GroupedUser>> =
        (0..partition_count).map(|_| Vec::new()).collect();
    if group_workers == 1 {
        for (idx, grouped) in group_one(&mut draws_per_thread[0], &mut group_wall) {
            by_partition[idx] = grouped;
        }
    } else {
        type GroupWorkerResult = (Vec<(usize, Vec<GroupedUser>)>, u64, Duration);
        let results: Vec<GroupWorkerResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..group_workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut draws = 0u64;
                        let mut wall = Duration::ZERO;
                        let parts = group_one(&mut draws, &mut wall);
                        (parts, draws, wall)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("group worker panicked"))
                .collect()
        });
        for (t, (parts, draws, wall)) in results.into_iter().enumerate() {
            draws_per_thread[t] = draws;
            group_wall += wall;
            for (idx, grouped) in parts {
                by_partition[idx] = grouped;
            }
        }
    }
    let merge_start = Instant::now();
    let mut grouped: Vec<GroupedUser> = by_partition.into_iter().flatten().collect();
    grouped.sort_unstable_by_key(|g| g.user);
    let merge_wall = merge_start.elapsed();
    let grouping_wall = phase2_start.elapsed();

    // Fold worker counters.
    let mut exec = ExecMetrics {
        threads: workers,
        morsel_rows: source.morsel_rows(),
        partitions: partition_count,
        morsels_per_thread: Vec::with_capacity(workers),
        partition_keys,
        merge_wall,
        group_wall,
        ..ExecMetrics::default()
    };
    let mut buffer_bytes = 0u64;
    for s in &stats {
        exec.morsels += s.morsels;
        exec.morsels_per_thread.push(s.morsels);
        exec.rows_in += s.rows_in;
        exec.gps_rows += s.gps_rows;
        exec.kept_probes += s.kept_probes;
        exec.fixes += s.fixes;
        exec.keys_emitted += s.keys;
        exec.unresolved += s.unresolved;
        exec.filter_wall += s.filter_wall;
        exec.geocode_wall += s.geocode_wall;
        exec.partition_wall += s.partition_wall;
        buffer_bytes += s.buffer_bytes;
    }
    let pair = size_of::<(u64, LocationKey)>() as u64;
    exec.peak_bytes_estimate = exec.keys_emitted * pair + buffer_bytes;
    // What the staged path materializes for the same input: the fix
    // vector, the same-length resolved vector, and the per-user key map
    // (keys + per-user Vec headers + map-slot overhead).
    let users = grouped.len() as u64;
    exec.staged_bytes_estimate = exec.fixes
        * (size_of::<StagedFix>() + size_of::<Option<GazDistrictId>>()) as u64
        + exec.keys_emitted * size_of::<LocationKey>() as u64
        + users * (size_of::<(u64, Vec<LocationKey>)>() as u64 + 16);

    // Funnel: order-independent sums, so the parallel pass lands the same
    // totals as the staged loop.
    funnel.tweets_total += exec.rows_in;
    funnel.tweets_with_gps += exec.gps_rows;
    funnel.tweets_gps_unresolvable += exec.unresolved;
    funnel.strings_built += exec.keys_emitted;
    funnel.users_final = users;

    // Geocode metrics: same fields the staged path fills, plus the
    // backend's exact traffic partition.
    metrics.geocode.fixes = exec.fixes;
    metrics.geocode.mode = match (p.choice, workers > 1) {
        (BackendChoice::Gazetteer, false) => GeocodeMode::DirectSerial,
        (BackendChoice::Gazetteer, true) => GeocodeMode::DirectParallel,
        (BackendChoice::Yahoo, _) => GeocodeMode::YahooXml,
        (BackendChoice::Resilient, _) => GeocodeMode::Resilient,
    };
    metrics.geocode.threads = workers;
    metrics.geocode.blocks_per_thread = if workers > 1 {
        exec.morsels_per_thread.clone()
    } else {
        Vec::new()
    };
    let traffic = p.backend.traffic();
    metrics.geocode.lookups = traffic.lookups;
    metrics.geocode.cache_hits = traffic.cache_hits;
    metrics.geocode.traffic = traffic;
    funnel.yahoo_quota_days = metrics.geocode.traffic.quota_days;
    // Stage walls: the operators are fused, so "intake" is the summed
    // filter-operator time (a subset of the pass, like the scan wall on
    // store runs) and "geocode" is the whole phase-1 wall.
    metrics.stages.tweet_intake = exec.filter_wall;
    metrics.stages.geocode = phase1_wall;
    metrics.geocode.wall = phase1_wall;

    // Grouping metrics, shaped like the staged path's.
    metrics.stages.grouping = grouping_wall;
    metrics.grouping.strings = exec.keys_emitted;
    metrics.grouping.users = users;
    metrics.grouping.merged_entries = grouped.iter().map(|u| u.entries.len() as u64).sum();
    metrics.grouping.interner_size = p.interner.len() as u64;
    metrics.grouping.threads = group_workers;
    metrics.grouping.blocks_per_thread = if group_workers == 1 {
        vec![1]
    } else {
        draws_per_thread
    };
    metrics.grouping.wall = grouping_wall;
    metrics.exec = Some(exec);
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_source_hands_out_dense_monotone_ordinals() {
        let rows: Vec<TweetRow> = (0..10).map(|i| TweetRow::plain(i, i)).collect();
        let source = RowSource::new(rows.into_iter(), 3);
        let mut buf = Vec::new();
        let mut firsts = Vec::new();
        let mut lens = Vec::new();
        while let Some(first) = source.next_morsel(&mut buf) {
            firsts.push(first);
            lens.push(buf.len());
        }
        assert_eq!(firsts, vec![0, 3, 6, 9]);
        assert_eq!(lens, vec![3, 3, 3, 1]);
        assert_eq!(source.next_morsel(&mut buf), None);
    }

    #[test]
    fn partition_choice_is_a_pure_function_of_user_and_count() {
        for user in [0u64, 1, 17, u64::MAX] {
            for partitions in [1usize, 2, 7, 64] {
                let a = partition_of(user, partitions);
                assert!(a < partitions);
                assert_eq!(a, partition_of(user, partitions));
            }
        }
    }
}
