//! The fused, morsel-driven execution engine (stages 2–3 in one pass).
//!
//! The staged reference path runs the paper's §III pipeline as four
//! barrier-separated stages, materializing a fix vector, a resolved
//! vector, and a per-user key map between them — two of those stages
//! serial. This engine fuses them: tweet rows stream in fixed-size
//! **columnar morsels** handed out by a work-stealing source, and each
//! worker runs filter → GPS check → kept-user probe → bbox prescreen →
//! batched geocode → intern → [`LocationKey`] emission in one pass.
//! Nothing row-shaped survives a morsel: the only growing intermediate is
//! the emitted key itself.
//!
//! **Columnar morsels.** A morsel is a [`ColumnBatch`] — parallel
//! primitive columns (`users`, `timestamps`, e6-grid `lats_e6`/`lons_e6`,
//! and the exact `lats`/`lons`) instead of a `Vec` of row structs. The
//! GPS-presence check is one `i32` compare against [`NO_GPS_E6`] and the
//! coverage prescreen is four more, so the filter runs as a tight loop
//! over primitive slices with no `Option` discriminant chasing. Surviving
//! coordinates geocode from the *exact* `f64` columns through
//! [`Geocoder::resolve_id_cols`] — the quantized e6 grid only ever
//! *rejects*, with bounds widened outward (floor/ceil), so the answer is
//! bit-identical to resolving every point: the gazetteer itself rejects
//! anything outside its coverage box before touching the index.
//!
//! **Adaptive parallelism.** `threads` is a *ceiling*, not a command: the
//! scheduler caps it at `std::thread::available_parallelism()` up front
//! (see `PipelineConfig::effective_threads`) and then verifies the cap
//! empirically — after a serial warmup tranche of morsels, one probe
//! morsel per candidate worker runs in parallel and [`warmup_collapse`]
//! compares per-morsel operator time. Workers that time-slice one core
//! show inflated per-morsel CPU, and the pass collapses to serial-inline
//! rather than paying oversubscription for nothing. The decision is a
//! pure function of the two [`ExecMetrics`] samples, so tests can pin it
//! without any wall clock. `threads_exact` bypasses all of it for benches.
//!
//! **Determinism.** Every emitted key is tagged with its row's global
//! *ordinal* (input position, assigned by the source under its cursor
//! lock). Keys hash-partition by user — SplitMix64 of the user id modulo
//! `P`, so one user's keys land wholly in one partition — into
//! `Mutex<Vec<_>>` buffers, appended per morsel from thread-local
//! staging (the lock is touched once per morsel per partition, never per
//! row). Each partition then sorts by `(user, ordinal)`: ordinals are
//! unique, so the sort key is a strict total order and the result is
//! independent of worker interleaving; within a user the keys come out in
//! tweet input order, which is exactly the sequence the staged path feeds
//! the grouping kernel. Partitions group in parallel through
//! [`group_partition`] (the PR-3 merge engine) and concatenate +
//! user-id-sort at the end — users are unique across partitions, so the
//! final order is deterministic too. Funnel counters are order-independent
//! sums. The output is therefore byte-identical to the staged path at
//! every thread/morsel/partition geometry, which the property tests pin.
//!
//! **Fallback.** Below [`FUSED_PARALLEL_THRESHOLD`] buffered rows (or at
//! an effective thread count of 1) the fused pass runs inline on the
//! calling thread — prefetched morsels are processed first as owned
//! batches, so no row is lost or reordered. Prefetched morsels are also
//! how parallel workers get their guaranteed initial work: they are dealt
//! round-robin, one backlog per worker, so no worker is ever spawned with
//! zero morsels (the worker count shrinks to the morsel count first).

use std::collections::HashMap;
use std::mem::size_of;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use stir_geoindex::Point;
use stir_geokr::service::{BackendChoice, Geocoder};
use stir_geokr::{DistrictId as GazDistrictId, GeocodeError};

use crate::funnel::CollectionFunnel;
use crate::grouping::{group_partition, GroupedUser, TieBreak};
use crate::input::TweetRow;
use crate::intern::{DistrictId, DistrictInterner, LocationKey};
use crate::metrics::{ExecMetrics, ExecMode, GeocodeMode, PipelineMetrics};

/// Below this many prefetched rows the fused pass stays on the calling
/// thread — same rationale (and value) as the staged geocode stage's
/// spawn threshold.
pub const FUSED_PARALLEL_THRESHOLD: usize = 1024;

/// Serial warmup morsels the adaptive scheduler samples before deciding
/// whether parallel workers actually run in parallel on this machine.
const WARMUP_MORSELS: usize = 2;

/// The `lats_e6`/`lons_e6` sentinel for a row without a GPS fix.
/// `quant_e6` clamps real coordinates to `i32::MIN + 1`, so no finite
/// (or infinite) coordinate can alias it.
pub const NO_GPS_E6: i32 = i32::MIN;

/// Quantizes a coordinate onto the e6 micro-degree grid, saturating so
/// that no input — including `-inf` — can collide with [`NO_GPS_E6`].
/// `NaN` maps to 0, which the Korea coverage prescreen rejects, matching
/// the gazetteer (whose bbox test also rejects `NaN`).
///
/// This runs per row on the intake hot path, so it is a truncating `as`
/// cast (one instruction, saturating, NaN → 0) rather than `round` (a
/// libm call). Truncation sits within 1 µ° of the rounded value;
/// [`CoverE6`] widens its bounds by 2 µ° to absorb that slack plus the
/// `x * 1e6` product's own rounding.
#[inline]
pub(crate) fn quant_e6(x: f64) -> i32 {
    ((x * 1e6) as i32).max(i32::MIN + 1)
}

/// One columnar morsel: parallel primitive columns, one slot per row.
///
/// `lats_e6`/`lons_e6` carry the coordinates rounded to micro-degrees
/// ([`NO_GPS_E6`] marks a GPS-less row) and drive the branch-light filter
/// loops; `lats`/`lons` carry the *exact* `f64` coordinates for rows that
/// reach the geocoder (GPS-less slots hold `0.0` to keep the columns
/// dense and index-aligned). `timestamps` rides along for sources that
/// have one (the tweet store); row-fed sources fill it with zeros.
#[derive(Debug, Default)]
pub struct ColumnBatch {
    /// Author ids.
    pub users: Vec<u64>,
    /// Tweet timestamps (0 when the source has none).
    pub timestamps: Vec<i64>,
    /// Latitude in micro-degrees, or [`NO_GPS_E6`].
    pub lats_e6: Vec<i32>,
    /// Longitude in micro-degrees, or [`NO_GPS_E6`].
    pub lons_e6: Vec<i32>,
    /// Exact latitude (0.0 on GPS-less slots).
    pub lats: Vec<f64>,
    /// Exact longitude (0.0 on GPS-less slots).
    pub lons: Vec<f64>,
}

impl ColumnBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with every column sized for `rows`.
    pub fn with_capacity(rows: usize) -> Self {
        ColumnBatch {
            users: Vec::with_capacity(rows),
            timestamps: Vec::with_capacity(rows),
            lats_e6: Vec::with_capacity(rows),
            lons_e6: Vec::with_capacity(rows),
            lats: Vec::with_capacity(rows),
            lons: Vec::with_capacity(rows),
        }
    }

    /// Clears every column, keeping capacity.
    pub fn clear(&mut self) {
        self.users.clear();
        self.timestamps.clear();
        self.lats_e6.clear();
        self.lons_e6.clear();
        self.lats.clear();
        self.lons.clear();
    }

    /// Rows in the batch.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Appends one row, quantizing the fix onto the e6 grid.
    #[inline]
    pub fn push(&mut self, user: u64, timestamp: i64, gps: Option<Point>) {
        self.users.push(user);
        self.timestamps.push(timestamp);
        match gps {
            Some(p) => {
                self.lats_e6.push(quant_e6(p.lat));
                self.lons_e6.push(quant_e6(p.lon));
                self.lats.push(p.lat);
                self.lons.push(p.lon);
            }
            None => {
                self.lats_e6.push(NO_GPS_E6);
                self.lons_e6.push(NO_GPS_E6);
                self.lats.push(0.0);
                self.lons.push(0.0);
            }
        }
    }

    /// Appends one [`TweetRow`] (no timestamp — filled with 0).
    #[inline]
    pub fn push_row(&mut self, row: &TweetRow) {
        self.push(row.user, 0, row.gps);
    }

    /// Bulk-appends one block of tweet-store column slices — the
    /// zero-decode path from a columnar (`STIRSEG2`) segment.
    ///
    /// The store's e6 integers use round-to-nearest while this batch's
    /// grid uses `quant_e6`'s truncation, so each coordinate is mapped
    /// through the exact `f64` it decodes to (`e6 / 1e6` — lossless for
    /// any µ° integer) and re-quantized. That makes every column land
    /// byte-identically to [`ColumnBatch::push`] fed by the row-decode
    /// path, which is what keeps v1 and v2 pipeline outputs equal.
    /// `i32::MIN` marks a GPS-less row in the store columns, matching
    /// [`NO_GPS_E6`] here.
    pub fn push_store_columns(
        &mut self,
        users: &[u64],
        timestamps: &[u64],
        lats_e6: &[i32],
        lons_e6: &[i32],
    ) {
        debug_assert!(
            users.len() == timestamps.len()
                && users.len() == lats_e6.len()
                && users.len() == lons_e6.len()
        );
        self.users.extend_from_slice(users);
        self.timestamps.extend(timestamps.iter().map(|&t| t as i64));
        for i in 0..users.len() {
            if lats_e6[i] == NO_GPS_E6 {
                self.lats_e6.push(NO_GPS_E6);
                self.lons_e6.push(NO_GPS_E6);
                self.lats.push(0.0);
                self.lons.push(0.0);
            } else {
                let lat = lats_e6[i] as f64 / 1e6;
                let lon = lons_e6[i] as f64 / 1e6;
                self.lats_e6.push(quant_e6(lat));
                self.lons_e6.push(quant_e6(lon));
                self.lats.push(lat);
                self.lons.push(lon);
            }
        }
    }

    /// Total allocated capacity across all columns, in bytes — the
    /// batch's contribution to the peak-intermediate estimate.
    pub fn capacity_bytes(&self) -> u64 {
        (self.users.capacity() * size_of::<u64>()
            + self.timestamps.capacity() * size_of::<i64>()
            + self.lats_e6.capacity() * size_of::<i32>()
            + self.lons_e6.capacity() * size_of::<i32>()
            + self.lats.capacity() * size_of::<f64>()
            + self.lons.capacity() * size_of::<f64>()) as u64
    }
}

/// The gazetteer's coverage box on the e6 grid, widened outward
/// (floor − 2 / ceil + 2) so a rejection on quantized coordinates is
/// always a true rejection on the exact ones: [`quant_e6`] truncates, so
/// `quant_e6(x)` sits within 1 µ° of `x·1e6` (plus sub-µ° product
/// rounding), and a quantized value two whole steps below the floor of
/// the bound leaves no room for that slack — `quant_e6(x) < min_lat`
/// implies `x < bbox.min_lat`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CoverE6 {
    min_lat: i32,
    max_lat: i32,
    min_lon: i32,
    max_lon: i32,
}

impl CoverE6 {
    fn from_bbox(b: &stir_geoindex::BBox) -> Self {
        CoverE6 {
            min_lat: ((b.min_lat * 1e6).floor() as i32).saturating_sub(2),
            max_lat: ((b.max_lat * 1e6).ceil() as i32).saturating_add(2),
            min_lon: ((b.min_lon * 1e6).floor() as i32).saturating_sub(2),
            max_lon: ((b.max_lon * 1e6).ceil() as i32).saturating_add(2),
        }
    }

    /// The Korean gazetteer's coverage box — the only backend the
    /// prescreen applies to (remote backends have test-pinned per-lookup
    /// traffic that a prescreen would silently change).
    pub(crate) fn korea() -> Self {
        Self::from_bbox(&stir_geokr::gazetteer::KOREA_BBOX)
    }

    /// True when the e6 point is provably outside the exact box.
    #[inline]
    pub(crate) fn rejects(&self, lat_e6: i32, lon_e6: i32) -> bool {
        lat_e6 < self.min_lat
            || lat_e6 > self.max_lat
            || lon_e6 < self.min_lon
            || lon_e6 > self.max_lon
    }
}

/// A source of columnar tweet morsels that many workers can drain
/// concurrently.
///
/// `next_morsel` clears `buf`, fills its columns with the next batch of
/// rows, and returns the global **ordinal** (0-based input position) of
/// the batch's first row, or `None` when the source is exhausted.
/// Ordinals must be strictly increasing across successive batches and row
/// `i` of a batch must rank at `first + i`: the engine tags every emitted
/// key with them to reconstruct input order after the parallel
/// free-for-all. A source may skip rows (e.g. corrupt store records) —
/// gaps only waste ordinals, which need to be unique and monotone, not
/// dense.
pub trait MorselSource: Sync {
    /// Fills `buf` with the next morsel; returns its first row's ordinal.
    fn next_morsel(&self, buf: &mut ColumnBatch) -> Option<u64>;

    /// Rows a full morsel carries (buffer-capacity hint and metrics label).
    fn morsel_rows(&self) -> usize;
}

/// Adapts any row iterator into a [`MorselSource`]: a mutex around the
/// iterator hands out `morsel_rows`-sized column batches with a running
/// ordinal. The lock is held once per morsel, not per row.
pub struct RowSource<I> {
    state: Mutex<(I, u64)>,
    morsel_rows: usize,
}

impl<I: Iterator<Item = TweetRow> + Send> RowSource<I> {
    /// Wraps `rows`, batching `morsel_rows` rows per draw (min 1).
    pub fn new(rows: I, morsel_rows: usize) -> Self {
        RowSource {
            state: Mutex::new((rows, 0)),
            morsel_rows: morsel_rows.max(1),
        }
    }
}

impl<I: Iterator<Item = TweetRow> + Send> MorselSource for RowSource<I> {
    fn next_morsel(&self, buf: &mut ColumnBatch) -> Option<u64> {
        buf.clear();
        let mut state = self.state.lock().expect("row source poisoned");
        let (rows, next_ordinal) = &mut *state;
        let first = *next_ordinal;
        for row in rows.take(self.morsel_rows) {
            buf.push_row(&row);
        }
        *next_ordinal += buf.len() as u64;
        if buf.is_empty() {
            None
        } else {
            Some(first)
        }
    }

    fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }
}

/// Everything a fused pass needs from the pipeline, borrowed.
pub(crate) struct FusedParams<'a> {
    /// The assembled geocoding backend (shared by all workers).
    pub backend: &'a dyn Geocoder,
    /// Which backend `backend` is — drives the mode label only.
    pub choice: BackendChoice,
    /// Kept users → interned profile district (stage-1 output).
    pub kept: &'a HashMap<u64, DistrictId>,
    /// Gazetteer district id → interned grouping id.
    pub gaz_to_interned: &'a [DistrictId],
    /// The district symbol table (grouping boundary).
    pub interner: &'a DistrictInterner,
    /// Grouping tie-break policy.
    pub tie_break: TieBreak,
    /// Planned worker count (≥ 1), already capped at the machine's
    /// parallelism unless `threads_exact`.
    pub threads: usize,
    /// The configured `--threads` value before capping (metrics only).
    pub threads_ceiling: usize,
    /// Obey `threads` exactly: skip the availability cap *and* the
    /// warmup-collapse check (the bench escape hatch).
    pub threads_exact: bool,
    /// Hash partitions for emitted keys (≥ 1) when the pass goes parallel.
    pub partitions: usize,
    /// Coverage prescreen on the e6 grid; `None` for backends whose
    /// per-lookup traffic must stay exact (Yahoo, resilient).
    pub cover: Option<CoverE6>,
}

/// A row that survived filter + probe, waiting on its morsel's geocode:
/// `(ordinal, user, profile district)`.
type Pending = (u64, u64, DistrictId);

/// One batched-geocode answer (per-point, like the staged path's).
type Resolved = Result<Option<GazDistrictId>, GeocodeError>;

/// The staged path's fix record — referenced here only to estimate, from
/// the fused pass's counters, what the reference path would have held.
type StagedFix = (u64, u64, Point, DistrictId);

/// Counters one worker accumulates over its morsels.
#[derive(Default)]
struct WorkerStats {
    morsels: u64,
    rows_in: u64,
    gps_rows: u64,
    kept_probes: u64,
    fixes: u64,
    bbox_rejected: u64,
    keys: u64,
    unresolved: u64,
    filter_wall: Duration,
    geocode_wall: Duration,
    partition_wall: Duration,
    /// Final capacity of the worker's reusable morsel buffers, in bytes —
    /// its contribution to the peak-intermediate estimate.
    buffer_bytes: u64,
}

impl WorkerStats {
    /// Folds another worker's (or tranche's) counters into this one.
    fn merge(&mut self, o: WorkerStats) {
        self.morsels += o.morsels;
        self.rows_in += o.rows_in;
        self.gps_rows += o.gps_rows;
        self.kept_probes += o.kept_probes;
        self.fixes += o.fixes;
        self.bbox_rejected += o.bbox_rejected;
        self.keys += o.keys;
        self.unresolved += o.unresolved;
        self.filter_wall += o.filter_wall;
        self.geocode_wall += o.geocode_wall;
        self.partition_wall += o.partition_wall;
        self.buffer_bytes += o.buffer_bytes;
    }
}

/// The engine's user hash is the store layer's shard hash — delegating
/// keeps the two permutations identical by construction, so a sharded
/// store's per-shard user populations spread across pipeline partitions
/// exactly as a single store's would.
fn splitmix64(x: u64) -> u64 {
    stir_tweetstore::splitmix64(x)
}

/// The partition a user's keys land in — a pure function of the user id
/// and the partition count, so the layout never depends on threads.
fn partition_of(user: u64, partitions: usize) -> usize {
    (splitmix64(user) % partitions as u64) as usize
}

/// Rearranges one partition's `(ordinal, key)` pairs into the
/// user-contiguous, ordinal-ascending runs [`group_partition`] needs,
/// without paying a full comparison sort. Pairs are counted and scattered
/// into power-of-two buckets keyed by the *upper* bits of the user's
/// splitmix64 hash (the partition choice consumed the hash modulo the
/// partition count, so the upper bits still spread users within one
/// partition), then each small bucket is sorted by `(user, ordinal)`.
/// Every user lands wholly in one bucket, so the concatenation of buckets
/// is run-contiguous; run order is an arbitrary pure function of the user
/// ids, independent of threads, and the caller's final user-id merge sort
/// erases it. A bucket typically holds one or two users' runs — and on the
/// serial path a run arrives already ordinal-ordered — so the per-bucket
/// sorts run near `O(n)` instead of the full `n·log n`.
fn arrange_runs(pairs: &mut Vec<(u64, LocationKey)>) {
    /// Pairs per bucket to aim for when sizing the bucket table.
    const TARGET: usize = 8;
    let n = pairs.len();
    if n <= 64 {
        pairs.sort_unstable_by_key(|&(ordinal, k)| (k.user, ordinal));
        return;
    }
    let buckets = (n / TARGET).next_power_of_two().min(1 << 16);
    let mask = (buckets - 1) as u64;
    let bucket_of = |user: u64| ((splitmix64(user) >> 32) & mask) as usize;
    let mut starts = vec![0usize; buckets + 1];
    for &(_, k) in pairs.iter() {
        starts[bucket_of(k.user) + 1] += 1;
    }
    for b in 0..buckets {
        starts[b + 1] += starts[b];
    }
    let mut cursor: Vec<usize> = starts[..buckets].to_vec();
    let mut scratch = vec![pairs[0]; n];
    for &pair in pairs.iter() {
        let b = bucket_of(pair.1.user);
        scratch[cursor[b]] = pair;
        cursor[b] += 1;
    }
    for b in 0..buckets {
        let (s, e) = (starts[b], starts[b + 1]);
        if e - s > 1 {
            scratch[s..e].sort_unstable_by_key(|&(ordinal, k)| (k.user, ordinal));
        }
    }
    *pairs = scratch;
}

/// Reusable per-worker scratch: the survivors of one morsel's filter, the
/// exact coordinates feeding the columnar geocode, its answers, and the
/// per-partition staging flushed once per morsel.
struct Scratch {
    pending: Vec<Pending>,
    lats: Vec<f64>,
    lons: Vec<f64>,
    resolved: Vec<Resolved>,
    staging: Vec<Vec<(u64, LocationKey)>>,
}

impl Scratch {
    fn new(partitions: usize) -> Self {
        Scratch {
            pending: Vec::new(),
            lats: Vec::new(),
            lons: Vec::new(),
            resolved: Vec::new(),
            staging: (0..partitions).map(|_| Vec::new()).collect(),
        }
    }

    fn capacity_bytes(&self) -> u64 {
        (self.pending.capacity() * size_of::<Pending>()
            + self.lats.capacity() * size_of::<f64>()
            + self.lons.capacity() * size_of::<f64>()
            + self.resolved.capacity() * size_of::<Resolved>()) as u64
    }
}

/// One morsel through the fused operators: columnar filter (presence +
/// kept probe + coverage prescreen), columnar geocode, intern + emit.
fn process_morsel(
    first: u64,
    batch: &ColumnBatch,
    p: &FusedParams<'_>,
    partitions: &[Mutex<Vec<(u64, LocationKey)>>],
    scratch: &mut Scratch,
    stats: &mut WorkerStats,
) {
    stats.morsels += 1;
    let n = batch.len();
    stats.rows_in += n as u64;

    // Filter: the presence check is one i32 compare per row and the
    // coverage prescreen four more, all over primitive columns; only the
    // kept-cohort probe touches a hash map. The profile district rides in
    // the pending record, so the key build below never re-hashes the user.
    let filter_start = Instant::now();
    scratch.pending.clear();
    scratch.lats.clear();
    scratch.lons.clear();
    for i in 0..n {
        let lat_e6 = batch.lats_e6[i];
        if lat_e6 == NO_GPS_E6 {
            continue;
        }
        stats.gps_rows += 1;
        stats.kept_probes += 1;
        let user = batch.users[i];
        let Some(&profile) = p.kept.get(&user) else {
            continue;
        };
        if let Some(cover) = &p.cover {
            if cover.rejects(lat_e6, batch.lons_e6[i]) {
                // Provably outside coverage: the gazetteer would answer
                // None, so skip the lookup and count the fix unresolved.
                stats.fixes += 1;
                stats.bbox_rejected += 1;
                stats.unresolved += 1;
                continue;
            }
        }
        scratch.pending.push((first + i as u64, user, profile));
        scratch.lats.push(batch.lats[i]);
        scratch.lons.push(batch.lons[i]);
    }
    stats.fixes += scratch.pending.len() as u64;
    stats.filter_wall += filter_start.elapsed();

    // Geocode the morsel's survivors in one columnar backend call
    // (per-point results, identical semantics to point-at-a-time).
    let geocode_start = Instant::now();
    p.backend
        .resolve_id_cols(&scratch.lats, &scratch.lons, &mut scratch.resolved);
    stats.geocode_wall += geocode_start.elapsed();

    // Intern + emit: tag with the ordinal, stage by partition, flush
    // each partition's staging once per morsel.
    let partition_start = Instant::now();
    let partition_count = partitions.len();
    for (&(ordinal, user, profile), rec) in scratch.pending.iter().zip(&scratch.resolved) {
        match rec {
            Ok(Some(gaz_id)) => {
                stats.keys += 1;
                let key = LocationKey {
                    user,
                    profile,
                    tweet: p.gaz_to_interned[gaz_id.0 as usize],
                };
                let slot = if partition_count == 1 {
                    0
                } else {
                    partition_of(user, partition_count)
                };
                scratch.staging[slot].push((ordinal, key));
            }
            _ => stats.unresolved += 1,
        }
    }
    for (stage, partition) in scratch.staging.iter_mut().zip(partitions) {
        if !stage.is_empty() {
            partition.lock().expect("partition poisoned").append(stage);
        }
    }
    stats.partition_wall += partition_start.elapsed();
}

/// One worker's whole pass: process the owned `initial` morsels first
/// (round-robin backlog, the no-empty-worker guarantee), then drain
/// `source` until dry (when given — warmup/probe tranches pass `None`).
fn worker_pass(
    initial: Vec<(u64, ColumnBatch)>,
    source: Option<&dyn MorselSource>,
    p: &FusedParams<'_>,
    partitions: &[Mutex<Vec<(u64, LocationKey)>>],
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut scratch = Scratch::new(partitions.len());
    let mut batch_bytes = 0u64;
    for (first, batch) in &initial {
        batch_bytes = batch_bytes.max(batch.capacity_bytes());
        process_morsel(*first, batch, p, partitions, &mut scratch, &mut stats);
    }
    drop(initial);
    if let Some(source) = source {
        let mut buf = ColumnBatch::with_capacity(source.morsel_rows());
        while let Some(first) = source.next_morsel(&mut buf) {
            process_morsel(first, &buf, p, partitions, &mut scratch, &mut stats);
        }
        batch_bytes = batch_bytes.max(buf.capacity_bytes());
    }
    stats.buffer_bytes = batch_bytes + scratch.capacity_bytes();
    stats
}

/// Deals morsels round-robin into one owned backlog per worker. Every
/// worker gets at least one morsel when `morsels.len() >= workers`, which
/// the caller guarantees by shrinking the worker count first.
fn deal(morsels: Vec<(u64, ColumnBatch)>, workers: usize) -> Vec<Vec<(u64, ColumnBatch)>> {
    let mut out: Vec<Vec<(u64, ColumnBatch)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, m) in morsels.into_iter().enumerate() {
        out[i % workers].push(m);
    }
    out
}

/// Condenses worker counters into the sample shape [`warmup_collapse`]
/// consumes: morsel count plus the three fused-operator walls.
fn sample(stats: &[WorkerStats]) -> ExecMetrics {
    let mut m = ExecMetrics::default();
    for s in stats {
        m.morsels += s.morsels;
        m.filter_wall += s.filter_wall;
        m.geocode_wall += s.geocode_wall;
        m.partition_wall += s.partition_wall;
    }
    m
}

/// The adaptive scheduler's collapse decision: given a serial warmup
/// sample and a parallel probe sample (one morsel per worker, run
/// concurrently), should the pass fall back to serial-inline?
///
/// Physics: each sample's per-morsel operator time is its summed
/// filter/geocode/partition walls divided by its morsel count. Workers
/// that genuinely run in parallel show per-morsel time ≈ the serial
/// sample; workers time-slicing a core show it inflated toward
/// `workers ×` serial, because a descheduled worker's wall keeps
/// ticking. The pass collapses when the parallel per-morsel time exceeds
/// the midpoint, `(workers + 1) / 2 ×` serial — integer arithmetic on
/// nanoseconds, no floats.
///
/// This is a **pure function of the two samples**: no clock is read, so
/// the decision is reproducible from injected [`ExecMetrics`] values
/// (which the unit tests do). Degenerate samples (fewer than 2 workers,
/// an empty sample, or a zero-time serial baseline) never collapse.
pub fn warmup_collapse(workers: usize, serial: &ExecMetrics, parallel: &ExecMetrics) -> bool {
    if workers < 2 || serial.morsels == 0 || parallel.morsels == 0 {
        return false;
    }
    let per_morsel = |m: &ExecMetrics| -> u128 {
        (m.filter_wall + m.geocode_wall + m.partition_wall).as_nanos() / m.morsels as u128
    };
    let s = per_morsel(serial);
    if s == 0 {
        return false;
    }
    2 * per_morsel(parallel) > (workers as u128 + 1) * s
}

/// Runs stages 2–3 fused: one morsel-driven pass from `source` to grouped
/// users. Fills the funnel's tweet counters, the geocode/grouping metric
/// slots (so staged-path consumers see the same fields filled), and the
/// [`ExecMetrics`] slot.
pub(crate) fn run_fused(
    source: &dyn MorselSource,
    p: &FusedParams<'_>,
    funnel: &mut CollectionFunnel,
    metrics: &mut PipelineMetrics,
) -> Vec<GroupedUser> {
    let planned = p.threads.max(1);
    let phase1_start = Instant::now();

    // Peek at the input: buffer morsels until the parallel threshold is
    // reached *and* there are enough to give every candidate worker (plus
    // the adaptive warmup) an owned backlog, or the source runs dry.
    let mut prefetched: Vec<(u64, ColumnBatch)> = Vec::new();
    let mut buffered_rows = 0usize;
    if planned > 1 {
        let want = if p.threads_exact {
            planned
        } else {
            planned + WARMUP_MORSELS
        };
        let mut buf = ColumnBatch::new();
        while buffered_rows < FUSED_PARALLEL_THRESHOLD || prefetched.len() < want {
            match source.next_morsel(&mut buf) {
                Some(first) => {
                    buffered_rows += buf.len();
                    prefetched.push((first, std::mem::take(&mut buf)));
                }
                None => break,
            }
        }
    }
    let go_parallel = planned > 1 && buffered_rows >= FUSED_PARALLEL_THRESHOLD;
    // Hash partitioning stays on even for a serial pass: P small sorts
    // beat one big one (smaller n·log n, better locality), and the
    // uncontended per-morsel flush locks cost nothing.
    let partition_count = p.partitions.max(1);
    let partitions: Vec<Mutex<Vec<(u64, LocationKey)>>> = (0..partition_count)
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    // A Copy reference for the spawn closures (a `move` closure would
    // otherwise capture the Vec itself).
    let parts: &[Mutex<Vec<(u64, LocationKey)>>] = &partitions;

    // Phase 1: the fused filter→geocode→partition pass.
    let stats: Vec<WorkerStats> = if !go_parallel {
        vec![worker_pass(prefetched, Some(source), p, parts)]
    } else if p.threads_exact {
        // Exact mode: spawn min(threads, prefetched morsels) workers, one
        // owned morsel each (round-robin), then share the live source.
        let workers = planned.min(prefetched.len());
        if workers <= 1 {
            vec![worker_pass(prefetched, Some(source), p, parts)]
        } else {
            let owned = deal(prefetched, workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = owned
                    .into_iter()
                    .map(|mine| s.spawn(move || worker_pass(mine, Some(source), p, parts)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fused worker panicked"))
                    .collect()
            })
        }
    } else {
        // Adaptive mode: serial warmup sample, then one probe morsel per
        // candidate worker in parallel; collapse to serial-inline if the
        // probe shows the workers time-slicing instead of running.
        let mut rest = prefetched;
        let take = WARMUP_MORSELS.min(rest.len());
        let warm: Vec<_> = rest.drain(..take).collect();
        let mut warmup = worker_pass(warm, None, p, parts);
        let workers = planned.min(rest.len());
        if workers <= 1 {
            warmup.merge(worker_pass(rest, Some(source), p, parts));
            vec![warmup]
        } else {
            let tranche: Vec<_> = rest.drain(..workers).collect();
            let tranche_stats: Vec<WorkerStats> = std::thread::scope(|s| {
                let handles: Vec<_> = tranche
                    .into_iter()
                    .map(|m| s.spawn(move || worker_pass(vec![m], None, p, parts)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("probe worker panicked"))
                    .collect()
            });
            if warmup_collapse(
                workers,
                &sample(std::slice::from_ref(&warmup)),
                &sample(&tranche_stats),
            ) {
                for t in tranche_stats {
                    warmup.merge(t);
                }
                warmup.merge(worker_pass(rest, Some(source), p, parts));
                vec![warmup]
            } else {
                let owned = deal(rest, workers);
                let mut stats: Vec<WorkerStats> = std::thread::scope(|s| {
                    let handles: Vec<_> = owned
                        .into_iter()
                        .map(|mine| s.spawn(move || worker_pass(mine, Some(source), p, parts)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("fused worker panicked"))
                        .collect()
                });
                // Every worker already drew a probe morsel, so per-thread
                // counts are all ≥ 1; the warmup ran on the calling
                // thread and folds into the first worker's tally.
                for (w, t) in stats.iter_mut().zip(tranche_stats) {
                    w.merge(t);
                }
                stats[0].merge(warmup);
                stats
            }
        }
    };
    let workers = stats.len();
    let phase1_wall = phase1_start.elapsed();

    // Phase 2: partitions sort + group in parallel, then merge in user-id
    // order (users are unique, so concatenate-and-sort is deterministic).
    let phase2_start = Instant::now();
    let partition_keys: Vec<u64> = partitions
        .iter()
        .map(|m| m.lock().expect("partition poisoned").len() as u64)
        .collect();
    let group_workers = if workers > 1 && partition_count > 1 {
        workers.min(partition_count)
    } else {
        1
    };
    let cursor = AtomicUsize::new(0);
    let group_one = |draws: &mut u64, group_wall: &mut Duration| {
        let mut parts: Vec<(usize, Vec<GroupedUser>)> = Vec::new();
        loop {
            let idx = cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= partition_count {
                break;
            }
            *draws += 1;
            let start = Instant::now();
            let mut pairs =
                std::mem::take(&mut *partitions[idx].lock().expect("partition poisoned"));
            if pairs.is_empty() {
                continue;
            }
            arrange_runs(&mut pairs);
            parts.push((idx, group_partition(&pairs, p.interner, p.tie_break)));
            *group_wall += start.elapsed();
        }
        parts
    };
    let mut draws_per_thread = vec![0u64; group_workers];
    let mut group_wall = Duration::ZERO;
    let mut by_partition: Vec<Vec<GroupedUser>> =
        (0..partition_count).map(|_| Vec::new()).collect();
    if group_workers == 1 {
        for (idx, grouped) in group_one(&mut draws_per_thread[0], &mut group_wall) {
            by_partition[idx] = grouped;
        }
    } else {
        type GroupWorkerResult = (Vec<(usize, Vec<GroupedUser>)>, u64, Duration);
        let results: Vec<GroupWorkerResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..group_workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut draws = 0u64;
                        let mut wall = Duration::ZERO;
                        let parts = group_one(&mut draws, &mut wall);
                        (parts, draws, wall)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("group worker panicked"))
                .collect()
        });
        for (t, (parts, draws, wall)) in results.into_iter().enumerate() {
            draws_per_thread[t] = draws;
            group_wall += wall;
            for (idx, grouped) in parts {
                by_partition[idx] = grouped;
            }
        }
    }
    let merge_start = Instant::now();
    let mut grouped: Vec<GroupedUser> = by_partition.into_iter().flatten().collect();
    grouped.sort_unstable_by_key(|g| g.user);
    let merge_wall = merge_start.elapsed();
    let grouping_wall = phase2_start.elapsed();

    // Fold worker counters. `threads`/`partitions` report the *executed*
    // geometry; the configured ceiling and partition count ride alongside
    // so the render never conflates the two (the serial-inline path used
    // to report the configured numbers as if they had run).
    let mut exec = ExecMetrics {
        threads: workers,
        threads_ceiling: p.threads_ceiling.max(1),
        mode: if workers > 1 {
            ExecMode::Parallel
        } else {
            ExecMode::SerialInline
        },
        morsel_rows: source.morsel_rows(),
        partitions: partition_count,
        partitions_configured: p.partitions.max(1),
        morsels_per_thread: Vec::with_capacity(workers),
        partition_keys,
        merge_wall,
        group_wall,
        ..ExecMetrics::default()
    };
    let mut buffer_bytes = 0u64;
    for s in &stats {
        exec.morsels += s.morsels;
        exec.morsels_per_thread.push(s.morsels);
        exec.rows_in += s.rows_in;
        exec.gps_rows += s.gps_rows;
        exec.kept_probes += s.kept_probes;
        exec.fixes += s.fixes;
        exec.bbox_rejected += s.bbox_rejected;
        exec.keys_emitted += s.keys;
        exec.unresolved += s.unresolved;
        exec.filter_wall += s.filter_wall;
        exec.geocode_wall += s.geocode_wall;
        exec.partition_wall += s.partition_wall;
        buffer_bytes += s.buffer_bytes;
    }
    let pair = size_of::<(u64, LocationKey)>() as u64;
    exec.peak_bytes_estimate = exec.keys_emitted * pair + buffer_bytes;
    // What the staged path materializes for the same input: the fix
    // vector, the same-length resolved vector, and the per-user key map
    // (keys + per-user Vec headers + map-slot overhead).
    let users = grouped.len() as u64;
    exec.staged_bytes_estimate = exec.fixes
        * (size_of::<StagedFix>() + size_of::<Option<GazDistrictId>>()) as u64
        + exec.keys_emitted * size_of::<LocationKey>() as u64
        + users * (size_of::<(u64, Vec<LocationKey>)>() as u64 + 16);

    // Funnel: order-independent sums, so the parallel pass lands the same
    // totals as the staged loop.
    funnel.tweets_total += exec.rows_in;
    funnel.tweets_with_gps += exec.gps_rows;
    funnel.tweets_gps_unresolvable += exec.unresolved;
    funnel.strings_built += exec.keys_emitted;
    funnel.users_final = users;

    // Geocode metrics: same fields the staged path fills, plus the
    // backend's exact traffic partition.
    metrics.geocode.fixes = exec.fixes;
    metrics.geocode.mode = match (p.choice, workers > 1) {
        (BackendChoice::Gazetteer, false) => GeocodeMode::DirectSerial,
        (BackendChoice::Gazetteer, true) => GeocodeMode::DirectParallel,
        (BackendChoice::Yahoo, _) => GeocodeMode::YahooXml,
        (BackendChoice::Resilient, _) => GeocodeMode::Resilient,
    };
    metrics.geocode.threads = workers;
    metrics.geocode.blocks_per_thread = if workers > 1 {
        exec.morsels_per_thread.clone()
    } else {
        Vec::new()
    };
    let traffic = p.backend.traffic();
    metrics.geocode.lookups = traffic.lookups;
    metrics.geocode.cache_hits = traffic.cache_hits;
    metrics.geocode.traffic = traffic;
    funnel.yahoo_quota_days = metrics.geocode.traffic.quota_days;
    // Stage walls: the operators are fused, so "intake" is the summed
    // filter-operator time (a subset of the pass, like the scan wall on
    // store runs) and "geocode" is the whole phase-1 wall.
    metrics.stages.tweet_intake = exec.filter_wall;
    metrics.stages.geocode = phase1_wall;
    metrics.geocode.wall = phase1_wall;

    // Grouping metrics, shaped like the staged path's.
    metrics.stages.grouping = grouping_wall;
    metrics.grouping.strings = exec.keys_emitted;
    metrics.grouping.users = users;
    metrics.grouping.merged_entries = grouped.iter().map(|u| u.entries.len() as u64).sum();
    metrics.grouping.interner_size = p.interner.len() as u64;
    metrics.grouping.threads = group_workers;
    metrics.grouping.blocks_per_thread = if group_workers == 1 {
        vec![1]
    } else {
        draws_per_thread
    };
    metrics.grouping.wall = grouping_wall;
    metrics.exec = Some(exec);
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_source_hands_out_dense_monotone_ordinals() {
        let rows: Vec<TweetRow> = (0..10).map(|i| TweetRow::plain(i, i)).collect();
        let source = RowSource::new(rows.into_iter(), 3);
        let mut buf = ColumnBatch::new();
        let mut firsts = Vec::new();
        let mut lens = Vec::new();
        while let Some(first) = source.next_morsel(&mut buf) {
            firsts.push(first);
            lens.push(buf.len());
        }
        assert_eq!(firsts, vec![0, 3, 6, 9]);
        assert_eq!(lens, vec![3, 3, 3, 1]);
        assert_eq!(source.next_morsel(&mut buf), None);
    }

    #[test]
    fn partition_choice_is_a_pure_function_of_user_and_count() {
        for user in [0u64, 1, 17, u64::MAX] {
            for partitions in [1usize, 2, 7, 64] {
                let a = partition_of(user, partitions);
                assert!(a < partitions);
                assert_eq!(a, partition_of(user, partitions));
            }
        }
    }

    #[test]
    fn arrange_runs_yields_contiguous_ordinal_ordered_runs() {
        let mut interner = DistrictInterner::new();
        let d = interner.intern("Seoul", "Yangchun-gu");
        // 40 users × 10 keys, emitted interleaved (every user in every
        // round) and big enough to take the bucket-scatter path.
        let mut pairs: Vec<(u64, LocationKey)> = Vec::new();
        for round in 0..10u64 {
            for user in 0..40u64 {
                let ordinal = user * 10 + round;
                let key = LocationKey {
                    user,
                    profile: d,
                    tweet: d,
                };
                pairs.push((ordinal, key));
            }
        }
        let mut expected = pairs.clone();
        expected.sort_unstable_by_key(|&(o, k)| (k.user, o));
        arrange_runs(&mut pairs);
        // Every user forms exactly one run, ordinals ascend inside it,
        // and nothing was dropped or duplicated.
        let mut seen = std::collections::HashSet::new();
        let mut i = 0;
        while i < pairs.len() {
            let user = pairs[i].1.user;
            assert!(seen.insert(user), "user {user} split across runs");
            while i + 1 < pairs.len() && pairs[i + 1].1.user == user {
                assert!(pairs[i].0 < pairs[i + 1].0, "ordinals out of order");
                i += 1;
            }
            i += 1;
        }
        let mut sorted = pairs.clone();
        sorted.sort_unstable_by_key(|&(o, k)| (k.user, o));
        assert_eq!(sorted, expected);
        // The small-partition path is a plain sort; same properties hold.
        let mut small = expected[..50].to_vec();
        arrange_runs(&mut small);
        assert_eq!(small, expected[..50].to_vec());
    }

    #[test]
    fn column_batch_keeps_columns_aligned_and_exact() {
        let mut b = ColumnBatch::with_capacity(4);
        b.push(7, 1_300_000_000, Some(Point::new(37.517, 126.866)));
        b.push(8, 0, None);
        b.push_row(&TweetRow::tagged(9, 3, -33.8688, 151.2093));
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.users, vec![7, 8, 9]);
        assert_eq!(b.timestamps, vec![1_300_000_000, 0, 0]);
        // The e6 columns truncate (within 1 µ° of the exact product);
        // GPS-less slots hold the sentinel.
        for (i, (lat, lon)) in [(37.517f64, 126.866f64), (0.0, 0.0), (-33.8688, 151.2093)]
            .iter()
            .enumerate()
        {
            if i == 1 {
                assert_eq!(b.lats_e6[i], NO_GPS_E6);
                assert_eq!(b.lons_e6[i], NO_GPS_E6);
            } else {
                assert!((b.lats_e6[i] as f64 - lat * 1e6).abs() < 1.0);
                assert!((b.lons_e6[i] as f64 - lon * 1e6).abs() < 1.0);
            }
        }
        // The f64 columns stay exact and dense (GPS-less slots hold 0.0).
        assert_eq!(b.lats, vec![37.517, 0.0, -33.8688]);
        assert_eq!(b.lons, vec![126.866, 0.0, 151.2093]);
        b.clear();
        assert!(b.is_empty());
        assert!(b.capacity_bytes() > 0, "capacity survives clear");
    }

    #[test]
    fn quantization_saturates_away_from_the_sentinel() {
        // No real coordinate — however pathological — may alias the
        // GPS-less sentinel.
        assert_eq!(quant_e6(f64::NEG_INFINITY), i32::MIN + 1);
        assert_ne!(quant_e6(f64::NEG_INFINITY), NO_GPS_E6);
        assert_eq!(quant_e6(f64::INFINITY), i32::MAX);
        assert_eq!(quant_e6(1e30), i32::MAX);
        assert_eq!(quant_e6(-1e30), i32::MIN + 1);
        assert_eq!(quant_e6(f64::NAN), 0);
        // Truncation lands within 1 µ° of the exact product.
        for x in [37.517, -33.8688, 126.866, 0.0000004, -0.0000006] {
            assert!((quant_e6(x) as f64 - x * 1e6).abs() < 1.0, "{x}");
        }
    }

    #[test]
    fn coverage_prescreen_never_rejects_a_resolvable_point() {
        let cover = CoverE6::korea();
        // Points inside (and exactly on the edge of) the Korea box pass.
        for (lat, lon) in [
            (37.517, 126.866),
            (32.5, 124.0),
            (39.5, 132.0),
            (33.0, 126.5),
        ] {
            assert!(
                !cover.rejects(quant_e6(lat), quant_e6(lon)),
                "({lat}, {lon}) wrongly prescreened"
            );
        }
        // Clearly-outside points are rejected without a lookup.
        for (lat, lon) in [
            (35.68, 139.69), // Tokyo
            (-33.86, 151.2), // Sydney
            (0.0, 0.0),
            (f64::NAN, f64::NAN),
            (f64::NEG_INFINITY, 126.9),
        ] {
            assert!(
                cover.rejects(quant_e6(lat), quant_e6(lon)),
                "({lat}, {lon}) not prescreened"
            );
        }
    }

    #[test]
    fn warmup_collapse_is_a_pure_function_of_injected_samples() {
        // Build samples by hand — no clock anywhere near the decision.
        let sample = |morsels: u64, nanos_per_morsel: u64| ExecMetrics {
            morsels,
            filter_wall: Duration::from_nanos(morsels * nanos_per_morsel / 2),
            geocode_wall: Duration::from_nanos(morsels * nanos_per_morsel / 4),
            partition_wall: Duration::from_nanos(morsels * nanos_per_morsel / 4),
            ..ExecMetrics::default()
        };
        // Time-sliced: 4 workers each took ~4× the serial per-morsel time
        // — wall ≫ cpu/worker — so the pass must collapse.
        assert!(warmup_collapse(4, &sample(2, 1_000), &sample(4, 4_000)));
        // Truly parallel: per-morsel time ≈ serial — stay parallel.
        assert!(!warmup_collapse(4, &sample(2, 1_000), &sample(4, 1_100)));
        // Exactly at the midpoint (2.5× for 4 workers) stays parallel;
        // just above it collapses.
        assert!(!warmup_collapse(4, &sample(2, 1_000), &sample(4, 2_500)));
        assert!(warmup_collapse(4, &sample(2, 1_000), &sample(4, 2_504)));
        // Degenerate samples never collapse.
        assert!(!warmup_collapse(1, &sample(2, 1_000), &sample(4, 9_000)));
        assert!(!warmup_collapse(4, &sample(0, 0), &sample(4, 9_000)));
        assert!(!warmup_collapse(4, &sample(2, 1_000), &sample(0, 0)));
        assert!(!warmup_collapse(4, &sample(2, 0), &sample(4, 9_000)));
        // Same samples, same answer, every time.
        for _ in 0..5 {
            assert!(warmup_collapse(3, &sample(2, 800), &sample(3, 2_000)));
        }
    }

    #[test]
    fn deal_gives_every_worker_a_morsel() {
        let morsels: Vec<(u64, ColumnBatch)> =
            (0..7).map(|i| (i as u64, ColumnBatch::new())).collect();
        let dealt = deal(morsels, 3);
        assert_eq!(dealt.len(), 3);
        let counts: Vec<usize> = dealt.iter().map(Vec::len).collect();
        assert_eq!(counts, vec![3, 2, 2]);
        // Round-robin keeps ordinal order within each backlog.
        assert_eq!(
            dealt[0].iter().map(|(f, _)| *f).collect::<Vec<_>>(),
            vec![0, 3, 6]
        );
    }
}
