//! The Top-k user groups (§III-B).
//!
//! "We categorized a user into the Top-k group when the matched string is
//! placed k-th in the list." Users with no matched string fall into the
//! None group (§IV: "there are 3xx users in this category who do not have
//! any matched strings at all").

use std::fmt;

/// A user's group: the rank of their matched string, bucketed as the paper
/// reports it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TopKGroup {
    /// Matched string ranks first.
    Top1,
    /// Matched string ranks second.
    Top2,
    /// Matched string ranks third.
    Top3,
    /// Matched string ranks fourth.
    Top4,
    /// Matched string ranks fifth.
    Top5,
    /// Matched string ranks sixth or lower.
    Top6Plus,
    /// No matched string at all.
    None,
}

impl TopKGroup {
    /// All groups in report order.
    pub const ALL: [TopKGroup; 7] = [
        TopKGroup::Top1,
        TopKGroup::Top2,
        TopKGroup::Top3,
        TopKGroup::Top4,
        TopKGroup::Top5,
        TopKGroup::Top6Plus,
        TopKGroup::None,
    ];

    /// Buckets a 1-based matched rank (`None` = no match).
    pub fn from_rank(rank: Option<usize>) -> Self {
        match rank {
            Some(1) => TopKGroup::Top1,
            Some(2) => TopKGroup::Top2,
            Some(3) => TopKGroup::Top3,
            Some(4) => TopKGroup::Top4,
            Some(5) => TopKGroup::Top5,
            Some(0) => unreachable!("ranks are 1-based"),
            Some(_) => TopKGroup::Top6Plus,
            None => TopKGroup::None,
        }
    }

    /// Index into [`TopKGroup::ALL`].
    pub fn index(self) -> usize {
        TopKGroup::ALL.iter().position(|&g| g == self).unwrap()
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            TopKGroup::Top1 => "Top-1",
            TopKGroup::Top2 => "Top-2",
            TopKGroup::Top3 => "Top-3",
            TopKGroup::Top4 => "Top-4",
            TopKGroup::Top5 => "Top-5",
            TopKGroup::Top6Plus => "Top-6+",
            TopKGroup::None => "None",
        }
    }
}

impl fmt::Display for TopKGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_bucketing() {
        assert_eq!(TopKGroup::from_rank(Some(1)), TopKGroup::Top1);
        assert_eq!(TopKGroup::from_rank(Some(5)), TopKGroup::Top5);
        assert_eq!(TopKGroup::from_rank(Some(6)), TopKGroup::Top6Plus);
        assert_eq!(TopKGroup::from_rank(Some(60)), TopKGroup::Top6Plus);
        assert_eq!(TopKGroup::from_rank(None), TopKGroup::None);
    }

    #[test]
    fn labels_and_indexes() {
        for (i, g) in TopKGroup::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        assert_eq!(TopKGroup::Top6Plus.label(), "Top-6+");
        assert_eq!(TopKGroup::None.to_string(), "None");
    }
}
