//! District interning: the grouping hot path over integer ids.
//!
//! The paper's method merges *strings* (§III-B), and [`crate::string`]
//! keeps that published textual form. But the district vocabulary is tiny
//! (229 si/gun/gu in the 2011 gazetteer, fewer under the city-grain
//! ablation) while tweet volume is millions — exactly the shape where a
//! symbol table wins. [`DistrictInterner`] maps each distinct
//! `(state, county)` pair to a dense [`DistrictId`] once; after that the
//! pipeline carries 16-byte [`LocationKey`]s instead of five heap strings
//! per tweet, and the merge test of the grouping method becomes a single
//! `u32` compare. The mapping is lossless both ways
//! ([`DistrictInterner::resolve`] is O(1)), so the string form is
//! recovered exactly at the report boundary — the method as published is
//! unchanged, only its carrier representation is.
//!
//! Note this id space is *not* the gazetteer's
//! [`stir_geokr::DistrictId`](stir_geokr::DistrictId): gazetteer ids index
//! the static district table, while interned ids number the grouping keys
//! in first-insert order — under [`crate::Granularity::City`] several
//! gazetteer districts collapse into one interned id.

use std::collections::HashMap;

/// Identifier of an interned `(state, county)` pair. Dense: ids are
/// assigned `0, 1, 2, …` in first-insert order, so a `Vec` indexed by id
/// is a perfect map over the vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DistrictId(pub u32);

impl std::fmt::Display for DistrictId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "K{:03}", self.0)
    }
}

/// One tweet's location information with both district sides interned:
/// the packed equivalent of [`crate::LocationString`] (user id, profile
/// district, tweet district — the state/county pairs live in the
/// interner). 16 bytes, `Copy`, and comparable without touching memory
/// beyond the struct itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LocationKey {
    /// User id.
    pub user: u64,
    /// Interned profile-side `(state, county)`.
    pub profile: DistrictId,
    /// Interned tweet-side `(state, county)`.
    pub tweet: DistrictId,
}

impl LocationKey {
    /// True when profile and tweet districts coincide — the paper's
    /// *matched string*, now a single integer compare.
    pub fn is_matched(&self) -> bool {
        self.profile == self.tweet
    }
}

/// An append-only symbol table for `(state, county)` district pairs.
///
/// * id order = first-insert order (dense, starting at 0);
/// * [`DistrictInterner::resolve`] is an O(1) slice index, no hashing;
/// * lookups borrow — a hit never allocates, and `&DistrictInterner` is
///   freely shared across the parallel grouping workers (reads only).
///
/// ```
/// use stir_core::intern::DistrictInterner;
///
/// let mut interner = DistrictInterner::new();
/// let a = interner.intern("Seoul", "Yangcheon-gu");
/// let b = interner.intern("Seoul", "Jung-gu");
/// assert_eq!(interner.intern("Seoul", "Yangcheon-gu"), a);
/// assert_ne!(a, b);
/// assert_eq!(interner.resolve(a), ("Seoul", "Yangcheon-gu"));
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DistrictInterner {
    /// state → county → id. Two string levels so lookups can borrow the
    /// query `&str`s (a flat `(String, String)` key cannot be queried
    /// without building an owned pair).
    map: HashMap<String, HashMap<String, DistrictId>>,
    /// id → (state, county), in insert order.
    names: Vec<(String, String)>,
}

impl DistrictInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct pairs interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The id of a pair if it is already interned. Never allocates.
    pub fn get(&self, state: &str, county: &str) -> Option<DistrictId> {
        self.map.get(state)?.get(county).copied()
    }

    /// Interns a pair, returning its stable id. Allocates only on the
    /// first sighting of a pair; a hit is two borrowed hash lookups.
    pub fn intern(&mut self, state: &str, county: &str) -> DistrictId {
        if let Some(id) = self.get(state, county) {
            return id;
        }
        let id = DistrictId(
            u32::try_from(self.names.len()).expect("more than u32::MAX districts interned"),
        );
        self.names.push((state.to_string(), county.to_string()));
        self.map
            .entry(state.to_string())
            .or_default()
            .insert(county.to_string(), id);
        id
    }

    /// The `(state, county)` pair behind an id — an O(1) slice index.
    ///
    /// # Panics
    /// Panics if the id was not produced by this interner.
    pub fn resolve(&self, id: DistrictId) -> (&str, &str) {
        let (s, c) = &self.names[id.0 as usize];
        (s, c)
    }

    /// Like [`DistrictInterner::resolve`], but `None` for foreign ids.
    pub fn try_resolve(&self, id: DistrictId) -> Option<(&str, &str)> {
        self.names
            .get(id.0 as usize)
            .map(|(s, c)| (s.as_str(), c.as_str()))
    }

    /// All interned pairs in id order.
    pub fn pairs(&self) -> impl Iterator<Item = (DistrictId, &str, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, (s, c))| (DistrictId(i as u32), s.as_str(), c.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_in_first_insert_order() {
        let mut it = DistrictInterner::new();
        let ids: Vec<DistrictId> = [
            ("Seoul", "Yangcheon-gu"),
            ("Seoul", "Jung-gu"),
            ("Busan", "Jung-gu"),
            ("Seoul", "Yangcheon-gu"), // repeat
            ("Gyeonggi-do", "Uiwang-si"),
        ]
        .into_iter()
        .map(|(s, c)| it.intern(s, c))
        .collect();
        assert_eq!(
            ids,
            vec![
                DistrictId(0),
                DistrictId(1),
                DistrictId(2),
                DistrictId(0),
                DistrictId(3)
            ]
        );
        assert_eq!(it.len(), 4);
        assert!(!it.is_empty());
    }

    #[test]
    fn same_county_different_state_gets_distinct_ids() {
        let mut it = DistrictInterner::new();
        let seoul = it.intern("Seoul", "Jung-gu");
        let busan = it.intern("Busan", "Jung-gu");
        assert_ne!(seoul, busan);
        assert_eq!(it.resolve(seoul), ("Seoul", "Jung-gu"));
        assert_eq!(it.resolve(busan), ("Busan", "Jung-gu"));
    }

    #[test]
    fn get_and_try_resolve_handle_unknowns() {
        let mut it = DistrictInterner::new();
        assert_eq!(it.get("Seoul", "Jung-gu"), None);
        let id = it.intern("Seoul", "Jung-gu");
        assert_eq!(it.get("Seoul", "Jung-gu"), Some(id));
        assert_eq!(it.get("Seoul", "Mapo-gu"), None);
        assert_eq!(it.try_resolve(id), Some(("Seoul", "Jung-gu")));
        assert_eq!(it.try_resolve(DistrictId(99)), None);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn resolve_panics_on_foreign_id() {
        DistrictInterner::new().resolve(DistrictId(0));
    }

    #[test]
    fn pairs_iterates_in_id_order() {
        let mut it = DistrictInterner::new();
        it.intern("Seoul", "A");
        it.intern("Busan", "B");
        let pairs: Vec<_> = it.pairs().collect();
        assert_eq!(
            pairs,
            vec![(DistrictId(0), "Seoul", "A"), (DistrictId(1), "Busan", "B")]
        );
    }

    #[test]
    fn location_key_matched_is_id_equality() {
        let mut it = DistrictInterner::new();
        let home = it.intern("Seoul", "Guro-gu");
        let away = it.intern("Seoul", "Mapo-gu");
        let k = LocationKey {
            user: 7,
            profile: home,
            tweet: home,
        };
        assert!(k.is_matched());
        let k2 = LocationKey {
            user: 7,
            profile: home,
            tweet: away,
        };
        assert!(!k2.is_matched());
        // Packed: the key is two words.
        assert_eq!(std::mem::size_of::<LocationKey>(), 16);
    }
}
